#!/usr/bin/env bash
# Builds the relational microbenchmarks in Release mode, runs them,
# and writes machine-readable summaries to BENCH_relational.json and
# BENCH_obs.json (the observability overhead guards: profiler-on vs.
# profiler-off, and segmented lineage-on vs. lineage-off).
#
# Usage: scripts/bench.sh [--append-history] [output.json]
#
# With --append-history, the BM_SegmentHop* medians plus the current
# git SHA and date are appended as one JSON line to BENCH_history.jsonl
# next to the output file — a per-commit benchmark ledger. CI feeds the
# previous entry to `bench_guard.py --history` as the regression
# baseline.
#
# Optionally set MPQE_BASELINE_MICRO / MPQE_BASELINE_DEDUP to prior
# google-benchmark JSON files to embed before/after speedup ratios.
#
# The recorded build_type is OUR binaries' CMAKE_BUILD_TYPE (read back
# from the build cache) — the summarizer refuses anything but Release.
# google-benchmark's own build flavor is informational only
# (library_build_type); distro packages commonly ship the library
# without NDEBUG, which only perturbs the harness, not our code under
# test. Set MPQE_BENCHMARK_SRC to a google-benchmark source checkout
# to build the library itself in Release and silence that warning.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-release"

append_history=0
out=""
for arg in "$@"; do
  case "$arg" in
    --append-history) append_history=1 ;;
    *) out="$arg" ;;
  esac
done
out="${out:-${repo}/BENCH_relational.json}"

cmake_args=(-DCMAKE_BUILD_TYPE=Release)
if [[ -n "${MPQE_BENCHMARK_SRC:-}" ]]; then
  bm_src="${MPQE_BENCHMARK_SRC}"
  bm_prefix="${build}/benchmark-prefix"
  if [[ ! -f "${bm_prefix}/lib/cmake/benchmark/benchmarkConfig.cmake" ]]; then
    cmake -S "${bm_src}" -B "${build}/benchmark-build" \
      -DCMAKE_BUILD_TYPE=Release -DBENCHMARK_ENABLE_TESTING=OFF \
      -DCMAKE_INSTALL_PREFIX="${bm_prefix}" >/dev/null
    cmake --build "${build}/benchmark-build" -j "$(nproc)" --target install \
      >/dev/null
  fi
  cmake_args+=(-DCMAKE_PREFIX_PATH="${bm_prefix}")
fi

cmake -S "${repo}" -B "${build}" "${cmake_args[@]}" >/dev/null
cmake --build "${build}" -j "$(nproc)" \
  --target bench_runtime_micro bench_duplicate_elimination \
  mpqe_bench_concurrent >/dev/null

# Our binaries' build type, read back from the configured cache — this
# is what BENCH_*.json certifies, independent of the library flavor.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${build}/CMakeCache.txt")"

micro_json="${build}/bench_runtime_micro.json"
dedup_json="${build}/bench_duplicate_elimination.json"

pair_json="${build}/bench_segment_pair.json"

"${build}/bench/bench_runtime_micro" \
  --benchmark_out="${micro_json}" --benchmark_out_format=json \
  --benchmark_repetitions=1 >&2
"${build}/bench/bench_duplicate_elimination" \
  --benchmark_out="${dedup_json}" --benchmark_out_format=json \
  --benchmark_repetitions=1 >&2
# The lineage and flight-recorder guard ratios are recorded from the
# MEDIAN of repeated runs of the segment-hop trio — a single repetition
# is too noisy to sit next to a hard ceiling.
"${build}/bench/bench_runtime_micro" \
  --benchmark_filter='BM_SegmentHop(Dedup|Lineage|Flight)$' \
  --benchmark_out="${pair_json}" --benchmark_out_format=json \
  --benchmark_repetitions=5 >&2
python3 "${repo}/scripts/bench_guard.py" --flight "${pair_json}"

# The vectorized-kernel floor: medians of repeated runs of the
# absorb/join pairs. bench_guard.py --absorb (also wired into CI)
# fails unless both batch kernels stay >= 2x their row-at-a-time
# baselines.
kernel_json="${build}/bench_segment_kernels.json"
"${build}/bench/bench_runtime_micro" \
  --benchmark_filter='BM_Segment(Absorb|Join)/' \
  --benchmark_out="${kernel_json}" --benchmark_out_format=json \
  --benchmark_repetitions=3 >&2
python3 "${repo}/scripts/bench_guard.py" --absorb "${kernel_json}"

# Prepared-query engine load bench: concurrent sessions over one plan
# plus the plan-cache cold/hit prepare costs. bench_guard.py --prepare
# (CI) asserts the hit path stays >= 10x faster than a cold compile.
engine_json="$(dirname "$out")/BENCH_engine.json"
"${build}/bench/mpqe_bench_concurrent" \
  --sessions=8 --queries=25 --scale=512 --json="${engine_json}" >&2
python3 "${repo}/scripts/bench_guard.py" --prepare "${engine_json}"

MPQE_BUILD_TYPE="${build_type}" \
python3 - "$out" "$micro_json" "$dedup_json" "$pair_json" "$kernel_json" <<'EOF'
import json, os, sys

out_path, micro_path, dedup_path, pair_path, kernel_path = sys.argv[1:6]

build_type = os.environ.get("MPQE_BUILD_TYPE", "").lower()
if build_type != "release":
    sys.exit(
        f"refusing to record benchmarks from a {build_type or 'unknown'!r} "
        "build: BENCH_*.json must come from CMAKE_BUILD_TYPE=Release")

def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rows[b["name"]] = {
            "real_time_ns": b["real_time"],
            "items_per_second": b.get("items_per_second"),
        }
    return doc.get("context", {}), rows

micro_ctx, micro = load(micro_path)
_, dedup = load(dedup_path)

result = {
    "context": {
        "host": micro_ctx.get("host_name"),
        "num_cpus": micro_ctx.get("num_cpus"),
        "mhz_per_cpu": micro_ctx.get("mhz_per_cpu"),
        "build_type": build_type,
        "library_build_type": micro_ctx.get("library_build_type"),
        "date": micro_ctx.get("date"),
    },
    "bench_runtime_micro": micro,
    "bench_duplicate_elimination": dedup,
}

def attach_baseline(section, env):
    path = os.environ.get(env)
    if not path or not os.path.exists(path):
        return
    with open(path) as f:
        doc = json.load(f)
    # Accept either raw google-benchmark output or a previously
    # recorded BENCH_relational.json section.
    if "benchmarks" in doc:
        _, before = load(path)
    else:
        before = doc.get(section, {})
    for name, row in result[section].items():
        old = before.get(name)
        if not old:
            continue
        row["baseline_real_time_ns"] = old["real_time_ns"]
        if old["real_time_ns"] and row["real_time_ns"]:
            row["speedup"] = round(old["real_time_ns"] / row["real_time_ns"], 3)

attach_baseline("bench_runtime_micro", "MPQE_BASELINE_MICRO")
attach_baseline("bench_duplicate_elimination", "MPQE_BASELINE_DEDUP")

# The vectorized segment kernels, recorded as medians of the repeated
# absorb/join pair runs. Arg(0) is the row-at-a-time baseline each
# batch kernel replaced (goal node: InsertRow + linear group scan;
# rule node: scratch-Tuple copy into an unordered_set); Arg(1) is the
# vectorized path. bench_guard.py --absorb holds the floor at 2x.
def load_kernel_medians(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") != "median":
            continue
        rows[b["run_name"]] = {
            "real_time_ns": b["real_time"],
            "items_per_second": b.get("items_per_second"),
            "aggregate": "median_of_3",
        }
    return rows

kernels = load_kernel_medians(kernel_path)
vk = {"vectorized_speedup_guard": 2.0}
for bench, label in (("BM_SegmentAbsorb", "goal_node_absorb"),
                     ("BM_SegmentJoin", "rule_node_probe")):
    row = kernels.get(f"{bench}/0")
    batch = kernels.get(f"{bench}/1")
    if not (row and batch):
        sys.exit(f"missing {bench} pair in {kernel_path}")
    vk[label] = {
        "benchmark": bench,
        "row_at_a_time": row,
        "vectorized": batch,
        "vectorized_speedup": round(
            row["real_time_ns"] / batch["real_time_ns"], 2),
    }
result["vectorized_segment_kernels"] = vk

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")

# The observability overhead guards. Profiler: profiler-on vs.
# profiler-off per-tuple message-hop cost. Lineage: the tracked number
# is the SEGMENTED pair — BM_SegmentHopLineage vs. BM_SegmentHopDedup
# run the identical insert+forward loop over 128-row segments, with
# the lineage run adding id assignment, the lineage column, and one
# batched derive record per segment. scripts/bench_guard.py (CI) fails
# if a fresh run exceeds lineage_overhead_guard. The legacy per-tuple
# hop numbers stay as informational fields.
obs_path = os.path.join(os.path.dirname(out_path) or ".", "BENCH_obs.json")
def load_medians(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") != "median":
            continue
        rows[b["run_name"]] = {
            "real_time_ns": b["real_time"],
            "items_per_second": b.get("items_per_second"),
            "aggregate": "median_of_5",
        }
    return rows

off = micro.get("BM_MessageHopDeterministic")
on = micro.get("BM_MessageHopProfiled")
lineage_on = micro.get("BM_MessageHopLineage")
pair = load_medians(pair_path)
seg_off = pair.get("BM_SegmentHopDedup")
seg_on = pair.get("BM_SegmentHopLineage")
if off and on:
    obs = {
        "context": result["context"],
        "profiler_off": off,
        "profiler_on": on,
        "overhead_ratio": round(on["real_time_ns"] / off["real_time_ns"], 3),
        "overhead_ns_per_hop": round(
            (on["real_time_ns"] - off["real_time_ns"]) / 10001, 1),
    }
    if lineage_on:
        # Informational: the per-tuple wire pays one derive callback
        # per hop, so lineage costs a large multiple there.
        obs["per_tuple_lineage_off"] = off
        obs["per_tuple_lineage_on"] = lineage_on
        obs["per_tuple_lineage_overhead_ratio"] = round(
            lineage_on["real_time_ns"] / off["real_time_ns"], 3)
    seg_flight = pair.get("BM_SegmentHopFlight")
    if seg_off and seg_flight:
        # The always-on black box: a FlightSessionObserver feeding the
        # lock-free ring recorder vs. the zero-observer fast path.
        # bench_guard.py --flight (CI) holds this at 1.05.
        fratio = seg_flight["real_time_ns"] / seg_off["real_time_ns"]
        obs["flight_off"] = seg_off
        obs["flight_on"] = seg_flight
        obs["flight_overhead_ratio"] = round(fratio, 3)
        obs["flight_overhead_guard"] = 1.05
        if fratio > obs["flight_overhead_guard"]:
            sys.exit(
                f"flight-recorder overhead ratio {fratio:.3f} exceeds "
                f"guard {obs['flight_overhead_guard']}")
    if seg_off and seg_on:
        ratio = seg_on["real_time_ns"] / seg_off["real_time_ns"]
        obs["lineage_off"] = seg_off
        obs["lineage_on"] = seg_on
        obs["lineage_overhead_ratio"] = round(ratio, 3)
        obs["lineage_overhead_guard"] = 1.5
        # 1001 hops x 128 rows + the seed segment.
        obs["lineage_overhead_ns_per_row"] = round(
            (seg_on["real_time_ns"] - seg_off["real_time_ns"]) / (1001 * 128),
            2)
        if ratio > obs["lineage_overhead_guard"]:
            sys.exit(
                f"segmented lineage overhead ratio {ratio:.3f} exceeds "
                f"guard {obs['lineage_overhead_guard']}")
    with open(obs_path, "w") as f:
        json.dump(obs, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {obs_path}")
EOF

if [[ "${append_history}" == "1" ]]; then
  history="$(dirname "$out")/BENCH_history.jsonl"
  sha="$(git -C "${repo}" rev-parse HEAD 2>/dev/null || echo unknown)"
  MPQE_HISTORY_SHA="${sha}" \
  python3 - "${history}" "${pair_json}" <<'EOF'
import datetime, json, os, sys

history_path, pair_path = sys.argv[1:3]
with open(pair_path) as f:
    doc = json.load(f)
medians = {}
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = round(b["real_time"], 1)
if not medians:
    sys.exit(f"no medians in {pair_path}; was it run with repetitions?")
entry = {
    "sha": os.environ.get("MPQE_HISTORY_SHA", "unknown"),
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"),
    "medians_ns": medians,
}
with open(history_path, "a") as f:
    f.write(json.dumps(entry, sort_keys=True) + "\n")
print(f"appended {entry['sha'][:12]} to {history_path} "
      f"({len(medians)} median(s))")
EOF
fi
