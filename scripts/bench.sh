#!/usr/bin/env bash
# Builds the relational microbenchmarks in Release mode, runs them,
# and writes machine-readable summaries to BENCH_relational.json and
# BENCH_obs.json (the profiler-on vs. profiler-off message-hop
# overhead guard).
#
# Usage: scripts/bench.sh [output.json]
#
# Optionally set MPQE_BASELINE_MICRO / MPQE_BASELINE_DEDUP to prior
# google-benchmark JSON files to embed before/after speedup ratios.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-release"
out="${1:-${repo}/BENCH_relational.json}"

cmake -S "${repo}" -B "${build}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build}" -j "$(nproc)" \
  --target bench_runtime_micro bench_duplicate_elimination >/dev/null

micro_json="${build}/bench_runtime_micro.json"
dedup_json="${build}/bench_duplicate_elimination.json"

"${build}/bench/bench_runtime_micro" \
  --benchmark_out="${micro_json}" --benchmark_out_format=json \
  --benchmark_repetitions=1 >&2
"${build}/bench/bench_duplicate_elimination" \
  --benchmark_out="${dedup_json}" --benchmark_out_format=json \
  --benchmark_repetitions=1 >&2

python3 - "$out" "$micro_json" "$dedup_json" <<'EOF'
import json, os, sys

out_path, micro_path, dedup_path = sys.argv[1:4]

def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rows[b["name"]] = {
            "real_time_ns": b["real_time"],
            "items_per_second": b.get("items_per_second"),
        }
    return doc.get("context", {}), rows

micro_ctx, micro = load(micro_path)
_, dedup = load(dedup_path)

result = {
    "context": {
        "host": micro_ctx.get("host_name"),
        "num_cpus": micro_ctx.get("num_cpus"),
        "mhz_per_cpu": micro_ctx.get("mhz_per_cpu"),
        "build_type": micro_ctx.get("library_build_type"),
        "date": micro_ctx.get("date"),
    },
    "bench_runtime_micro": micro,
    "bench_duplicate_elimination": dedup,
}

def attach_baseline(section, env):
    path = os.environ.get(env)
    if not path or not os.path.exists(path):
        return
    _, before = load(path)
    for name, row in result[section].items():
        old = before.get(name)
        if not old:
            continue
        row["baseline_real_time_ns"] = old["real_time_ns"]
        if old["real_time_ns"] and row["real_time_ns"]:
            row["speedup"] = round(old["real_time_ns"] / row["real_time_ns"], 3)

attach_baseline("bench_runtime_micro", "MPQE_BASELINE_MICRO")
attach_baseline("bench_duplicate_elimination", "MPQE_BASELINE_DEDUP")

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")

# The observability overhead guards: profiler-on vs. profiler-off and
# lineage-on vs. lineage-off message-hop cost. The off number is the
# zero-observer fast path and must not regress; the on numbers are the
# documented observability prices.
obs_path = os.path.join(os.path.dirname(out_path) or ".", "BENCH_obs.json")
off = micro.get("BM_MessageHopDeterministic")
on = micro.get("BM_MessageHopProfiled")
lineage_on = micro.get("BM_MessageHopLineage")
if off and on:
    obs = {
        "context": result["context"],
        "profiler_off": off,
        "profiler_on": on,
        "overhead_ratio": round(on["real_time_ns"] / off["real_time_ns"], 3),
        "overhead_ns_per_hop": round(
            (on["real_time_ns"] - off["real_time_ns"]) / 10001, 1),
    }
    if lineage_on:
        # lineage_off is the same zero-observer ping-pong as the
        # profiler baseline: with lineage absent the only delta is a
        # null-pointer branch per insert, so one baseline serves both.
        obs["lineage_off"] = off
        obs["lineage_on"] = lineage_on
        obs["lineage_overhead_ratio"] = round(
            lineage_on["real_time_ns"] / off["real_time_ns"], 3)
        obs["lineage_overhead_ns_per_hop"] = round(
            (lineage_on["real_time_ns"] - off["real_time_ns"]) / 10001, 1)
    with open(obs_path, "w") as f:
        json.dump(obs, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {obs_path}")
EOF
