#!/usr/bin/env python3
"""Fail if the segmented lineage overhead regresses past the guard.

Usage: bench_guard.py BENCH_obs.json fresh_micro.json

BENCH_obs.json is the recorded summary written by scripts/bench.sh; it
carries lineage_overhead_guard (the ceiling) and lineage_overhead_ratio
(the number recorded at commit time). fresh_micro.json is raw
google-benchmark output from a fresh run of the segment-hop pair, e.g.

  bench_runtime_micro --benchmark_filter='BM_SegmentHop(Dedup|Lineage)' \
      --benchmark_out=fresh_micro.json --benchmark_out_format=json

The guard recomputes lineage_on / lineage_off from the fresh run
(BM_SegmentHopLineage vs. BM_SegmentHopDedup — the identical
insert+forward loop over 128-row segments, with and without lineage
recording) and exits nonzero if the ratio exceeds the recorded guard.
Absolute hop times shift with hardware; the ratio is machine-portable,
which is why CI compares ratios and not nanoseconds.
"""

import json
import sys


def fail(msg):
    print(f"bench_guard: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    obs_path, fresh_path = sys.argv[1:3]

    obs = load(obs_path)
    guard = obs.get("lineage_overhead_guard")
    if not isinstance(guard, (int, float)) or guard <= 1.0:
        fail(f"{obs_path} lineage_overhead_guard is {guard!r}, "
             f"expected a number > 1")
    recorded = obs.get("lineage_overhead_ratio")

    fresh = load(fresh_path)
    rows, medians = {}, {}
    for b in fresh.get("benchmarks", []):
        if b.get("aggregate_name") == "median":
            medians[b["run_name"]] = b["real_time"]
        elif b.get("run_type") != "aggregate":
            rows[b["name"]] = b["real_time"]
    # Prefer the median of repeated runs when the caller passed
    # --benchmark_repetitions; a lone sample sits too close to the
    # ceiling to trust.
    if medians:
        rows = medians
    off = rows.get("BM_SegmentHopDedup")
    on = rows.get("BM_SegmentHopLineage")
    if not off or not on:
        fail(f"{fresh_path} lacks BM_SegmentHopDedup/BM_SegmentHopLineage "
             f"rows (got {sorted(rows)})")

    ratio = on / off
    if ratio > guard:
        fail(f"segmented lineage overhead ratio {ratio:.3f} exceeds guard "
             f"{guard} (recorded at commit time: {recorded})")
    print(f"bench_guard: OK: segmented lineage overhead ratio {ratio:.3f} "
          f"<= guard {guard} (recorded: {recorded})")
    sys.exit(0)


if __name__ == "__main__":
    main()
