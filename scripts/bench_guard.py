#!/usr/bin/env python3
"""Fail if a recorded performance guard regresses.

Seven modes:

Lineage overhead (default):

    bench_guard.py BENCH_obs.json fresh_micro.json

Plan-cache prepare speedup:

    bench_guard.py --prepare BENCH_engine.json [min_speedup]

Telemetry hop overhead:

    bench_guard.py --telemetry fresh_micro.json [max_ratio]

Telemetry end-to-end qps:

    bench_guard.py --qps BENCH_on.json BENCH_off.json [min_ratio]

Vectorized segment kernel speedup:

    bench_guard.py --absorb fresh_micro.json [min_speedup]

Flight-recorder hop overhead:

    bench_guard.py --flight fresh_micro.json [max_ratio]

History regression (against the previous BENCH_history.jsonl entry):

    bench_guard.py --history BENCH_history.jsonl fresh_micro.json [max_ratio]

The --flight mode reads fresh google-benchmark output containing the
segment-hop pair BM_SegmentHopDedup (no observers) and
BM_SegmentHopFlight (a FlightSessionObserver feeding the lock-free
flight recorder — exactly the always-on tap every engine session runs
with) and fails if flight_on / flight_off exceeds max_ratio (default
1.05): the black box must cost at most 5% per hop, or it stops being
an always-on recorder.

The --history mode reads the JSONL benchmark history appended by
`scripts/bench.sh --append-history` (one object per commit: sha, date,
and the BM_SegmentHop* medians in ns) plus a fresh micro run, and
fails if any benchmark present in both regressed by more than
max_ratio (default 1.25 — absolute nanoseconds move with machine load,
so this is a coarse tripwire, not the ratio guards above). With fewer
than one prior entry the check passes vacuously.

The --absorb mode reads fresh google-benchmark output containing the
vectorized-kernel pairs BM_SegmentAbsorb/{0,1} and BM_SegmentJoin/{0,1}
and fails unless BOTH batch variants (/1) are at least min_speedup
(default 2) times faster than their row-at-a-time baselines (/0). Each
/0 arm reproduces the engine code the batch kernel replaced:
BM_SegmentAbsorb/0 is the goal node's per-row InsertRow plus a linear
scan over output groups (vs. /1: InsertSegment plus hash-map grouping
over 4096-row segments); BM_SegmentJoin/0 is the rule node's
scratch-Tuple copy into a std::unordered_set answer table (vs. /1: the
flat-arena InsertSegment kernel). Both benches count items = rows, so
the real_time ratio is the rows/s speedup. Medians are preferred when
the run carries repetitions.

The --telemetry mode reads fresh google-benchmark output containing
the segment-hop pair BM_SegmentHopDedup (no observers — the
zero-observer fast path) and BM_SegmentHopTelemetry (a MetricsObserver
attached, exactly what a telemetry-on engine session runs) and fails
if telemetry_on / telemetry_off exceeds max_ratio (default 1.05):
metrics collection must cost at most 5% per hop.

The --qps mode compares two mpqe_bench_concurrent summaries — one run
with --telemetry=on, one with --telemetry=off — and fails unless
qps_on / qps_off >= min_ratio (default 0.95): the telemetry layer
(query ids, session aggregation, gauge sampling, stats endpoint) may
cost at most 5% of end-to-end throughput.

The --prepare mode reads the summary written by mpqe_bench_concurrent
(scripts/bench.sh records it as BENCH_engine.json) and fails unless
the plan-cache hit path is at least min_speedup (default 10) times
faster than the cold compile on the transitive-closure example —
prepare_cold_ns / prepare_hit_ns >= min_speedup. A hit that slow means
the cache stopped short-circuiting parse/adorn/sips/graph-build.

Lineage mode: BENCH_obs.json is the recorded summary written by
scripts/bench.sh; fresh_micro.json is raw google-benchmark output.

Usage: bench_guard.py BENCH_obs.json fresh_micro.json

BENCH_obs.json is the recorded summary written by scripts/bench.sh; it
carries lineage_overhead_guard (the ceiling) and lineage_overhead_ratio
(the number recorded at commit time). fresh_micro.json is raw
google-benchmark output from a fresh run of the segment-hop pair, e.g.

  bench_runtime_micro --benchmark_filter='BM_SegmentHop(Dedup|Lineage)' \
      --benchmark_out=fresh_micro.json --benchmark_out_format=json

The guard recomputes lineage_on / lineage_off from the fresh run
(BM_SegmentHopLineage vs. BM_SegmentHopDedup — the identical
insert+forward loop over 128-row segments, with and without lineage
recording) and exits nonzero if the ratio exceeds the recorded guard.
Absolute hop times shift with hardware; the ratio is machine-portable,
which is why CI compares ratios and not nanoseconds.
"""

import json
import sys


def fail(msg):
    print(f"bench_guard: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_prepare(engine_path, min_speedup):
    doc = load(engine_path)
    cold = doc.get("prepare_cold_ns")
    hit = doc.get("prepare_hit_ns")
    if not isinstance(cold, (int, float)) or cold <= 0:
        fail(f"{engine_path} prepare_cold_ns is {cold!r}")
    if not isinstance(hit, (int, float)) or hit < 0:
        fail(f"{engine_path} prepare_hit_ns is {hit!r}")
    # A hit measured as 0 ns is below clock resolution — infinitely
    # faster than the cold compile, which trivially passes.
    speedup = float("inf") if hit == 0 else cold / hit
    if speedup < min_speedup:
        fail(f"plan-cache hit path is only {speedup:.1f}x faster than cold "
             f"prepare (cold={cold} ns, hit={hit} ns), expected >= "
             f"{min_speedup}x")
    cache = doc.get("plan_cache", {})
    if cache.get("hits", 0) < 1:
        fail(f"{engine_path} records no plan-cache hits")
    print(f"bench_guard: OK: plan-cache hit path {speedup:.1f}x faster than "
          f"cold prepare (cold={cold} ns, hit={hit} ns, guard "
          f">= {min_speedup}x)")
    sys.exit(0)


def micro_rows(fresh_path):
    """name -> real_time from raw google-benchmark output, preferring
    the median of repeated runs when --benchmark_repetitions was used
    (a lone sample sits too close to the ceiling to trust)."""
    fresh = load(fresh_path)
    rows, medians = {}, {}
    for b in fresh.get("benchmarks", []):
        if b.get("aggregate_name") == "median":
            medians[b["run_name"]] = b["real_time"]
        elif b.get("run_type") != "aggregate":
            rows[b["name"]] = b["real_time"]
    return medians if medians else rows


def check_telemetry(fresh_path, max_ratio):
    rows = micro_rows(fresh_path)
    off = rows.get("BM_SegmentHopDedup")
    on = rows.get("BM_SegmentHopTelemetry")
    if not off or not on:
        fail(f"{fresh_path} lacks BM_SegmentHopDedup/BM_SegmentHopTelemetry "
             f"rows (got {sorted(rows)})")
    ratio = on / off
    if ratio > max_ratio:
        fail(f"telemetry hop overhead ratio {ratio:.3f} exceeds guard "
             f"{max_ratio} (off={off:.0f} ns, on={on:.0f} ns)")
    print(f"bench_guard: OK: telemetry hop overhead ratio {ratio:.3f} "
          f"<= guard {max_ratio}")
    sys.exit(0)


def check_qps(on_path, off_path, min_ratio):
    docs = {}
    for path, want in ((on_path, True), (off_path, False)):
        doc = load(path)
        if doc.get("telemetry") is not want:
            fail(f"{path} records telemetry={doc.get('telemetry')!r}, "
                 f"expected a --telemetry={'on' if want else 'off'} run")
        qps = doc.get("qps")
        if not isinstance(qps, (int, float)) or qps <= 0:
            fail(f"{path} qps is {qps!r}")
        docs[want] = qps
    ratio = docs[True] / docs[False]
    if ratio < min_ratio:
        fail(f"telemetry-on qps is {ratio:.3f}x the telemetry-off run "
             f"(on={docs[True]:.0f}, off={docs[False]:.0f}), "
             f"expected >= {min_ratio}")
    print(f"bench_guard: OK: telemetry-on qps {ratio:.3f}x of off "
          f"(on={docs[True]:.0f}, off={docs[False]:.0f}, guard "
          f">= {min_ratio})")
    sys.exit(0)


def check_absorb(fresh_path, min_speedup):
    rows = micro_rows(fresh_path)
    pairs = (("BM_SegmentAbsorb", "segment absorb (goal-node dedup)"),
             ("BM_SegmentJoin", "segment join (rule-node probe)"))
    for bench, what in pairs:
        row = rows.get(f"{bench}/0")
        batch = rows.get(f"{bench}/1")
        if not row or not batch:
            fail(f"{fresh_path} lacks {bench}/0 and {bench}/1 rows "
                 f"(got {sorted(rows)})")
        speedup = row / batch
        if speedup < min_speedup:
            fail(f"{what} batch kernel is only {speedup:.2f}x the "
                 f"row-at-a-time path (row={row:.0f} ns, "
                 f"batch={batch:.0f} ns), expected >= {min_speedup}x")
        print(f"bench_guard: OK: {what} batch kernel {speedup:.2f}x "
              f"row-at-a-time (guard >= {min_speedup}x)")
    sys.exit(0)


def check_flight(fresh_path, max_ratio):
    rows = micro_rows(fresh_path)
    off = rows.get("BM_SegmentHopDedup")
    on = rows.get("BM_SegmentHopFlight")
    if not off or not on:
        fail(f"{fresh_path} lacks BM_SegmentHopDedup/BM_SegmentHopFlight "
             f"rows (got {sorted(rows)})")
    ratio = on / off
    if ratio > max_ratio:
        fail(f"flight-recorder hop overhead ratio {ratio:.3f} exceeds guard "
             f"{max_ratio} (off={off:.0f} ns, on={on:.0f} ns) — the black "
             f"box must stay cheap enough to leave on")
    print(f"bench_guard: OK: flight-recorder hop overhead ratio {ratio:.3f} "
          f"<= guard {max_ratio}")
    sys.exit(0)


def check_history(history_path, fresh_path, max_ratio):
    try:
        with open(history_path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"cannot load {history_path}: {e}")
    if not lines:
        print("bench_guard: OK: history is empty, nothing to compare against")
        sys.exit(0)
    try:
        baseline = json.loads(lines[-1])
    except json.JSONDecodeError as e:
        fail(f"{history_path} last line is not JSON: {e}")
    medians = baseline.get("medians_ns")
    if not isinstance(medians, dict) or not medians:
        fail(f"{history_path} last entry lacks a medians_ns object")

    rows = micro_rows(fresh_path)
    compared = regressed = 0
    for name, base in sorted(medians.items()):
        fresh = rows.get(name)
        if fresh is None or not isinstance(base, (int, float)) or base <= 0:
            continue
        compared += 1
        ratio = fresh / base
        marker = "OK"
        if ratio > max_ratio:
            regressed += 1
            marker = "REGRESSED"
        print(f"bench_guard: {marker}: {name} {ratio:.3f}x of "
              f"{baseline.get('sha', '?')[:12]} "
              f"(base={base:.0f} ns, fresh={fresh:.0f} ns)")
    if compared == 0:
        fail(f"no benchmark appears in both {history_path} and {fresh_path}")
    if regressed:
        fail(f"{regressed}/{compared} benchmark(s) regressed past "
             f"{max_ratio}x the previous history entry")
    print(f"bench_guard: OK: {compared} benchmark(s) within {max_ratio}x of "
          f"the previous history entry ({baseline.get('sha', '?')[:12]})")
    sys.exit(0)


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--prepare":
        if len(sys.argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        min_speedup = float(sys.argv[3]) if len(sys.argv) == 4 else 10.0
        check_prepare(sys.argv[2], min_speedup)
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--telemetry":
        if len(sys.argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        max_ratio = float(sys.argv[3]) if len(sys.argv) == 4 else 1.05
        check_telemetry(sys.argv[2], max_ratio)
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--absorb":
        if len(sys.argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        min_speedup = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0
        check_absorb(sys.argv[2], min_speedup)
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--flight":
        if len(sys.argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        max_ratio = float(sys.argv[3]) if len(sys.argv) == 4 else 1.05
        check_flight(sys.argv[2], max_ratio)
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--history":
        if len(sys.argv) not in (4, 5):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        max_ratio = float(sys.argv[4]) if len(sys.argv) == 5 else 1.25
        check_history(sys.argv[2], sys.argv[3], max_ratio)
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--qps":
        if len(sys.argv) not in (4, 5):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        min_ratio = float(sys.argv[4]) if len(sys.argv) == 5 else 0.95
        check_qps(sys.argv[2], sys.argv[3], min_ratio)
        return
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    obs_path, fresh_path = sys.argv[1:3]

    obs = load(obs_path)
    guard = obs.get("lineage_overhead_guard")
    if not isinstance(guard, (int, float)) or guard <= 1.0:
        fail(f"{obs_path} lineage_overhead_guard is {guard!r}, "
             f"expected a number > 1")
    recorded = obs.get("lineage_overhead_ratio")

    rows = micro_rows(fresh_path)
    off = rows.get("BM_SegmentHopDedup")
    on = rows.get("BM_SegmentHopLineage")
    if not off or not on:
        fail(f"{fresh_path} lacks BM_SegmentHopDedup/BM_SegmentHopLineage "
             f"rows (got {sorted(rows)})")

    ratio = on / off
    if ratio > guard:
        fail(f"segmented lineage overhead ratio {ratio:.3f} exceeds guard "
             f"{guard} (recorded at commit time: {recorded})")
    print(f"bench_guard: OK: segmented lineage overhead ratio {ratio:.3f} "
          f"<= guard {guard} (recorded: {recorded})")
    sys.exit(0)


if __name__ == "__main__":
    main()
