#!/usr/bin/env python3
"""Fail if a recorded performance guard regresses.

Two modes:

Lineage overhead (default):

    bench_guard.py BENCH_obs.json fresh_micro.json

Plan-cache prepare speedup:

    bench_guard.py --prepare BENCH_engine.json [min_speedup]

The --prepare mode reads the summary written by mpqe_bench_concurrent
(scripts/bench.sh records it as BENCH_engine.json) and fails unless
the plan-cache hit path is at least min_speedup (default 10) times
faster than the cold compile on the transitive-closure example —
prepare_cold_ns / prepare_hit_ns >= min_speedup. A hit that slow means
the cache stopped short-circuiting parse/adorn/sips/graph-build.

Lineage mode: BENCH_obs.json is the recorded summary written by
scripts/bench.sh; fresh_micro.json is raw google-benchmark output.

Usage: bench_guard.py BENCH_obs.json fresh_micro.json

BENCH_obs.json is the recorded summary written by scripts/bench.sh; it
carries lineage_overhead_guard (the ceiling) and lineage_overhead_ratio
(the number recorded at commit time). fresh_micro.json is raw
google-benchmark output from a fresh run of the segment-hop pair, e.g.

  bench_runtime_micro --benchmark_filter='BM_SegmentHop(Dedup|Lineage)' \
      --benchmark_out=fresh_micro.json --benchmark_out_format=json

The guard recomputes lineage_on / lineage_off from the fresh run
(BM_SegmentHopLineage vs. BM_SegmentHopDedup — the identical
insert+forward loop over 128-row segments, with and without lineage
recording) and exits nonzero if the ratio exceeds the recorded guard.
Absolute hop times shift with hardware; the ratio is machine-portable,
which is why CI compares ratios and not nanoseconds.
"""

import json
import sys


def fail(msg):
    print(f"bench_guard: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_prepare(engine_path, min_speedup):
    doc = load(engine_path)
    cold = doc.get("prepare_cold_ns")
    hit = doc.get("prepare_hit_ns")
    if not isinstance(cold, (int, float)) or cold <= 0:
        fail(f"{engine_path} prepare_cold_ns is {cold!r}")
    if not isinstance(hit, (int, float)) or hit < 0:
        fail(f"{engine_path} prepare_hit_ns is {hit!r}")
    # A hit measured as 0 ns is below clock resolution — infinitely
    # faster than the cold compile, which trivially passes.
    speedup = float("inf") if hit == 0 else cold / hit
    if speedup < min_speedup:
        fail(f"plan-cache hit path is only {speedup:.1f}x faster than cold "
             f"prepare (cold={cold} ns, hit={hit} ns), expected >= "
             f"{min_speedup}x")
    cache = doc.get("plan_cache", {})
    if cache.get("hits", 0) < 1:
        fail(f"{engine_path} records no plan-cache hits")
    print(f"bench_guard: OK: plan-cache hit path {speedup:.1f}x faster than "
          f"cold prepare (cold={cold} ns, hit={hit} ns, guard "
          f">= {min_speedup}x)")
    sys.exit(0)


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--prepare":
        if len(sys.argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        min_speedup = float(sys.argv[3]) if len(sys.argv) == 4 else 10.0
        check_prepare(sys.argv[2], min_speedup)
        return
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    obs_path, fresh_path = sys.argv[1:3]

    obs = load(obs_path)
    guard = obs.get("lineage_overhead_guard")
    if not isinstance(guard, (int, float)) or guard <= 1.0:
        fail(f"{obs_path} lineage_overhead_guard is {guard!r}, "
             f"expected a number > 1")
    recorded = obs.get("lineage_overhead_ratio")

    fresh = load(fresh_path)
    rows, medians = {}, {}
    for b in fresh.get("benchmarks", []):
        if b.get("aggregate_name") == "median":
            medians[b["run_name"]] = b["real_time"]
        elif b.get("run_type") != "aggregate":
            rows[b["name"]] = b["real_time"]
    # Prefer the median of repeated runs when the caller passed
    # --benchmark_repetitions; a lone sample sits too close to the
    # ceiling to trust.
    if medians:
        rows = medians
    off = rows.get("BM_SegmentHopDedup")
    on = rows.get("BM_SegmentHopLineage")
    if not off or not on:
        fail(f"{fresh_path} lacks BM_SegmentHopDedup/BM_SegmentHopLineage "
             f"rows (got {sorted(rows)})")

    ratio = on / off
    if ratio > guard:
        fail(f"segmented lineage overhead ratio {ratio:.3f} exceeds guard "
             f"{guard} (recorded at commit time: {recorded})")
    print(f"bench_guard: OK: segmented lineage overhead ratio {ratio:.3f} "
          f"<= guard {guard} (recorded: {recorded})")
    sys.exit(0)


if __name__ == "__main__":
    main()
