#!/usr/bin/env python3
"""Validate observability JSON artifacts.

Usage: check_trace.py trace.json            # Chrome trace (TraceExporter)
       check_trace.py --profile profile.json  # mpqe-profile-v1 (profiler)
       check_trace.py --lineage lineage.json  # mpqe-lineage-v1 (provenance)
       check_trace.py --prometheus scrape.txt [--queries querylog.json]
                                              # /metrics exposition + query log
       check_trace.py --flight dump.json [--expect-stall]
                                              # mpqe-flightdump-v1 (flight
                                              # recorder / watchdog bundle)

Trace checks (stdlib only, exit 0 = valid, 1 = invalid):
  * the file parses as JSON and has a non-empty "traceEvents" list;
  * every event carries the keys its phase type requires;
  * duration events ("X") have dur >= 0;
  * segment envelopes (send flows named "msg:tuple_segment" and their
    deliver slices "tuple_segment") carry an integer args.rows >= 1 —
    empty segments never ship;
  * flow starts ("s") and ends ("f") pair up one-to-one by id, and
    every flow end's timestamp is >= its start's (send happens-before
    delivery);
  * metadata ("M") names every thread that appears in events.

Profile checks (--profile, schema "mpqe-profile-v1"):
  * top-level schema marker, totals, phases, nodes, sccs all present;
  * every node row has the full counter set (including the segment
    envelope counters segments_in/out and segment_rows_in/out), node
    ids are unique, and derived ratios (dup_hit_rate, selectivity,
    rows_per_segment_out) are consistent with the raw counters;
  * segment rows imply segment envelopes and vice versa (a shipped
    segment is never empty);
  * estimate-bearing nodes carry est_log10_tuples and
    deviation_factor (>= 1);
  * node counter sums do not exceed the report totals, and
    msgs_sent == msgs_delivered (every run drains);
  * every scc row references known nodes and has tree_depth >= 1.

Lineage checks (--lineage, schema "mpqe-lineage-v1"):
  * top-level schema marker, stats and records present, record ids
    unique and non-negative, kinds in {edb, rule, union};
  * EDB records are leaves: no inputs, depth 0; derived records carry
    a non-empty inputs list;
  * referential integrity: every input id resolves to a record with a
    strictly smaller id (the derivation structure is a DAG), and every
    source id resolves;
  * rule records carry an integer rule index;
  * depth == 1 + max(depth of inputs) for derived records, and the
    stats block's edb_facts/derived/max_depth match the records.

Prometheus checks (--prometheus, text exposition format 0.0.4 as
served by the engine's GET /metrics and mpqe_query --metrics-out):
  * every sample line parses (name, optional {labels}, numeric value)
    and belongs to a family declared by a preceding # TYPE line with
    type counter, gauge or histogram;
  * no series (name + label set) appears twice;
  * counter and histogram samples are non-negative;
  * per histogram series: bucket counts are cumulative (non-decreasing
    in le order), the last bucket is le="+Inf" and equals _count, and
    _sum/_count are present;
  * the engine's core families are all present: plan-cache
    (mpqe_plan_cache_hit, mpqe_plan_cache_size), session latency
    (mpqe_engine_session_latency_ns), queue depth
    (mpqe_engine_pool_queue_depth), and message/segment traffic
    (mpqe_msg_sent, mpqe_msg_segment_rows);
  * with --queries, the mpqe-querylog-v1 document correlates with the
    scrape: query ids are unique and >= 1, and the log's completed
    total equals the scrape's mpqe_engine_session_latency_ns_count —
    every completed session shows up in both surfaces.

Flight dump checks (--flight, schema "mpqe-flightdump-v1" as written
by the stall watchdog, GET /debug/flight, and mpqe_query
--flight-dump):
  * top-level schema marker, reason in {stall, manual}, and the
    scalar block (query_id, stalled_ms, delivered, in_flight,
    stuck_scc) all present and well-typed;
  * events are time-ordered, every event has a known type name, and
    rows/aux are non-negative;
  * scc rows are unique by id; nontrivial sccs have members >= 1 and
    carry the Fig. 2 protocol block (wave, waiting_for, ...);
  * node rows are unique by id, reference known sccs, and carry
    labels;
  * a "stall" dump names a stuck_scc that resolves to a nontrivial
    scc row holding queued work, and carries at least one event;
  * with --expect-stall, reason must be "stall" (the CI stall-
    injection smoke asserts the watchdog actually fired).
"""

import json
import re
import sys
from collections import Counter

KNOWN_PHASES = {"X", "s", "f", "i", "C", "M", "B", "E"}

NODE_COUNTERS = [
    "fires", "requests_in", "tuples_in", "tuples_out", "dedup_hits",
    "msgs_in", "msgs_out", "batch_envelopes_in", "batch_envelopes_out",
    "segments_in", "segments_out", "segment_rows_in", "segment_rows_out",
    "batch_rows_in", "batch_dedup_hits",
    "fire_ns", "queue_wait_ns",
]

TOTAL_COUNTERS = [
    "fires", "tuples_in", "tuples_out", "dedup_hits", "msgs_sent",
    "msgs_delivered", "fire_ns", "queue_wait_ns",
]

ROLES = {"goal", "rule", "edb", "cycle_ref"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_profile(path):
    report = load(path)
    if report.get("schema") != "mpqe-profile-v1":
        fail(f'schema is {report.get("schema")!r}, expected "mpqe-profile-v1"')
    for key in ("totals", "phases", "nodes", "sccs"):
        if key not in report:
            fail(f'top-level "{key}" missing')
    totals = report["totals"]
    for key in TOTAL_COUNTERS:
        v = totals.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"totals.{key} is {v!r}, expected a non-negative int")
    if totals["msgs_sent"] != totals["msgs_delivered"]:
        fail(f'msgs_sent {totals["msgs_sent"]} != '
             f'msgs_delivered {totals["msgs_delivered"]}')

    nodes = report["nodes"]
    if not isinstance(nodes, list) or not nodes:
        fail('"nodes" missing, not a list, or empty')
    seen_ids = set()
    sums = Counter()
    estimated = 0
    for i, n in enumerate(nodes):
        nid = n.get("id")
        if not isinstance(nid, int) or nid < 0:
            fail(f"node {i} has bad id {nid!r}")
        if nid in seen_ids:
            fail(f"duplicate node id {nid}")
        seen_ids.add(nid)
        if n.get("role") not in ROLES:
            fail(f'node {nid} has unknown role {n.get("role")!r}')
        if not isinstance(n.get("label"), str) or not n["label"]:
            fail(f"node {nid} lacks a label")
        for key in NODE_COUNTERS:
            v = n.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"node {nid}.{key} is {v!r}, expected non-negative int")
            sums[key] += v
        seen = n["tuples_in"] + n["dedup_hits"]
        want_rate = n["dedup_hits"] / seen if seen else 0.0
        if abs(n.get("dup_hit_rate", -1) - want_rate) > 1e-4:
            fail(f'node {nid} dup_hit_rate {n.get("dup_hit_rate")!r} '
                 f"inconsistent with counters (want {want_rate:.6f})")
        want_sel = n["tuples_out"] / n["tuples_in"] if n["tuples_in"] else 0.0
        if abs(n.get("selectivity", -1) - want_sel) > 1e-4:
            fail(f'node {nid} selectivity {n.get("selectivity")!r} '
                 f"inconsistent with counters (want {want_sel:.6f})")
        for way in ("in", "out"):
            segs, rows = n[f"segments_{way}"], n[f"segment_rows_{way}"]
            if (segs == 0) != (rows == 0) or rows < segs:
                fail(f"node {nid} segment_rows_{way} {rows} inconsistent "
                     f"with segments_{way} {segs} (segments are non-empty)")
        want_rps = (n["segment_rows_out"] / n["segments_out"]
                    if n["segments_out"] else 0.0)
        if abs(n.get("rows_per_segment_out", -1) - want_rps) > 1e-4:
            fail(f'node {nid} rows_per_segment_out '
                 f'{n.get("rows_per_segment_out")!r} inconsistent with '
                 f"counters (want {want_rps:.6f})")
        want_rpsi = (n["segment_rows_in"] / n["segments_in"]
                     if n["segments_in"] else 0.0)
        if abs(n.get("rows_per_segment_in", -1) - want_rpsi) > 1e-4:
            fail(f'node {nid} rows_per_segment_in '
                 f'{n.get("rows_per_segment_in")!r} inconsistent with '
                 f"counters (want {want_rpsi:.6f})")
        # Batch counters cover the subset of traffic that arrived in
        # segments/envelopes, so they are bounded by the totals.
        if n["batch_rows_in"] > n["tuples_in"] + n["dedup_hits"]:
            fail(f'node {nid} batch_rows_in {n["batch_rows_in"]} exceeds '
                 f'tuples_in + dedup_hits '
                 f'{n["tuples_in"] + n["dedup_hits"]}')
        if n["batch_dedup_hits"] > n["dedup_hits"]:
            fail(f'node {nid} batch_dedup_hits {n["batch_dedup_hits"]} '
                 f'exceeds dedup_hits {n["dedup_hits"]}')
        want_bhr = (n["batch_dedup_hits"] / n["batch_rows_in"]
                    if n["batch_rows_in"] else 0.0)
        if abs(n.get("batch_dedup_hit_rate", -1) - want_bhr) > 1e-4:
            fail(f'node {nid} batch_dedup_hit_rate '
                 f'{n.get("batch_dedup_hit_rate")!r} inconsistent with '
                 f"counters (want {want_bhr:.6f})")
        if "est_log10_tuples" in n:
            estimated += 1
            if not isinstance(n["est_log10_tuples"], (int, float)):
                fail(f"node {nid} est_log10_tuples is not a number")
            dev = n.get("deviation_factor")
            if not isinstance(dev, (int, float)) or dev < 1.0:
                fail(f"node {nid} deviation_factor {dev!r}, expected >= 1")

    # Node rows exclude the sink, so per-node sums are bounded by (not
    # equal to) the run totals.
    for node_key, total_key in (("fires", "fires"),
                                ("tuples_in", "tuples_in"),
                                ("tuples_out", "tuples_out"),
                                ("dedup_hits", "dedup_hits"),
                                ("msgs_out", "msgs_sent"),
                                ("msgs_in", "msgs_delivered")):
        if sums[node_key] > totals[total_key]:
            fail(f"sum of node {node_key} ({sums[node_key]}) exceeds "
                 f"totals.{total_key} ({totals[total_key]})")
    if estimated == 0:
        fail("no node carries a cost-model estimate")

    for s in report["sccs"]:
        members = s.get("members")
        if not isinstance(members, list) or not members:
            fail(f'scc {s.get("id")!r} has no members')
        for m in members:
            if m not in seen_ids:
                fail(f'scc {s.get("id")} references unknown node {m}')
        if s.get("leader") not in seen_ids:
            fail(f'scc {s.get("id")} leader {s.get("leader")!r} unknown')
        if not isinstance(s.get("tree_depth"), int) or s["tree_depth"] < 1:
            fail(f'scc {s.get("id")} tree_depth {s.get("tree_depth")!r}, '
                 f"expected >= 1")

    print(f"check_trace: OK: profile with {len(nodes)} nodes "
          f"({estimated} estimated), {len(report['sccs'])} scc(s), "
          f"{totals['msgs_sent']} msgs")
    sys.exit(0)


LINEAGE_KINDS = {"edb", "rule", "union"}


def check_lineage(path):
    report = load(path)
    if report.get("schema") != "mpqe-lineage-v1":
        fail(f'schema is {report.get("schema")!r}, expected "mpqe-lineage-v1"')
    for key in ("stats", "records"):
        if key not in report:
            fail(f'top-level "{key}" missing')
    records = report["records"]
    if not isinstance(records, list) or not records:
        fail('"records" missing, not a list, or empty')

    by_id = {}
    for i, r in enumerate(records):
        rid = r.get("id")
        if not isinstance(rid, int) or rid < 0:
            fail(f"record {i} has bad id {rid!r}")
        if rid in by_id:
            fail(f"duplicate record id {rid}")
        by_id[rid] = r
        kind = r.get("kind")
        if kind not in LINEAGE_KINDS:
            fail(f"record {rid} has unknown kind {kind!r}")
        if not isinstance(r.get("depth"), int) or r["depth"] < 0:
            fail(f"record {rid} has bad depth {r.get('depth')!r}")
        if not isinstance(r.get("display"), str) or not r["display"]:
            fail(f"record {rid} lacks a display string")
        if not isinstance(r.get("values"), list):
            fail(f"record {rid} lacks a values list")
        if kind == "edb":
            # EDB facts are leaves of the DAG.
            if r.get("inputs"):
                fail(f"edb record {rid} has inputs {r['inputs']!r}")
            if r["depth"] != 0:
                fail(f"edb record {rid} has depth {r['depth']}, expected 0")
        else:
            inputs = r.get("inputs")
            if not isinstance(inputs, list) or not inputs:
                fail(f"derived record {rid} lacks a non-empty inputs list")
        if kind == "rule" and not isinstance(r.get("rule"), int):
            fail(f"rule record {rid} lacks an integer rule index")

    edb_facts = derived = max_depth = 0
    for rid, r in by_id.items():
        if r["kind"] == "edb":
            edb_facts += 1
            continue
        derived += 1
        max_depth = max(max_depth, r["depth"])
        for inp in r["inputs"]:
            if inp not in by_id:
                fail(f"record {rid} input {inp} does not resolve")
            if inp >= rid:
                fail(f"record {rid} input {inp} does not precede it "
                     f"(derivation DAG violated)")
        if "source" in r and r["source"] not in by_id:
            fail(f"record {rid} source {r['source']} does not resolve")
        want = 1 + max(by_id[inp]["depth"] for inp in r["inputs"])
        if r["depth"] != want:
            fail(f"record {rid} depth {r['depth']} != 1 + max input depth "
                 f"({want})")

    stats = report["stats"]
    for key, got in (("edb_facts", edb_facts), ("derived", derived),
                     ("max_depth", max_depth)):
        if stats.get(key) != got:
            fail(f"stats.{key} is {stats.get(key)!r}, records say {got}")

    print(f"check_trace: OK: lineage with {edb_facts} EDB fact(s), "
          f"{derived} derived record(s), max depth {max_depth}")
    sys.exit(0)


REQUIRED_FAMILIES = [
    "mpqe_plan_cache_hit",
    "mpqe_plan_cache_size",
    "mpqe_engine_session_latency_ns",
    "mpqe_engine_pool_queue_depth",
    "mpqe_msg_sent",
    "mpqe_msg_segment_rows",
]

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_labels(raw, lineno):
    labels = {}
    for m in LABEL_RE.finditer(raw or ""):
        labels[m.group(1)] = m.group(2)
    # Reject garbage the label regex silently skipped.
    stripped = LABEL_RE.sub("", raw or "").replace(",", "").strip()
    if stripped:
        fail(f"line {lineno}: unparseable label text {raw!r}")
    return labels


def histogram_base(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check_prometheus(scrape_path, queries_path):
    try:
        with open(scrape_path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot load {scrape_path}: {e}")

    types = {}          # family -> counter|gauge|histogram
    seen_series = set()
    samples = 0
    # (histogram family, frozenset(labels minus le)) -> list of
    # (le, count) in file order, plus seen _sum/_count markers.
    hist_buckets = {}
    hist_parts = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family, mtype = parts[2], parts[3] if len(parts) > 3 else ""
                if mtype not in ("counter", "gauge", "histogram"):
                    fail(f"line {lineno}: family {family} has bad type "
                         f"{mtype!r}")
                if family in types:
                    fail(f"line {lineno}: duplicate TYPE for {family}")
                types[family] = mtype
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: unparseable sample {line!r}")
        name, raw_labels, raw_value = m.groups()
        labels = parse_labels(raw_labels, lineno)
        try:
            value = float(raw_value)
        except ValueError:
            fail(f"line {lineno}: {name} has non-numeric value "
                 f"{raw_value!r}")
        base, suffix = histogram_base(name)
        if base in types and types[base] == "histogram" and suffix:
            family, mtype = base, "histogram"
        elif name in types:
            family, mtype = name, types[name]
            suffix = ""
        else:
            fail(f"line {lineno}: sample {name} has no preceding TYPE")
        series = (name, frozenset(labels.items()))
        if series in seen_series:
            fail(f"line {lineno}: duplicate series {name}{labels!r}")
        seen_series.add(series)
        if mtype in ("counter", "histogram") and value < 0:
            fail(f"line {lineno}: {mtype} {name} is negative ({value})")
        samples += 1

        if mtype == "histogram":
            key = (family,
                   frozenset(kv for kv in labels.items() if kv[0] != "le"))
            if suffix == "_bucket":
                le = labels.get("le")
                if le is None:
                    fail(f"line {lineno}: {name} bucket lacks an le label")
                hist_buckets.setdefault(key, []).append((lineno, le, value))
            else:
                hist_parts.setdefault(key, set()).add(suffix)

    for (family, labelset), buckets in hist_buckets.items():
        prev = -1.0
        for lineno, le, value in buckets:
            if value < prev:
                fail(f"line {lineno}: {family} bucket le={le} count {value} "
                     f"below preceding bucket ({prev}) — not cumulative")
            prev = value
        last_le = buckets[-1][1]
        if last_le != "+Inf":
            fail(f"{family}{dict(labelset)!r} last bucket is le={last_le}, "
                 f"expected +Inf")
        parts = hist_parts.get((family, labelset), set())
        for suffix in ("_sum", "_count"):
            if suffix not in parts:
                fail(f"{family}{dict(labelset)!r} lacks {family}{suffix}")

    missing = [f for f in REQUIRED_FAMILIES if f not in types]
    if missing:
        fail(f"required families missing from scrape: {missing} "
             f"(got {sorted(types)})")

    latency_count = None
    for line in text.splitlines():
        if line.startswith("mpqe_engine_session_latency_ns_count "):
            latency_count = float(line.split()[1])

    if queries_path is not None:
        log = load(queries_path)
        if log.get("schema") != "mpqe-querylog-v1":
            fail(f'query log schema is {log.get("schema")!r}, expected '
                 f'"mpqe-querylog-v1"')
        entries = log.get("queries")
        if not isinstance(entries, list):
            fail('query log lacks a "queries" list')
        ids = set()
        for i, q in enumerate(entries):
            qid = q.get("query_id")
            if not isinstance(qid, int) or qid < 1:
                fail(f"query log entry {i} has bad query_id {qid!r} "
                     f"(engine ids start at 1)")
            if qid in ids:
                fail(f"duplicate query_id {qid} in query log")
            ids.add(qid)
            if not q.get("text_hash"):
                fail(f"query {qid} lacks a text_hash")
            if "status" not in q:
                fail(f"query {qid} lacks a status")
        completed = log.get("completed")
        if not isinstance(completed, int) or completed < len(entries):
            fail(f"query log completed={completed!r} is less than the "
                 f"{len(entries)} retained entries")
        if latency_count is None:
            fail("scrape lacks mpqe_engine_session_latency_ns_count, "
                 "cannot correlate with the query log")
        if completed != int(latency_count):
            fail(f"query log says {completed} completed sessions but the "
                 f"scrape recorded {int(latency_count)} session latencies")

    correlated = (f", correlated with query log ({queries_path})"
                  if queries_path else "")
    print(f"check_trace: OK: prometheus scrape with {len(types)} families, "
          f"{samples} samples, {len(hist_buckets)} histogram series"
          f"{correlated}")
    sys.exit(0)


FLIGHT_EVENT_TYPES = {
    "session_start", "session_end", "send", "deliver", "node_fire",
    "phase", "termination", "stall", "watchdog_dump", "plan_prepare",
}


def check_flight(path, expect_stall):
    dump = load(path)
    if dump.get("schema") != "mpqe-flightdump-v1":
        fail(f'schema is {dump.get("schema")!r}, '
             f'expected "mpqe-flightdump-v1"')
    reason = dump.get("reason")
    if reason not in ("stall", "manual"):
        fail(f"reason is {reason!r}, expected 'stall' or 'manual'")
    if expect_stall and reason != "stall":
        fail(f"--expect-stall but reason is {reason!r} "
             f"(the watchdog never fired)")
    for key in ("query_id", "delivered", "in_flight"):
        v = dump.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{key} is {v!r}, expected a non-negative int")
    for key in ("stalled_ms", "stuck_scc"):
        if not isinstance(dump.get(key), int):
            fail(f"{key} is {dump.get(key)!r}, expected an int")
    for key in ("sccs", "nodes", "events"):
        if not isinstance(dump.get(key), list):
            fail(f'top-level "{key}" missing or not a list')

    sccs = {}
    for i, s in enumerate(dump["sccs"]):
        sid = s.get("scc")
        if not isinstance(sid, int):
            fail(f"scc row {i} has bad id {sid!r}")
        if sid in sccs:
            fail(f"duplicate scc row {sid}")
        sccs[sid] = s
        if not isinstance(s.get("queue_depth"), int) or s["queue_depth"] < 0:
            fail(f"scc {sid} queue_depth {s.get('queue_depth')!r} bad")
        if s.get("nontrivial"):
            if not isinstance(s.get("members"), int) or s["members"] < 1:
                fail(f"nontrivial scc {sid} has members "
                     f"{s.get('members')!r}, expected >= 1")
            for key in ("wave", "waves_started", "waiting_for", "idleness"):
                if not isinstance(s.get(key), int):
                    fail(f"nontrivial scc {sid} lacks protocol field {key}")
            for key in ("wave_active", "all_confirmed", "open_work",
                        "notice_pending"):
                if not isinstance(s.get(key), bool):
                    fail(f"nontrivial scc {sid} lacks protocol flag {key}")

    node_ids = set()
    for i, n in enumerate(dump["nodes"]):
        nid = n.get("node")
        if not isinstance(nid, int) or nid < 0:
            fail(f"node row {i} has bad id {nid!r}")
        if nid in node_ids:
            fail(f"duplicate node row {nid}")
        node_ids.add(nid)
        if not isinstance(n.get("label"), str) or not n["label"]:
            fail(f"node {nid} lacks a label")
        if n.get("scc") not in sccs:
            fail(f"node {nid} references unknown scc {n.get('scc')!r}")
        for key in ("queue_depth", "fires", "sends", "deliveries"):
            v = n.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"node {nid}.{key} is {v!r}, expected non-negative int")

    prev_ts = -1
    for i, e in enumerate(dump["events"]):
        if e.get("type") not in FLIGHT_EVENT_TYPES:
            fail(f"event {i} has unknown type {e.get('type')!r}")
        ts = e.get("ts_ns")
        if not isinstance(ts, int) or ts < 0:
            fail(f"event {i} has bad ts_ns {ts!r}")
        if ts < prev_ts:
            fail(f"event {i} ts_ns {ts} precedes event {i - 1} ({prev_ts}) "
                 f"— events not time-ordered")
        prev_ts = ts
        for key in ("rows", "aux"):
            v = e.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"event {i}.{key} is {v!r}, expected non-negative int")

    if reason == "stall":
        if not dump["events"]:
            fail("stall dump retains no events — the black box is empty")
        stuck = dump["stuck_scc"]
        if stuck < 0:
            fail("stall dump does not name a stuck_scc")
        row = sccs.get(stuck)
        if row is None:
            fail(f"stuck_scc {stuck} has no scc row")
        if not row.get("nontrivial"):
            fail(f"stuck_scc {stuck} is trivial — cannot wedge the Fig. 2 "
                 f"protocol")
        stuck_nodes = [n for n in dump["nodes"] if n.get("scc") == stuck]
        if not stuck_nodes:
            fail(f"stuck_scc {stuck} has no node rows")
        queued = row["queue_depth"] + sum(
            n["queue_depth"] for n in stuck_nodes)
        if queued == 0:
            fail(f"stuck_scc {stuck} holds no queued work — nothing is "
                 f"actually wedged")

    print(f"check_trace: OK: flight dump ({reason}) for query "
          f"{dump['query_id']}: {len(dump['events'])} event(s), "
          f"{len(sccs)} scc row(s), {len(node_ids)} node row(s), "
          f"stuck_scc={dump['stuck_scc']}")
    sys.exit(0)


def main():
    args = sys.argv[1:]
    if args and args[0] == "--profile":
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_profile(args[1])
        return
    if args and args[0] == "--lineage":
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_lineage(args[1])
        return
    if args and args[0] == "--prometheus":
        queries_path = None
        if len(args) == 4 and args[2] == "--queries":
            queries_path = args[3]
        elif len(args) != 2:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_prometheus(args[1], queries_path)
        return
    if args and args[0] == "--flight":
        expect_stall = "--expect-stall" in args[2:]
        rest = [a for a in args[1:] if a != "--expect-stall"]
        if len(rest) != 1:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_flight(rest[0], expect_stall)
        return
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]

    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail('"traceEvents" missing, not a list, or empty')

    flow_starts = {}  # id -> ts
    flow_ends = {}
    named_threads = set()
    used_threads = set()
    counts = Counter()
    segment_events = 0

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"event {i} has unknown ph {ph!r}")
        counts[ph] += 1
        if "name" not in e:
            fail(f"event {i} ({ph}) lacks a name")
        if "pid" not in e:
            fail(f"event {i} ({ph}) lacks a pid")

        if ph == "M":
            if e["name"] == "thread_name":
                named_threads.add((e["pid"], e.get("tid")))
            continue

        if "ts" not in e:
            fail(f"event {i} ({ph}) lacks ts")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            fail(f"event {i} has bad ts {e['ts']!r}")
        used_threads.add((e["pid"], e.get("tid")))

        if (ph in ("s", "X") and
                e["name"] in ("msg:tuple_segment", "tuple_segment")):
            rows = (e.get("args") or {}).get("rows")
            if not isinstance(rows, int) or rows < 1:
                fail(f"segment event {i} ({e['name']}) has bad args.rows "
                     f"{rows!r}, expected an int >= 1")
            segment_events += 1

        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"X event {i} ({e['name']}) has bad dur {dur!r}")
        elif ph in ("s", "f"):
            fid = e.get("id")
            if fid is None:
                fail(f"flow event {i} ({e['name']}) lacks an id")
            bucket = flow_starts if ph == "s" else flow_ends
            if fid in bucket:
                fail(f"duplicate flow {ph} id {fid}")
            bucket[fid] = e["ts"]
        elif ph == "C":
            if not isinstance(e.get("args"), dict) or not e["args"]:
                fail(f"counter event {i} ({e['name']}) lacks args values")

    unmatched_starts = set(flow_starts) - set(flow_ends)
    unmatched_ends = set(flow_ends) - set(flow_starts)
    if unmatched_starts:
        fail(f"{len(unmatched_starts)} flow start(s) without an end, "
             f"e.g. {sorted(unmatched_starts)[0]}")
    if unmatched_ends:
        fail(f"{len(unmatched_ends)} flow end(s) without a start, "
             f"e.g. {sorted(unmatched_ends)[0]}")
    for fid, ts in flow_starts.items():
        if flow_ends[fid] < ts:
            fail(f"flow {fid} ends at {flow_ends[fid]} before its "
                 f"start at {ts}")

    unnamed = used_threads - named_threads
    if unnamed:
        fail(f"{len(unnamed)} thread(s) without thread_name metadata, "
             f"e.g. {sorted(unnamed)[0]}")

    summary = " ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"check_trace: OK: {len(events)} events ({summary}), "
          f"{len(flow_starts)} matched flows, "
          f"{segment_events} segment envelope(s)")
    sys.exit(0)


if __name__ == "__main__":
    main()
