#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by TraceExporter.

Usage: check_trace.py trace.json

Checks (stdlib only, exit 0 = valid, 1 = invalid):
  * the file parses as JSON and has a non-empty "traceEvents" list;
  * every event carries the keys its phase type requires;
  * duration events ("X") have dur >= 0;
  * flow starts ("s") and ends ("f") pair up one-to-one by id, and
    every flow end's timestamp is >= its start's (send happens-before
    delivery);
  * metadata ("M") names every thread that appears in events.
"""

import json
import sys
from collections import Counter

KNOWN_PHASES = {"X", "s", "f", "i", "C", "M", "B", "E"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]

    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail('"traceEvents" missing, not a list, or empty')

    flow_starts = {}  # id -> ts
    flow_ends = {}
    named_threads = set()
    used_threads = set()
    counts = Counter()

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"event {i} has unknown ph {ph!r}")
        counts[ph] += 1
        if "name" not in e:
            fail(f"event {i} ({ph}) lacks a name")
        if "pid" not in e:
            fail(f"event {i} ({ph}) lacks a pid")

        if ph == "M":
            if e["name"] == "thread_name":
                named_threads.add((e["pid"], e.get("tid")))
            continue

        if "ts" not in e:
            fail(f"event {i} ({ph}) lacks ts")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            fail(f"event {i} has bad ts {e['ts']!r}")
        used_threads.add((e["pid"], e.get("tid")))

        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"X event {i} ({e['name']}) has bad dur {dur!r}")
        elif ph in ("s", "f"):
            fid = e.get("id")
            if fid is None:
                fail(f"flow event {i} ({e['name']}) lacks an id")
            bucket = flow_starts if ph == "s" else flow_ends
            if fid in bucket:
                fail(f"duplicate flow {ph} id {fid}")
            bucket[fid] = e["ts"]
        elif ph == "C":
            if not isinstance(e.get("args"), dict) or not e["args"]:
                fail(f"counter event {i} ({e['name']}) lacks args values")

    unmatched_starts = set(flow_starts) - set(flow_ends)
    unmatched_ends = set(flow_ends) - set(flow_starts)
    if unmatched_starts:
        fail(f"{len(unmatched_starts)} flow start(s) without an end, "
             f"e.g. {sorted(unmatched_starts)[0]}")
    if unmatched_ends:
        fail(f"{len(unmatched_ends)} flow end(s) without a start, "
             f"e.g. {sorted(unmatched_ends)[0]}")
    for fid, ts in flow_starts.items():
        if flow_ends[fid] < ts:
            fail(f"flow {fid} ends at {flow_ends[fid]} before its "
                 f"start at {ts}")

    unnamed = used_threads - named_threads
    if unnamed:
        fail(f"{len(unnamed)} thread(s) without thread_name metadata, "
             f"e.g. {sorted(unnamed)[0]}")

    summary = " ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"check_trace: OK: {len(events)} events ({summary}), "
          f"{len(flow_starts)} matched flows")
    sys.exit(0)


if __name__ == "__main__":
    main()
