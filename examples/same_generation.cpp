// Same-generation with a bound first argument — the classic workload
// where sideways information passing (class d) pays off: only the
// cousins of the queried person are explored, not the whole sg
// relation. Compares the paper's greedy strategy against the
// full-relation (no-sips, McKay-Shapiro-style) mode.
//
//   $ ./same_generation [depth]
//
// Builds a complete binary family tree of the given depth.

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace {

mpqe::Status BuildFamily(mpqe::Database& db, int depth) {
  int64_t n = (1LL << depth) - 1;  // complete binary tree
  for (int64_t child = 1; child < n; ++child) {
    MPQE_RETURN_IF_ERROR(
        db.InsertFact("par", {mpqe::Value::Int(child),
                              mpqe::Value::Int((child - 1) / 2)})
            .status());
  }
  for (int64_t person = 0; person < n; ++person) {
    MPQE_RETURN_IF_ERROR(
        db.InsertFact("person", {mpqe::Value::Int(person)}).status());
  }
  return mpqe::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  int depth = argc > 1 ? std::atoi(argv[1]) : 6;
  int64_t n = (1LL << depth) - 1;
  int64_t who = n - 1;  // a leaf in the last generation

  for (const char* strategy : {"greedy", "no_sips"}) {
    mpqe::Database db;
    if (auto s = BuildFamily(db, depth); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    mpqe::Program program;
    std::string text = mpqe::workload::SameGenerationProgram(who);
    if (auto s = mpqe::ParseInto(text, program, db); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }

    mpqe::EvaluationOptions options;
    options.strategy = strategy;
    auto result = mpqe::Evaluate(program, db, options);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cout << "strategy=" << strategy << "  sg(" << who << ", W): "
              << result->answers.size() << " answers"
              << "  stored_tuples=" << result->counters.stored_tuples
              << "  tuple_messages="
              << result->message_stats.Count(mpqe::MessageKind::kTuple)
              << "\n";
  }
  std::cout << "\n(The greedy run touches only " << who
            << "'s generation; the no-sips run computes the entire "
               "same-generation relation.)\n";
  return 0;
}
