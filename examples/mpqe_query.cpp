// mpqe_query: command-line Datalog evaluator over the message-passing
// engine. Reads a program (facts + rules + query) from a file or
// stdin, compiles it into one PreparedQuery via the engine lifecycle
// (engine/engine.h), runs it, and prints answers plus telemetry.
//
//   $ ./mpqe_query program.dl
//   $ ./mpqe_query --strategy=no_sips --scheduler=threaded program.dl
//   $ echo 'e(1,2). p(X,Y) :- e(X,Y). ?- p(1,W).' | ./mpqe_query -
//   $ ./mpqe_query --repeat=100 --stats program.dl   # plan-cache hits
//
// Options:
//   --strategy=<greedy|greedy_no_e|left_to_right|qual_tree|
//               qual_tree_or_greedy|no_sips>
//   --scheduler=<deterministic|random|threaded>
//   --seed=<n>         (random scheduler)
//   --workers=<n>      (threaded scheduler)
//   --repeat=<n>       prepare + run the query n times through the
//                      engine's plan cache (run 1 compiles, runs 2..n
//                      hit) and report per-run latency percentiles and
//                      the cache counters
//   --coalesce         coalesce goal nodes (single-processor variant)
//   --batch            package emitted messages per destination
//   --load=rel=file    bulk-load TSV facts into relation `rel`
//                      (repeatable; loaded before evaluation)
//   --graph            print the rule/goal graph before evaluating
//   --dot              print the graph in Graphviz DOT and exit
//   --stats            print message/engine statistics, the plan-cache
//                      counters, the session latency histogram, and the
//                      engine query log (one JSON entry per run:
//                      query id, text hash, plan reuse, rows, timings)
//   --metrics-out=<f>  write the engine-wide telemetry registry as
//                      Prometheus text exposition 0.0.4 to <f>
//                      (validate with scripts/check_trace.py
//                      --prometheus)
//   --slow-query-ms=<n>  flag runs over n ms as slow in the query log
//                      (default 100)
//   --explain          print the adorned plan with §4.3 cost estimates
//                      (sized from the EDB) and exit without running
//   --explain=analyze  run with the profiler, then print the plan with
//                      estimates and actuals side by side (suppresses
//                      the answer listing)
//   --profile-out=<f>  run with the profiler and write the
//                      mpqe-profile-v1 JSON report to <f>
//                      (validate with scripts/check_trace.py --profile)
//   --deviation-factor=<x>  flag nodes whose actuals deviate from the
//                      estimate by more than x (default 10)
//   --why='p(a,b)'     run with lineage recording and print the minimal
//                      proof tree for the matching answer (leaves are
//                      EDB facts; `_` matches anything); suppresses the
//                      answer listing; exits 1 if nothing matches
//   --lineage-out=<f>  run with lineage recording and write the
//                      mpqe-lineage-v1 JSON derivation DAG to <f>
//                      (validate with scripts/check_trace.py --lineage)
//   --log-level=<l>    engine log level (debug|info|warning|error|off;
//                      also settable via MPQE_LOG_LEVEL)
//   --progress-interval-ms=<n>  threaded-scheduler stall heartbeat
//   --watchdog-ms=<n>  stall-watchdog threshold for the threaded
//                      scheduler: no delivery progress for n ms
//                      snapshots a flight-recorder diagnostic bundle
//                      (0 keeps the engine default of 30s)
//   --flight-dump=<f>  after the run, write the engine's flight dump
//                      (the latest watchdog bundle, or a manual
//                      snapshot of the black box) as mpqe-flightdump-v1
//                      JSON to <f> (validate with scripts/check_trace.py
//                      --flight)
//   --park-scc         fault injection: park one member of the first
//                      nontrivial SCC for --park-ms on its first work
//                      message (wedges the SCC; pairs with
//                      --watchdog-ms to demo/test the watchdog)
//   --park-ms=<n>      park duration (default 1000)

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "engine/evaluator.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/telemetry.h"
#include "relational/io.h"
#include "graph/rule_goal_graph.h"

namespace {

int Fail(const std::string& message) {
  std::cerr << "mpqe_query: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string strategy = "greedy";
  std::string scheduler = "deterministic";
  uint64_t seed = 1;
  int workers = 4;
  int repeat = 1;
  bool show_graph = false, show_dot = false, show_stats = false;
  bool coalesce = false;
  bool batch = false;
  bool explain = false, analyze = false;
  double deviation_factor = 10.0;
  std::string metrics_out;
  int slow_query_ms = 100;
  std::string profile_out;
  std::string why;
  std::string lineage_out;
  std::string log_level;
  int progress_interval_ms = 0;
  int watchdog_ms = 0;
  std::string flight_dump_out;
  bool park_scc = false;
  int park_ms = 1000;
  std::vector<std::pair<std::string, std::string>> loads;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--strategy=", 0) == 0) {
      strategy = value("--strategy=");
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      scheduler = value("--scheduler=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stoi(value("--workers="));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::stoi(value("--repeat="));
      if (repeat < 1) return Fail("--repeat must be >= 1");
    } else if (arg == "--coalesce") {
      coalesce = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg.rfind("--load=", 0) == 0) {
      std::string spec = value("--load=");
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Fail("--load expects rel=file: " + arg);
      }
      loads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--graph") {
      show_graph = true;
    } else if (arg == "--dot") {
      show_dot = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain=analyze") {
      explain = analyze = true;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = value("--metrics-out=");
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      slow_query_ms = std::stoi(value("--slow-query-ms="));
      if (slow_query_ms < 0) return Fail("--slow-query-ms must be >= 0");
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = value("--profile-out=");
    } else if (arg.rfind("--deviation-factor=", 0) == 0) {
      deviation_factor = std::stod(value("--deviation-factor="));
    } else if (arg.rfind("--why=", 0) == 0) {
      why = value("--why=");
    } else if (arg.rfind("--lineage-out=", 0) == 0) {
      lineage_out = value("--lineage-out=");
    } else if (arg.rfind("--log-level=", 0) == 0) {
      log_level = value("--log-level=");
    } else if (arg.rfind("--progress-interval-ms=", 0) == 0) {
      progress_interval_ms = std::stoi(value("--progress-interval-ms="));
    } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
      watchdog_ms = std::stoi(value("--watchdog-ms="));
      if (watchdog_ms < 0) return Fail("--watchdog-ms must be >= 0");
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      flight_dump_out = value("--flight-dump=");
    } else if (arg == "--park-scc") {
      park_scc = true;
    } else if (arg.rfind("--park-ms=", 0) == 0) {
      park_ms = std::stoi(value("--park-ms="));
      if (park_ms < 0) return Fail("--park-ms must be >= 0");
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Fail("unknown option: " + arg);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Fail("usage: mpqe_query [options] <file|->");

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) return Fail("cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  auto unit = mpqe::Parse(text);
  if (!unit.ok()) return Fail(unit.status().ToString());
  for (const auto& [rel, file] : loads) {
    auto stats = mpqe::LoadRelationTsvFile(unit->database, rel, file);
    if (!stats.ok()) return Fail(stats.status().ToString());
    std::cerr << "loaded " << stats->rows << " rows into " << rel << " ("
              << stats->duplicates << " duplicates)\n";
  }

  // Parse the --why atom before the database moves into the snapshot
  // (the symbols it interns are shared with the program's).
  std::optional<mpqe::LineageQuery> why_query;
  if (!why.empty()) {
    auto parsed = mpqe::ParseLineageQuery(why, unit->database.symbols());
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    why_query = *std::move(parsed);
  }

  // The engine lifecycle: snapshot the EDB, compile the program into
  // one PreparedQuery (cached), run sessions over it.
  mpqe::MetricsRegistry engine_metrics;
  mpqe::EngineOptions engine_options;
  engine_options.metrics = &engine_metrics;
  engine_options.telemetry_options.slow_query_ns =
      static_cast<uint64_t>(slow_query_ms) * 1'000'000;
  mpqe::Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(unit->database), path);
  const mpqe::SymbolTable& symbols = snapshot->db().symbols();

  mpqe::PlanOptions plan_options;
  plan_options.strategy = strategy;
  plan_options.graph_options.coalesce_nodes = coalesce;

  auto plan = engine.Prepare(snapshot, unit->program, plan_options);
  if (!plan.ok()) return Fail(plan.status().ToString());

  if (show_dot) {
    std::cout << GraphToDot((*plan)->graph(), &symbols);
    return 0;
  }
  if (show_graph) {
    std::cout << (*plan)->graph().ToString(&symbols) << "\n";
  }
  if (explain && !analyze) {
    // Plain EXPLAIN: estimates only, no evaluation.
    std::cout << mpqe::ExplainPlan((*plan)->graph(), (*plan)->cost_params(),
                                   nullptr, &symbols);
    return 0;
  }

  bool profiling = analyze || !profile_out.empty();
  mpqe::SessionOptions session_options;
  session_options.batch_messages = batch;
  session_options.seed = seed;
  session_options.workers = workers;
  session_options.profile = profiling;
  bool lineage = !why.empty() || !lineage_out.empty();
  session_options.lineage = lineage;
  session_options.log_level = log_level;
  session_options.progress_interval_ms = progress_interval_ms;
  session_options.watchdog_stall_ms = watchdog_ms;
  if (park_scc) {
    // Park a member of the first nontrivial SCC — a non-leader where
    // one exists, so the wedge shows up as protocol state at the
    // leader rather than a parked leader.
    const mpqe::RuleGoalGraph& graph = (*plan)->graph();
    mpqe::NodeId pick = mpqe::kNoNode;
    for (mpqe::NodeId id = 0; id < static_cast<mpqe::NodeId>(graph.size());
         ++id) {
      const mpqe::GraphNode& n = graph.node(id);
      if (n.scc_is_trivial) continue;
      if (pick == mpqe::kNoNode) pick = id;
      if (!n.is_leader) {
        pick = id;
        break;
      }
    }
    if (pick == mpqe::kNoNode) {
      return Fail("--park-scc: the plan has no nontrivial SCC to park");
    }
    session_options.fault_park_node = pick;
    session_options.fault_park_ms = park_ms;
    std::cerr << "parking node " << pick << " (scc "
              << graph.node(pick).scc_id << ") for " << park_ms << "ms\n";
  }
  auto scheduler_kind = mpqe::SchedulerKindFromName(scheduler);
  if (!scheduler_kind.ok()) return Fail(scheduler_kind.status().ToString());
  session_options.scheduler = *scheduler_kind;

  // Run 1 pays the cold compile above; with --repeat every later
  // iteration re-Prepares (a plan-cache hit: no parse, no adornment,
  // no sips, no graph build) and runs a fresh session over the same
  // compiled plan.
  std::optional<mpqe::EvaluationResult> result;
  for (int run = 0; run < repeat; ++run) {
    if (run > 0) {
      plan = engine.Prepare(snapshot, unit->program, plan_options);
      if (!plan.ok()) return Fail(plan.status().ToString());
    }
    auto session = engine.CreateSession(*plan, session_options);
    if (!session.ok()) return Fail(session.status().ToString());
    auto run_result = (*session)->Run();
    if (!run_result.ok()) return Fail(run_result.status().ToString());
    if (!result.has_value()) result = *std::move(run_result);
  }

  if (analyze) {
    mpqe::ExplainOptions explain_options;
    explain_options.analyze = true;
    explain_options.deviation_factor = deviation_factor;
    std::cout << mpqe::ExplainPlan((*plan)->graph(), (*plan)->cost_params(),
                                   result->profile.get(), &symbols,
                                   explain_options);
  } else if (why_query.has_value()) {
    // WHY: print the minimal proof tree instead of the answer listing.
    auto matches = result->lineage->Match(*why_query);
    if (matches.empty()) {
      std::cerr << "no derivation matches " << why << " ("
                << result->lineage->derived << " derived tuples, "
                << result->answers.size() << " answer(s))\n";
      return 1;
    }
    std::cout << result->lineage->FormatProof(matches.front()->id);
    if (matches.size() > 1) {
      std::cerr << matches.size() << " tuples match " << why
                << "; showing the shallowest proof (depth "
                << matches.front()->depth << ")\n";
    }
  } else {
    for (const mpqe::Tuple& t : result->answers.SortedTuples()) {
      std::cout << mpqe::TupleToString(t, &symbols) << "\n";
    }
  }
  if (!lineage_out.empty()) {
    std::ofstream out(lineage_out);
    if (!out) return Fail("cannot write " + lineage_out);
    out << result->lineage->ToJson();
    std::cerr << "lineage written to " << lineage_out << " ("
              << result->lineage->records.size() << " records)\n";
  }
  if (!profile_out.empty()) {
    std::ofstream out(profile_out);
    if (!out) return Fail("cannot write " + profile_out);
    out << result->profile->ToJson();
    std::cerr << "profile written to " << profile_out << "\n";
  }
  std::cerr << result->answers.size() << " answer(s)\n";
  if (show_stats || repeat > 1) {
    std::cerr << engine.plan_cache_stats().ToString() << "\n"
              << "session latency: "
              << engine_metrics.GetHistogram("engine/session_latency_ns")
                     .ToString()
              << "\n";
  }
  if (show_stats) {
    std::cerr << "messages: " << result->message_stats.ToString() << "\n"
              << "counters: " << result->counters.ToString() << "\n"
              << "graph: nodes=" << result->graph_stats.node_count
              << " sccs=" << result->graph_stats.nontrivial_sccs
              << " cycle_edges=" << result->graph_stats.cycle_refs << "\n"
              << "ended_by_protocol: "
              << (result->ended_by_protocol ? "yes" : "no") << "\n";
    if (engine.telemetry() != nullptr) {
      std::cerr << "query log: " << engine.telemetry()->QueryLogJson();
    }
  }
  if (!flight_dump_out.empty()) {
    std::ofstream out(flight_dump_out);
    if (!out) return Fail("cannot write " + flight_dump_out);
    out << engine.FlightDumpJson();
    std::cerr << "flight dump written to " << flight_dump_out << " ("
              << engine.watchdog_dumps() << " watchdog dump(s))\n";
  }
  if (!metrics_out.empty()) {
    if (engine.telemetry() == nullptr) {
      return Fail("--metrics-out requires engine telemetry");
    }
    engine.telemetry()->SampleNow();
    std::ofstream out(metrics_out);
    if (!out) return Fail("cannot write " + metrics_out);
    out << mpqe::ToPrometheusText(engine.telemetry()->registry());
    std::cerr << "metrics written to " << metrics_out << "\n";
  }
  return 0;
}
