// mpqe_query: command-line Datalog evaluator over the message-passing
// engine. Reads a program (facts + rules + query) from a file or
// stdin, evaluates it, and prints answers plus telemetry.
//
//   $ ./mpqe_query program.dl
//   $ ./mpqe_query --strategy=no_sips --scheduler=threaded program.dl
//   $ echo 'e(1,2). p(X,Y) :- e(X,Y). ?- p(1,W).' | ./mpqe_query -
//
// Options:
//   --strategy=<greedy|greedy_no_e|left_to_right|qual_tree|
//               qual_tree_or_greedy|no_sips>
//   --scheduler=<deterministic|random|threaded>
//   --seed=<n>         (random scheduler)
//   --workers=<n>      (threaded scheduler)
//   --coalesce         coalesce goal nodes (single-processor variant)
//   --batch            package emitted messages per destination
//   --load=rel=file    bulk-load TSV facts into relation `rel`
//                      (repeatable; loaded before evaluation)
//   --graph            print the rule/goal graph before evaluating
//   --dot              print the graph in Graphviz DOT and exit
//   --stats            print message/engine statistics
//   --explain          print the adorned plan with §4.3 cost estimates
//                      (sized from the EDB) and exit without running
//   --explain=analyze  run with the profiler, then print the plan with
//                      estimates and actuals side by side (suppresses
//                      the answer listing)
//   --profile-out=<f>  run with the profiler and write the
//                      mpqe-profile-v1 JSON report to <f>
//                      (validate with scripts/check_trace.py --profile)
//   --deviation-factor=<x>  flag nodes whose actuals deviate from the
//                      estimate by more than x (default 10)
//   --why='p(a,b)'     run with lineage recording and print the minimal
//                      proof tree for the matching answer (leaves are
//                      EDB facts; `_` matches anything); suppresses the
//                      answer listing; exits 1 if nothing matches
//   --lineage-out=<f>  run with lineage recording and write the
//                      mpqe-lineage-v1 JSON derivation DAG to <f>
//                      (validate with scripts/check_trace.py --lineage)
//   --log-level=<l>    engine log level (debug|info|warning|error|off;
//                      also settable via MPQE_LOG_LEVEL)
//   --progress-interval-ms=<n>  threaded-scheduler stall heartbeat

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "obs/explain.h"
#include "relational/io.h"
#include "graph/rule_goal_graph.h"
#include "sips/cost_model.h"
#include "sips/strategy.h"

namespace {

int Fail(const std::string& message) {
  std::cerr << "mpqe_query: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string strategy = "greedy";
  std::string scheduler = "deterministic";
  uint64_t seed = 1;
  int workers = 4;
  bool show_graph = false, show_dot = false, show_stats = false;
  bool coalesce = false;
  bool batch = false;
  bool explain = false, analyze = false;
  double deviation_factor = 10.0;
  std::string profile_out;
  std::string why;
  std::string lineage_out;
  std::string log_level;
  int progress_interval_ms = 0;
  std::vector<std::pair<std::string, std::string>> loads;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--strategy=", 0) == 0) {
      strategy = value("--strategy=");
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      scheduler = value("--scheduler=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stoi(value("--workers="));
    } else if (arg == "--coalesce") {
      coalesce = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg.rfind("--load=", 0) == 0) {
      std::string spec = value("--load=");
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Fail("--load expects rel=file: " + arg);
      }
      loads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--graph") {
      show_graph = true;
    } else if (arg == "--dot") {
      show_dot = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain=analyze") {
      explain = analyze = true;
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = value("--profile-out=");
    } else if (arg.rfind("--deviation-factor=", 0) == 0) {
      deviation_factor = std::stod(value("--deviation-factor="));
    } else if (arg.rfind("--why=", 0) == 0) {
      why = value("--why=");
    } else if (arg.rfind("--lineage-out=", 0) == 0) {
      lineage_out = value("--lineage-out=");
    } else if (arg.rfind("--log-level=", 0) == 0) {
      log_level = value("--log-level=");
    } else if (arg.rfind("--progress-interval-ms=", 0) == 0) {
      progress_interval_ms = std::stoi(value("--progress-interval-ms="));
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Fail("unknown option: " + arg);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Fail("usage: mpqe_query [options] <file|->");

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) return Fail("cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  auto unit = mpqe::Parse(text);
  if (!unit.ok()) return Fail(unit.status().ToString());
  for (const auto& [rel, file] : loads) {
    auto stats = mpqe::LoadRelationTsvFile(unit->database, rel, file);
    if (!stats.ok()) return Fail(stats.status().ToString());
    std::cerr << "loaded " << stats->rows << " rows into " << rel << " ("
              << stats->duplicates << " duplicates)\n";
  }
  if (auto s = unit->program.Validate(&unit->database); !s.ok()) {
    return Fail(s.ToString());
  }

  mpqe::GraphBuildOptions graph_options;
  graph_options.coalesce_nodes = coalesce;
  bool profiling = analyze || !profile_out.empty();

  // EXPLAIN and the profile report need the graph in hand, so build it
  // here and evaluate over it instead of letting Evaluate rebuild.
  std::unique_ptr<mpqe::RuleGoalGraph> graph;
  if (show_graph || show_dot || explain || profiling) {
    auto strat = mpqe::MakeStrategyByName(strategy);
    if (!strat.ok()) return Fail(strat.status().ToString());
    auto built =
        mpqe::RuleGoalGraph::Build(unit->program, **strat, graph_options);
    if (!built.ok()) return Fail(built.status().ToString());
    graph = std::move(*built);
    if (show_dot) {
      std::cout << GraphToDot(*graph, &unit->database.symbols());
      return 0;
    }
    if (show_graph) {
      std::cout << graph->ToString(&unit->database.symbols()) << "\n";
    }
  }

  if (explain && !analyze) {
    // Plain EXPLAIN: estimates only, no evaluation.
    std::cout << mpqe::ExplainPlan(
        *graph,
        mpqe::CostModelParamsFromDatabase(unit->program, unit->database),
        nullptr, &unit->database.symbols());
    return 0;
  }

  mpqe::EvaluationOptions options;
  options.graph_options = graph_options;
  options.batch_messages = batch;
  options.strategy = strategy;
  options.seed = seed;
  options.workers = workers;
  options.profile = profiling;
  bool lineage = !why.empty() || !lineage_out.empty();
  options.lineage = lineage;
  options.log_level = log_level;
  options.progress_interval_ms = progress_interval_ms;
  auto scheduler_kind = mpqe::SchedulerKindFromName(scheduler);
  if (!scheduler_kind.ok()) return Fail(scheduler_kind.status().ToString());
  options.scheduler = *scheduler_kind;

  // Parse the --why atom before running so a malformed query fails
  // fast (the symbols it interns are shared with the program's).
  std::optional<mpqe::LineageQuery> why_query;
  if (!why.empty()) {
    auto parsed = mpqe::ParseLineageQuery(why, unit->database.symbols());
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    why_query = *std::move(parsed);
  }

  auto result =
      graph != nullptr
          ? mpqe::EvaluateWithGraph(*graph, unit->database, options)
          : mpqe::Evaluate(unit->program, unit->database, options);
  if (!result.ok()) return Fail(result.status().ToString());

  if (analyze) {
    mpqe::ExplainOptions explain_options;
    explain_options.analyze = true;
    explain_options.deviation_factor = deviation_factor;
    std::cout << mpqe::ExplainPlan(
        *graph,
        mpqe::CostModelParamsFromDatabase(unit->program, unit->database),
        result->profile.get(), &unit->database.symbols(), explain_options);
  } else if (why_query.has_value()) {
    // WHY: print the minimal proof tree instead of the answer listing.
    auto matches = result->lineage->Match(*why_query);
    if (matches.empty()) {
      std::cerr << "no derivation matches " << why << " ("
                << result->lineage->derived << " derived tuples, "
                << result->answers.size() << " answer(s))\n";
      return 1;
    }
    std::cout << result->lineage->FormatProof(matches.front()->id);
    if (matches.size() > 1) {
      std::cerr << matches.size() << " tuples match " << why
                << "; showing the shallowest proof (depth "
                << matches.front()->depth << ")\n";
    }
  } else {
    for (const mpqe::Tuple& t : result->answers.SortedTuples()) {
      std::cout << mpqe::TupleToString(t, &unit->database.symbols()) << "\n";
    }
  }
  if (!lineage_out.empty()) {
    std::ofstream out(lineage_out);
    if (!out) return Fail("cannot write " + lineage_out);
    out << result->lineage->ToJson();
    std::cerr << "lineage written to " << lineage_out << " ("
              << result->lineage->records.size() << " records)\n";
  }
  if (!profile_out.empty()) {
    std::ofstream out(profile_out);
    if (!out) return Fail("cannot write " + profile_out);
    out << result->profile->ToJson();
    std::cerr << "profile written to " << profile_out << "\n";
  }
  std::cerr << result->answers.size() << " answer(s)\n";
  if (show_stats) {
    std::cerr << "messages: " << result->message_stats.ToString() << "\n"
              << "counters: " << result->counters.ToString() << "\n"
              << "graph: nodes=" << result->graph_stats.node_count
              << " sccs=" << result->graph_stats.nontrivial_sccs
              << " cycle_edges=" << result->graph_stats.cycle_refs << "\n"
              << "ended_by_protocol: "
              << (result->ended_by_protocol ? "yes" : "no") << "\n";
  }
  return 0;
}
