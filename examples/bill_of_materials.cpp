// Bill of materials — the classic deductive-database workload of the
// era: which parts (transitively) go into a product, and which
// suppliers are therefore involved? Demonstrates a multi-relation
// program, a bound query (sideways information passing explores only
// the queried assembly), and TSV export of the answer.
//
//   $ ./bill_of_materials [assembly]
//
// The parts catalog is generated in code; pass an assembly name
// (bike, car, or plane) to pick the root.

#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "relational/io.h"

namespace {

// subpart(Assembly, Part, Qty); supplier sells parts.
constexpr const char* kCatalog = R"(
  subpart(bike, frame, 1).   subpart(bike, wheel, 2).
  subpart(wheel, rim, 1).    subpart(wheel, spoke, 32).
  subpart(wheel, tire, 1).   subpart(tire, tube, 1).
  subpart(frame, tubeset, 1).

  subpart(car, engine, 1).   subpart(car, wheel, 4).
  subpart(engine, piston, 4). subpart(engine, sparkplug, 4).

  subpart(plane, jet, 2).    subpart(jet, turbine, 1).
  subpart(turbine, blade, 64). subpart(jet, compressor, 1).

  sells(acme, frame).   sells(acme, rim).
  sells(globex, spoke). sells(globex, tire).
  sells(globex, tube).  sells(initech, piston).
  sells(initech, sparkplug). sells(umbrella, blade).
  sells(umbrella, turbine).  sells(umbrella, compressor).
  sells(acme, tubeset).
)";

}  // namespace

int main(int argc, char** argv) {
  std::string assembly = argc > 1 ? argv[1] : "bike";

  std::string text = mpqe::StrCat(kCatalog, R"(
    % A part is contained in an assembly directly or transitively.
    contains(A, P) :- subpart(A, P, Q).
    contains(A, P) :- subpart(A, S, Q), contains(S, P).

    % Suppliers involved in building the assembly.
    involved(Sup, P) :- contains()", assembly, R"(, P), sells(Sup, P).
    ?- involved(Sup, Part).
  )");

  auto unit = mpqe::Parse(text);
  if (!unit.ok()) {
    std::cerr << unit.status() << "\n";
    return 1;
  }
  auto result = mpqe::Evaluate(unit->program, unit->database);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  std::cout << "suppliers involved in building '" << assembly << "':\n";
  for (const mpqe::Tuple& t : result->answers.SortedTuples()) {
    std::cout << "  " << t[0].ToString(&unit->database.symbols()) << " -> "
              << t[1].ToString(&unit->database.symbols()) << "\n";
  }

  // Export the answer relation as TSV (demonstrates relational/io).
  std::ostringstream tsv;
  if (auto s = mpqe::SaveRelationTsv(result->answers,
                                     unit->database.symbols(), tsv);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "\nTSV export:\n" << tsv.str();

  std::cout << "\n(" << result->answers.size() << " rows; "
            << result->counters.stored_tuples
            << " tuples materialized; the bound query explored only the '"
            << assembly << "' assembly subtree)\n";
  return 0;
}
