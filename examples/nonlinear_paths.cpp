// The paper's Example 2.1 end to end: program P1 with its nonlinear
// recursive rule, the greedy information passing rule/goal graph of
// Fig. 1, and the message-driven evaluation.
//
//   $ ./nonlinear_paths [n]
//
// q and r are chain relations over n nodes; the query is p(0, Z).

#include <cstdlib>
#include <iostream>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 8;

  mpqe::Database db;
  if (!mpqe::workload::MakeChain(db, "q", n).ok() ||
      !mpqe::workload::MakeChain(db, "r", n).ok()) {
    std::cerr << "failed to build EDB\n";
    return 1;
  }
  mpqe::Program program;
  std::string text = mpqe::workload::P1Program(0);
  if (auto s = mpqe::ParseInto(text, program, db); !s.ok()) {
    std::cerr << "parse error: " << s << "\n";
    return 1;
  }
  std::cout << "program P1 (Example 2.1):\n" << text << "\n";

  // Show the information passing rule/goal graph (Fig. 1).
  if (auto s = program.Validate(&db); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto strategy = mpqe::MakeGreedyStrategy();
  auto graph = mpqe::RuleGoalGraph::Build(program, *strategy);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "greedy information passing rule/goal graph:\n"
            << (*graph)->ToString(&db.symbols()) << "\n";
  std::cout << "graphviz:\n" << GraphToDot(**graph, &db.symbols()) << "\n";

  // Evaluate over the graph.
  auto result = mpqe::EvaluateWithGraph(**graph, db);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "p(0, Z) has " << result->answers.size() << " answers: "
            << result->answers.ToString() << "\n\n"
            << "messages: " << result->message_stats.ToString() << "\n"
            << "counters: " << result->counters.ToString() << "\n";
  return 0;
}
