// Watching the Fig. 2 termination protocol at work: transitive
// closure over a cyclic graph, where only duplicate elimination makes
// the strong component go idle and only the end-request/confirm waves
// can detect it. Prints per-kind message counts and wave statistics
// for increasing cycle sizes and several random schedules.
//
//   $ ./termination_trace [max_n]

#include <cstdlib>
#include <iostream>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  int64_t max_n = argc > 1 ? std::atoll(argv[1]) : 32;

  std::cout << "cycle-graph transitive closure tc(0, W), deterministic "
               "schedule:\n";
  std::cout << "  n   answers  tuple_msgs  dup_drops  waves  end_req  "
               "end_neg  end_conf\n";
  for (int64_t n = 4; n <= max_n; n *= 2) {
    mpqe::Database db;
    if (!mpqe::workload::MakeCycle(db, "edge", n).ok()) return 1;
    mpqe::Program program;
    if (!mpqe::ParseInto(mpqe::workload::LinearTcProgram(0), program, db)
             .ok()) {
      return 1;
    }
    auto result = mpqe::Evaluate(program, db);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const mpqe::MessageStats& s = result->message_stats;
    std::printf("  %-4lld %-8zu %-11llu %-10llu %-6llu %-8llu %-8llu %llu\n",
                static_cast<long long>(n), result->answers.size(),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kTuple)),
                static_cast<unsigned long long>(
                    result->counters.duplicate_drops),
                static_cast<unsigned long long>(
                    result->counters.protocol_waves),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kEndRequest)),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kEndNegative)),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kEndConfirmed)));
  }

  std::cout << "\nsame query (n=16) under random schedules — the protocol "
               "concludes correctly on every interleaving:\n";
  for (uint64_t seed = 0; seed < 5; ++seed) {
    mpqe::Database db;
    if (!mpqe::workload::MakeCycle(db, "edge", 16).ok()) return 1;
    mpqe::Program program;
    if (!mpqe::ParseInto(mpqe::workload::LinearTcProgram(0), program, db)
             .ok()) {
      return 1;
    }
    mpqe::EvaluationOptions options;
    options.scheduler = mpqe::SchedulerKind::kRandom;
    options.seed = seed;
    auto result = mpqe::Evaluate(program, db, options);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cout << "  seed=" << seed << "  answers=" << result->answers.size()
              << "  ended_by_protocol="
              << (result->ended_by_protocol ? "yes" : "no")
              << "  waves=" << result->counters.protocol_waves << "\n";
  }
  return 0;
}
