// Watching the Fig. 2 termination protocol at work: transitive
// closure over a cyclic graph, where only duplicate elimination makes
// the strong component go idle and only the end-request/confirm waves
// can detect it. Prints per-kind message counts and wave statistics
// for increasing cycle sizes and several random schedules.
//
//   $ ./termination_trace [--trace=trace.json] [max_n]
//
// With --trace=<file>, the final run is re-executed with a
// TraceExporter attached and written as Chrome trace-event JSON —
// open it in chrome://tracing or https://ui.perfetto.dev to see one
// track per process, message sends as flow arrows and the protocol's
// end-request waves as instant events.

#include <cstdlib>
#include <iostream>
#include <string>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "obs/trace_exporter.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  int64_t max_n = 32;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else {
      max_n = std::atoll(arg.c_str());
    }
  }

  std::cout << "cycle-graph transitive closure tc(0, W), deterministic "
               "schedule:\n";
  std::cout << "  n   answers  tuple_msgs  dup_drops  waves  end_req  "
               "end_neg  end_conf\n";
  for (int64_t n = 4; n <= max_n; n *= 2) {
    mpqe::Database db;
    if (!mpqe::workload::MakeCycle(db, "edge", n).ok()) return 1;
    mpqe::Program program;
    if (!mpqe::ParseInto(mpqe::workload::LinearTcProgram(0), program, db)
             .ok()) {
      return 1;
    }
    auto result = mpqe::Evaluate(program, db);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const mpqe::MessageStats& s = result->message_stats;
    std::printf("  %-4lld %-8zu %-11llu %-10llu %-6llu %-8llu %-8llu %llu\n",
                static_cast<long long>(n), result->answers.size(),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kTuple)),
                static_cast<unsigned long long>(
                    result->counters.duplicate_drops),
                static_cast<unsigned long long>(
                    result->counters.protocol_waves),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kEndRequest)),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kEndNegative)),
                static_cast<unsigned long long>(
                    s.Count(mpqe::MessageKind::kEndConfirmed)));
  }

  std::cout << "\nsame query (n=16) under random schedules — the protocol "
               "concludes correctly on every interleaving:\n";
  for (uint64_t seed = 0; seed < 5; ++seed) {
    mpqe::Database db;
    if (!mpqe::workload::MakeCycle(db, "edge", 16).ok()) return 1;
    mpqe::Program program;
    if (!mpqe::ParseInto(mpqe::workload::LinearTcProgram(0), program, db)
             .ok()) {
      return 1;
    }
    mpqe::EvaluationOptions options;
    options.scheduler = mpqe::SchedulerKind::kRandom;
    options.seed = seed;
    auto result = mpqe::Evaluate(program, db, options);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cout << "  seed=" << seed << "  answers=" << result->answers.size()
              << "  ended_by_protocol="
              << (result->ended_by_protocol ? "yes" : "no")
              << "  waves=" << result->counters.protocol_waves << "\n";
  }

  if (!trace_path.empty()) {
    mpqe::Database db;
    if (!mpqe::workload::MakeCycle(db, "edge", 16).ok()) return 1;
    mpqe::Program program;
    if (!mpqe::ParseInto(mpqe::workload::LinearTcProgram(0), program, db)
             .ok()) {
      return 1;
    }
    if (!program.Validate(&db).ok()) return 1;
    auto strategy = mpqe::MakeGreedyStrategy();
    auto graph = mpqe::RuleGoalGraph::Build(program, *strategy);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    mpqe::TraceExporter exporter;
    exporter.AttachGraph(graph->get(), &db.symbols());
    mpqe::EvaluationOptions options;
    options.skip_validation = true;
    options.observers.push_back(&exporter);
    auto result = mpqe::EvaluateWithGraph(**graph, db, options);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    mpqe::Status written = exporter.WriteFile(trace_path);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 1;
    }
    std::cout << "\nwrote " << exporter.event_count()
              << " trace events to " << trace_path
              << " (open in chrome://tracing)\n";
  }
  return 0;
}
