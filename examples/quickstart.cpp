// Quickstart: evaluate a recursive ancestor query with the
// message-passing framework and print the answers.
//
//   $ ./quickstart
//
// Demonstrates the minimal public API — the prepared-query engine
// lifecycle (engine/engine.h):
//
//   Engine -> Attach(EDB snapshot) -> Prepare(rules) -> session -> Run
//
// The plan compiles once (parse, adornment, sips, graph build, index
// selection) and any number of sessions — concurrent ones included —
// execute it against the immutable snapshot. The second Prepare below
// is a plan-cache hit: it skips the whole compile.

#include <iostream>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "obs/metrics.h"

int main() {
  // Facts (EDB) and rules (IDB) in one Prolog-style source text.
  auto unit = mpqe::Parse(R"(
    % A small family tree.
    parent(alice, bob).
    parent(alice, carol).
    parent(bob, dave).
    parent(carol, erin).
    parent(dave, frank).

    % Ancestor is the transitive closure of parent.
    anc(X, Y) :- parent(X, Y).
    anc(X, Y) :- parent(X, Z), anc(Z, Y).

    % Who are alice's descendants?
    ?- anc(alice, W).
  )");
  if (!unit.ok()) {
    std::cerr << "parse error: " << unit.status() << "\n";
    return 1;
  }

  mpqe::Engine engine;
  auto snapshot = engine.Attach(std::move(unit->database), "family");

  // Compile the program into an immutable plan (cached in the
  // engine's LRU plan cache, keyed on program + options + snapshot).
  auto plan = engine.Prepare(snapshot, unit->program);
  if (!plan.ok()) {
    std::cerr << "prepare error: " << plan.status() << "\n";
    return 1;
  }

  // One session = one execution. Defaults: greedy sips (chosen at
  // prepare time), deterministic scheduler.
  mpqe::SessionOptions options;
  mpqe::MetricsRegistry metrics;  // filled live during the run
  options.metrics = &metrics;
  auto session = engine.CreateSession(*plan, options);
  if (!session.ok()) {
    std::cerr << "session error: " << session.status() << "\n";
    return 1;
  }
  auto result = (*session)->Run();
  if (!result.ok()) {
    std::cerr << "evaluation error: " << result.status() << "\n";
    return 1;
  }

  std::cout << "alice's descendants:\n";
  for (const mpqe::Tuple& t : result->answers.SortedTuples()) {
    std::cout << "  " << mpqe::TupleToString(t, &snapshot->db().symbols())
              << "\n";
  }
  std::cout << "\nmessages: " << result->message_stats.ToString() << "\n"
            << "counters: " << result->counters.ToString() << "\n"
            << "finished by end-message protocol: "
            << (result->ended_by_protocol ? "yes" : "no") << "\n";

  // Preparing the same program again is a cache hit — no parse, no
  // adornment, no graph build.
  auto again = engine.Prepare(snapshot, unit->program);
  if (again.ok()) {
    std::cout << "\n" << engine.plan_cache_stats().ToString() << "\n";
  }

  std::cout << "\nmetrics:\n" << metrics.ToString();
  return 0;
}
