// Quickstart: evaluate a recursive ancestor query with the
// message-passing framework and print the answers.
//
//   $ ./quickstart
//
// Demonstrates the minimal public API: Parse -> Evaluate -> answers,
// plus the metrics registry for a structured look at what the
// evaluation did.

#include <iostream>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "obs/metrics.h"

int main() {
  // Facts (EDB) and rules (IDB) in one Prolog-style source text.
  auto unit = mpqe::Parse(R"(
    % A small family tree.
    parent(alice, bob).
    parent(alice, carol).
    parent(bob, dave).
    parent(carol, erin).
    parent(dave, frank).

    % Ancestor is the transitive closure of parent.
    anc(X, Y) :- parent(X, Y).
    anc(X, Y) :- parent(X, Z), anc(Z, Y).

    % Who are alice's descendants?
    ?- anc(alice, W).
  )");
  if (!unit.ok()) {
    std::cerr << "parse error: " << unit.status() << "\n";
    return 1;
  }

  mpqe::EvaluationOptions options;  // defaults: greedy sips, deterministic
  mpqe::MetricsRegistry metrics;    // filled live during the run
  options.metrics = &metrics;
  auto result = mpqe::Evaluate(unit->program, unit->database, options);
  if (!result.ok()) {
    std::cerr << "evaluation error: " << result.status() << "\n";
    return 1;
  }

  std::cout << "alice's descendants:\n";
  for (const mpqe::Tuple& t : result->answers.SortedTuples()) {
    std::cout << "  " << mpqe::TupleToString(t, &unit->database.symbols())
              << "\n";
  }
  std::cout << "\nmessages: " << result->message_stats.ToString() << "\n"
            << "counters: " << result->counters.ToString() << "\n"
            << "finished by end-message protocol: "
            << (result->ended_by_protocol ? "yes" : "no") << "\n";

  std::cout << "\nmetrics:\n" << metrics.ToString();
  return 0;
}
