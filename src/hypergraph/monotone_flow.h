// The monotone flow property (§4): a rule with given head binding
// classifications has monotone flow iff its *evaluation hypergraph* is
// α-acyclic. The evaluation hypergraph (Def. 4.1) has a node per rule
// variable and hyperedges:
//   * the head edge p^b: head variables with bound (c or d)
//     classification;
//   * one edge per subgoal: all variables of that subgoal.
// Intuition: evaluating the rule for the head bindings is a join whose
// relations are the head-binding set plus the subgoals.

#ifndef MPQE_HYPERGRAPH_MONOTONE_FLOW_H_
#define MPQE_HYPERGRAPH_MONOTONE_FLOW_H_

#include <string>

#include "datalog/adornment.h"
#include "datalog/ast.h"
#include "datalog/program.h"
#include "hypergraph/gyo.h"
#include "hypergraph/hypergraph.h"

namespace mpqe {

// The evaluation hypergraph of an adorned rule. Edge 0 is the head
// edge (labelled "<pred>^b"); edge i+1 is body subgoal i.
struct EvaluationHypergraph {
  Hypergraph hypergraph;
  size_t head_edge = 0;

  size_t SubgoalEdge(size_t body_index) const { return body_index + 1; }
};

/// Builds the evaluation hypergraph (Def. 4.1). `head_adornment` must
/// have the head's arity. `program` supplies labels for printing.
EvaluationHypergraph BuildEvaluationHypergraph(const Rule& rule,
                                               const Adornment& head_adornment,
                                               const Program& program);

// Result of the monotone flow test, carrying the qual tree when it
// holds and the irreducible cycle core when it fails.
struct MonotoneFlowResult {
  bool has_monotone_flow = false;
  EvaluationHypergraph evaluation;
  GyoResult gyo;
};

/// Tests Def. 4.2: monotone flow ⇔ the evaluation hypergraph is
/// acyclic.
MonotoneFlowResult TestMonotoneFlow(const Rule& rule,
                                    const Adornment& head_adornment,
                                    const Program& program);

}  // namespace mpqe

#endif  // MPQE_HYPERGRAPH_MONOTONE_FLOW_H_
