#include "hypergraph/gyo.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

GyoResult GyoReduce(const Hypergraph& hg) {
  GyoResult result;
  size_t n = hg.edge_count();
  result.qual_tree.adjacency.assign(n, {});

  // Working copies: var sets per edge plus alive flags.
  std::vector<std::set<int>> work(n);
  std::vector<bool> alive(n, true);
  for (size_t i = 0; i < n; ++i) {
    work[i] = std::set<int>(hg.edge(i).vars.begin(), hg.edge(i).vars.end());
  }
  size_t alive_count = n;

  bool changed = true;
  while (changed) {
    changed = false;

    // Rule 1: delete variables occurring in exactly one edge.
    std::map<int, std::pair<size_t, size_t>> occurrences;  // var -> (count, edge)
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (int v : work[i]) {
        auto [it, inserted] = occurrences.emplace(v, std::make_pair(1u, i));
        if (!inserted) it->second.first++;
      }
    }
    for (const auto& [v, where] : occurrences) {
      if (where.first == 1) {
        work[where.second].erase(v);
        changed = true;
      }
    }

    // Rule 2: delete an edge that is a subset of another, recording the
    // qual tree attachment. Lowest indexes first for determinism.
    for (size_t i = 0; i < n && alive_count > 1; ++i) {
      if (!alive[i]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (i == j || !alive[j]) continue;
        if (std::includes(work[j].begin(), work[j].end(), work[i].begin(),
                          work[i].end())) {
          result.qual_tree.adjacency[i].push_back(j);
          result.qual_tree.adjacency[j].push_back(i);
          alive[i] = false;
          --alive_count;
          result.kill_order.push_back(i);
          changed = true;
          break;
        }
      }
    }
  }

  result.acyclic = (alive_count == 1);
  if (result.acyclic) {
    // The survivor is empty by rule 1; record it last in kill order.
    for (size_t i = 0; i < n; ++i) {
      if (alive[i]) result.kill_order.push_back(i);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      Hyperedge e;
      e.label = hg.edge(i).label;
      e.vars.assign(work[i].begin(), work[i].end());
      result.core.push_back(std::move(e));
    }
    result.qual_tree.adjacency.clear();
  }
  return result;
}

bool IsAcyclic(const Hypergraph& hg) { return GyoReduce(hg).acyclic; }

RootedQualTree RootQualTree(const QualTree& tree, size_t root) {
  RootedQualTree rooted;
  size_t n = tree.node_count();
  rooted.root = root;
  rooted.parent.assign(n, -1);
  rooted.children.assign(n, {});
  std::vector<bool> visited(n, false);
  rooted.preorder.push_back(root);
  visited[root] = true;
  for (size_t head = 0; head < rooted.preorder.size(); ++head) {
    size_t u = rooted.preorder[head];
    for (size_t v : tree.adjacency[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      rooted.parent[v] = static_cast<int>(u);
      rooted.children[u].push_back(v);
      rooted.preorder.push_back(v);
    }
  }
  return rooted;
}

bool HasQualTreeProperty(const std::vector<Hyperedge>& edges,
                         const std::vector<std::vector<size_t>>& adjacency) {
  size_t n = edges.size();
  // Collect all vars.
  std::set<int> vars;
  for (const Hyperedge& e : edges) vars.insert(e.vars.begin(), e.vars.end());

  for (int v : vars) {
    // Nodes containing v must induce a connected subgraph.
    std::vector<size_t> holders;
    for (size_t i = 0; i < n; ++i) {
      if (edges[i].Contains(v)) holders.push_back(i);
    }
    if (holders.size() <= 1) continue;
    // BFS within holders from holders[0].
    std::set<size_t> holder_set(holders.begin(), holders.end());
    std::vector<size_t> frontier{holders[0]};
    std::set<size_t> reached{holders[0]};
    while (!frontier.empty()) {
      size_t u = frontier.back();
      frontier.pop_back();
      for (size_t w : adjacency[u]) {
        if (holder_set.count(w) != 0 && reached.insert(w).second) {
          frontier.push_back(w);
        }
      }
    }
    if (reached.size() != holders.size()) return false;
  }
  return true;
}

StatusOr<ComposedQualTree> ComposeQualTrees(
    const Hypergraph& outer_hg, const QualTree& outer_tree, size_t outer_root,
    size_t outer_leaf, const Hypergraph& inner_hg, const QualTree& inner_tree,
    size_t inner_root) {
  if (outer_leaf == outer_root) {
    return InvalidArgumentError("resolved subgoal must not be the root");
  }
  RootedQualTree outer_rooted = RootQualTree(outer_tree, outer_root);
  if (!outer_rooted.children[outer_leaf].empty()) {
    return FailedPreconditionError(StrCat(
        "Theorem 4.2 requires subgoal '", outer_hg.edge(outer_leaf).label,
        "' to appear as a leaf in the outer qual tree"));
  }
  int attach_parent = outer_rooted.parent[outer_leaf];
  MPQE_CHECK(attach_parent >= 0);

  ComposedQualTree out;
  // Map surviving outer nodes, then surviving inner nodes, to composed ids.
  std::vector<int> outer_id(outer_hg.edge_count(), -1);
  std::vector<int> inner_id(inner_hg.edge_count(), -1);
  for (size_t i = 0; i < outer_hg.edge_count(); ++i) {
    if (i == outer_leaf) continue;
    outer_id[i] = static_cast<int>(out.nodes.size());
    out.nodes.push_back(outer_hg.edge(i));
  }
  for (size_t i = 0; i < inner_hg.edge_count(); ++i) {
    if (i == inner_root) continue;
    inner_id[i] = static_cast<int>(out.nodes.size());
    out.nodes.push_back(inner_hg.edge(i));
  }
  out.adjacency.assign(out.nodes.size(), {});
  out.root = static_cast<size_t>(outer_id[outer_root]);

  auto link = [&out](size_t a, size_t b) {
    out.adjacency[a].push_back(b);
    out.adjacency[b].push_back(a);
  };
  // Outer edges not incident to the removed leaf.
  for (size_t u = 0; u < outer_tree.adjacency.size(); ++u) {
    if (u == outer_leaf) continue;
    for (size_t v : outer_tree.adjacency[u]) {
      if (v == outer_leaf || v < u) continue;
      link(static_cast<size_t>(outer_id[u]), static_cast<size_t>(outer_id[v]));
    }
  }
  // Inner edges not incident to the removed root.
  for (size_t u = 0; u < inner_tree.adjacency.size(); ++u) {
    if (u == inner_root) continue;
    for (size_t v : inner_tree.adjacency[u]) {
      if (v == inner_root || v < u) continue;
      link(static_cast<size_t>(inner_id[u]), static_cast<size_t>(inner_id[v]));
    }
  }
  // Attach the neighbors of the inner root to the parent of the leaf.
  for (size_t v : inner_tree.adjacency[inner_root]) {
    link(static_cast<size_t>(outer_id[attach_parent]),
         static_cast<size_t>(inner_id[v]));
  }
  return out;
}

}  // namespace mpqe
