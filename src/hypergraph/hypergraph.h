// Hypergraphs over rule variables (§4.1): "a generalization of a graph
// in which hyperedges are arbitrary sets of nodes instead of just
// pairs of nodes". Hyperedges carry labels so qual trees can name the
// rule head and subgoals they came from.

#ifndef MPQE_HYPERGRAPH_HYPERGRAPH_H_
#define MPQE_HYPERGRAPH_HYPERGRAPH_H_

#include <algorithm>
#include <string>
#include <vector>

namespace mpqe {

// One hyperedge: a named set of variables (stored sorted, unique).
struct Hyperedge {
  std::string label;
  std::vector<int> vars;

  bool Contains(int v) const {
    return std::binary_search(vars.begin(), vars.end(), v);
  }
  /// True iff this edge's variable set is a subset of `other`'s.
  bool SubsetOf(const Hyperedge& other) const {
    return std::includes(other.vars.begin(), other.vars.end(), vars.begin(),
                         vars.end());
  }
};

class Hypergraph {
 public:
  /// Adds a hyperedge over `vars` (deduplicated and sorted internally);
  /// returns its index. Empty edges are allowed (e.g. a head with no
  /// bound variables).
  size_t AddEdge(std::string label, std::vector<int> vars);

  size_t edge_count() const { return edges_.size(); }
  const Hyperedge& edge(size_t i) const { return edges_[i]; }
  const std::vector<Hyperedge>& edges() const { return edges_; }

  /// Distinct variables across all edges, sorted.
  std::vector<int> AllVars() const;

  std::string ToString() const;

 private:
  std::vector<Hyperedge> edges_;
};

}  // namespace mpqe

#endif  // MPQE_HYPERGRAPH_HYPERGRAPH_H_
