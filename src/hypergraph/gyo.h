// GYO (Graham) reduction, α-acyclicity testing, and qual trees (§4.1).
//
// The reduction applies two rules as long as possible:
//   1. If a variable is currently in only one hyperedge, delete it.
//   2. If a hyperedge h1 is a subset of another hyperedge h2, add an
//      edge between h1 and h2 to the qual tree and delete h1.
// The hypergraph is acyclic (α-acyclic, [BFM*81,Yan81]) iff this
// reduces it to one empty edge; the recorded attachments then form a
// qual tree.
//
// The qual tree property: for any variable and any two hyperedges
// containing it, the tree path between them only involves hyperedges
// that also contain that variable.

#ifndef MPQE_HYPERGRAPH_GYO_H_
#define MPQE_HYPERGRAPH_GYO_H_

#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mpqe {

// Undirected tree over the hyperedges of a hypergraph (same indexing).
struct QualTree {
  std::vector<std::vector<size_t>> adjacency;

  size_t node_count() const { return adjacency.size(); }
};

// Rooted view of a qual tree (root = the rule-head hyperedge, §4.1).
struct RootedQualTree {
  size_t root = 0;
  std::vector<int> parent;                  // -1 for the root
  std::vector<std::vector<size_t>> children;
  std::vector<size_t> preorder;             // BFS order from the root
};

struct GyoResult {
  bool acyclic = false;
  // Valid iff acyclic.
  QualTree qual_tree;
  // Hyperedge indexes in deletion order (diagnostics).
  std::vector<size_t> kill_order;
  // If cyclic: the irreducible core left behind (e.g. the Y,V,W cycle
  // of rule R3 in Fig. 4).
  std::vector<Hyperedge> core;
};

/// Runs the Graham reduction on `hg`. Deterministic: rules are applied
/// to the lowest-indexed candidates first.
GyoResult GyoReduce(const Hypergraph& hg);

/// Convenience: just the acyclicity answer.
bool IsAcyclic(const Hypergraph& hg);

/// Orients `tree` away from `root` via BFS.
RootedQualTree RootQualTree(const QualTree& tree, size_t root);

/// Verifies the qual tree property for `tree` over `edges` (used by
/// tests on both GYO output and composed trees).
bool HasQualTreeProperty(const std::vector<Hyperedge>& edges,
                         const std::vector<std::vector<size_t>>& adjacency);

// A qual tree whose nodes carry their hyperedges directly — the result
// of composing two qual trees (Theorem 4.2): resolving rule R_v's leaf
// subgoal p against rule R_w attaches the neighbors of R_w's root p^b
// to the parent of p, removing both p^b and p.
struct ComposedQualTree {
  std::vector<Hyperedge> nodes;
  std::vector<std::vector<size_t>> adjacency;
  size_t root = 0;
};

/// Composes per Theorem 4.2. `outer_leaf` must be a leaf of the rooted
/// outer tree and distinct from `outer_root`; `inner_root` is the node
/// for the inner rule's head (p^b). Node variable ids must already
/// reflect the unification of p with the inner head (i.e. shared
/// variables use identical ids).
StatusOr<ComposedQualTree> ComposeQualTrees(
    const Hypergraph& outer_hg, const QualTree& outer_tree, size_t outer_root,
    size_t outer_leaf, const Hypergraph& inner_hg, const QualTree& inner_tree,
    size_t inner_root);

}  // namespace mpqe

#endif  // MPQE_HYPERGRAPH_GYO_H_
