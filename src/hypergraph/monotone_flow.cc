#include "hypergraph/monotone_flow.h"

#include "common/string_util.h"

namespace mpqe {

EvaluationHypergraph BuildEvaluationHypergraph(const Rule& rule,
                                               const Adornment& head_adornment,
                                               const Program& program) {
  EvaluationHypergraph out;
  std::vector<int> head_vars;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_variable() && IsBound(head_adornment[i])) {
      head_vars.push_back(t.var());
    }
  }
  out.head_edge = out.hypergraph.AddEdge(
      StrCat(program.predicates().Name(rule.head.predicate), "^b"),
      std::move(head_vars));
  for (const Atom& subgoal : rule.body) {
    std::vector<int> vars;
    for (const Term& t : subgoal.args) {
      if (t.is_variable()) vars.push_back(t.var());
    }
    out.hypergraph.AddEdge(program.predicates().Name(subgoal.predicate),
                           std::move(vars));
  }
  return out;
}

MonotoneFlowResult TestMonotoneFlow(const Rule& rule,
                                    const Adornment& head_adornment,
                                    const Program& program) {
  MonotoneFlowResult result;
  result.evaluation = BuildEvaluationHypergraph(rule, head_adornment, program);
  result.gyo = GyoReduce(result.evaluation.hypergraph);
  result.has_monotone_flow = result.gyo.acyclic;
  return result;
}

}  // namespace mpqe
