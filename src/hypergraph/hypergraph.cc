#include "hypergraph/hypergraph.h"

#include "common/string_util.h"

namespace mpqe {

size_t Hypergraph::AddEdge(std::string label, std::vector<int> vars) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  edges_.push_back(Hyperedge{std::move(label), std::move(vars)});
  return edges_.size() - 1;
}

std::vector<int> Hypergraph::AllVars() const {
  std::vector<int> all;
  for (const Hyperedge& e : edges_) {
    all.insert(all.end(), e.vars.begin(), e.vars.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::string Hypergraph::ToString() const {
  return StrJoin(edges_, "; ", [](std::ostream& os, const Hyperedge& e) {
    os << e.label << "{" << StrJoin(e.vars, ",") << "}";
  });
}

}  // namespace mpqe
