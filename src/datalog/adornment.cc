#include "datalog/adornment.h"

#include "common/string_util.h"

namespace mpqe {

char BindingClassToChar(BindingClass c) {
  switch (c) {
    case BindingClass::kConstant:
      return 'c';
    case BindingClass::kDynamic:
      return 'd';
    case BindingClass::kExistential:
      return 'e';
    case BindingClass::kFree:
      return 'f';
  }
  return '?';
}

std::string AdornmentToString(const Adornment& adornment) {
  std::string out;
  out.reserve(adornment.size());
  for (BindingClass c : adornment) out.push_back(BindingClassToChar(c));
  return out;
}

StatusOr<Adornment> AdornmentFromString(const std::string& text) {
  Adornment out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case 'c':
        out.push_back(BindingClass::kConstant);
        break;
      case 'd':
        out.push_back(BindingClass::kDynamic);
        break;
      case 'e':
        out.push_back(BindingClass::kExistential);
        break;
      case 'f':
        out.push_back(BindingClass::kFree);
        break;
      default:
        return InvalidArgumentError(
            StrCat("invalid binding class character '", ch, "' in \"", text,
                   "\""));
    }
  }
  return out;
}

std::vector<size_t> PositionsWithClass(const Adornment& adornment,
                                       BindingClass c) {
  std::vector<size_t> positions;
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == c) positions.push_back(i);
  }
  return positions;
}

std::vector<size_t> BoundPositions(const Adornment& adornment) {
  std::vector<size_t> positions;
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (IsBound(adornment[i])) positions.push_back(i);
  }
  return positions;
}

}  // namespace mpqe
