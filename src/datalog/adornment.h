// Binding classes for predicate arguments (§2.2). Each argument of a
// goal or subgoal is classified:
//
//   c  ("constant")    — a constant known at graph-construction time;
//   d  ("dynamic")     — bound during the computation to a set of
//                        needed values; functions as a semi-join
//                        operand and restricts the computed part of
//                        the relation (§1.2);
//   e  ("existential") — a free variable whose value is never used;
//                        only existence matters, so the producer emits
//                        one tuple per unique non-e combination;
//   f  ("free")        — a free variable whose bindings must be found
//                        and transmitted.

#ifndef MPQE_DATALOG_ADORNMENT_H_
#define MPQE_DATALOG_ADORNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mpqe {

enum class BindingClass : uint8_t {
  kConstant = 0,     // "c"
  kDynamic = 1,      // "d"
  kExistential = 2,  // "e"
  kFree = 3,         // "f"
};

/// Single-letter mnemonic for `c` ('c', 'd', 'e' or 'f').
char BindingClassToChar(BindingClass c);

// The classification of every argument position of an atom, e.g. the
// paper's p(V^d, Z^f) has adornment "df".
using Adornment = std::vector<BindingClass>;

/// Renders e.g. "cdf".
std::string AdornmentToString(const Adornment& adornment);

/// Parses "cdf" back into an Adornment (tests convenience).
StatusOr<Adornment> AdornmentFromString(const std::string& text);

/// True iff the argument is bound before evaluation starts (c or d).
inline bool IsBound(BindingClass c) {
  return c == BindingClass::kConstant || c == BindingClass::kDynamic;
}

/// Positions with the given class.
std::vector<size_t> PositionsWithClass(const Adornment& adornment,
                                       BindingClass c);

/// Positions where IsBound() holds.
std::vector<size_t> BoundPositions(const Adornment& adornment);

}  // namespace mpqe

#endif  // MPQE_DATALOG_ADORNMENT_H_
