// Parser for Prolog-style Datalog text (Example 2.1 syntax):
//
//   % facts populate the EDB
//   r(a, b).
//   q(b, 3).
//
//   % rules populate the IDB; read ":-" as "if"
//   p(X, Y) :- p(X, V), q(V, W), p(W, Y).
//   p(X, Y) :- r(X, Y).
//
//   % a query; sugar for  goal(Z) :- p(a, Z).
//   ?- p(a, Z).
//
//   % query rules may also be written explicitly
//   goal(Z) :- p(a, Z).
//
// Identifiers starting with a lowercase letter are predicate/constant
// symbols; identifiers starting with an uppercase letter or '_' are
// variables (scoped to their clause); integers and double-quoted
// strings are constants. '%' starts a line comment.

#ifndef MPQE_DATALOG_PARSER_H_
#define MPQE_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/program.h"
#include "relational/database.h"

namespace mpqe {

// A freshly parsed program plus the EDB facts from the same text.
struct ParsedUnit {
  Program program;
  Database database;
};

/// Parses `text` into `program` (rules, queries) and `db` (facts).
/// Clause variables are interned fresh per clause.
Status ParseInto(std::string_view text, Program& program, Database& db);

/// Parses `text` into a fresh Program + Database pair.
StatusOr<ParsedUnit> Parse(std::string_view text);

/// Parses rules/queries only, interning constants into `symbols`
/// (which must be the symbol table of the database the program will
/// run against). Facts are rejected with InvalidArgument — the entry
/// point of Engine::Prepare, where the EDB is an immutable snapshot.
/// SymbolTable interning is internally synchronized, so concurrent
/// Prepare calls over one snapshot are safe.
Status ParseRulesInto(std::string_view text, Program& program,
                      SymbolTable& symbols);

}  // namespace mpqe

#endif  // MPQE_DATALOG_PARSER_H_
