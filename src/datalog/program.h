// Program: the intentional database (IDB) — permanent rules (PIDB)
// plus query rules whose head is the distinguished predicate `goal`
// (§1) — together with validation and predicate-level analysis.

#ifndef MPQE_DATALOG_PROGRAM_H_
#define MPQE_DATALOG_PROGRAM_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "relational/database.h"

namespace mpqe {

// The distinguished query predicate name (§1).
inline constexpr std::string_view kGoalPredicateName = "goal";

class Program {
 public:
  Program() = default;

  PredicatePool& predicates() { return predicates_; }
  const PredicatePool& predicates() const { return predicates_; }
  VariablePool& variables() { return variables_; }
  const VariablePool& variables() const { return variables_; }

  /// Adds a rule (PIDB rule, or query rule if its head is `goal`).
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Adds a query `?- body`: creates the rule
  ///   goal(V1,...,Vk) :- body
  /// where V1..Vk are the distinct variables of `body` in order of
  /// first occurrence. Returns the index of the new rule.
  StatusOr<size_t> AddQuery(std::vector<Atom> body);

  const std::vector<Rule>& rules() const { return rules_; }

  /// Id of `goal` if interned, else -1.
  PredicateId GoalPredicate() const {
    return predicates_.Find(kGoalPredicateName);
  }

  /// Indexes of rules whose head predicate is `p`.
  std::vector<size_t> RuleIndexesFor(PredicateId p) const;

  /// A predicate is IDB iff it appears in some rule head. Everything
  /// else appearing in a body is EDB (§1: EDB predicates never occur
  /// positively in the PIDB).
  bool IsIdb(PredicateId p) const;
  bool IsEdb(PredicateId p) const { return !IsIdb(p); }

  /// All IDB predicates that are (transitively) recursive, i.e. lie on
  /// a cycle of the predicate dependency graph.
  std::vector<PredicateId> RecursivePredicates() const;

  /// True iff `p` depends on itself through the dependency graph.
  bool IsRecursive(PredicateId p) const;

  /// Validates the program against the paper's model (§1) and Datalog
  /// safety:
  ///  * at least one query rule (head `goal`) exists;
  ///  * `goal` occurs in no rule body;
  ///  * no EDB relation of `db` (if given) is used as a rule head;
  ///  * every EDB predicate's arity matches its `db` relation (the
  ///    relation is created empty if missing — callers may populate
  ///    facts later);
  ///  * range restriction: every head variable occurs in the body.
  Status Validate(Database* db) const;

  // -- Pretty printing --------------------------------------------------
  std::string TermToString(const Term& t, const SymbolTable* symbols) const;
  std::string AtomToString(const Atom& a, const SymbolTable* symbols) const;
  std::string RuleToString(const Rule& r, const SymbolTable* symbols) const;
  std::string ToString(const SymbolTable* symbols) const;

 private:
  PredicatePool predicates_;
  VariablePool variables_;
  std::vector<Rule> rules_;
};

// Dependency edges between predicates: head -> each body predicate.
// Exposed for tests and for the semi-naive baseline's stratum order.
struct PredicateDependencies {
  // adjacency[p] = body predicates reachable in one step from heads p.
  std::vector<std::vector<PredicateId>> adjacency;
  // scc_of[p] = strong-component id (components numbered in reverse
  // topological order: callees before callers).
  std::vector<int> scc_of;
  int scc_count = 0;
};

/// Builds the dependency graph over all interned predicates.
PredicateDependencies AnalyzeDependencies(const Program& program);

}  // namespace mpqe

#endif  // MPQE_DATALOG_PROGRAM_H_
