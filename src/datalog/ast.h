// Abstract syntax for function-free Horn clause programs (Datalog):
// terms (variables / constants), atoms, rules, and the pools that
// intern predicate and variable names.
//
// Variables and predicates are dense integer ids so that unification,
// variant tests and graph-node signatures are cheap; names live in the
// pools and are used only for printing.

#ifndef MPQE_DATALOG_AST_H_
#define MPQE_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "relational/value.h"

namespace mpqe {

using PredicateId = int32_t;
using VariableId = int32_t;

// A term is a variable or a constant (no function symbols, per §1).
class Term {
 public:
  static Term Var(VariableId v) { return Term(true, v, Value()); }
  static Term Const(Value v) { return Term(false, -1, v); }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  VariableId var() const { return var_; }
  const Value& constant() const { return constant_; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.var_ == b.var_ : a.constant_ == b.constant_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  Term(bool is_variable, VariableId var, Value constant)
      : is_variable_(is_variable), var_(var), constant_(constant) {}

  bool is_variable_;
  VariableId var_;
  Value constant_;
};

// A positive literal: predicate applied to terms.
struct Atom {
  PredicateId predicate = -1;
  std::vector<Term> args;

  size_t arity() const { return args.size(); }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
};

// A Horn clause: head :- body. A fact is a rule with empty body (but
// facts normally live in the Database, not the Program).
struct Rule {
  Atom head;
  std::vector<Atom> body;
};

// Interns variable names and mints fresh variables. Copyable: the
// graph builder copies the program's pool so construction-time fresh
// variables don't mutate the program.
class VariablePool {
 public:
  /// Returns the id for `name`, interning on first use.
  VariableId Intern(std::string_view name);

  /// Mints a fresh variable distinct from all existing ones; its name
  /// is "_G<n>" (optionally suffixed with `hint` for readability).
  VariableId Fresh(std::string_view hint = "");

  /// Name for `id` ("_?<id>" if out of range).
  std::string Name(VariableId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, VariableId> ids_;
};

// Interns predicate names with fixed arities.
class PredicatePool {
 public:
  /// Returns the id for `name`, checking arity consistency.
  StatusOr<PredicateId> Intern(std::string_view name, size_t arity);

  /// Id for `name` if interned, else -1.
  PredicateId Find(std::string_view name) const;

  const std::string& Name(PredicateId id) const { return names_[id]; }
  size_t Arity(PredicateId id) const { return arities_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<size_t> arities_;
  std::unordered_map<std::string, PredicateId> ids_;
};

/// Collects the distinct variables of `atom` in order of first
/// occurrence, appending to `out` (skipping ones already present).
void CollectVariables(const Atom& atom, std::vector<VariableId>& out);
void CollectVariables(const Rule& rule, std::vector<VariableId>& out);

}  // namespace mpqe

namespace std {
template <>
struct hash<mpqe::Term> {
  size_t operator()(const mpqe::Term& t) const {
    size_t seed = t.is_variable() ? 0x517cc1b727220a95ULL : 0;
    if (t.is_variable()) {
      mpqe::HashCombine(seed, std::hash<mpqe::VariableId>{}(t.var()));
    } else {
      mpqe::HashCombine(seed, std::hash<mpqe::Value>{}(t.constant()));
    }
    return seed;
  }
};

template <>
struct hash<mpqe::Atom> {
  size_t operator()(const mpqe::Atom& a) const {
    size_t seed = std::hash<mpqe::PredicateId>{}(a.predicate);
    for (const auto& t : a.args) {
      mpqe::HashCombine(seed, std::hash<mpqe::Term>{}(t));
    }
    return seed;
  }
};
}  // namespace std

#endif  // MPQE_DATALOG_AST_H_
