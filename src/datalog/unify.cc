#include "datalog/unify.h"

#include "common/logging.h"

namespace mpqe {

std::optional<Term> Substitution::Lookup(VariableId v) const {
  auto it = bindings_.find(v);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

Term Substitution::Resolve(Term t) const {
  while (t.is_variable()) {
    auto it = bindings_.find(t.var());
    if (it == bindings_.end()) return t;
    t = it->second;
  }
  return t;
}

void Substitution::Bind(VariableId v, Term t) {
  MPQE_CHECK(!(t.is_variable() && t.var() == v)) << "binding v := v";
  // Keep idempotence: rewrite occurrences of v in existing images.
  for (auto& [var, image] : bindings_) {
    if (image.is_variable() && image.var() == v) image = t;
  }
  bindings_.emplace(v, t);
}

Atom Substitution::Apply(const Atom& atom) const {
  Atom out;
  out.predicate = atom.predicate;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) out.args.push_back(Resolve(t));
  return out;
}

Rule Substitution::Apply(const Rule& rule) const {
  Rule out;
  out.head = Apply(rule.head);
  out.body.reserve(rule.body.size());
  for (const Atom& a : rule.body) out.body.push_back(Apply(a));
  return out;
}

bool ExtendMgu(const Atom& a, const Atom& b, Substitution& subst) {
  if (a.predicate != b.predicate || a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    Term x = subst.Resolve(a.args[i]);
    Term y = subst.Resolve(b.args[i]);
    if (x == y) continue;
    if (x.is_variable()) {
      subst.Bind(x.var(), y);
    } else if (y.is_variable()) {
      subst.Bind(y.var(), x);
    } else {
      return false;  // distinct constants
    }
  }
  return true;
}

std::optional<Substitution> Mgu(const Atom& a, const Atom& b) {
  Substitution subst;
  if (!ExtendMgu(a, b, subst)) return std::nullopt;
  return subst;
}

Rule RenameApart(const Rule& rule, VariablePool& pool) {
  std::vector<VariableId> vars;
  CollectVariables(rule, vars);
  Substitution renaming;
  for (VariableId v : vars) {
    renaming.Bind(v, Term::Var(pool.Fresh()));
  }
  return renaming.Apply(rule);
}

bool IsVariant(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.arity() != b.arity()) return false;
  std::unordered_map<VariableId, VariableId> fwd;
  std::unordered_map<VariableId, VariableId> bwd;
  for (size_t i = 0; i < a.args.size(); ++i) {
    const Term& x = a.args[i];
    const Term& y = b.args[i];
    if (x.is_constant() || y.is_constant()) {
      if (x != y) return false;
      continue;
    }
    auto [fit, finserted] = fwd.emplace(x.var(), y.var());
    if (!finserted && fit->second != y.var()) return false;
    auto [bit, binserted] = bwd.emplace(y.var(), x.var());
    if (!binserted && bit->second != x.var()) return false;
  }
  return true;
}

}  // namespace mpqe
