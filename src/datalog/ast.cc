#include "datalog/ast.h"

#include <algorithm>

#include "common/string_util.h"

namespace mpqe {

VariableId VariablePool::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  VariableId id = static_cast<VariableId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

VariableId VariablePool::Fresh(std::string_view hint) {
  VariableId id = static_cast<VariableId>(names_.size());
  std::string name = StrCat("_G", id);
  if (!hint.empty()) name += StrCat("_", hint);
  // Generated names can collide with user variables only if the user
  // literally wrote "_G<n>"; disambiguate until unique.
  while (ids_.count(name) != 0) name += "'";
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::string VariablePool::Name(VariableId id) const {
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) {
    return StrCat("_?", id);
  }
  return names_[static_cast<size_t>(id)];
}

StatusOr<PredicateId> PredicatePool::Intern(std::string_view name,
                                            size_t arity) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    if (arities_[it->second] != arity) {
      return InvalidArgumentError(
          StrCat("predicate ", name, " used with arity ", arity,
                 " but previously had arity ", arities_[it->second]));
    }
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(names_.size());
  names_.emplace_back(name);
  arities_.push_back(arity);
  ids_.emplace(std::string(name), id);
  return id;
}

PredicateId PredicatePool::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : it->second;
}

void CollectVariables(const Atom& atom, std::vector<VariableId>& out) {
  for (const Term& t : atom.args) {
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.var()) == out.end()) {
      out.push_back(t.var());
    }
  }
}

void CollectVariables(const Rule& rule, std::vector<VariableId>& out) {
  CollectVariables(rule.head, out);
  for (const Atom& a : rule.body) CollectVariables(a, out);
}

}  // namespace mpqe
