#include "datalog/program.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

StatusOr<size_t> Program::AddQuery(std::vector<Atom> body) {
  if (body.empty()) {
    return InvalidArgumentError("query body must not be empty");
  }
  std::vector<VariableId> vars;
  for (const Atom& a : body) CollectVariables(a, vars);
  MPQE_ASSIGN_OR_RETURN(PredicateId goal,
                        predicates_.Intern(kGoalPredicateName, vars.size()));
  Rule rule;
  rule.head.predicate = goal;
  for (VariableId v : vars) rule.head.args.push_back(Term::Var(v));
  rule.body = std::move(body);
  rules_.push_back(std::move(rule));
  return rules_.size() - 1;
}

std::vector<size_t> Program::RuleIndexesFor(PredicateId p) const {
  std::vector<size_t> indexes;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].head.predicate == p) indexes.push_back(i);
  }
  return indexes;
}

bool Program::IsIdb(PredicateId p) const {
  for (const Rule& r : rules_) {
    if (r.head.predicate == p) return true;
  }
  return false;
}

PredicateDependencies AnalyzeDependencies(const Program& program) {
  PredicateDependencies deps;
  size_t n = program.predicates().size();
  deps.adjacency.assign(n, {});
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      deps.adjacency[r.head.predicate].push_back(a.predicate);
    }
  }
  for (auto& adj : deps.adjacency) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  // Iterative Tarjan SCC.
  deps.scc_of.assign(n, -1);
  std::vector<int> low(n, -1), num(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<PredicateId> stack;
  int counter = 0;

  struct Frame {
    PredicateId v;
    size_t child;
  };
  for (PredicateId root = 0; root < static_cast<PredicateId>(n); ++root) {
    if (num[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    num[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < deps.adjacency[f.v].size()) {
        PredicateId w = deps.adjacency[f.v][f.child++];
        if (num[w] == -1) {
          num[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], num[w]);
        }
      } else {
        if (low[f.v] == num[f.v]) {
          for (;;) {
            PredicateId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            deps.scc_of[w] = deps.scc_count;
            if (w == f.v) break;
          }
          ++deps.scc_count;
        }
        PredicateId child = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[child]);
        }
      }
    }
  }
  return deps;
}

std::vector<PredicateId> Program::RecursivePredicates() const {
  PredicateDependencies deps = AnalyzeDependencies(*this);
  size_t n = predicates_.size();
  // Count members per SCC; also find self-loops.
  std::vector<int> members(deps.scc_count, 0);
  for (size_t p = 0; p < n; ++p) members[deps.scc_of[p]]++;
  std::vector<PredicateId> recursive;
  for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
    bool self_loop =
        std::binary_search(deps.adjacency[p].begin(), deps.adjacency[p].end(), p);
    if (members[deps.scc_of[p]] > 1 || self_loop) recursive.push_back(p);
  }
  return recursive;
}

bool Program::IsRecursive(PredicateId p) const {
  std::vector<PredicateId> recursive = RecursivePredicates();
  return std::find(recursive.begin(), recursive.end(), p) != recursive.end();
}

Status Program::Validate(Database* db) const {
  PredicateId goal = GoalPredicate();
  if (goal < 0 || RuleIndexesFor(goal).empty()) {
    return FailedPreconditionError(
        "program has no query rule (head predicate 'goal')");
  }
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      if (a.predicate == goal) {
        return InvalidArgumentError(StrCat(
            "'goal' must not occur in a rule body: ",
            RuleToString(r, db != nullptr ? &db->symbols() : nullptr)));
      }
    }
    // Range restriction: head variables must occur in the body.
    std::vector<VariableId> body_vars;
    for (const Atom& a : r.body) CollectVariables(a, body_vars);
    std::vector<VariableId> head_vars;
    CollectVariables(r.head, head_vars);
    for (VariableId v : head_vars) {
      if (std::find(body_vars.begin(), body_vars.end(), v) ==
          body_vars.end()) {
        return InvalidArgumentError(
            StrCat("unsafe rule: head variable ", variables_.Name(v),
                   " does not occur in the body: ",
                   RuleToString(r, db != nullptr ? &db->symbols() : nullptr)));
      }
    }
  }
  if (db != nullptr) {
    for (PredicateId p = 0; p < static_cast<PredicateId>(predicates_.size());
         ++p) {
      const std::string& name = predicates_.Name(p);
      if (IsIdb(p)) {
        if (db->HasRelation(name)) {
          return InvalidArgumentError(
              StrCat("predicate ", name,
                     " has both rules (IDB) and EDB facts; the paper's "
                     "model requires EDB and IDB predicates disjoint"));
        }
      } else {
        // EDB predicate: ensure the relation exists with right arity.
        MPQE_RETURN_IF_ERROR(db->CreateRelation(name, predicates_.Arity(p)));
      }
    }
  }
  return Status::Ok();
}

std::string Program::TermToString(const Term& t,
                                  const SymbolTable* symbols) const {
  if (t.is_variable()) return variables_.Name(t.var());
  return t.constant().ToString(symbols);
}

std::string Program::AtomToString(const Atom& a,
                                  const SymbolTable* symbols) const {
  return StrCat(predicates_.Name(a.predicate), "(",
                StrJoin(a.args, ", ",
                        [this, symbols](std::ostream& os, const Term& t) {
                          os << TermToString(t, symbols);
                        }),
                ")");
}

std::string Program::RuleToString(const Rule& r,
                                  const SymbolTable* symbols) const {
  std::string out = AtomToString(r.head, symbols);
  if (!r.body.empty()) {
    out += " :- ";
    out += StrJoin(r.body, ", ",
                   [this, symbols](std::ostream& os, const Atom& a) {
                     os << AtomToString(a, symbols);
                   });
  }
  out += ".";
  return out;
}

std::string Program::ToString(const SymbolTable* symbols) const {
  std::string out;
  for (const Rule& r : rules_) {
    out += RuleToString(r, symbols);
    out += "\n";
  }
  return out;
}

}  // namespace mpqe
