#include "datalog/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace mpqe {
namespace {

enum class TokenKind {
  kIdent,     // lowercase-leading identifier
  kVariable,  // uppercase/underscore-leading identifier
  kInteger,
  kString,
  kLparen,
  kRparen,
  kComma,
  kPeriod,
  kIf,     // :-
  kQuery,  // ?-
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  int64_t integer = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<Token> Next() {
    SkipWhitespaceAndComments();
    Token token;
    token.line = line_;
    if (pos_ >= text_.size()) {
      token.kind = TokenKind::kEof;
      return token;
    }
    char c = text_[pos_];
    if (c == '(') return Punct(TokenKind::kLparen);
    if (c == ')') return Punct(TokenKind::kRparen);
    if (c == ',') return Punct(TokenKind::kComma);
    if (c == '.') return Punct(TokenKind::kPeriod);
    if (c == ':' && Peek(1) == '-') return Punct2(TokenKind::kIf);
    if (c == '?' && Peek(1) == '-') return Punct2(TokenKind::kQuery);
    if (c == '"') return LexString();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexInteger();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier();
    }
    return InvalidArgumentError(
        StrCat("line ", line_, ": unexpected character '", c, "'"));
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  Token Punct(TokenKind kind) {
    Token t{kind, std::string(1, text_[pos_]), 0, line_};
    ++pos_;
    return t;
  }

  Token Punct2(TokenKind kind) {
    Token t{kind, std::string(text_.substr(pos_, 2)), 0, line_};
    pos_ += 2;
    return t;
  }

  StatusOr<Token> LexString() {
    size_t start = ++pos_;  // skip opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError(
          StrCat("line ", line_, ": unterminated string literal"));
    }
    Token t{TokenKind::kString, std::string(text_.substr(start, pos_ - start)),
            0, line_};
    ++pos_;  // skip closing quote
    return t;
  }

  StatusOr<Token> LexInteger() {
    size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    Token t;
    t.kind = TokenKind::kInteger;
    t.text = std::string(text_.substr(start, pos_ - start));
    t.line = line_;
    errno = 0;
    char* end = nullptr;
    t.integer = std::strtoll(t.text.c_str(), &end, 10);
    if (errno == ERANGE || end != t.text.c_str() + t.text.size()) {
      return InvalidArgumentError(
          StrCat("line ", line_, ": integer literal out of range: ", t.text));
    }
    return t;
  }

  StatusOr<Token> LexIdentifier() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    Token t;
    t.text = std::string(text_.substr(start, pos_ - start));
    t.line = line_;
    char first = t.text[0];
    t.kind = (std::isupper(static_cast<unsigned char>(first)) || first == '_')
                 ? TokenKind::kVariable
                 : TokenKind::kIdent;
    return t;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class ParserImpl {
 public:
  // `fact_db` may be null: then the text must contain rules/queries
  // only and any fact is a parse error (the rules-only entry point of
  // Engine::Prepare, where the EDB snapshot is immutable).
  ParserImpl(std::string_view text, Program& program, SymbolTable& symbols,
             Database* fact_db)
      : lexer_(text), program_(program), symbols_(symbols),
        fact_db_(fact_db) {}

  Status Run() {
    MPQE_RETURN_IF_ERROR(Advance());
    while (current_.kind != TokenKind::kEof) {
      MPQE_RETURN_IF_ERROR(ParseStatement());
    }
    return Status::Ok();
  }

 private:
  Status Advance() {
    MPQE_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::Ok();
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (current_.kind != kind) {
      return InvalidArgumentError(StrCat("line ", current_.line, ": expected ",
                                         what, ", found '", current_.text,
                                         "'"));
    }
    return Advance();
  }

  // statement := '?-' atoms '.' | atom '.' | atom ':-' atoms '.'
  Status ParseStatement() {
    clause_variables_.clear();
    ++clause_counter_;
    if (current_.kind == TokenKind::kQuery) {
      MPQE_RETURN_IF_ERROR(Advance());
      std::vector<Atom> body;
      MPQE_RETURN_IF_ERROR(ParseAtoms(body));
      MPQE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
      MPQE_ASSIGN_OR_RETURN(size_t ignored, program_.AddQuery(std::move(body)));
      (void)ignored;
      return Status::Ok();
    }
    int line = current_.line;
    Atom head;
    MPQE_RETURN_IF_ERROR(ParseAtom(head));
    if (current_.kind == TokenKind::kPeriod) {
      MPQE_RETURN_IF_ERROR(Advance());
      return AddFact(head, line);
    }
    MPQE_RETURN_IF_ERROR(Expect(TokenKind::kIf, "':-' or '.'"));
    Rule rule;
    rule.head = std::move(head);
    MPQE_RETURN_IF_ERROR(ParseAtoms(rule.body));
    MPQE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    program_.AddRule(std::move(rule));
    return Status::Ok();
  }

  Status AddFact(const Atom& atom, int line) {
    if (fact_db_ == nullptr) {
      return InvalidArgumentError(
          StrCat("line ", line, ": fact for ",
                 program_.predicates().Name(atom.predicate),
                 " not allowed here; prepared-query text holds rules and "
                 "queries only (the EDB comes from the snapshot)"));
    }
    Tuple tuple;
    tuple.reserve(atom.args.size());
    for (const Term& t : atom.args) {
      if (t.is_variable()) {
        return InvalidArgumentError(
            StrCat("line ", line, ": fact for ",
                   program_.predicates().Name(atom.predicate),
                   " contains a variable; facts must be ground"));
      }
      tuple.push_back(t.constant());
    }
    MPQE_ASSIGN_OR_RETURN(
        bool inserted,
        fact_db_->InsertFact(program_.predicates().Name(atom.predicate),
                             std::move(tuple)));
    (void)inserted;  // duplicate facts are silently merged
    return Status::Ok();
  }

  Status ParseAtoms(std::vector<Atom>& out) {
    for (;;) {
      Atom atom;
      MPQE_RETURN_IF_ERROR(ParseAtom(atom));
      out.push_back(std::move(atom));
      if (current_.kind != TokenKind::kComma) return Status::Ok();
      MPQE_RETURN_IF_ERROR(Advance());
    }
  }

  // atom := IDENT ['(' [term (',' term)*] ')']
  Status ParseAtom(Atom& out) {
    if (current_.kind != TokenKind::kIdent) {
      return InvalidArgumentError(StrCat("line ", current_.line,
                                         ": expected predicate name, found '",
                                         current_.text, "'"));
    }
    std::string name = current_.text;
    MPQE_RETURN_IF_ERROR(Advance());
    std::vector<Term> args;
    if (current_.kind == TokenKind::kLparen) {
      MPQE_RETURN_IF_ERROR(Advance());
      // `p()` is a zero-arity atom; printers emit the parens.
      while (current_.kind != TokenKind::kRparen) {
        MPQE_ASSIGN_OR_RETURN(Term term, ParseTerm());
        args.push_back(term);
        if (current_.kind == TokenKind::kComma) {
          MPQE_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
      MPQE_RETURN_IF_ERROR(Expect(TokenKind::kRparen, "')'"));
    }
    MPQE_ASSIGN_OR_RETURN(out.predicate,
                          program_.predicates().Intern(name, args.size()));
    out.args = std::move(args);
    return Status::Ok();
  }

  StatusOr<Term> ParseTerm() {
    Token t = current_;
    switch (t.kind) {
      case TokenKind::kVariable: {
        MPQE_RETURN_IF_ERROR(Advance());
        return Term::Var(ClauseVariable(t.text));
      }
      case TokenKind::kIdent:
      case TokenKind::kString: {
        MPQE_RETURN_IF_ERROR(Advance());
        return Term::Const(symbols_.Symbol(t.text));
      }
      case TokenKind::kInteger: {
        MPQE_RETURN_IF_ERROR(Advance());
        return Term::Const(Value::Int(t.integer));
      }
      default:
        return InvalidArgumentError(StrCat("line ", t.line,
                                           ": expected term, found '", t.text,
                                           "'"));
    }
  }

  // Variables are clause-scoped: "X" in two clauses is two distinct
  // variables. "_" is a fresh anonymous variable at each occurrence.
  VariableId ClauseVariable(const std::string& name) {
    if (name == "_") return program_.variables().Fresh("anon");
    auto it = clause_variables_.find(name);
    if (it != clause_variables_.end()) return it->second;
    VariableId id = program_.variables().Intern(
        StrCat(name, "#", clause_counter_));
    clause_variables_.emplace(name, id);
    return id;
  }

  Lexer lexer_;
  Program& program_;
  SymbolTable& symbols_;
  Database* fact_db_;
  Token current_{TokenKind::kEof, "", 0, 0};
  std::unordered_map<std::string, VariableId> clause_variables_;
  int clause_counter_ = 0;
};

}  // namespace

Status ParseInto(std::string_view text, Program& program, Database& db) {
  ParserImpl impl(text, program, db.symbols(), &db);
  return impl.Run();
}

Status ParseRulesInto(std::string_view text, Program& program,
                      SymbolTable& symbols) {
  ParserImpl impl(text, program, symbols, nullptr);
  return impl.Run();
}

StatusOr<ParsedUnit> Parse(std::string_view text) {
  ParsedUnit unit;
  MPQE_RETURN_IF_ERROR(ParseInto(text, unit.program, unit.database));
  return unit;
}

}  // namespace mpqe
