// Unification for the function-free case: substitutions, most general
// unifiers, renaming apart, and variant testing. Graph construction
// (§2.1) unifies rule heads with subgoals and tests whether a new
// subgoal is a variant of an ancestor.

#ifndef MPQE_DATALOG_UNIFY_H_
#define MPQE_DATALOG_UNIFY_H_

#include <optional>
#include <unordered_map>

#include "datalog/ast.h"

namespace mpqe {

// A substitution maps variables to terms (constants or variables).
// Kept idempotent: no bound variable appears in any binding's image.
class Substitution {
 public:
  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }

  /// The binding for `v`, or nullopt.
  std::optional<Term> Lookup(VariableId v) const;

  /// Follows variable-to-variable chains to the final term.
  Term Resolve(Term t) const;

  /// Binds v := t (t already resolved). Re-resolves existing images so
  /// the substitution stays idempotent.
  void Bind(VariableId v, Term t);

  Term Apply(const Term& t) const { return Resolve(t); }
  Atom Apply(const Atom& atom) const;
  Rule Apply(const Rule& rule) const;

  const std::unordered_map<VariableId, Term>& bindings() const {
    return bindings_;
  }

 private:
  std::unordered_map<VariableId, Term> bindings_;
};

/// Most general unifier of two atoms, or nullopt if they don't unify
/// (different predicates, arities, or clashing constants).
std::optional<Substitution> Mgu(const Atom& a, const Atom& b);

/// Extends `subst` so it also unifies `a` and `b`; nullopt on failure
/// (in which case `subst` may be partially extended — pass a copy if
/// rollback matters).
bool ExtendMgu(const Atom& a, const Atom& b, Substitution& subst);

/// Returns `rule` with every variable replaced by a fresh one from
/// `pool` ("began with all new variables", §2.1).
Rule RenameApart(const Rule& rule, VariablePool& pool);

/// True iff `a` and `b` are variants: identical up to a bijective
/// renaming of variables (constants must match exactly). Repeated-
/// variable patterns must correspond, e.g. p(X,X) is not a variant of
/// p(X,Y).
bool IsVariant(const Atom& a, const Atom& b);

}  // namespace mpqe

#endif  // MPQE_DATALOG_UNIFY_H_
