// The public entry point: evaluate a Datalog query over an EDB with
// the paper's message-passing framework.
//
// Quickstart:
//   auto unit = Parse(R"(
//     edge(a, b).  edge(b, c).
//     path(X, Y) :- edge(X, Y).
//     path(X, Y) :- edge(X, Z), path(Z, Y).
//     ?- path(a, W).
//   )");
//   EvaluationOptions options;
//   auto result = Evaluate(unit->program, unit->database, options);
//   // result->answers is the goal relation {(b), (c)}.
//
// Observability (see DESIGN.md § Observability): attach any number of
// ExecutionObservers via EvaluationOptions::observers — e.g. a
// TraceExporter for a chrome://tracing timeline, a MessageTrace for a
// textual send log, or a custom observer for test assertions — and/or
// point EvaluationOptions::metrics at a MetricsRegistry to collect
// named counters and histograms:
//   TraceExporter trace;
//   MetricsRegistry metrics;
//   options.observers.push_back(&trace);
//   options.metrics = &metrics;
//   auto result = Evaluate(...);
//   trace.WriteFile("trace.json");   // load in chrome://tracing
//   std::cout << metrics.ToString();

#ifndef MPQE_ENGINE_EVALUATOR_H_
#define MPQE_ENGINE_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"
#include "engine/node_processes.h"
#include "graph/rule_goal_graph.h"
#include "msg/network.h"
#include "obs/flight_recorder.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "relational/database.h"
#include "sips/strategy.h"

namespace mpqe {

// The options of an evaluation split along the engine lifecycle
// (DESIGN.md §11): PlanOptions govern query *compilation* (parse,
// validate, adorn, sips, graph build — everything a PreparedQuery
// caches), SessionOptions govern one *execution* of a compiled plan
// (scheduler, wire format, observers). EvaluationOptions, the one-shot
// Evaluate() compatibility surface, is simply both halves.

struct PlanOptions {
  // Information passing strategy name (see MakeStrategyByName):
  // "greedy" (the paper's default), "left_to_right", "qual_tree",
  // "qual_tree_or_greedy", "no_sips" (McKay-Shapiro-style baseline).
  std::string strategy = "greedy";

  GraphBuildOptions graph_options;

  // Skip Program::Validate (when the caller already validated).
  bool skip_validation = false;

  /// Checks the plan options for configuration errors. The Status
  /// message names the offending field ("strategy: ...").
  Status Validate() const;
};

struct SessionOptions {
  SchedulerKind scheduler = SchedulerKind::kDeterministic;
  uint64_t seed = 1;    // kRandom
  int workers = 4;      // kThreaded

  // Package the messages a node emits while handling one message into
  // per-destination batch envelopes (the paper's footnote 2): far
  // fewer physical messages, identical logical traffic and answers.
  bool batch_messages = false;

  // Accumulate the answer tuples a node emits on one stream while
  // handling one message into a columnar TupleSegment (msg/segment.h)
  // delivered as a single shared kTupleSegment message; consumers
  // dedup/join whole segments and fan-out shares one segment object
  // across consumers. Identical answers and logical traffic, far fewer
  // physical messages and per-tuple costs. Independent of
  // batch_messages (segments ride inside envelopes when both are on).
  bool segment_messages = true;

  // Flush an accumulating segment early once it reaches this many rows
  // (bounds per-handler buffering; must be >= 1).
  size_t segment_max_rows = 1024;

  // Adaptive segment sizing: each (node, destination) stream starts at
  // the segment_max_rows cap and doubles it toward this limit after
  // consecutive full seals, so steady-state recursion ships fewer,
  // fatter batches while bursty streams keep small segments. Must be 0
  // (growth disabled, fixed caps) or >= segment_max_rows.
  size_t segment_max_rows_limit = 8192;

  // Absorb arriving segments through the vectorized batch kernels
  // (Relation::InsertSegment — one hashing pass and one dedup probe
  // per row, whole-segment forwarding on goal nodes). false restores
  // row-at-a-time absorption; answers, duplicate drops, and proof
  // trees are pinned identical by tests/segment_test.cc.
  bool vectorized_segments = true;

  // Safety valve against runaway computations (0 = unlimited).
  uint64_t max_messages = 0;

  // Fill EvaluationResult::node_counters with a per-node breakdown.
  bool collect_node_counters = false;

  // Ablation: disable EDB hash indexes (EDB leaves scan instead of
  // probe). Answers are unchanged; only time differs.
  bool use_edb_indexes = true;

  // Execution observers (not owned; must outlive the evaluation).
  // They receive typed events from every layer — sends, deliveries,
  // node firings, phases, termination protocol. See obs/observer.h
  // for the callback set and threading contract.
  std::vector<ExecutionObserver*> observers;

  // When set, the evaluation feeds this registry live (via an
  // internal MetricsObserver) and dumps the end-of-run engine /
  // per-predicate counters into it. Not owned.
  MetricsRegistry* metrics = nullptr;

  // Record per-arc send counters in `metrics` (cardinality = number
  // of live graph edges; off by default).
  bool metrics_per_arc = false;

  // Attach a ProfilingObserver for the run and fill
  // EvaluationResult::profile with per-node / per-SCC attribution and
  // §4.3 cost estimates sized from the database (see obs/profiler.h).
  // When `metrics` is also set, the per-node counters are additionally
  // dumped as aggregated/node/<id>/<field> entries.
  bool profile = false;

  // Record derivation provenance: every tuple first inserted into any
  // node relation gets a stable id and a derivation record (rule,
  // node, ordered input tuples, source message), assembled into
  // EvaluationResult::lineage at the end of the run. Supports WHY
  // queries / minimal proof trees; see obs/lineage.h. Adds one branch
  // per insert when off; roughly doubles per-hop cost when on.
  bool lineage = false;

  // Engine log level ("debug", "info", "warning", "error", "off").
  // Empty defers to the MPQE_LOG_LEVEL environment variable; when
  // neither names a level, engine logging stays off entirely (no
  // observer is attached). Logging goes to stderr with thread tags and
  // never changes evaluation behavior or results.
  std::string log_level;

  // Stall heartbeat for the threaded scheduler: when > 0 and no
  // message is delivered for this many milliseconds, log per-SCC queue
  // depths and in-flight counts (at WARNING, repeating each stalled
  // interval). 0 disables; other schedulers ignore it (they cannot
  // stall silently).
  int progress_interval_ms = 0;

  // Engine-minted stable query id (DESIGN.md §12). Nonzero iff the
  // session came from Engine::CreateSession; published to every
  // observer as a SessionStartEvent before any other event, so trace
  // spans, log lines, lineage dumps and the engine query log all carry
  // the same id. The one-shot Evaluate path leaves it 0 and its
  // outputs stay id-free.
  uint64_t query_id = 0;

  // Engine telemetry sink (not owned; set by Engine::CreateSession,
  // never by callers). When set, the stall heartbeat additionally
  // publishes per-SCC queue depths as live gauges.
  EngineTelemetry* telemetry = nullptr;

  // Flight recorder sink (not owned; set by Engine::CreateSession when
  // EngineOptions::flight_recorder is on, or directly by tests). When
  // set, the session attaches a FlightSessionObserver so sends,
  // deliveries, node fires, phases and termination-protocol events
  // land in the engine's black box (obs/flight_recorder.h).
  FlightRecorder* flight = nullptr;

  // Stall watchdog (threaded scheduler only): when > 0 and the session
  // makes no delivery progress for this many milliseconds, build a
  // FlightDump diagnostic bundle — flight-recorder contents, per-SCC
  // Fig. 2 protocol state, per-node queue depths — and hand it to
  // flight_dump_sink (once per stall episode). Builds on the
  // progress_interval_ms heartbeat; both may be set, and the monitor
  // runs at the smaller interval. 0 disables.
  int watchdog_stall_ms = 0;

  // Receives the watchdog's diagnostic bundle. Called on the monitor
  // thread while the session is stalled; must not block for long. Set
  // by Engine::CreateSession (serialize + persist to debug_dump_dir);
  // tests may set it directly. Unset drops dumps (the stall is still
  // logged and counted).
  std::function<void(const FlightDump&)> flight_dump_sink;

  // Fault injection for watchdog tests: park the process of this graph
  // node for fault_park_ms once, on its first work message
  // (node_processes.cc). kNoNode = off.
  NodeId fault_park_node = kNoNode;
  int fault_park_ms = 0;

  /// Checks the session options for configuration errors — workers <
  /// 1, out-of-range scheduler — and returns an InvalidArgument Status
  /// naming the offending field ("workers: ...") instead of letting
  /// the misconfiguration surface deep inside the run. Called by the
  /// session builder (Engine::CreateSession) and by
  /// Evaluate/EvaluateWithGraph before any work.
  Status Validate() const;
};

// The one-shot compatibility surface: both halves in one flat struct,
// exactly as the pre-Engine API exposed them.
struct EvaluationOptions : public PlanOptions, public SessionOptions {
  /// Validates both halves (PlanOptions then SessionOptions).
  Status Validate() const;
};

// Per-node counter row (populated when
// EvaluationOptions::collect_node_counters is set).
struct NodeCounters {
  NodeId node = kNoNode;
  EngineCounters counters;
};

struct EvaluationResult {
  // The goal relation (arity = the goal predicate's arity).
  Relation answers{0};

  // True when the computation finished through the end-message
  // protocol (the sink received `end`), as opposed to mere network
  // quiescence — Theorem 3.1 in action.
  bool ended_by_protocol = false;
  // True when every mailbox also drained (always checked after stop).
  bool quiescent_after = false;

  MessageStats message_stats;
  EngineCounters counters;
  GraphStats graph_stats;
  uint64_t delivered = 0;

  // One row per graph node (empty unless requested). Use together
  // with RuleGoalGraph::NodeLabel to see where tuples accumulate.
  std::vector<NodeCounters> node_counters;

  // The profiler's report (set iff EvaluationOptions::profile), with
  // cost estimates already filled from the database. Shared so the
  // result stays copyable.
  std::shared_ptr<const ProfileReport> profile;

  // The derivation DAG (set iff EvaluationOptions::lineage): one
  // record per distinct tuple, EDB leaves resolved, minimal depths
  // computed. Query with Match/FormatProof; see obs/lineage.h. Shared
  // so the result stays copyable.
  std::shared_ptr<const LineageReport> lineage;
};

/// Builds the rule/goal graph for `program`, wires the process
/// network, runs it, and returns the goal relation. `db` must hold the
/// EDB; indexes may be added to its relations.
///
/// This is a thin compatibility wrapper over the prepared-query
/// lifecycle (engine/engine.h): it compiles the plan, runs one
/// exclusive session over it, and throws the plan away. Callers that
/// dispatch the same program repeatedly or concurrently should use
/// Engine::Prepare + QuerySession instead.
StatusOr<EvaluationResult> Evaluate(const Program& program, Database& db,
                                    const EvaluationOptions& options = {});

/// As Evaluate, but over a pre-built graph (reuse across EDB scales;
/// the graph's program must match).
StatusOr<EvaluationResult> EvaluateWithGraph(const RuleGoalGraph& graph,
                                             Database& db,
                                             const EvaluationOptions& options = {});

/// The run-time half on its own: executes one query session over an
/// already-compiled plan. `edb_index_mode` selects whether EDB leaves
/// may register missing hash indexes on `db` (kRegister — exclusive
/// evaluations) or must treat the database as immutable and only probe
/// indexes pre-built at plan time (kLookupOnly — concurrent sessions
/// over a shared DatabaseSnapshot; missing indexes degrade to scans).
/// QuerySession::Run and EvaluateWithGraph both land here.
StatusOr<EvaluationResult> RunSession(
    const RuleGoalGraph& graph, Database& db, const SessionOptions& options,
    EdbIndexMode edb_index_mode = EdbIndexMode::kRegister);

}  // namespace mpqe

#endif  // MPQE_ENGINE_EVALUATOR_H_
