// A minimal blocking HTTP/1.0 stats listener (DESIGN.md §12). Off by
// default; the Engine starts one when EngineOptions::stats_port >= 0
// and registers three routes:
//
//   GET /metrics  Prometheus text exposition of the engine telemetry
//   GET /queries  the structured query log as JSON
//   GET /healthz  "ok" (liveness)
//
// Deliberately tiny: one acceptor thread, one connection served at a
// time, request fully parsed from the first line only (method + path),
// response written with Content-Length and the connection closed. That
// is all a scrape loop or `curl` needs, and it keeps the engine free
// of any HTTP library dependency. Not a general web server: no
// keep-alive, no TLS, no request bodies — and it binds loopback by
// default on purpose.
//
// The class itself is route-agnostic (handlers are plain callables
// returning the body), so tests can serve canned payloads without an
// Engine.

#ifndef MPQE_ENGINE_STATS_SERVER_H_
#define MPQE_ENGINE_STATS_SERVER_H_

#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace mpqe {

struct StatsServerOptions {
  // TCP port to listen on. 0 asks the OS for an ephemeral port (read
  // it back from port() after Start — what tests use).
  int port = 0;

  // Loopback by default: the stats surface is an operator tool, not a
  // public API; exposing it wider is an explicit opt-in.
  std::string bind_address = "127.0.0.1";

  // Per-connection recv/send timeout. The acceptor serves one
  // connection at a time, so without a deadline a client that connects
  // and goes silent would starve every later scrape AND wedge Stop()
  // (which only interrupts the listen fd, not a blocked recv).
  // 0 disables (tests only).
  int io_timeout_ms = 5000;
};

class StatsServer {
 public:
  // Produces a response body for one GET. Called on the acceptor
  // thread; must be thread-safe against the engine it reads.
  using Handler = std::function<std::string()>;

  explicit StatsServer(StatsServerOptions options = {});
  ~StatsServer();  // stops the acceptor if still running

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Registers `handler` for exact-match GET `path` (e.g. "/metrics"),
  /// serving `content_type`. Call before Start.
  void AddRoute(const std::string& path, const std::string& content_type,
                Handler handler);

  /// Binds, listens and spawns the acceptor thread. Fails with
  /// kResourceExhausted when the address cannot be bound.
  Status Start();

  /// Stops accepting and joins the acceptor thread. Idempotent.
  void Stop();

  bool running() const { return listen_fd_ >= 0; }

  /// The actually bound port (resolves port 0 after Start).
  int port() const { return bound_port_; }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  StatsServerOptions options_;
  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::thread acceptor_;
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_STATS_SERVER_H_
