#include "engine/evaluator.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

StatusOr<EvaluationResult> EvaluateWithGraph(const RuleGoalGraph& graph,
                                             Database& db,
                                             const EvaluationOptions& options) {
  Network network;
  if (options.observer) network.SetSendObserver(options.observer);
  EngineShared shared;
  shared.graph = &graph;
  shared.db = &db;
  shared.batch_messages = options.batch_messages;
  shared.use_edb_indexes = options.use_edb_indexes;

  // One process per graph node (pid == node id), plus the sink. The
  // pid map is filled up front because process constructors plan
  // against it.
  for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
    shared.node_pid.push_back(id);
  }
  std::vector<NodeProcessBase*> node_processes;
  node_processes.reserve(graph.size());
  for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
    auto process = MakeNodeProcess(shared, id);
    node_processes.push_back(process.get());
    ProcessId pid = network.AddProcess(std::move(process));
    MPQE_CHECK(pid == id);
  }
  size_t goal_arity =
      graph.program().predicates().Arity(graph.program().GoalPredicate());
  auto sink = std::make_unique<SinkProcess>(shared.node_pid[graph.root()],
                                            goal_arity);
  SinkProcess* sink_ptr = sink.get();
  shared.sink_pid = network.AddProcess(std::move(sink));

  // Engage the Fig. 2 protocol for members of nontrivial SCCs.
  for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
    const GraphNode& n = graph.node(id);
    if (n.scc_is_trivial) continue;
    std::vector<ProcessId> children;
    for (NodeId c : n.bfst_children) children.push_back(shared.node_pid[c]);
    NodeId leader = graph.scc_leader(n.scc_id);
    node_processes[id]->ConfigureTermination(
        &network, n.is_leader, shared.node_pid[leader],
        n.bfst_parent == kNoNode ? kNoProcess : shared.node_pid[n.bfst_parent],
        std::move(children));
  }

  StatusOr<RunResult> run = InternalError("scheduler did not run");
  switch (options.scheduler) {
    case SchedulerKind::kDeterministic:
      run = network.RunDeterministic(options.max_messages);
      break;
    case SchedulerKind::kRandom:
      run = network.RunRandom(options.seed, options.max_messages);
      break;
    case SchedulerKind::kThreaded:
      run = network.RunThreaded(options.workers, options.max_messages);
      break;
  }
  if (!run.ok()) return run.status();

  EvaluationResult result;
  result.answers = sink_ptr->answers();
  result.ended_by_protocol = sink_ptr->done();
  result.quiescent_after = network.TotalPending() == 0;
  result.message_stats = network.stats();
  result.graph_stats = graph.Stats();
  result.delivered = run->delivered;
  for (NodeProcessBase* p : node_processes) {
    p->AccumulateCounters(result.counters);
  }
  if (options.collect_node_counters) {
    result.node_counters.reserve(node_processes.size());
    for (NodeId id = 0; id < static_cast<NodeId>(node_processes.size());
         ++id) {
      NodeCounters row;
      row.node = id;
      node_processes[id]->AccumulateCounters(row.counters);
      result.node_counters.push_back(std::move(row));
    }
  }
  if (!result.ended_by_protocol && !run->quiescent) {
    return InternalError(
        "evaluation stopped without protocol end or quiescence");
  }
  return result;
}

StatusOr<EvaluationResult> Evaluate(const Program& program, Database& db,
                                    const EvaluationOptions& options) {
  if (!options.skip_validation) {
    MPQE_RETURN_IF_ERROR(program.Validate(&db));
  }
  MPQE_ASSIGN_OR_RETURN(std::unique_ptr<SipsStrategy> strategy,
                        MakeStrategyByName(options.strategy));
  MPQE_ASSIGN_OR_RETURN(
      std::unique_ptr<RuleGoalGraph> graph,
      RuleGoalGraph::Build(program, *strategy, options.graph_options));
  return EvaluateWithGraph(*graph, db, options);
}

}  // namespace mpqe
