#include "engine/evaluator.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/logging_observer.h"

namespace mpqe {

Status PlanOptions::Validate() const {
  StatusOr<std::unique_ptr<SipsStrategy>> made =
      MakeStrategyByName(strategy);
  if (!made.ok()) {
    return InvalidArgumentError(
        StrCat("strategy: ", made.status().message()));
  }
  if (graph_options.max_nodes < 1) {
    return InvalidArgumentError(
        StrCat("graph_options.max_nodes: must be >= 1, got ",
               graph_options.max_nodes));
  }
  return Status::Ok();
}

Status SessionOptions::Validate() const {
  switch (scheduler) {
    case SchedulerKind::kDeterministic:
    case SchedulerKind::kRandom:
    case SchedulerKind::kThreaded:
      break;
    default:
      return InvalidArgumentError(
          StrCat("scheduler: invalid value ", static_cast<int>(scheduler)));
  }
  // `workers` only drives the threaded scheduler, but a non-positive
  // count is nonsense under every configuration — reject it early so
  // a later scheduler switch does not start failing mysteriously.
  if (workers < 1) {
    return InvalidArgumentError(
        StrCat("workers: must be >= 1, got ", workers));
  }
  if (segment_messages && segment_max_rows < 1) {
    return InvalidArgumentError("segment_max_rows: must be >= 1");
  }
  if (segment_max_rows_limit != 0 &&
      segment_max_rows_limit < segment_max_rows) {
    return InvalidArgumentError(
        "segment_max_rows_limit: must be 0 (fixed caps) or >= "
        "segment_max_rows");
  }
  // Empty log_level is fine (defers to MPQE_LOG_LEVEL); an explicit
  // but unknown name is a configuration error.
  StatusOr<std::optional<LogLevel>> level = EngineLogLevelFromName(log_level);
  if (!level.ok()) {
    return InvalidArgumentError(
        StrCat("log_level: ", level.status().message()));
  }
  if (progress_interval_ms < 0) {
    return InvalidArgumentError(
        StrCat("progress_interval_ms: must be >= 0, got ",
               progress_interval_ms));
  }
  if (watchdog_stall_ms < 0) {
    return InvalidArgumentError(
        StrCat("watchdog_stall_ms: must be >= 0, got ", watchdog_stall_ms));
  }
  if (fault_park_ms < 0) {
    return InvalidArgumentError(
        StrCat("fault_park_ms: must be >= 0, got ", fault_park_ms));
  }
  return Status::Ok();
}

Status EvaluationOptions::Validate() const {
  MPQE_RETURN_IF_ERROR(PlanOptions::Validate());
  return SessionOptions::Validate();
}

namespace {

// The observers of one evaluation: the caller's ExecutionObservers,
// plus (when configured) an internal MetricsObserver and the
// ProfilingObserver backing EvaluationOptions::profile. The internal
// observers live exactly as long as the evaluation.
struct ScopedObservers {
  ObserverList list;
  std::optional<MetricsObserver> metrics;
  std::optional<ProfilingObserver> profiler;
  std::optional<LineageObserver> lineage;
  std::optional<LoggingObserver> logger;
  std::optional<FlightSessionObserver> flight;

  explicit ScopedObservers(const SessionOptions& options) {
    for (ExecutionObserver* o : options.observers) list.Add(o);
    if (options.flight != nullptr) {
      flight.emplace(options.flight, options.query_id);
      list.Add(&*flight);
    }
    if (options.metrics != nullptr) {
      MetricsObserver::Options metrics_options;
      metrics_options.per_arc = options.metrics_per_arc;
      metrics.emplace(options.metrics, metrics_options);
      list.Add(&*metrics);
    }
    if (options.profile) {
      profiler.emplace();
      list.Add(&*profiler);
    }
    if (options.lineage) {
      lineage.emplace();
      list.Add(&*lineage);
    }
    // No level resolved (neither the option nor MPQE_LOG_LEVEL names
    // one) means no observer at all — the zero-observer fast path
    // stays intact by default.
    std::optional<LogLevel> level = ResolveEngineLogLevel(options.log_level);
    if (level.has_value()) {
      logger.emplace(*level);
      list.Add(&*logger);
    }
  }
};

// RAII phase reporter: begin on construction, end on destruction.
class ScopedPhase {
 public:
  ScopedPhase(const ObserverList& list, Phase phase)
      : list_(list), phase_(phase) {
    if (list_.empty()) return;
    list_.NotifyPhase(PhaseEvent{phase_, /*begin=*/true});
  }
  ~ScopedPhase() {
    if (list_.empty()) return;
    list_.NotifyPhase(PhaseEvent{phase_, /*begin=*/false});
  }

 private:
  const ObserverList& list_;
  Phase phase_;
};

// The predicate a graph node computes/serves (for the per-predicate
// metric dump).
PredicateId NodePredicate(const GraphNode& node) {
  return node.kind == NodeKind::kRule ? node.rule.head.predicate
                                      : node.atom.predicate;
}

void DumpMetrics(const SessionOptions& options, const RuleGoalGraph& graph,
                 const std::vector<NodeProcessBase*>& node_processes,
                 const EvaluationResult& result) {
  MetricsRegistry& registry = *options.metrics;
  registry.GetCounter("engine/stored_tuples")
      .Increment(result.counters.stored_tuples);
  registry.GetCounter("engine/duplicate_drops")
      .Increment(result.counters.duplicate_drops);
  registry.GetCounter("engine/contexts").Increment(result.counters.contexts);
  registry.GetCounter("engine/max_node_relation")
      .Increment(result.counters.max_node_relation);
  registry.GetCounter("engine/protocol_waves")
      .Increment(result.counters.protocol_waves);
  registry.GetCounter("run/answers").Increment(result.answers.size());
  registry.GetCounter("run/delivered").Increment(result.delivered);
  registry.GetCounter("run/ended_by_protocol")
      .Increment(result.ended_by_protocol ? 1 : 0);

  const PredicatePool& predicates = graph.program().predicates();
  for (NodeId id = 0; id < static_cast<NodeId>(node_processes.size()); ++id) {
    EngineCounters row;
    node_processes[id]->AccumulateCounters(row);
    const std::string& name = predicates.Name(NodePredicate(graph.node(id)));
    registry.GetCounter(StrCat("predicate/", name, "/stored_tuples"))
        .Increment(row.stored_tuples);
    registry.GetCounter(StrCat("predicate/", name, "/dedup_hits"))
        .Increment(row.duplicate_drops);
  }
}

// Per-node profiler counters as aggregated/node/<id>/<field> metric
// entries (the MetricsRegistry dump is the one sink CI scrapes).
void DumpProfileMetrics(const ProfileReport& report,
                        MetricsRegistry& registry) {
  for (const NodeProfile& n : report.nodes) {
    std::string prefix = StrCat("aggregated/node/", n.node, "/");
    registry.GetCounter(StrCat(prefix, "fires")).Increment(n.fires);
    registry.GetCounter(StrCat(prefix, "tuples_in")).Increment(n.tuples_in);
    registry.GetCounter(StrCat(prefix, "tuples_out")).Increment(n.tuples_out);
    registry.GetCounter(StrCat(prefix, "dedup_hits")).Increment(n.dedup_hits);
    registry.GetCounter(StrCat(prefix, "msgs_in")).Increment(n.msgs_in);
    registry.GetCounter(StrCat(prefix, "msgs_out")).Increment(n.msgs_out);
    registry.GetCounter(StrCat(prefix, "segments_out")).Increment(n.segments_out);
    registry.GetCounter(StrCat(prefix, "segment_rows_out"))
        .Increment(n.segment_rows_out);
    registry.GetCounter(StrCat(prefix, "batch_rows_in"))
        .Increment(n.batch_rows_in);
    registry.GetCounter(StrCat(prefix, "batch_dedup_hits"))
        .Increment(n.batch_dedup_hits);
    registry.GetCounter(StrCat(prefix, "fire_ns")).Increment(n.fire_ns);
    registry.GetCounter(StrCat(prefix, "queue_wait_ns"))
        .Increment(n.queue_wait_ns);
  }
}

// The stall-heartbeat sink: one WARNING line with the nonempty
// mailboxes grouped by strong component (runs on the monitor thread;
// MPQE_LOG serializes whole lines).
void LogStall(const RuleGoalGraph& graph, const StallInfo& info) {
  std::map<int64_t, std::vector<std::pair<ProcessId, size_t>>> by_scc;
  std::string sink_detail;
  for (const auto& entry : info.queue_depths) {
    if (entry.first < static_cast<ProcessId>(graph.size())) {
      by_scc[graph.node(entry.first).scc_id].push_back(entry);
    } else {
      sink_detail += StrCat(" sink(depth ", entry.second, ")");
    }
  }
  std::string detail;
  for (const auto& [scc, rows] : by_scc) {
    detail += StrCat(" scc ", scc, "{");
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) detail += ", ";
      detail += StrCat("node ", rows[i].first, ": depth ", rows[i].second);
    }
    detail += "}";
  }
  MPQE_LOG(kWarning) << "[" << ThreadTag() << "] threaded run stalled "
                     << info.stalled_ms << "ms: delivered=" << info.delivered
                     << " in_flight=" << info.in_flight << detail
                     << sink_detail;
}

// Assembles the watchdog's diagnostic bundle: per-SCC Fig. 2 protocol
// state (leaders' TerminationParticipant exports), per-node queue
// depths and recent-activity accounting, and the time-ordered flight
// records of this session. Runs on the monitor thread while the
// workers are (by definition of a stall) not delivering; every source
// it reads is either immutable wiring state or a relaxed atomic.
FlightDump BuildFlightDump(const RuleGoalGraph& graph, Database& db,
                           const std::vector<NodeProcessBase*>& node_processes,
                           const SessionOptions& options,
                           const StallInfo& info) {
  FlightDump dump;
  dump.reason = "stall";
  dump.query_id = options.query_id;
  dump.stalled_ms = info.stalled_ms;
  dump.delivered = info.delivered;
  dump.in_flight = info.in_flight;

  std::vector<uint64_t> depth_by_node(graph.size(), 0);
  std::map<int64_t, uint64_t> depth_by_scc;
  for (const auto& [pid, depth] : info.queue_depths) {
    if (pid < static_cast<ProcessId>(graph.size())) {
      depth_by_node[pid] = depth;
      depth_by_scc[graph.node(pid).scc_id] += depth;
    }
  }

  std::map<int64_t, FlightDumpScc> sccs;
  for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
    const GraphNode& n = graph.node(id);
    FlightDumpScc& row = sccs[n.scc_id];
    row.scc = n.scc_id;
    ++row.members;
    if (!n.scc_is_trivial) {
      row.nontrivial = true;
      if (n.is_leader) {
        row.leader = id;
        TerminationState st = node_processes[id]->termination_state();
        row.wave_active = st.wave_active;
        row.wave = st.wave;
        row.waves_started = st.waves_started;
        row.waiting_for = st.waiting_for;
        row.all_confirmed = st.all_confirmed;
        row.idleness = st.idleness;
        row.open_work = st.subtree_open_work;
        row.notice_pending = st.notice_pending;
      }
    }
  }
  for (auto& [scc, row] : sccs) {
    auto it = depth_by_scc.find(scc);
    if (it != depth_by_scc.end()) row.queue_depth = it->second;
  }

  // The wedged component: deepest queues win; with every queue empty
  // (a protocol-level wedge), the first nontrivial SCC whose protocol
  // is visibly mid-flight.
  uint64_t best_depth = 0;
  for (const auto& [scc, depth] : depth_by_scc) {
    if (depth > best_depth) {
      best_depth = depth;
      dump.stuck_scc = scc;
    }
  }
  if (dump.stuck_scc == -1) {
    for (const auto& [scc, row] : sccs) {
      if (row.nontrivial &&
          (row.wave_active || row.waiting_for > 0 || row.notice_pending)) {
        dump.stuck_scc = scc;
        break;
      }
    }
  }
  dump.sccs.reserve(sccs.size());
  for (auto& [scc, row] : sccs) dump.sccs.push_back(row);

  if (options.flight != nullptr) {
    for (FlightRecord& r : options.flight->Snapshot()) {
      // The recorder is engine-wide; keep this session's records plus
      // engine-level ones (query_id 0: plan cache, lifecycle).
      if (options.query_id == 0 || r.query_id == options.query_id ||
          r.query_id == 0) {
        dump.events.push_back(r);
      }
    }
  }

  dump.nodes.reserve(graph.size());
  for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
    FlightDumpNode row;
    row.node = id;
    row.label = graph.NodeLabel(id, &db.symbols());
    row.scc = graph.node(id).scc_id;
    row.queue_depth = depth_by_node[id];
    dump.nodes.push_back(std::move(row));
  }
  for (const FlightRecord& r : dump.events) {
    const auto type = static_cast<FlightEventType>(r.type);
    if (type == FlightEventType::kNodeFire) {
      if (r.a >= 0 && r.a < static_cast<int32_t>(dump.nodes.size())) {
        ++dump.nodes[r.a].fires;
        dump.nodes[r.a].last_fire_ts_ns = r.ts_ns;
      }
    } else if (type == FlightEventType::kSend) {
      if (r.a >= 0 && r.a < static_cast<int32_t>(dump.nodes.size())) {
        ++dump.nodes[r.a].sends;
      }
    } else if (type == FlightEventType::kDeliver) {
      if (r.b >= 0 && r.b < static_cast<int32_t>(dump.nodes.size())) {
        ++dump.nodes[r.b].deliveries;
        dump.nodes[r.b].last_delivery_ts_ns = r.ts_ns;
      }
    }
  }
  return dump;
}

}  // namespace

StatusOr<EvaluationResult> RunSession(const RuleGoalGraph& graph, Database& db,
                                      const SessionOptions& options,
                                      EdbIndexMode edb_index_mode) {
  MPQE_RETURN_IF_ERROR(options.Validate());
  ScopedObservers scoped(options);
  // Identify the session before any other event so every observer can
  // stamp its output with the engine-minted query id. 0 means "no
  // engine" (one-shot Evaluate): no event, outputs stay id-free.
  if (options.query_id != 0 && !scoped.list.empty()) {
    scoped.list.NotifySessionStart(SessionStartEvent{options.query_id});
  }
  if (options.flight != nullptr) {
    // The black box gets the session header directly (scheduler kind +
    // worker count — the observer callbacks never see those).
    options.flight->RecordEvent(FlightEventType::kSessionStart,
                                options.query_id,
                                static_cast<int32_t>(options.scheduler),
                                options.workers);
  }
  if (scoped.profiler.has_value()) {
    scoped.profiler->AttachGraph(&graph, &db.symbols());
  }
  if (scoped.lineage.has_value()) {
    scoped.lineage->AttachGraph(&graph, &db.symbols());
  }

  Network network;
  for (ExecutionObserver* o : scoped.list.items()) network.AddObserver(o);
  EngineShared shared;
  shared.graph = &graph;
  shared.db = &db;
  shared.batch_messages = options.batch_messages;
  shared.segment_messages = options.segment_messages;
  shared.segment_max_rows = options.segment_max_rows;
  shared.segment_max_rows_limit = options.segment_max_rows_limit;
  shared.vectorized_segments = options.vectorized_segments;
  shared.use_edb_indexes = options.use_edb_indexes;
  shared.edb_index_mode = edb_index_mode;
  if (scoped.lineage.has_value()) {
    // Ids must be flowing before any process stores or serves a tuple:
    // number the EDB rows first (they are the smallest ids — leaves),
    // then hand the allocator to every node process via shared.
    shared.lineage_ids = scoped.lineage->ids();
    // Sorted so EDB fact ids (and thus pinned proof trees) are
    // deterministic — RelationNames follows hash-map order.
    std::vector<std::string> names = db.RelationNames();
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      Relation* relation = db.GetMutableRelation(name);
      relation->EnableLineage(shared.lineage_ids);
      scoped.lineage->AttachEdbRelation(name, relation);
    }
  }
  shared.fault_park_node = options.fault_park_node;
  shared.fault_park_ms = options.fault_park_ms;

  std::vector<NodeProcessBase*> node_processes;
  SinkProcess* sink_ptr = nullptr;
  {
    ScopedPhase phase(scoped.list, Phase::kNetworkWiring);
    // One process per graph node (pid == node id), plus the sink. The
    // pid map is filled up front because process constructors plan
    // against it.
    for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
      shared.node_pid.push_back(id);
    }
    node_processes.reserve(graph.size());
    for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
      auto process = MakeNodeProcess(shared, id);
      node_processes.push_back(process.get());
      ProcessId pid = network.AddProcess(std::move(process));
      MPQE_CHECK(pid == id);
    }
    size_t goal_arity =
        graph.program().predicates().Arity(graph.program().GoalPredicate());
    auto sink = std::make_unique<SinkProcess>(shared.node_pid[graph.root()],
                                              goal_arity);
    sink_ptr = sink.get();
    shared.sink_pid = network.AddProcess(std::move(sink));

    // Engage the Fig. 2 protocol for members of nontrivial SCCs.
    for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
      const GraphNode& n = graph.node(id);
      if (n.scc_is_trivial) continue;
      std::vector<ProcessId> children;
      for (NodeId c : n.bfst_children) children.push_back(shared.node_pid[c]);
      NodeId leader = graph.scc_leader(n.scc_id);
      node_processes[id]->ConfigureTermination(
          &network, n.is_leader, shared.node_pid[leader],
          n.bfst_parent == kNoNode ? kNoProcess
                                   : shared.node_pid[n.bfst_parent],
          std::move(children));
    }
    network.Start();
  }

  // Stall heartbeat + watchdog. Configured after wiring so the monitor
  // handler can read the node processes' termination state; the
  // monitor thread only exists while Network::Run executes, so every
  // capture below outlives it.
  if (options.scheduler == SchedulerKind::kThreaded &&
      (options.progress_interval_ms > 0 || options.watchdog_stall_ms > 0)) {
    EngineTelemetry* telemetry = options.telemetry;
    const uint64_t query_id = options.query_id;
    // Report at the finer of the two cadences so a watchdog threshold
    // is noticed within one interval of being crossed.
    int interval = options.progress_interval_ms;
    if (options.watchdog_stall_ms > 0 &&
        (interval <= 0 || options.watchdog_stall_ms < interval)) {
      interval = options.watchdog_stall_ms;
    }
    // One dump per stall episode: a delivery in between starts a new
    // episode (only the monitor thread touches this state).
    struct WatchdogState {
      bool dumped = false;
      uint64_t delivered_at_dump = 0;
    };
    auto watchdog = std::make_shared<WatchdogState>();
    network.ConfigureStallMonitor(
        interval,
        [&graph, &db, &node_processes, &options, telemetry, query_id,
         watchdog](const StallInfo& info) {
          LogStall(graph, info);
          if (options.flight != nullptr) {
            options.flight->RecordEvent(
                FlightEventType::kStall, query_id,
                static_cast<int32_t>(
                    std::min<uint64_t>(info.in_flight, INT32_MAX)),
                -1, 0,
                static_cast<uint32_t>(
                    std::min<int64_t>(info.stalled_ms, UINT32_MAX)));
          }
          if (telemetry != nullptr) {
            // Fold the nonempty mailboxes into per-SCC totals (the
            // sink pseudo-process has no SCC and is covered by
            // in_flight).
            std::map<int64_t, uint64_t> by_scc;
            for (const auto& [pid, depth] : info.queue_depths) {
              if (pid < static_cast<ProcessId>(graph.size())) {
                by_scc[graph.node(pid).scc_id] += depth;
              }
            }
            telemetry->ReportQueueDepths(
                query_id,
                std::vector<std::pair<int64_t, uint64_t>>(by_scc.begin(),
                                                          by_scc.end()),
                info.in_flight);
          }
          if (options.watchdog_stall_ms <= 0 ||
              info.stalled_ms < options.watchdog_stall_ms) {
            return;
          }
          if (watchdog->dumped &&
              watchdog->delivered_at_dump == info.delivered) {
            return;  // already dumped this episode
          }
          watchdog->dumped = true;
          watchdog->delivered_at_dump = info.delivered;
          if (telemetry != nullptr) {
            telemetry->registry().GetCounter("watchdog/stalls").Increment();
          }
          FlightDump dump =
              BuildFlightDump(graph, db, node_processes, options, info);
          if (options.flight != nullptr) {
            options.flight->RecordEvent(
                FlightEventType::kWatchdogDump, query_id,
                static_cast<int32_t>(dump.stuck_scc));
          }
          if (options.flight_dump_sink) {
            if (telemetry != nullptr) {
              telemetry->registry().GetCounter("watchdog/dumps").Increment();
            }
            options.flight_dump_sink(dump);
          }
        });
  }

  StatusOr<RunResult> run = InternalError("scheduler did not run");
  {
    ScopedPhase phase(scoped.list, Phase::kRun);
    SchedulerParams params;
    params.seed = options.seed;
    params.workers = options.workers;
    params.max_messages = options.max_messages;
    run = network.Run(options.scheduler, params);
  }
  if (!run.ok()) return run.status();

  ScopedPhase drain_phase(scoped.list, Phase::kDrain);
  EvaluationResult result;
  result.answers = sink_ptr->answers();
  result.ended_by_protocol = sink_ptr->done();
  result.quiescent_after = network.TotalPending() == 0;
  result.message_stats = network.stats();
  result.graph_stats = graph.Stats();
  result.delivered = run->delivered;
  for (NodeProcessBase* p : node_processes) {
    p->AccumulateCounters(result.counters);
  }
  if (options.collect_node_counters) {
    result.node_counters.reserve(node_processes.size());
    for (NodeId id = 0; id < static_cast<NodeId>(node_processes.size());
         ++id) {
      NodeCounters row;
      row.node = id;
      node_processes[id]->AccumulateCounters(row.counters);
      result.node_counters.push_back(std::move(row));
    }
  }
  if (options.metrics != nullptr) {
    DumpMetrics(options, graph, node_processes, result);
  }
  if (scoped.profiler.has_value()) {
    auto report = std::make_shared<ProfileReport>(scoped.profiler->Finalize());
    FillCostEstimates(graph,
                      CostModelParamsFromDatabase(graph.program(), db),
                      *report);
    if (options.metrics != nullptr) {
      DumpProfileMetrics(*report, *options.metrics);
    }
    result.profile = std::move(report);
  }
  if (scoped.lineage.has_value()) {
    result.lineage =
        std::make_shared<const LineageReport>(scoped.lineage->Finalize());
  }
  if (!result.ended_by_protocol && !run->quiescent) {
    return InternalError(
        "evaluation stopped without protocol end or quiescence");
  }
  return result;
}

StatusOr<EvaluationResult> EvaluateWithGraph(const RuleGoalGraph& graph,
                                             Database& db,
                                             const EvaluationOptions& options) {
  MPQE_RETURN_IF_ERROR(options.Validate());
  return RunSession(graph, db, options, EdbIndexMode::kRegister);
}

StatusOr<EvaluationResult> Evaluate(const Program& program, Database& db,
                                    const EvaluationOptions& options) {
  MPQE_RETURN_IF_ERROR(options.Validate());
  ScopedObservers scoped(options);

  std::unique_ptr<SipsStrategy> strategy;
  {
    ScopedPhase phase(scoped.list, Phase::kAdornment);
    if (!options.skip_validation) {
      MPQE_RETURN_IF_ERROR(program.Validate(&db));
    }
    MPQE_ASSIGN_OR_RETURN(strategy, MakeStrategyByName(options.strategy));
  }
  std::unique_ptr<RuleGoalGraph> graph;
  {
    ScopedPhase phase(scoped.list, Phase::kGraphBuild);
    MPQE_ASSIGN_OR_RETURN(
        graph, RuleGoalGraph::Build(program, *strategy, options.graph_options));
  }
  return EvaluateWithGraph(*graph, db, options);
}

}  // namespace mpqe
