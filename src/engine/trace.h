// Message tracing: a thread-safe ExecutionObserver that keeps the
// last N sends and renders them with graph-node labels — the "what
// did the network actually say" debugging view. Install it via
// EvaluationOptions::observers:
//
//   MessageTrace trace;
//   options.observers.push_back(&trace);
//   Evaluate(...);
//   std::cout << trace.ToString(graph, symbols);
//
// For a chrome://tracing timeline use obs/trace_exporter.h instead;
// this class is the textual, protocol-level log.

#ifndef MPQE_ENGINE_TRACE_H_
#define MPQE_ENGINE_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "graph/rule_goal_graph.h"
#include "msg/network.h"
#include "obs/observer.h"

namespace mpqe {

// One recorded send.
struct TraceEntry {
  uint64_t sequence = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Message message;
};

class MessageTrace : public ExecutionObserver {
 public:
  /// Keeps at most `capacity` most recent entries (0 = unlimited;
  /// beware of memory on large runs).
  explicit MessageTrace(size_t capacity = 4096) : capacity_(capacity) {}

  /// Records one send (the ExecutionObserver callback; callable
  /// directly in tests).
  void OnSend(const SendEvent& event) override;

  /// Number of sends seen (including evicted ones).
  uint64_t total_seen() const;

  /// Snapshot of the retained entries, oldest first.
  std::vector<TraceEntry> Entries() const;

  /// Entries touching process `pid` (as sender or receiver).
  std::vector<TraceEntry> EntriesFor(ProcessId pid) const;

  /// Renders the retained entries, resolving process ids to graph-node
  /// labels when `graph` is given (the sink prints as "sink").
  std::string ToString(const RuleGoalGraph* graph = nullptr,
                       const SymbolTable* symbols = nullptr) const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  uint64_t next_sequence_ = 0;
  std::deque<TraceEntry> entries_;
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_TRACE_H_
