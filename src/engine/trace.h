// Message tracing: a thread-safe recorder pluggable into
// EvaluationOptions::observer that keeps the last N sends and renders
// them with graph-node labels — the "what did the network actually
// say" debugging view.

#ifndef MPQE_ENGINE_TRACE_H_
#define MPQE_ENGINE_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "graph/rule_goal_graph.h"
#include "msg/network.h"

namespace mpqe {

// One recorded send.
struct TraceEntry {
  uint64_t sequence = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Message message;
};

class MessageTrace {
 public:
  /// Keeps at most `capacity` most recent entries (0 = unlimited;
  /// beware of memory on large runs).
  explicit MessageTrace(size_t capacity = 4096) : capacity_(capacity) {}

  /// The observer to install in EvaluationOptions.
  Network::SendObserver Observer();

  /// Number of sends seen (including evicted ones).
  uint64_t total_seen() const;

  /// Snapshot of the retained entries, oldest first.
  std::vector<TraceEntry> Entries() const;

  /// Entries touching process `pid` (as sender or receiver).
  std::vector<TraceEntry> EntriesFor(ProcessId pid) const;

  /// Renders the retained entries, resolving process ids to graph-node
  /// labels when `graph` is given (the sink prints as "sink").
  std::string ToString(const RuleGoalGraph* graph = nullptr,
                       const SymbolTable* symbols = nullptr) const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  uint64_t next_sequence_ = 0;
  std::deque<TraceEntry> entries_;
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_TRACE_H_
