#include "engine/termination.h"

#include "common/logging.h"

namespace mpqe {

void TerminationParticipant::Configure(TerminationOwner* owner,
                                       Network* network, ProcessId self,
                                       bool is_leader, ProcessId leader,
                                       ProcessId bfst_parent,
                                       std::vector<ProcessId> bfst_children) {
  owner_ = owner;
  network_ = network;
  self_ = self;
  is_leader_ = is_leader;
  leader_ = leader;
  bfst_parent_ = bfst_parent;
  bfst_children_ = std::move(bfst_children);
  MPQE_CHECK(!is_leader_ || !bfst_children_.empty())
      << "a nontrivial SCC leader must have BFST children";
}

bool TerminationParticipant::EmptyQueues() const {
  // "received end messages from all its feeders, and is itself idle".
  // Inspecting one's own queue is local knowledge: no unprocessed
  // messages may sit behind the one being handled.
  return owner_->LocallyIdle() && network_->PendingCount(self_) == 0;
}

void TerminationParticipant::OnWorkMessage() {
  if (!configured()) return;
  idleness_ = 0;
}

void TerminationParticipant::Publish(TerminationEvent::Kind kind) const {
  const ObserverList& observers = network_->observers();
  if (observers.empty()) return;
  TerminationEvent event;
  event.kind = kind;
  event.node = self_;
  event.wave = wave_;
  event.idleness = idleness_;
  event.open_work = subtree_open_work_;
  observers.NotifyTermination(event);
}

void TerminationParticipant::NotifyExternalWork() {
  if (!configured() || is_leader_) return;
  Publish(TerminationEvent::Kind::kWorkNotice);
  network_->Send(self_, leader_, MakeWorkNotice());
}

void TerminationParticipant::OnWorkNotice(const Message& m) {
  (void)m;
  MPQE_CHECK(configured() && is_leader_) << "work notice at a non-leader";
  notice_pending_ = true;
}

void TerminationParticipant::MaybeInitiate() {
  if (!configured() || !is_leader_ || wave_active_) return;
  if (!owner_->HasOpenCustomerWork() && !notice_pending_) return;
  if (!EmptyQueues()) return;
  // Fig. 2, send-answer-tuple: "idleness := 1; create-end-request;
  // process-end-request".
  idleness_ = 1;
  StartWave();
}

void TerminationParticipant::StartWave() {
  wave_active_ = true;
  notice_pending_ = false;  // re-reported by answers' open-work bits
  ++wave_;
  ++waves_started_;
  Publish(TerminationEvent::Kind::kWaveStarted);
  ProcessEndRequest();
}

void TerminationParticipant::ProcessEndRequest() {
  if (EmptyQueues()) {
    ++idleness_;
  } else {
    idleness_ = 0;
  }
  waiting_for_ = static_cast<int>(bfst_children_.size());
  all_confirmed_ = true;
  subtree_open_work_ = owner_->HasOpenCustomerWork();
  if (waiting_for_ > 0) {
    for (ProcessId child : bfst_children_) {
      network_->Send(self_, child, MakeEndRequest(wave_));
    }
  } else {
    AnswerParent();
  }
}

void TerminationParticipant::AnswerParent() {
  MPQE_CHECK(!is_leader_) << "leader has children; it never answers a parent";
  if (all_confirmed_ && idleness_ > 1) {
    owner_->SnapshotForConclusion();
    Publish(TerminationEvent::Kind::kAnswerConfirmed);
    network_->Send(self_, bfst_parent_,
                   MakeEndConfirmed(wave_, subtree_open_work_));
  } else {
    Publish(TerminationEvent::Kind::kAnswerNegative);
    network_->Send(self_, bfst_parent_,
                   MakeEndNegative(wave_, subtree_open_work_));
  }
}

void TerminationParticipant::OnEndRequest(const Message& m) {
  MPQE_CHECK(configured()) << "end request at a trivial-SCC node";
  wave_ = m.wave;
  ProcessEndRequest();
}

void TerminationParticipant::ConcludeAndBroadcast() {
  owner_->SnapshotForConclusion();
  Publish(TerminationEvent::Kind::kConcluded);
  owner_->ConcludeScc();
  // Footnote 4: propagate the conclusion around the strong component —
  // members with their own customers emit their ends on receipt.
  for (ProcessId child : bfst_children_) {
    network_->Send(self_, child, MakeSccConcluded());
  }
}

void TerminationParticipant::OnSccConcluded(const Message& m) {
  (void)m;
  MPQE_CHECK(configured() && !is_leader_);
  Publish(TerminationEvent::Kind::kConcluded);
  owner_->ConcludeScc();
  for (ProcessId child : bfst_children_) {
    network_->Send(self_, child, MakeSccConcluded());
  }
}

void TerminationParticipant::OnWaveComplete() {
  if (is_leader_) {
    wave_active_ = false;
    if (all_confirmed_ && idleness_ > 1) {
      // "If the BFST leader receives end confirmed from all its
      // children and has itself been idle since its last end request,
      // then it concludes the protocol."
      // Open work reported in the confirming wave is covered by the
      // members' snapshots and ends with this conclusion; only a work
      // notice (which may signal a post-snapshot arrival) forces
      // another round.
      bool more_work = notice_pending_;
      ConcludeAndBroadcast();
      if (more_work && EmptyQueues()) {
        idleness_ = 1;
        StartWave();
      }
      return;
    }
    // Fig. 2, process-end-negative: restart immediately while idle.
    if (EmptyQueues() &&
        (owner_->HasOpenCustomerWork() || subtree_open_work_ ||
         notice_pending_)) {
      idleness_ = 1;
      StartWave();
    }
    return;
  }
  AnswerParent();
}

void TerminationParticipant::OnEndNegative(const Message& m) {
  MPQE_CHECK(configured());
  all_confirmed_ = false;
  subtree_open_work_ = subtree_open_work_ || m.flag;
  if (--waiting_for_ == 0) OnWaveComplete();
}

void TerminationParticipant::OnEndConfirmed(const Message& m) {
  MPQE_CHECK(configured());
  subtree_open_work_ = subtree_open_work_ || m.flag;
  if (--waiting_for_ == 0) OnWaveComplete();
}

}  // namespace mpqe
