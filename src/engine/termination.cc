#include "engine/termination.h"

#include "common/logging.h"

namespace mpqe {

void TerminationParticipant::Configure(TerminationOwner* owner,
                                       Network* network, ProcessId self,
                                       bool is_leader, ProcessId leader,
                                       ProcessId bfst_parent,
                                       std::vector<ProcessId> bfst_children) {
  owner_ = owner;
  network_ = network;
  self_ = self;
  is_leader_ = is_leader;
  leader_ = leader;
  bfst_parent_ = bfst_parent;
  bfst_children_ = std::move(bfst_children);
  MPQE_CHECK(!is_leader_ || !bfst_children_.empty())
      << "a nontrivial SCC leader must have BFST children";
}

bool TerminationParticipant::EmptyQueues() const {
  // "received end messages from all its feeders, and is itself idle".
  // Inspecting one's own queue is local knowledge: no unprocessed
  // messages may sit behind the one being handled.
  return owner_->LocallyIdle() && network_->PendingCount(self_) == 0;
}

void TerminationParticipant::OnWorkMessage() {
  if (!configured()) return;
  idleness_.store(0, std::memory_order_relaxed);
}

void TerminationParticipant::Publish(TerminationEvent::Kind kind) const {
  const ObserverList& observers = network_->observers();
  if (observers.empty()) return;
  TerminationEvent event;
  event.kind = kind;
  event.node = self_;
  event.wave = wave_.load(std::memory_order_relaxed);
  event.idleness = idleness_.load(std::memory_order_relaxed);
  event.open_work = subtree_open_work_.load(std::memory_order_relaxed);
  observers.NotifyTermination(event);
}

void TerminationParticipant::NotifyExternalWork() {
  if (!configured() || is_leader_) return;
  Publish(TerminationEvent::Kind::kWorkNotice);
  network_->Send(self_, leader_, MakeWorkNotice());
}

void TerminationParticipant::OnWorkNotice(const Message& m) {
  (void)m;
  MPQE_CHECK(configured() && is_leader_) << "work notice at a non-leader";
  notice_pending_.store(true, std::memory_order_relaxed);
}

void TerminationParticipant::MaybeInitiate() {
  if (!configured() || !is_leader_ ||
      wave_active_.load(std::memory_order_relaxed)) {
    return;
  }
  if (!owner_->HasOpenCustomerWork() &&
      !notice_pending_.load(std::memory_order_relaxed)) {
    return;
  }
  if (!EmptyQueues()) return;
  // Fig. 2, send-answer-tuple: "idleness := 1; create-end-request;
  // process-end-request".
  idleness_.store(1, std::memory_order_relaxed);
  StartWave();
}

void TerminationParticipant::StartWave() {
  wave_active_.store(true, std::memory_order_relaxed);
  // Re-reported by answers' open-work bits.
  notice_pending_.store(false, std::memory_order_relaxed);
  wave_.fetch_add(1, std::memory_order_relaxed);
  waves_started_.fetch_add(1, std::memory_order_relaxed);
  Publish(TerminationEvent::Kind::kWaveStarted);
  ProcessEndRequest();
}

void TerminationParticipant::ProcessEndRequest() {
  if (EmptyQueues()) {
    idleness_.fetch_add(1, std::memory_order_relaxed);
  } else {
    idleness_.store(0, std::memory_order_relaxed);
  }
  const int children = static_cast<int>(bfst_children_.size());
  waiting_for_.store(children, std::memory_order_relaxed);
  all_confirmed_.store(true, std::memory_order_relaxed);
  subtree_open_work_.store(owner_->HasOpenCustomerWork(),
                           std::memory_order_relaxed);
  if (children > 0) {
    for (ProcessId child : bfst_children_) {
      network_->Send(self_, child,
                     MakeEndRequest(wave_.load(std::memory_order_relaxed)));
    }
  } else {
    AnswerParent();
  }
}

void TerminationParticipant::AnswerParent() {
  MPQE_CHECK(!is_leader_) << "leader has children; it never answers a parent";
  const int64_t wave = wave_.load(std::memory_order_relaxed);
  const bool open = subtree_open_work_.load(std::memory_order_relaxed);
  if (all_confirmed_.load(std::memory_order_relaxed) &&
      idleness_.load(std::memory_order_relaxed) > 1) {
    owner_->SnapshotForConclusion();
    Publish(TerminationEvent::Kind::kAnswerConfirmed);
    network_->Send(self_, bfst_parent_, MakeEndConfirmed(wave, open));
  } else {
    Publish(TerminationEvent::Kind::kAnswerNegative);
    network_->Send(self_, bfst_parent_, MakeEndNegative(wave, open));
  }
}

void TerminationParticipant::OnEndRequest(const Message& m) {
  MPQE_CHECK(configured()) << "end request at a trivial-SCC node";
  wave_.store(m.wave, std::memory_order_relaxed);
  ProcessEndRequest();
}

void TerminationParticipant::ConcludeAndBroadcast() {
  owner_->SnapshotForConclusion();
  Publish(TerminationEvent::Kind::kConcluded);
  owner_->ConcludeScc();
  // Footnote 4: propagate the conclusion around the strong component —
  // members with their own customers emit their ends on receipt.
  for (ProcessId child : bfst_children_) {
    network_->Send(self_, child, MakeSccConcluded());
  }
}

void TerminationParticipant::OnSccConcluded(const Message& m) {
  (void)m;
  MPQE_CHECK(configured() && !is_leader_);
  Publish(TerminationEvent::Kind::kConcluded);
  owner_->ConcludeScc();
  for (ProcessId child : bfst_children_) {
    network_->Send(self_, child, MakeSccConcluded());
  }
}

void TerminationParticipant::OnWaveComplete() {
  if (is_leader_) {
    wave_active_.store(false, std::memory_order_relaxed);
    if (all_confirmed_.load(std::memory_order_relaxed) &&
        idleness_.load(std::memory_order_relaxed) > 1) {
      // "If the BFST leader receives end confirmed from all its
      // children and has itself been idle since its last end request,
      // then it concludes the protocol."
      // Open work reported in the confirming wave is covered by the
      // members' snapshots and ends with this conclusion; only a work
      // notice (which may signal a post-snapshot arrival) forces
      // another round.
      bool more_work = notice_pending_.load(std::memory_order_relaxed);
      ConcludeAndBroadcast();
      if (more_work && EmptyQueues()) {
        idleness_.store(1, std::memory_order_relaxed);
        StartWave();
      }
      return;
    }
    // Fig. 2, process-end-negative: restart immediately while idle.
    if (EmptyQueues() &&
        (owner_->HasOpenCustomerWork() ||
         subtree_open_work_.load(std::memory_order_relaxed) ||
         notice_pending_.load(std::memory_order_relaxed))) {
      idleness_.store(1, std::memory_order_relaxed);
      StartWave();
    }
    return;
  }
  AnswerParent();
}

void TerminationParticipant::OnEndNegative(const Message& m) {
  MPQE_CHECK(configured());
  all_confirmed_.store(false, std::memory_order_relaxed);
  if (m.flag) subtree_open_work_.store(true, std::memory_order_relaxed);
  if (waiting_for_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    OnWaveComplete();
  }
}

void TerminationParticipant::OnEndConfirmed(const Message& m) {
  MPQE_CHECK(configured());
  if (m.flag) subtree_open_work_.store(true, std::memory_order_relaxed);
  if (waiting_for_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    OnWaveComplete();
  }
}


TerminationState TerminationParticipant::ExportState() const {
  TerminationState s;
  s.configured = configured();
  s.is_leader = is_leader_;
  s.wave_active = wave_active_.load(std::memory_order_relaxed);
  s.wave = wave_.load(std::memory_order_relaxed);
  s.waves_started = waves_started_.load(std::memory_order_relaxed);
  s.waiting_for = waiting_for_.load(std::memory_order_relaxed);
  s.all_confirmed = all_confirmed_.load(std::memory_order_relaxed);
  s.idleness = idleness_.load(std::memory_order_relaxed);
  s.subtree_open_work = subtree_open_work_.load(std::memory_order_relaxed);
  s.notice_pending = notice_pending_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mpqe
