#include "engine/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace mpqe {
namespace {

// Reads until the end of the request head (blank line) or the buffer
// cap; returns what was read. HTTP/1.0 GETs have no body, so this is
// the whole request.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 16 * 1024) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  return head;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

// `extra_headers` are complete "Name: value\r\n" lines (may be "").
std::string HttpResponse(int code, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body,
                         const std::string& extra_headers = "") {
  return StrCat("HTTP/1.0 ", code, " ", reason,
                "\r\nContent-Type: ", content_type,
                "\r\nContent-Length: ", body.size(), "\r\n", extra_headers,
                "Connection: close\r\n\r\n", body);
}

}  // namespace

StatsServer::StatsServer(StatsServerOptions options)
    : options_(std::move(options)) {}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::AddRoute(const std::string& path,
                           const std::string& content_type, Handler handler) {
  routes_[path] = Route{content_type, std::move(handler)};
}

Status StatsServer::Start() {
  if (listen_fd_ >= 0) {
    return FailedPreconditionError("stats server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ResourceExhaustedError(
        StrCat("stats server: socket(): ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return InvalidArgumentError(
        StrCat("stats server: bad bind address '", options_.bind_address,
               "'"));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = ResourceExhaustedError(
        StrCat("stats server: cannot bind ", options_.bind_address, ":",
               options_.port, ": ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status = ResourceExhaustedError(
        StrCat("stats server: listen(): ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  } else {
    bound_port_ = options_.port;
  }
  listen_fd_ = fd;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StatsServer::Stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocking accept(); the loop then sees the
  // error and exits. close() alone does not reliably interrupt accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void StatsServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // shutdown() or hard error: stop serving
    }
    if (options_.io_timeout_ms > 0) {
      // A silent or trickling client must not hold the single-threaded
      // loop (or engine shutdown, which joins it) hostage: bound every
      // recv/send, after which ReadRequestHead/WriteAll see the error
      // and drop the connection.
      timeval tv{};
      tv.tv_sec = options_.io_timeout_ms / 1000;
      tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void StatsServer::ServeConnection(int fd) {
  const std::string head = ReadRequestHead(fd);
  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = head.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos) {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                              "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? line.substr(sp1 + 1)
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET" && method != "HEAD") {
    // RFC 9110 §15.5.6: a 405 MUST carry an Allow header naming the
    // methods the target does support.
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is served here\n",
                              "Allow: GET, HEAD\r\n"));
    return;
  }
  auto it = routes_.find(path);
  if (it == routes_.end()) {
    std::string body = "not found; routes:\n";
    for (const auto& [route, unused] : routes_) body += route + "\n";
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain", body));
    return;
  }
  const std::string body = it->second.handler();
  std::string response =
      HttpResponse(200, "OK", it->second.content_type, body);
  if (method == "HEAD") {
    response.resize(response.size() - body.size());
  }
  WriteAll(fd, response);
}

}  // namespace mpqe
