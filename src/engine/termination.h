// The distributed termination protocol of §3.2 (Fig. 2), extended for
// coalesced graphs (footnote 4).
//
// Within a strong component, one or a few answer tuples may be
// "trickling through" even though every node happens to be caught up
// when asked. The protocol therefore requires two consecutive idle
// waves: the BFST leader floods `end request` messages down the
// breadth-first spanning tree; leaves answer `end negative` the first
// time; a node answers `end confirmed` only if it has been idle for
// the entire period between two end requests (idleness >= 2) and all
// its BFST children confirmed. The leader repeats waves after each
// negative answer and, once every node confirms and it has itself
// stayed idle, concludes the protocol.
//
// A node's empty-queues() is: no unprocessed messages in its own
// mailbox AND end messages received from all its feeders (owner's
// LocallyIdle()).
//
// Coalesced strong components (several members with outside customers)
// add three mechanisms, per the paper's footnote 4 ("the leader must
// propagate the end message around the strong component, as other
// nodes may have customers"):
//   * `work notice` — a member that receives an outside tuple request
//     pings the leader so it knows to run the protocol at all;
//   * wave answers carry an *open work* bit, OR-aggregated up the
//     BFST, so the leader keeps cycling until every member's outside
//     requests are served;
//   * `scc concluded` — broadcast down the BFST after a successful
//     protocol; every member then ends the outside requests captured
//     in the *snapshot* it took when it last answered `end confirmed`
//     (requests that arrived after that snapshot are not ended — they
//     belong to the next protocol round).

#ifndef MPQE_ENGINE_TERMINATION_H_
#define MPQE_ENGINE_TERMINATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "msg/message.h"
#include "msg/network.h"

namespace mpqe {

// A point-in-time copy of one participant's Fig. 2 protocol state, for
// diagnostics (the stall watchdog folds leaders' states into the
// flight dump). Exportable from any thread while the run is live.
struct TerminationState {
  bool configured = false;
  bool is_leader = false;
  bool wave_active = false;
  int64_t wave = 0;
  int64_t waves_started = 0;
  int waiting_for = 0;
  bool all_confirmed = false;
  int64_t idleness = 0;
  bool subtree_open_work = false;
  bool notice_pending = false;
};

// Owner hooks; implemented by the engine node processes.
class TerminationOwner {
 public:
  virtual ~TerminationOwner() = default;

  /// True iff all tuple requests this node issued to feeders (children
  /// outside its strong component) have been answered with `end`.
  virtual bool LocallyIdle() const = 0;

  /// True while some customer tuple request at THIS node has not yet
  /// been ended (drives leader initiation and the open-work bit in
  /// wave answers).
  virtual bool HasOpenCustomerWork() const = 0;

  /// Record the set of customer requests that the next ConcludeScc()
  /// may end. Called when this node answers `end confirmed` (and on
  /// the leader just before it concludes).
  virtual void SnapshotForConclusion() = 0;

  /// The protocol succeeded: send `end` for the snapshotted open
  /// customer requests.
  virtual void ConcludeScc() = 0;
};

class TerminationParticipant {
 public:
  /// A participant is inert (all methods no-ops) until Configure() is
  /// called; trivial-SCC nodes stay inert.
  TerminationParticipant() = default;

  void Configure(TerminationOwner* owner, Network* network, ProcessId self,
                 bool is_leader, ProcessId leader, ProcessId bfst_parent,
                 std::vector<ProcessId> bfst_children);

  bool configured() const { return owner_ != nullptr; }
  int64_t idleness() const {
    return idleness_.load(std::memory_order_relaxed);
  }
  int64_t waves_started() const {
    return waves_started_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the protocol fields. Safe from any thread at any time
  /// (the fields are relaxed atomics with the owner process as the
  /// only writer); the copy may mix fields across a transition, which
  /// is fine for the diagnostics it feeds.
  TerminationState ExportState() const;

  /// Any non-protocol message resets idleness ("it resets idleness to
  /// zero whenever it receives work").
  void OnWorkMessage();

  /// Non-leader members call this when an outside tuple request
  /// arrives for a binding that is not yet complete: pings the leader
  /// (no-op on the leader itself or when unconfigured).
  void NotifyExternalWork();

  /// Leader: start a wave if idle with open work and no wave in
  /// flight. Call after processing every message.
  void MaybeInitiate();

  void OnEndRequest(const Message& m);
  void OnEndNegative(const Message& m);
  void OnEndConfirmed(const Message& m);
  void OnSccConcluded(const Message& m);
  void OnWorkNotice(const Message& m);

 private:
  bool EmptyQueues() const;
  // Reports a protocol event to the network's observers (no-op with
  // none installed).
  void Publish(TerminationEvent::Kind kind) const;
  void StartWave();
  // Shared tail of process-end-request: record idleness, fan out to
  // children or answer immediately.
  void ProcessEndRequest();
  void AnswerParent();
  void OnWaveComplete();
  void ConcludeAndBroadcast();

  TerminationOwner* owner_ = nullptr;
  Network* network_ = nullptr;
  ProcessId self_ = kNoProcess;
  bool is_leader_ = false;
  ProcessId leader_ = kNoProcess;
  ProcessId bfst_parent_ = kNoProcess;
  std::vector<ProcessId> bfst_children_;

  // Protocol state. Mutated only by the owner process (the network
  // serializes a process's message handling), but read by the stall
  // watchdog's monitor thread via ExportState() — hence relaxed
  // atomics: single-writer, so relaxed read-modify-writes stay exact,
  // and cross-thread reads are race-free.
  std::atomic<int64_t> idleness_{0};
  std::atomic<int> waiting_for_{0};
  std::atomic<bool> all_confirmed_{false};
  std::atomic<bool> subtree_open_work_{false};  // OR over own + children
  std::atomic<bool> notice_pending_{false};  // leader: a member has work
  std::atomic<bool> wave_active_{false};     // leader: wave in flight
  std::atomic<int64_t> wave_{0};
  std::atomic<int64_t> waves_started_{0};
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_TERMINATION_H_
