// An LRU cache of compiled query plans (PreparedQuery), keyed on the
// canonicalized program text plus the plan options and the database
// snapshot it was compiled against (see Engine::Prepare for the exact
// key recipe). Each entry may carry *alias* keys — the raw, pre-parse
// program text — so a repeated Prepare(text) hits without even
// tokenizing the input; that is what makes the hit path's prepare_ns
// collapse to a hash lookup.
//
// Thread safe: every operation takes the cache mutex. Values are
// shared_ptr<const PreparedQuery>, so an eviction never invalidates a
// plan that sessions still hold.

#ifndef MPQE_ENGINE_PLAN_CACHE_H_
#define MPQE_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mpqe {

class PreparedQuery;

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t size = 0;      // resident plans (aliases not counted)
  size_t capacity = 0;
  // Duration of the most recent Prepare call, hit or cold (filled by
  // Engine::plan_cache_stats, not by the cache itself — the cache has
  // no notion of compile time).
  uint64_t last_prepare_ns = 0;

  std::string ToString() const;
};

class PlanCache {
 public:
  /// `capacity` = max resident plans; at least 1.
  explicit PlanCache(size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` (canonical or alias) and marks
  /// it most-recently used, or nullptr. Counts a hit, or — unless
  /// `count_miss` is false — a miss. Callers probing a fast-path alias
  /// before the authoritative canonical key pass count_miss=false so
  /// one logical lookup never counts two misses.
  std::shared_ptr<const PreparedQuery> Lookup(const std::string& key,
                                              bool count_miss = true);

  /// As Lookup but without touching the hit/miss counters or the LRU
  /// order (for introspection).
  std::shared_ptr<const PreparedQuery> Peek(const std::string& key) const;

  /// Inserts `plan` under `canonical_key`, evicting the least-recently
  /// used plan (and its aliases) if the cache is full. Overwrites any
  /// existing entry with the same key. Returns how many plans were
  /// evicted by this insert (so the engine can surface the
  /// plan_cache/evictions counter without diffing stats snapshots).
  size_t Insert(const std::string& canonical_key,
                std::shared_ptr<const PreparedQuery> plan);

  /// Registers `alias_key` as another name for the plan stored under
  /// `canonical_key`. No-op if the canonical entry is absent (e.g.
  /// already evicted). Aliases die with their entry.
  void AddAlias(const std::string& alias_key,
                const std::string& canonical_key);

  PlanCacheStats stats() const;
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const PreparedQuery> plan;
    // Most-recently used at the front; the iterator points at this
    // entry's canonical key inside lru_.
    std::list<std::string>::iterator lru_it;
    std::vector<std::string> aliases;
  };

  // Requires mutex_ held.
  void EvictOne();

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<std::string> lru_;  // canonical keys, MRU first
  std::unordered_map<std::string, Entry> entries_;      // canonical -> entry
  std::unordered_map<std::string, std::string> aliases_;  // alias -> canonical
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_PLAN_CACHE_H_
