#include "engine/plan.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "datalog/adornment.h"

namespace mpqe {

EdbAccessPlan ComputeEdbAccessPlan(const GraphNode& node) {
  MPQE_CHECK(node.kind == NodeKind::kEdbLeaf);
  EdbAccessPlan plan;
  const Atom& atom = node.atom;
  const Adornment& adornment = node.adornment;
  std::vector<size_t> d_positions =
      PositionsWithClass(adornment, BindingClass::kDynamic);
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].is_constant()) {
      plan.key_positions.push_back(i);
      plan.key_template.push_back(atom.args[i].constant());
    } else if (adornment[i] == BindingClass::kDynamic) {
      size_t ordinal = static_cast<size_t>(
          std::find(d_positions.begin(), d_positions.end(), i) -
          d_positions.begin());
      plan.key_d_slots.emplace_back(plan.key_positions.size(), ordinal);
      plan.key_positions.push_back(i);
      plan.key_template.push_back(Value());
    }
  }
  // Repeated-variable equality filters (e.g. r(X, X)).
  std::unordered_map<VariableId, size_t> first_seen;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (!atom.args[i].is_variable()) continue;
    auto [it, inserted] = first_seen.emplace(atom.args[i].var(), i);
    if (!inserted) plan.equalities.emplace_back(it->second, i);
  }
  return plan;
}

std::vector<EdbIndexSpec> ComputeEdbIndexSpecs(const RuleGoalGraph& graph) {
  const PredicatePool& predicates = graph.program().predicates();
  std::vector<EdbIndexSpec> specs;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kEdbLeaf) continue;
    EdbAccessPlan plan = ComputeEdbAccessPlan(node);
    if (plan.key_positions.empty()) continue;  // full scan, no index
    EdbIndexSpec spec{predicates.Name(node.atom.predicate),
                      std::move(plan.key_positions)};
    if (std::find(specs.begin(), specs.end(), spec) == specs.end()) {
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace mpqe
