#include "engine/node_processes.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/plan.h"
#include "relational/operators.h"

namespace mpqe {

std::string EngineCounters::ToString() const {
  return StrCat("{stored=", stored_tuples, " dups=", duplicate_drops,
                " contexts=", contexts, " max_rel=", max_node_relation,
                " waves=", protocol_waves, "}");
}

void NodeProcessBase::ConfigureTermination(
    Network* network, bool is_leader, ProcessId leader, ProcessId bfst_parent,
    std::vector<ProcessId> bfst_children) {
  termination_.Configure(this, network, process_id(), is_leader, leader,
                         bfst_parent, std::move(bfst_children));
}

NodeRole NodeProcessBase::Role() const {
  switch (gnode().kind) {
    case NodeKind::kGoal:
      return NodeRole::kGoal;
    case NodeKind::kRule:
      return NodeRole::kRule;
    case NodeKind::kEdbLeaf:
      return NodeRole::kEdbLeaf;
    case NodeKind::kCycleRef:
      return NodeRole::kCycleRef;
  }
  return NodeRole::kGoal;
}

void NodeProcessBase::OnMessage(const Message& message) {
  if (fault_park_armed_ && !IsProtocolMessage(message.kind)) {
    // Watchdog fault injection: wedge this node (and with it, its
    // SCC's progress) once, before handling its first work message.
    fault_park_armed_ = false;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(shared_.fault_park_ms));
  }
  const ObserverList& obs = network().observers();
  if (obs.empty()) {
    Dispatch(message);
    FlushEmits();
    termination_.MaybeInitiate();
    return;
  }
  uint64_t drops_before = LocalDuplicateDrops();
  fire_tuples_out_ = 0;
  observing_fire_ = true;
  auto fire_start = std::chrono::steady_clock::now();
  Dispatch(message);
  observing_fire_ = false;
  FlushEmits();
  auto fire_end = std::chrono::steady_clock::now();
  NodeFireEvent event;
  event.node = node_id_;
  event.pid = process_id();
  event.role = Role();
  event.trigger = message.kind;
  if (message.kind == MessageKind::kTuple) {
    event.tuples_in = 1;
  } else if (message.kind == MessageKind::kTupleSegment) {
    event.tuples_in = static_cast<uint32_t>(message.segment().num_rows);
  } else if (message.kind == MessageKind::kBatch) {
    for (const Message& sub : message.batch()) {
      if (sub.kind == MessageKind::kTuple) {
        ++event.tuples_in;
      } else if (sub.kind == MessageKind::kTupleSegment) {
        event.tuples_in += static_cast<uint32_t>(sub.segment().num_rows);
      }
    }
  }
  event.tuples_out = fire_tuples_out_;
  event.dedup_hits = LocalDuplicateDrops() - drops_before;
  event.handle_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(fire_end -
                                                           fire_start)
          .count());
  obs.NotifyNodeFire(event);
  termination_.MaybeInitiate();
}

void NodeProcessBase::Dispatch(const Message& message) {
  switch (message.kind) {
    case MessageKind::kEndRequest:
      termination_.OnEndRequest(message);
      break;
    case MessageKind::kEndNegative:
      termination_.OnEndNegative(message);
      break;
    case MessageKind::kEndConfirmed:
      termination_.OnEndConfirmed(message);
      break;
    case MessageKind::kSccConcluded:
      termination_.OnSccConcluded(message);
      break;
    case MessageKind::kWorkNotice:
      termination_.OnWorkNotice(message);
      break;
    case MessageKind::kBatch: {
      termination_.OnWorkMessage();
      for (const Message& packaged : message.batch()) {
        // Cheap even for packaged segments: copying a Message bumps
        // the payload refcount, it never deep-copies the rows.
        Message sub = packaged;
        sub.from = message.from;
        HandleWork(sub);
      }
      break;
    }
    default:
      termination_.OnWorkMessage();
      HandleWork(message);
      break;
  }
}

void NodeProcessBase::Emit(ProcessId to, Message m) {
  if (observing_fire_ && m.kind == MessageKind::kTuple) ++fire_tuples_out_;
  if (!shared_.batch_messages && !shared_.segment_messages) {
    Send(to, std::move(m));
    return;
  }
  // With segmenting on, *every* emission is deferred to FlushEmits so
  // an `end` emitted after buffered rows cannot overtake them.
  outbox_.emplace_back(to, std::move(m));
}

size_t NodeProcessBase::SegmentCap(ProcessId to) {
  size_t base = shared_.segment_max_rows;
  if (shared_.segment_max_rows_limit <= base) return base;  // growth off
  auto [it, inserted] = dest_sizing_.emplace(to, DestSizing{base, 0});
  return it->second.cap;
}

void NodeProcessBase::NoteSealedSegment(ProcessId to, bool full) {
  if (shared_.segment_max_rows_limit <= shared_.segment_max_rows) return;
  DestSizing& sizing =
      dest_sizing_.emplace(to, DestSizing{shared_.segment_max_rows, 0})
          .first->second;
  if (!full) {
    sizing.full_streak = 0;
    return;
  }
  if (++sizing.full_streak < 2) return;
  sizing.full_streak = 0;
  sizing.cap = std::min(sizing.cap * 2, shared_.segment_max_rows_limit);
}

void NodeProcessBase::EmitTuple(ProcessId to, const Tuple& binding,
                                TupleRef values, uint64_t lineage_id) {
  if (!shared_.segment_messages) {
    Message m = MakeTuple(binding, values.ToTuple());
    m.lineage = lineage_id;
    Emit(to, std::move(m));
    return;
  }
  if (observing_fire_) ++fire_tuples_out_;
  for (size_t i = 0; i < open_segments_.size(); ++i) {
    OpenSegment& open = open_segments_[i];
    if (open.to != to || !(open.segment->binding == binding)) continue;
    open.segment->AppendRow(values);
    if (lineage_id != kNoLineage) open.segment->lineage.push_back(lineage_id);
    if (open.segment->num_rows >= open.cap) {
      // Seal at the size cap: the handle stays at its outbox position;
      // further rows on this stream open a new (later) segment, so
      // per-stream order is preserved.
      open.segment->CheckConsistent();
      open_segments_.erase(open_segments_.begin() +
                           static_cast<ptrdiff_t>(i));
      NoteSealedSegment(to, /*full=*/true);
    }
    return;
  }
  auto segment = std::make_shared<TupleSegment>();
  segment->binding = binding;
  segment->arity = values.size();
  segment->AppendRow(values);
  if (lineage_id != kNoLineage) segment->lineage.push_back(lineage_id);
  OpenSegment open;
  open.to = to;
  open.outbox_index = outbox_.size();
  open.cap = SegmentCap(to);
  open.segment = segment;
  outbox_.emplace_back(to, MakeTupleSegment(std::move(segment)));
  open_segments_.push_back(std::move(open));
}

void NodeProcessBase::EmitSegment(ProcessId to,
                                  std::shared_ptr<const TupleSegment> segment) {
  // Every pre-built segment passes through here: the one place to
  // catch a values/lineage column that desynchronized from num_rows
  // before it reaches the wire.
  segment->CheckConsistent();
  if (observing_fire_) {
    fire_tuples_out_ += static_cast<uint32_t>(segment->num_rows);
  }
  Emit(to, MakeTupleSegment(std::move(segment)));
}

void NodeProcessBase::FlushEmits() {
  // Demote single-row segments to bare tuples (mirrors the batch
  // layer's singletons-are-sent-bare rule); multi-row ones are sealed
  // simply by dropping the mutable handle.
  for (OpenSegment& open : open_segments_) {
    // End-of-handler seals are partial by definition (cap seals left
    // open_segments_ in EmitTuple): they reset the destination's
    // full-segment streak.
    NoteSealedSegment(open.to, /*full=*/false);
    if (open.segment->num_rows != 1) {
      open.segment->CheckConsistent();
      continue;
    }
    Message demoted =
        MakeTuple(open.segment->binding, open.segment->row(0).ToTuple());
    demoted.lineage = open.segment->row_lineage(0);
    outbox_[open.outbox_index].second = std::move(demoted);
  }
  open_segments_.clear();
  if (outbox_.empty()) return;
  if (!shared_.batch_messages) {
    for (auto& [to, m] : outbox_) Send(to, std::move(m));
    outbox_.clear();
    return;
  }
  // Group by destination, preserving per-destination send order and
  // first-appearance destination order.
  std::vector<ProcessId> order;
  std::unordered_map<ProcessId, std::vector<Message>> groups;
  for (auto& [to, m] : outbox_) {
    auto [it, inserted] = groups.emplace(to, std::vector<Message>());
    if (inserted) order.push_back(to);
    it->second.push_back(std::move(m));
  }
  outbox_.clear();
  for (ProcessId to : order) {
    std::vector<Message>& messages = groups[to];
    if (messages.size() == 1) {
      Send(to, std::move(messages.front()));
    } else {
      Send(to, MakeBatch(std::move(messages)));
    }
  }
}

void NodeProcessBase::AccumulateCounters(EngineCounters& out) const {
  out.protocol_waves += static_cast<uint64_t>(termination_.waves_started());
}

void NodeProcessBase::PublishDerive(uint64_t id, DeriveKind kind,
                                    uint64_t source, const uint64_t* inputs,
                                    size_t num_inputs, TupleRef values) {
  const ObserverList& obs = network().observers();
  if (obs.empty()) return;
  DeriveEvent event;
  event.tuple_id = id;
  event.node = node_id_;
  event.role = Role();
  event.kind = kind;
  if (gnode().kind == NodeKind::kRule) {
    event.rule_index = static_cast<int32_t>(gnode().program_rule_index);
  }
  event.source_msg = source;
  event.inputs = inputs;
  event.num_inputs = num_inputs;
  event.values = values;
  obs.NotifyDerive(event);
}

void NodeProcessBase::PublishDeriveBatch(
    DeriveKind kind, const std::shared_ptr<const TupleSegment>& segment,
    const std::vector<uint64_t>& inputs) {
  const ObserverList& obs = network().observers();
  if (obs.empty()) return;
  DeriveBatchEvent event;
  event.node = node_id_;
  event.role = Role();
  event.kind = kind;
  event.segment = segment;
  event.inputs = inputs.data();
  obs.NotifyDeriveBatch(event);
}

namespace {

// Per-consumer stream state at a producer (§3.1: "A goal node with
// multiple out-edges needs to furnish answers in separate streams to
// each successor node ... different successors normally will have
// requested different subsets of the total temporary relation").
struct ConsumerStream {
  bool external = false;  // in a different SCC (or the sink)
  std::unordered_set<Tuple, TupleHash> bindings;
  std::unordered_set<Tuple, TupleHash> ended;
};

// ---------------------------------------------------------------------------
// GoalProcess
// ---------------------------------------------------------------------------

class GoalProcess : public NodeProcessBase {
 public:
  GoalProcess(const EngineShared& shared, NodeId id)
      : NodeProcessBase(shared, id),
        answers_(gnode().OutputPositions().size()) {
    out_positions_ = gnode().OutputPositions();
    d_positions_ = PositionsWithClass(gnode().adornment,
                                      BindingClass::kDynamic);
    for (size_t dp : d_positions_) {
      auto it = std::find(out_positions_.begin(), out_positions_.end(), dp);
      MPQE_CHECK(it != out_positions_.end());
      d_in_out_.push_back(static_cast<size_t>(it - out_positions_.begin()));
    }
    d_index_ = answers_.EnsureIndex(d_in_out_);
    if (shared_.lineage_ids != nullptr) {
      answers_.EnableLineage(shared_.lineage_ids);
    }
    for (NodeId rc : gnode().rule_children) {
      if (!SameScc(rc)) ++ending_children_;
    }
  }

  bool LocallyIdle() const override { return open_feeder_requests_ == 0; }

  bool HasOpenCustomerWork() const override {
    for (const auto& [pid, c] : consumers_) {
      if (c.external && c.ended.size() < c.bindings.size()) return true;
    }
    return false;
  }

  void SnapshotForConclusion() override { snapshot_ = requested_; }

  void ConcludeScc() override {
    // The component was quiescent with feeders ended throughout the
    // confirming waves: every binding in the snapshot is final.
    // Bindings requested after the snapshot belong to the next
    // protocol round.
    for (const Tuple& b : snapshot_) completed_.insert(b);
    for (auto& [pid, c] : consumers_) {
      if (!c.external) continue;
      for (const Tuple& b : c.bindings) {
        if (snapshot_.count(b) != 0 && c.ended.insert(b).second) {
          Emit(pid, MakeEnd(b));
        }
      }
    }
  }

  void AccumulateCounters(EngineCounters& out) const override {
    NodeProcessBase::AccumulateCounters(out);
    out.stored_tuples += answers_.size();
    out.duplicate_drops += duplicate_drops_;
    out.max_node_relation =
        std::max(out.max_node_relation, static_cast<uint64_t>(answers_.size()));
  }

 protected:
  uint64_t LocalDuplicateDrops() const override { return duplicate_drops_; }

  void HandleWork(const Message& m) override {
    switch (m.kind) {
      case MessageKind::kRelationRequest:
        OnRelationRequest(m);
        break;
      case MessageKind::kTupleRequest:
        OnTupleRequest(m);
        break;
      case MessageKind::kTuple:
        OnTuple(m);
        break;
      case MessageKind::kTupleSegment:
        OnTupleSegment(m);
        break;
      case MessageKind::kEnd:
        OnEnd(m);
        break;
      default:
        MPQE_CHECK(false) << "unexpected " << m.ToString();
    }
  }

 private:
  bool IsExternal(ProcessId from) const {
    if (from == shared_.sink_pid) return true;
    return shared_.graph->node(static_cast<NodeId>(from)).scc_id !=
           gnode().scc_id;
  }

  void OnRelationRequest(const Message& m) {
    ConsumerStream& c = consumers_[m.from];
    c.external = IsExternal(m.from);
    if (!activated_) {
      activated_ = true;
      for (NodeId rc : gnode().rule_children) {
        Emit(Pid(rc), MakeRelationRequest());
      }
    }
  }

  void OnTupleRequest(const Message& m) {
    ConsumerStream& c = consumers_[m.from];
    if (!c.bindings.insert(m.binding).second) return;  // duplicate request

    // Replay the stored stream restricted to this binding — as one
    // shared segment when there is more than a row of it.
    const std::vector<size_t>* hits = answers_.Probe(d_index_, m.binding);
    if (hits != nullptr) {
      if (shared_.segment_messages && hits->size() > 1) {
        size_t cap = SegmentCap(m.from);
        auto replay = std::make_shared<TupleSegment>();
        replay->binding = m.binding;
        replay->arity = out_positions_.size();
        for (size_t pos : *hits) {
          replay->AppendRow(answers_.tuple(pos));
          if (lineage_on()) replay->lineage.push_back(answers_.row_id(pos));
          if (replay->num_rows >= cap) {
            auto next = std::make_shared<TupleSegment>();
            next->binding = replay->binding;
            next->arity = replay->arity;
            EmitSegment(m.from, std::move(replay));
            NoteSealedSegment(m.from, /*full=*/true);
            replay = std::move(next);
          }
        }
        if (replay->num_rows == 1) {
          EmitTuple(m.from, m.binding, replay->row(0), replay->row_lineage(0));
        } else if (!replay->empty()) {
          EmitSegment(m.from, std::move(replay));
          NoteSealedSegment(m.from, /*full=*/false);
        }
      } else {
        for (size_t pos : *hits) {
          EmitTuple(m.from, m.binding, answers_.tuple(pos),
                    answers_.row_id(pos));
        }
      }
    }
    if (completed_.count(m.binding) != 0) {
      if (c.external && c.ended.insert(m.binding).second) {
        Emit(m.from, MakeEnd(m.binding));
      }
      return;
    }
    // Coalesced components may be entered at any member; tell the
    // leader there is work to conclude (footnote 4).
    if (c.external && !gnode().scc_is_trivial) {
      termination_.NotifyExternalWork();
    }
    if (requested_.insert(m.binding).second) {
      outstanding_[m.binding] = ending_children_;
      open_feeder_requests_ += ending_children_;
      for (NodeId rc : gnode().rule_children) {
        Emit(Pid(rc), MakeTupleRequest(m.binding));
      }
      if (gnode().rule_children.empty()) {
        // No rule unified with this goal: the relation is empty/final.
        CompleteBinding(m.binding);
      }
    }
  }

  void OnTuple(const Message& m) {
    Relation::InsertResult ins = answers_.InsertRow(m.values);
    if (!ins.inserted) {
      ++duplicate_drops_;
      return;
    }
    uint64_t id = answers_.row_id(ins.row);
    if (lineage_on()) {
      // The union derivation: this goal's tuple exists because one
      // child tuple (the message's lineage) arrived first.
      PublishDerive(id, DeriveKind::kUnion, m.lineage, &m.lineage, 1,
                    m.values);
    }
    Tuple dproj = ProjectTuple(m.values, d_in_out_);
    for (auto& [pid, c] : consumers_) {
      if (c.bindings.count(dproj) != 0) {
        EmitTuple(pid, dproj, m.values, id);
      }
    }
  }

  // Vectorized union: absorb the whole segment through the batch
  // insert kernel (one hashing pass, one capacity reservation, one
  // dedup probe per row), then hand each consumer one shared
  // out-segment of the genuinely new rows. Rows are grouped by their
  // d-projection (normally a single group — answers echo the request
  // binding at d positions — but constants or repeated head variables
  // can split a stream). In the common case — nothing deduped, every
  // row's d-projection equal to the stream binding, lineage off — the
  // inbound shared segment handle is forwarded wholesale: zero row
  // copies and zero per-row work beyond the kernel.
  void OnTupleSegment(const Message& m) {
    if (!shared_.vectorized_segments) {
      OnTupleSegmentRowAtATime(m);
      return;
    }
    const TupleSegment& in = m.segment();
    if (in.num_rows == 0) return;
    const BatchInsertResult& ins = answers_.InsertSegment(in);
    duplicate_drops_ += in.num_rows - ins.num_inserted;
    if (ins.num_inserted == 0) return;

    if (!lineage_on() && ins.all_inserted() && AllRowsMatchBinding(in)) {
      for (auto& [pid, c] : consumers_) {
        if (c.bindings.count(in.binding) != 0) {
          EmitSegment(pid, m.segment_ptr());
        }
      }
      return;
    }

    // General path: group surviving rows by d-projection. A hash map
    // keyed on the projection replaces the old O(groups)-per-row
    // linear scan; `group_order` keeps first-appearance emission order
    // so the deterministic scheduler stays deterministic.
    struct OutGroup {
      std::shared_ptr<TupleSegment> segment;
      std::vector<uint64_t> inputs;  // one per row (lineage only)
    };
    std::unordered_map<Tuple, OutGroup, TupleHash> groups;
    std::vector<OutGroup*> group_order;
    // Shared fan-out segments go to several consumers; size them with
    // the node-wide (kNoProcess) adaptive cap.
    size_t cap = SegmentCap(kNoProcess);
    // Publishes one derive batch for the group and hands every
    // subscribed consumer the same segment object (singletons demote
    // to bare tuples). Called at the size cap and once at the end.
    auto flush_group = [&](OutGroup& group, bool full) {
      if (group.segment->empty()) return;
      group.segment->CheckConsistent();
      if (lineage_on()) {
        PublishDeriveBatch(DeriveKind::kUnion, group.segment, group.inputs);
      }
      const Tuple& binding = group.segment->binding;
      for (auto& [pid, c] : consumers_) {
        if (c.bindings.count(binding) == 0) continue;
        if (group.segment->num_rows == 1) {
          EmitTuple(pid, binding, group.segment->row(0),
                    group.segment->row_lineage(0));
        } else {
          EmitSegment(pid, group.segment);
        }
      }
      NoteSealedSegment(kNoProcess, full);
    };
    Tuple dproj(d_in_out_.size(), Value());
    for (size_t r = 0; r < in.num_rows; ++r) {
      if (!ins.inserted(r)) continue;
      TupleRef row = in.row(r);
      for (size_t i = 0; i < d_in_out_.size(); ++i) {
        dproj[i] = row[d_in_out_[i]];
      }
      auto [it, is_new] = groups.try_emplace(dproj);
      OutGroup& group = it->second;
      if (is_new) {
        group.segment = std::make_shared<TupleSegment>();
        group.segment->binding = dproj;
        group.segment->arity = in.arity;
        group_order.push_back(&group);
      }
      group.segment->AppendRow(row);
      if (lineage_on()) {
        group.segment->lineage.push_back(answers_.row_id(ins.rows[r]));
        group.inputs.push_back(in.row_lineage(r));
      }
      if (group.segment->num_rows >= cap) {
        flush_group(group, /*full=*/true);
        auto next = std::make_shared<TupleSegment>();
        next->binding = group.segment->binding;
        next->arity = group.segment->arity;
        group.segment = std::move(next);
        group.inputs.clear();
      }
    }
    for (OutGroup* group : group_order) flush_group(*group, /*full=*/false);
  }

  // Every row's d-projection equals the stream binding (the wholesale
  // forward precondition — one comparison pass over the block, far
  // cheaper than re-grouping).
  bool AllRowsMatchBinding(const TupleSegment& in) const {
    if (in.binding.size() != d_in_out_.size()) return false;
    for (size_t r = 0; r < in.num_rows; ++r) {
      TupleRef row = in.row(r);
      for (size_t i = 0; i < d_in_out_.size(); ++i) {
        if (row[d_in_out_[i]] != in.binding[i]) return false;
      }
    }
    return true;
  }

  // Row-at-a-time absorption (vectorized_segments=false): the PR 6
  // baseline, kept for A/B and pinned equivalent by segment_test.
  void OnTupleSegmentRowAtATime(const Message& m) {
    const TupleSegment& in = m.segment();
    struct OutGroup {
      std::shared_ptr<TupleSegment> segment;
      std::vector<uint64_t> inputs;  // one per row (lineage only)
    };
    std::vector<OutGroup> groups;
    size_t cap = SegmentCap(kNoProcess);
    auto flush_group = [&](OutGroup& group, bool full) {
      if (group.segment->empty()) return;
      group.segment->CheckConsistent();
      if (lineage_on()) {
        PublishDeriveBatch(DeriveKind::kUnion, group.segment, group.inputs);
      }
      const Tuple& binding = group.segment->binding;
      for (auto& [pid, c] : consumers_) {
        if (c.bindings.count(binding) == 0) continue;
        if (group.segment->num_rows == 1) {
          EmitTuple(pid, binding, group.segment->row(0),
                    group.segment->row_lineage(0));
        } else {
          EmitSegment(pid, group.segment);
        }
      }
      NoteSealedSegment(kNoProcess, full);
    };
    Tuple dproj(d_in_out_.size(), Value());
    for (size_t r = 0; r < in.num_rows; ++r) {
      TupleRef row = in.row(r);
      Relation::InsertResult ins = answers_.InsertRow(row);
      if (!ins.inserted) {
        ++duplicate_drops_;
        continue;
      }
      for (size_t i = 0; i < d_in_out_.size(); ++i) {
        dproj[i] = row[d_in_out_[i]];
      }
      OutGroup* group = nullptr;
      for (OutGroup& g : groups) {
        if (g.segment->binding == dproj) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        OutGroup g;
        g.segment = std::make_shared<TupleSegment>();
        g.segment->binding = dproj;
        g.segment->arity = in.arity;
        groups.push_back(std::move(g));
        group = &groups.back();
      }
      group->segment->AppendRow(row);
      if (lineage_on()) {
        group->segment->lineage.push_back(answers_.row_id(ins.row));
        group->inputs.push_back(in.row_lineage(r));
      }
      if (group->segment->num_rows >= cap) {
        flush_group(*group, /*full=*/true);
        auto next = std::make_shared<TupleSegment>();
        next->binding = group->segment->binding;
        next->arity = group->segment->arity;
        group->segment = std::move(next);
        group->inputs.clear();
      }
    }
    for (OutGroup& group : groups) flush_group(group, /*full=*/false);
  }

  void OnEnd(const Message& m) {
    auto it = outstanding_.find(m.binding);
    MPQE_CHECK(it != outstanding_.end())
        << "end for unknown binding at goal node " << node_id_;
    MPQE_CHECK(it->second > 0);
    --open_feeder_requests_;
    if (--it->second == 0 && gnode().scc_is_trivial) {
      CompleteBinding(m.binding);
    }
  }

  void CompleteBinding(const Tuple& b) {
    completed_.insert(b);
    for (auto& [pid, c] : consumers_) {
      if (c.external && c.bindings.count(b) != 0 && c.ended.insert(b).second) {
        Emit(pid, MakeEnd(b));
      }
    }
  }

  std::vector<size_t> out_positions_;
  std::vector<size_t> d_positions_;
  std::vector<size_t> d_in_out_;
  size_t d_index_ = 0;
  size_t ending_children_ = 0;

  bool activated_ = false;
  std::unordered_map<ProcessId, ConsumerStream> consumers_;
  std::unordered_set<Tuple, TupleHash> requested_;
  std::unordered_set<Tuple, TupleHash> snapshot_;
  std::unordered_set<Tuple, TupleHash> completed_;
  std::unordered_map<Tuple, size_t, TupleHash> outstanding_;
  Relation answers_;
  int64_t open_feeder_requests_ = 0;
  uint64_t duplicate_drops_ = 0;
};

// ---------------------------------------------------------------------------
// CycleRefProcess
// ---------------------------------------------------------------------------

class CycleRefProcess : public NodeProcessBase {
 public:
  CycleRefProcess(const EngineShared& shared, NodeId id)
      : NodeProcessBase(shared, id) {
    MPQE_CHECK(gnode().cycle_source != kNoNode);
    MPQE_CHECK(SameScc(gnode().cycle_source))
        << "a cycle reference and its ancestor are in one strong component";
  }

 protected:
  void HandleWork(const Message& m) override {
    switch (m.kind) {
      case MessageKind::kRelationRequest:
        if (!activated_) {
          activated_ = true;
          Emit(Pid(gnode().cycle_source), MakeRelationRequest());
        }
        break;
      case MessageKind::kTupleRequest:
        if (requested_.insert(m.binding).second) {
          Emit(Pid(gnode().cycle_source), MakeTupleRequest(m.binding));
        }
        break;
      case MessageKind::kTuple: {
        // The selection on the ancestor's relation already happened at
        // the ancestor (it streams only our subscribed bindings). The
        // lineage id passes through unchanged: forwarding derives
        // nothing new.
        Message fwd = MakeTuple(m.binding, m.values);
        fwd.lineage = m.lineage;
        Emit(Pid(gnode().parent), std::move(fwd));
        break;
      }
      case MessageKind::kTupleSegment:
        // Forward the shared handle — a refcount bump, zero row copies.
        EmitSegment(Pid(gnode().parent), m.segment_ptr());
        break;
      case MessageKind::kEnd:
        MPQE_CHECK(false)
            << "per-request end inside a strong component (cycle ref)";
        break;
      default:
        MPQE_CHECK(false) << "unexpected " << m.ToString();
    }
  }

 private:
  bool activated_ = false;
  std::unordered_set<Tuple, TupleHash> requested_;
};

// ---------------------------------------------------------------------------
// EdbProcess
// ---------------------------------------------------------------------------

class EdbProcess : public NodeProcessBase {
 public:
  EdbProcess(const EngineShared& shared, NodeId id)
      : NodeProcessBase(shared, id) {
    out_positions_ = gnode().OutputPositions();
    sent_scratch_ = Relation(out_positions_.size());
  }

  void OnStart() override {
    const std::string& name =
        shared_.graph->program().predicates().Name(gnode().atom.predicate);
    relation_ = shared_.db->GetRelation(name);
    MPQE_CHECK(relation_ != nullptr)
        << "EDB relation " << name << " missing (program not validated?)";

    EdbAccessPlan plan = ComputeEdbAccessPlan(gnode());
    key_positions_ = std::move(plan.key_positions);
    key_template_ = std::move(plan.key_template);
    key_d_slots_ = std::move(plan.key_d_slots);
    equalities_ = std::move(plan.equalities);
    if (!key_positions_.empty() && shared_.use_edb_indexes) {
      if (shared_.edb_index_mode == EdbIndexMode::kRegister) {
        // Network::Start is single-threaded, and EnsureIndex
        // deduplicates by key columns, so sharing the relation across
        // EDB processes is safe.
        index_handle_ = shared_.db->GetMutableRelation(name)->EnsureIndex(
            key_positions_);
        has_index_ = true;
      } else {
        // Shared snapshot: the index was pre-built at prepare time
        // (DatabaseSnapshot::EnsureIndexes over the plan's specs);
        // fall back to scanning when it is missing — e.g. the plan was
        // prepared while other sessions were running — rather than
        // mutating the shared relation.
        has_index_ = relation_->FindIndex(key_positions_, &index_handle_);
      }
    }
  }

  void AccumulateCounters(EngineCounters& out) const override {
    NodeProcessBase::AccumulateCounters(out);
    out.duplicate_drops += duplicate_drops_;
  }

 protected:
  uint64_t LocalDuplicateDrops() const override { return duplicate_drops_; }

  void HandleWork(const Message& m) override {
    switch (m.kind) {
      case MessageKind::kRelationRequest:
        break;  // nothing to do: requests identify the consumer
      case MessageKind::kTupleRequest:
        Answer(m);
        break;
      default:
        MPQE_CHECK(false) << "unexpected " << m.ToString();
    }
  }

 private:
  bool Matches(TupleRef t) const {
    for (const auto& [a, b] : equalities_) {
      if (t[a] != t[b]) return false;
    }
    return true;
  }

  void Answer(const Message& m) {
    // Per-request dedup of projected rows through a reusable scratch
    // arena: Clear() keeps the arena/table capacity, and the projected
    // row is built in a reusable buffer — no per-row Tuple
    // materialization for duplicates (and none at all on the segmented
    // path).
    sent_scratch_.Clear();
    // Segmented path: the whole answer set for this request is known
    // within this one handler, so rows go straight into one segment
    // (EmitTuple's open-segment lookup would be per-row overhead).
    std::shared_ptr<TupleSegment> segment;
    size_t cap = SegmentCap(m.from);
    if (shared_.segment_messages) {
      segment = std::make_shared<TupleSegment>();
      segment->binding = m.binding;
      segment->arity = out_positions_.size();
    }
    auto emit = [&](size_t pos) {
      TupleRef t = relation_->tuple(pos);
      if (!Matches(t)) return;
      out_buf_.clear();
      for (size_t c : out_positions_) out_buf_.push_back(t[c]);
      if (sent_scratch_.Insert(out_buf_)) {
        if (segment != nullptr) {
          segment->AppendRow(out_buf_);
          // Base-fact provenance: the underlying row's id (assigned at
          // wiring when lineage is on).
          if (lineage_on()) segment->lineage.push_back(relation_->row_id(pos));
          if (segment->num_rows >= cap) {
            auto next = std::make_shared<TupleSegment>();
            next->binding = segment->binding;
            next->arity = segment->arity;
            EmitSegment(m.from, std::move(segment));
            NoteSealedSegment(m.from, /*full=*/true);
            segment = std::move(next);
          }
        } else {
          Message msg = MakeTuple(m.binding, Tuple(out_buf_));
          msg.lineage = relation_->row_id(pos);
          Emit(m.from, std::move(msg));
        }
      } else {
        ++duplicate_drops_;
      }
    };
    Tuple key = key_template_;
    for (const auto& [key_slot, binding_ordinal] : key_d_slots_) {
      key[key_slot] = m.binding[binding_ordinal];
    }
    if (has_index_) {
      const std::vector<size_t>* hits = relation_->Probe(index_handle_, key);
      if (hits != nullptr) {
        for (size_t pos : *hits) emit(pos);
      }
    } else {
      // Scan, filtering on the key columns manually (index ablation or
      // a fully-free request).
      for (size_t pos = 0; pos < relation_->size(); ++pos) {
        TupleRef t = relation_->tuple(pos);
        bool match = true;
        for (size_t i = 0; i < key_positions_.size() && match; ++i) {
          match = t[key_positions_[i]] == key[i];
        }
        if (match) emit(pos);
      }
    }
    if (segment != nullptr && !segment->empty()) {
      if (segment->num_rows == 1) {
        Message msg = MakeTuple(m.binding, segment->row(0).ToTuple());
        msg.lineage = segment->row_lineage(0);
        Emit(m.from, std::move(msg));
      } else {
        EmitSegment(m.from, std::move(segment));
      }
      NoteSealedSegment(m.from, /*full=*/false);
    }
    Emit(m.from, MakeEnd(m.binding));
  }

  const Relation* relation_ = nullptr;
  Relation sent_scratch_{0};  // per-request projected-row dedup
  Tuple out_buf_;             // reusable projection buffer
  std::vector<size_t> out_positions_;
  std::vector<size_t> key_positions_;
  Tuple key_template_;
  std::vector<std::pair<size_t, size_t>> key_d_slots_;
  std::vector<std::pair<size_t, size_t>> equalities_;
  size_t index_handle_ = 0;
  bool has_index_ = false;
  uint64_t duplicate_drops_ = 0;
};

// ---------------------------------------------------------------------------
// RuleProcess
// ---------------------------------------------------------------------------

// Incremental multiway join driven by the rule's information passing
// strategy. Stage k holds the partial join of the head bindings with
// the first k subgoals (in sips order); a context is the tuple of
// values of all variables bound after stage k. Arriving subgoal tuples
// extend every waiting context; new contexts issue tuple requests to
// the next subgoal. Duplicate contexts and duplicate child tuples are
// dropped, which is what lets recursive cycles reach a fixpoint.
class RuleProcess : public NodeProcessBase {
 public:
  RuleProcess(const EngineShared& shared, NodeId id)
      : NodeProcessBase(shared, id),
        head_answers_(gnode().OutputPositions().size()) {
    if (shared_.lineage_ids != nullptr) {
      head_answers_.EnableLineage(shared_.lineage_ids);
    }
    BuildPlan();
  }

  bool LocallyIdle() const override { return open_feeder_requests_ == 0; }

  void AccumulateCounters(EngineCounters& out) const override {
    NodeProcessBase::AccumulateCounters(out);
    out.stored_tuples += head_answers_.size();
    uint64_t ctx = 0;
    for (const auto& s : contexts_) ctx += s.size();
    out.contexts += ctx;
    out.duplicate_drops += duplicate_drops_;
    out.max_node_relation = std::max(
        out.max_node_relation, static_cast<uint64_t>(head_answers_.size()));
  }

 protected:
  uint64_t LocalDuplicateDrops() const override { return duplicate_drops_; }

  void HandleWork(const Message& m) override {
    // The lineage id of the message whose handling produces whatever
    // fires below (kNoLineage for requests), recorded as each
    // resulting derivation's source message.
    trigger_lineage_ = m.lineage;
    switch (m.kind) {
      case MessageKind::kRelationRequest:
        if (!activated_) {
          activated_ = true;
          for (NodeId c : gnode().subgoal_children) {
            Emit(Pid(c), MakeRelationRequest());
          }
        }
        break;
      case MessageKind::kTupleRequest:
        OnHeadRequest(m);
        break;
      case MessageKind::kTuple:
        OnChildTuple(m);
        break;
      case MessageKind::kTupleSegment:
        OnChildSegment(m);
        break;
      case MessageKind::kEnd:
        OnChildEnd(m);
        break;
      default:
        MPQE_CHECK(false) << "unexpected " << m.ToString();
    }
  }

 private:
  struct ChildPlan {
    size_t body_index = 0;
    ProcessId pid = kNoProcess;
    bool expects_end = false;  // child is outside this node's SCC
    // Context slots supplying the child's d-position values (in the
    // child's d-position order).
    std::vector<size_t> binding_slots;
    // (child output ordinal -> new context slot) for the child's
    // newly bound (class f) variables.
    std::vector<std::pair<size_t, size_t>> extensions;
    // (child output ordinal -> existing context slot) join checks for
    // variables already bound before this stage but not passed as d
    // bindings (e.g. under the no-sips strategy the whole relation
    // arrives and the equi-join happens here).
    std::vector<std::pair<size_t, size_t>> checks;
    // Arity of the child's answer tuples (its output positions).
    size_t answer_arity = 0;
  };

  struct ChildReq {
    explicit ChildReq(size_t arity) : answers(arity) {}
    bool ended = false;
    // Arrived child tuples in one flat arena whose open-addressing
    // table is the dedup set — one hash + probe per row, no per-row
    // Tuple materialization for duplicates, and whole segments land
    // through the batch insert kernel.
    Relation answers;
    // Lineage ids parallel to `answers` rows (filled only when lineage
    // tracking is on; message ids, not arena row ids).
    std::vector<uint64_t> answer_ids;
    // Head bindings whose completion awaits this request's end.
    std::unordered_set<Tuple, TupleHash> dependents;
  };

  /// The request state for `binding` on `stage`, created with the
  /// stage child's answer arity on first sight.
  ChildReq& Req(size_t stage, const Tuple& binding) {
    auto it = child_reqs_[stage].find(binding);
    if (it == child_reqs_[stage].end()) {
      it = child_reqs_[stage]
               .try_emplace(binding, children_[stage - 1].answer_arity)
               .first;
    }
    return it->second;
  }

  void BuildPlan() {
    const Rule& rule = gnode().rule;
    const SipsResult& sips = gnode().sips;
    const Adornment& head_adornment = gnode().adornment;
    size_t n = rule.body.size();
    MPQE_CHECK(sips.order.size() == n);

    // Stage 0: head d variables, in head d-position order.
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (head_adornment[i] != BindingClass::kDynamic) continue;
      const Term& t = rule.head.args[i];
      MPQE_CHECK(t.is_variable()) << "class d on a constant argument";
      auto [it, inserted] = var_slot_.emplace(t.var(), var_slot_.size());
      head_binding_slots_.push_back(it->second);
    }
    stage_width_.push_back(var_slot_.size());

    // Stages 1..n: one per subgoal in sips order.
    children_.resize(n);
    for (size_t k = 1; k <= n; ++k) {
      size_t body_index = sips.order[k - 1];
      const Atom& atom = rule.body[body_index];
      const Adornment& adornment = sips.subgoal_adornments[body_index];
      ChildPlan& plan = children_[k - 1];
      plan.body_index = body_index;
      NodeId child_node = gnode().subgoal_children[body_index];
      plan.pid = Pid(child_node);
      plan.expects_end = !SameScc(child_node);
      pid_to_stage_[plan.pid] = k;

      // d-position binding sources.
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (adornment[i] != BindingClass::kDynamic) continue;
        auto it = var_slot_.find(atom.args[i].var());
        MPQE_CHECK(it != var_slot_.end())
            << "d argument not bound by an earlier stage";
        plan.binding_slots.push_back(it->second);
      }
      // Extensions and join checks from the child's output (non-e)
      // positions.
      const GraphNode& child = shared_.graph->node(child_node);
      std::vector<size_t> out_positions = child.OutputPositions();
      plan.answer_arity = out_positions.size();
      std::unordered_set<VariableId> seen_here;
      for (size_t j = 0; j < out_positions.size(); ++j) {
        const Term& t = atom.args[out_positions[j]];
        if (!t.is_variable()) continue;
        auto [it, inserted] = var_slot_.emplace(t.var(), var_slot_.size());
        if (inserted) {
          plan.extensions.emplace_back(j, it->second);
          seen_here.insert(t.var());
        } else if (adornment[out_positions[j]] != BindingClass::kDynamic &&
                   seen_here.count(t.var()) == 0) {
          // Bound earlier but not furnished as a d binding: the value
          // comes back in the answer and must join-match the context.
          // (d positions echo the request binding; repeated in-atom
          // variables are equal by the producer's construction.)
          plan.checks.emplace_back(j, it->second);
        }
      }
      stage_width_.push_back(var_slot_.size());
    }

    // Head output plan: constant or bound slot per non-e head position.
    for (size_t pos : gnode().OutputPositions()) {
      const Term& t = rule.head.args[pos];
      if (t.is_constant()) {
        head_out_.push_back({true, 0, t.constant()});
      } else {
        auto it = var_slot_.find(t.var());
        MPQE_CHECK(it != var_slot_.end())
            << "unsafe head variable escaped validation";
        head_out_.push_back({false, it->second, Value()});
      }
    }

    contexts_.resize(n + 1);
    waiting_.resize(n);
    child_reqs_.resize(n + 1);
    ctx_sources_.resize(n);
  }

  std::optional<Tuple> BuildStage0(const Tuple& binding) const {
    Tuple ctx(stage_width_[0], Value());
    std::vector<bool> set(stage_width_[0], false);
    MPQE_CHECK(binding.size() == head_binding_slots_.size());
    for (size_t i = 0; i < binding.size(); ++i) {
      size_t slot = head_binding_slots_[i];
      if (set[slot] && ctx[slot] != binding[i]) {
        return std::nullopt;  // repeated head variable, clashing values
      }
      ctx[slot] = binding[i];
      set[slot] = true;
    }
    return ctx;
  }

  Tuple HeadBindingOf(const Tuple& ctx) const {
    Tuple b;
    b.reserve(head_binding_slots_.size());
    for (size_t slot : head_binding_slots_) b.push_back(ctx[slot]);
    return b;
  }

  std::optional<Tuple> Extend(const Tuple& ctx, size_t stage,
                              TupleRef values) const {
    const ChildPlan& plan = children_[stage - 1];
    for (const auto& [ordinal, slot] : plan.checks) {
      if (ctx[slot] != values[ordinal]) return std::nullopt;
    }
    Tuple out(stage_width_[stage], Value());
    std::copy(ctx.begin(), ctx.end(), out.begin());
    for (const auto& [ordinal, slot] : plan.extensions) {
      out[slot] = values[ordinal];
    }
    return out;
  }

  void OnHeadRequest(const Message& m) {
    if (!head_seen_.insert(m.binding).second) return;
    head_outstanding_.emplace(m.binding, 0);
    dirty_.push_back(m.binding);
    std::optional<Tuple> ctx0 = BuildStage0(m.binding);
    if (ctx0.has_value()) AddContext(0, *std::move(ctx0), {});
    FlushEnds();
  }

  void OnChildTuple(const Message& m) {
    size_t stage = pid_to_stage_.at(m.from);
    ChildReq& cr = Req(stage, m.binding);
    Relation::InsertResult ins = cr.answers.InsertRow(m.values);
    if (!ins.inserted) {
      ++duplicate_drops_;
      return;
    }
    if (lineage_on()) cr.answer_ids.push_back(m.lineage);
    ExtendWaiters(waiting_[stage - 1][m.binding], stage, m.values, m.lineage);
    FlushEnds();
  }

  // Vectorized arrival: the whole segment dedups against the request's
  // answer arena in one batch pass (one hashing sweep over the
  // contiguous block, capacity reserved once, one probe per row — no
  // per-row Tuple copies for duplicates), then the waiter-extension
  // loop runs over survivors only, reading rows in place from the
  // segment. Join semantics per row are identical to OnChildTuple.
  // (The waiter/request references stay valid across AddContext: the
  // recursion only touches per-stage maps at deeper stages — see the
  // note in AddContext — so this stage's arena and batch result are
  // never mutated mid-loop.)
  void OnChildSegment(const Message& m) {
    const TupleSegment& segment = m.segment();
    size_t stage = pid_to_stage_.at(m.from);
    ChildReq& cr = Req(stage, m.binding);
    std::vector<Tuple>& waiters = waiting_[stage - 1][m.binding];
    if (!shared_.vectorized_segments) {
      // Row-at-a-time baseline (A/B): per-row hash/probe/insert.
      for (size_t r = 0; r < segment.num_rows; ++r) {
        TupleRef row = segment.row(r);
        if (!cr.answers.InsertRow(row).inserted) {
          ++duplicate_drops_;
          continue;
        }
        uint64_t row_id = segment.row_lineage(r);
        trigger_lineage_ = row_id;
        if (lineage_on()) cr.answer_ids.push_back(row_id);
        ExtendWaiters(waiters, stage, row, row_id);
      }
      FlushEnds();
      return;
    }
    const BatchInsertResult& ins = cr.answers.InsertSegment(segment);
    duplicate_drops_ += segment.num_rows - ins.num_inserted;
    if (ins.num_inserted != 0) {
      if (lineage_on()) {
        for (size_t r = 0; r < segment.num_rows; ++r) {
          if (ins.inserted(r)) {
            cr.answer_ids.push_back(segment.row_lineage(r));
          }
        }
      }
      for (size_t r = 0; r < segment.num_rows; ++r) {
        if (!ins.inserted(r)) continue;
        uint64_t row_id = segment.row_lineage(r);
        trigger_lineage_ = row_id;
        ExtendWaiters(waiters, stage, segment.row(r), row_id);
      }
    }
    FlushEnds();
  }

  /// Extends every context waiting on this (stage, binding) stream
  /// with one child answer.
  void ExtendWaiters(std::vector<Tuple>& waiters, size_t stage, TupleRef values,
                     uint64_t child_id) {
    for (size_t i = 0; i < waiters.size(); ++i) {
      std::optional<Tuple> extended = Extend(waiters[i], stage, values);
      if (extended.has_value()) {
        AddContext(stage, *std::move(extended),
                   SourcesPlus(stage - 1, waiters[i], child_id));
      }
    }
  }

  void OnChildEnd(const Message& m) {
    size_t stage = pid_to_stage_.at(m.from);
    auto it = child_reqs_[stage].find(m.binding);
    MPQE_CHECK(it != child_reqs_[stage].end());
    ChildReq& cr = it->second;
    MPQE_CHECK(!cr.ended) << "double end from child";
    cr.ended = true;
    --open_feeder_requests_;
    for (const Tuple& hb : cr.dependents) {
      auto oit = head_outstanding_.find(hb);
      MPQE_CHECK(oit != head_outstanding_.end() && oit->second > 0);
      --oit->second;
      dirty_.push_back(hb);
    }
    cr.dependents.clear();
    FlushEnds();
  }

  // The input ids of context `ctx` at stage `k`, extended by one more
  // child tuple id — the ordered (sips-order) input list of the
  // resulting stage-k+1 context. Empty when lineage is off.
  std::vector<uint64_t> SourcesPlus(size_t k, const Tuple& ctx,
                                    uint64_t child_id) {
    if (!lineage_on()) return {};
    std::vector<uint64_t> srcs = ctx_sources_[k][ctx];
    srcs.push_back(child_id);
    return srcs;
  }

  void AddContext(size_t k, Tuple ctx, std::vector<uint64_t> srcs) {
    if (!contexts_[k].insert(ctx).second) {
      // First derivation wins for contexts too: an alternative way of
      // reaching the same partial join keeps the original sources.
      ++duplicate_drops_;
      return;
    }
    size_t n = children_.size();
    if (k == n) {
      EmitHead(ctx, srcs);
      return;
    }
    if (lineage_on()) ctx_sources_[k][ctx] = srcs;
    size_t stage = k + 1;
    const ChildPlan& plan = children_[k];
    Tuple nb;
    nb.reserve(plan.binding_slots.size());
    for (size_t slot : plan.binding_slots) nb.push_back(ctx[slot]);

    Tuple hb = HeadBindingOf(ctx);
    waiting_[k][nb].push_back(ctx);

    auto [it, is_new] =
        child_reqs_[stage].try_emplace(nb, children_[k].answer_arity);
    ChildReq& cr = it->second;
    if (is_new) {
      Emit(plan.pid, MakeTupleRequest(nb));
      if (plan.expects_end) {
        ++open_feeder_requests_;
        cr.dependents.insert(hb);
        ++head_outstanding_[hb];
        dirty_.push_back(hb);
      }
    } else if (!cr.ended && plan.expects_end &&
               cr.dependents.insert(hb).second) {
      ++head_outstanding_[hb];
      dirty_.push_back(hb);
    }
    // Join with already-received answers for this request. (`cr` stays
    // valid across the recursion: AddContext(stage, ...) only touches
    // per-stage maps at indexes > k, so the arena never grows under
    // this loop and tuple(i) views stay stable.)
    for (size_t i = 0; i < cr.answers.size(); ++i) {
      std::optional<Tuple> extended = Extend(ctx, stage, cr.answers.tuple(i));
      if (extended.has_value()) {
        std::vector<uint64_t> next = srcs;
        if (lineage_on()) next.push_back(cr.answer_ids[i]);
        AddContext(stage, *std::move(extended), std::move(next));
      }
    }
  }

  void EmitHead(const Tuple& ctx, const std::vector<uint64_t>& srcs) {
    Tuple out;
    out.reserve(head_out_.size());
    for (const HeadOut& h : head_out_) {
      out.push_back(h.is_constant ? h.constant : ctx[h.slot]);
    }
    Relation::InsertResult ins = head_answers_.InsertRow(out);
    if (!ins.inserted) {
      ++duplicate_drops_;
      return;
    }
    uint64_t id = head_answers_.row_id(ins.row);
    if (lineage_on()) {
      // The rule firing: `out` exists because the subgoal tuples in
      // `srcs` (sips order) joined into a full context.
      PublishDerive(id, DeriveKind::kRuleFire, trigger_lineage_, srcs.data(),
                    srcs.size(), out);
    }
    EmitTuple(Pid(gnode().parent), HeadBindingOf(ctx), out, id);
  }

  void FlushEnds() {
    if (!gnode().scc_is_trivial) {
      dirty_.clear();
      return;
    }
    for (const Tuple& hb : dirty_) {
      auto it = head_outstanding_.find(hb);
      if (it == head_outstanding_.end() || it->second != 0) continue;
      if (head_ended_.insert(hb).second) {
        Emit(Pid(gnode().parent), MakeEnd(hb));
      }
    }
    dirty_.clear();
  }

  struct HeadOut {
    bool is_constant = false;
    size_t slot = 0;
    Value constant;
  };

  // Static plan.
  std::unordered_map<VariableId, size_t> var_slot_;
  std::vector<size_t> stage_width_;
  std::vector<size_t> head_binding_slots_;
  std::vector<ChildPlan> children_;
  std::vector<HeadOut> head_out_;
  std::unordered_map<ProcessId, size_t> pid_to_stage_;

  // Dynamic state.
  bool activated_ = false;
  std::vector<std::unordered_set<Tuple, TupleHash>> contexts_;
  std::vector<std::unordered_map<Tuple, std::vector<Tuple>, TupleHash>>
      waiting_;
  std::vector<std::unordered_map<Tuple, ChildReq, TupleHash>> child_reqs_;
  // Per-stage ordered input ids of each live context (lineage only).
  std::vector<std::unordered_map<Tuple, std::vector<uint64_t>, TupleHash>>
      ctx_sources_;
  uint64_t trigger_lineage_ = kNoLineage;
  std::unordered_set<Tuple, TupleHash> head_seen_;
  std::unordered_set<Tuple, TupleHash> head_ended_;
  std::unordered_map<Tuple, int64_t, TupleHash> head_outstanding_;
  std::vector<Tuple> dirty_;
  Relation head_answers_;
  int64_t open_feeder_requests_ = 0;
  uint64_t duplicate_drops_ = 0;
};

}  // namespace

std::unique_ptr<NodeProcessBase> MakeNodeProcess(const EngineShared& shared,
                                                 NodeId id) {
  switch (shared.graph->node(id).kind) {
    case NodeKind::kGoal:
      return std::make_unique<GoalProcess>(shared, id);
    case NodeKind::kRule:
      return std::make_unique<RuleProcess>(shared, id);
    case NodeKind::kEdbLeaf:
      return std::make_unique<EdbProcess>(shared, id);
    case NodeKind::kCycleRef:
      return std::make_unique<CycleRefProcess>(shared, id);
  }
  MPQE_CHECK(false);
  return nullptr;
}

void SinkProcess::OnStart() {
  Send(root_pid_, MakeRelationRequest());
  Send(root_pid_, MakeTupleRequest(Tuple{}));
}

void SinkProcess::OnMessage(const Message& message) {
  switch (message.kind) {
    case MessageKind::kTuple:
      answers_.Insert(message.values);
      break;
    case MessageKind::kTupleSegment: {
      const TupleSegment& segment = message.segment();
      for (size_t r = 0; r < segment.num_rows; ++r) {
        answers_.Insert(segment.row(r));
      }
      break;
    }
    case MessageKind::kEnd:
      done_ = true;
      network().RequestStop();
      break;
    case MessageKind::kBatch:
      for (const Message& sub : message.batch()) OnMessage(sub);
      break;
    default:
      MPQE_CHECK(false) << "unexpected " << message.ToString();
  }
}

}  // namespace mpqe
