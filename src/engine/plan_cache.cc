#include "engine/plan_cache.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace mpqe {

std::string PlanCacheStats::ToString() const {
  return StrCat("plan cache: size=", size, "/", capacity, " hits=", hits,
                " misses=", misses, " insertions=", insertions,
                " evictions=", evictions, " last_prepare_ns=",
                last_prepare_ns);
}

PlanCache::PlanCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::shared_ptr<const PreparedQuery> PlanCache::Lookup(
    const std::string& key, bool count_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string* canonical = &key;
  auto alias_it = aliases_.find(key);
  if (alias_it != aliases_.end()) canonical = &alias_it->second;
  auto it = entries_.find(*canonical);
  if (it == entries_.end()) {
    if (count_miss) ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

std::shared_ptr<const PreparedQuery> PlanCache::Peek(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string* canonical = &key;
  auto alias_it = aliases_.find(key);
  if (alias_it != aliases_.end()) canonical = &alias_it->second;
  auto it = entries_.find(*canonical);
  return it == entries_.end() ? nullptr : it->second.plan;
}

size_t PlanCache::Insert(const std::string& canonical_key,
                         std::shared_ptr<const PreparedQuery> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(canonical_key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    ++insertions_;
    return 0;
  }
  size_t evicted = 0;
  while (entries_.size() >= capacity_) {
    EvictOne();
    ++evicted;
  }
  lru_.push_front(canonical_key);
  Entry entry;
  entry.plan = std::move(plan);
  entry.lru_it = lru_.begin();
  entries_.emplace(canonical_key, std::move(entry));
  ++insertions_;
  return evicted;
}

void PlanCache::AddAlias(const std::string& alias_key,
                         const std::string& canonical_key) {
  if (alias_key == canonical_key) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(canonical_key);
  if (it == entries_.end()) return;
  auto [alias_it, inserted] = aliases_.emplace(alias_key, canonical_key);
  if (!inserted) {
    // Re-point a stale alias (its old target may have been evicted).
    auto old = entries_.find(alias_it->second);
    if (old != entries_.end()) {
      auto& v = old->second.aliases;
      v.erase(std::remove(v.begin(), v.end(), alias_key), v.end());
    }
    alias_it->second = canonical_key;
  }
  it->second.aliases.push_back(alias_key);
}

void PlanCache::EvictOne() {
  const std::string& victim_key = lru_.back();
  auto it = entries_.find(victim_key);
  for (const std::string& alias : it->second.aliases) aliases_.erase(alias);
  entries_.erase(it);
  lru_.pop_back();
  ++evictions_;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  aliases_.clear();
  lru_.clear();
}

}  // namespace mpqe
