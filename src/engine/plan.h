// Plan-time analysis shared between query compilation and execution.
//
// The engine lifecycle splits into two halves (see DESIGN.md §11):
// plan time — parse, validate, adorn, run sips, build the rule/goal
// graph, and decide physical access paths — and run time — wire a
// process network over the plan and move messages. Everything here is
// computed once per PreparedQuery and read (never written) by every
// QuerySession that executes the plan, which is what lets sessions
// share one immutable plan + database snapshot with no locking.

#ifndef MPQE_ENGINE_PLAN_H_
#define MPQE_ENGINE_PLAN_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "graph/rule_goal_graph.h"
#include "relational/tuple.h"

namespace mpqe {

// How an EDB leaf answers tuple requests: the selection key it probes
// or filters with, derived from the node's atom constants and dynamic
// (d-class) argument positions. Pure plan-time data — computing it
// requires only the adorned graph, not the database.
struct EdbAccessPlan {
  // Arena columns forming the selection key: constant positions plus
  // d-class positions, in argument order. Empty = full relation scan
  // (a fully-free request).
  std::vector<size_t> key_positions;
  // Per-key-slot values: atom constants filled in, d-class slots
  // defaulted (patched per request from the binding tuple).
  Tuple key_template;
  // (key slot, binding ordinal) pairs: which binding value fills which
  // key slot at request time.
  std::vector<std::pair<size_t, size_t>> key_d_slots;
  // Repeated-variable equality filters, e.g. r(X, X): (first, later)
  // argument positions that must be equal.
  std::vector<std::pair<size_t, size_t>> equalities;
};

/// Access plan for an EDB-leaf graph node (node.kind must be
/// kEdbLeaf).
EdbAccessPlan ComputeEdbAccessPlan(const GraphNode& node);

// One hash index a plan wants on a base relation.
struct EdbIndexSpec {
  std::string relation;
  std::vector<size_t> key_columns;

  friend bool operator==(const EdbIndexSpec& a, const EdbIndexSpec& b) {
    return a.relation == b.relation && a.key_columns == b.key_columns;
  }
};

/// The distinct (relation, key columns) index registrations the
/// plan's EDB leaves will probe. DatabaseSnapshot::EnsureIndexes
/// builds these once at prepare time so concurrent sessions never
/// mutate the shared database.
std::vector<EdbIndexSpec> ComputeEdbIndexSpecs(const RuleGoalGraph& graph);

}  // namespace mpqe

#endif  // MPQE_ENGINE_PLAN_H_
