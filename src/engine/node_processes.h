// The node processes of the message-controlled computation (§3):
//
//  * GoalProcess      — "predicate nodes with rule-children compute the
//                       union of the relations computed by their
//                       children"; stores its temporary relation,
//                       forwards only genuinely new answer tuples, and
//                       serves each successor a separate stream
//                       restricted to the bindings it requested.
//  * RuleProcess      — "rule nodes combine their subgoal relations
//                       using join, select, and project"; stores its
//                       subgoals' temporary relations and, when a tuple
//                       arrives that does not duplicate one already
//                       received, matches it against the others to form
//                       new tuples via joins; issues tuple requests per
//                       its information passing strategy.
//  * CycleRefProcess  — "the predicate nodes that are connected to an
//                       ancestor predicate node by a cyclic edge
//                       perform a selection on the relation computed by
//                       the ancestor".
//  * EdbProcess       — a leaf serving an EDB relation with the c/d
//                       arguments as an indexed selection; answers each
//                       tuple request completely and ends it.
//  * SinkProcess      — the evaluator's query client: subscribes to the
//                       top goal node, accumulates answers, and stops
//                       the network when the top-level end arrives.
//
// End-message discipline: per-tuple-request `end`s cross strong-
// component boundaries only. Inside a nontrivial SCC the Fig. 2
// protocol (engine/termination.h) detects quiescence, after which the
// component's leader ends all open customer requests.

#ifndef MPQE_ENGINE_NODE_PROCESSES_H_
#define MPQE_ENGINE_NODE_PROCESSES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/termination.h"
#include "graph/rule_goal_graph.h"
#include "msg/network.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace mpqe {

// Aggregated evaluation-side counters (summed over all node
// processes at the end of a run).
struct EngineCounters {
  uint64_t stored_tuples = 0;      // tuples kept in temporary relations
  uint64_t duplicate_drops = 0;    // arrivals rejected by dedup
  uint64_t contexts = 0;           // rule-node partial join results
  uint64_t max_node_relation = 0;  // largest single temporary relation
  uint64_t protocol_waves = 0;     // Fig. 2 waves initiated

  std::string ToString() const;
};

// How EDB leaves acquire their hash indexes at wiring time.
enum class EdbIndexMode {
  // Exclusive database: OnStart may register missing indexes
  // (single-threaded Start() phase; the legacy Evaluate path).
  kRegister,
  // Shared immutable snapshot: only look up indexes pre-built at plan
  // time (Relation::FindIndex); a missing index degrades to a scan
  // instead of racing concurrent sessions with a build.
  kLookupOnly,
};

// Immutable state shared by all node processes of one evaluation.
struct EngineShared {
  const RuleGoalGraph* graph = nullptr;
  // Mutable only for index registration during the single-threaded
  // Start() phase under kRegister; the run phase reads it
  // concurrently.
  Database* db = nullptr;
  // Package the computation messages emitted while handling one
  // message into per-destination batch envelopes (footnote 2).
  bool batch_messages = false;
  // Accumulate the answer tuples emitted on one stream while handling
  // one message into a columnar TupleSegment (msg/segment.h) delivered
  // as a single shared kTupleSegment message. Independent of
  // batch_messages (segments ride inside envelopes when both are on).
  bool segment_messages = true;
  // Flush an accumulating segment early once it reaches this many
  // rows (bounds per-handler buffering; >= 1).
  size_t segment_max_rows = 1024;
  // Adaptive segment sizing: each (node, destination) stream starts
  // with a segment_max_rows cap that doubles toward this limit while
  // consecutive full segments flow, so steady-state recursion ships
  // fewer, fatter batches. 0 disables growth (fixed caps).
  size_t segment_max_rows_limit = 8192;
  // Absorb arriving kTupleSegment messages through the vectorized
  // batch kernels (Relation::InsertSegment) in goal/rule processes;
  // false falls back to row-at-a-time absorption (the A/B baseline,
  // pinned equivalent by tests/segment_test.cc).
  bool vectorized_segments = true;
  // Ablation: when false, EDB node processes answer tuple requests by
  // scanning instead of probing hash indexes.
  bool use_edb_indexes = true;
  // Whether EDB leaves may register indexes or must only look up
  // pre-built ones (concurrent sessions over a shared snapshot).
  EdbIndexMode edb_index_mode = EdbIndexMode::kRegister;
  // node id -> process id (processes are registered in node order, so
  // this is the identity; kept explicit for clarity).
  std::vector<ProcessId> node_pid;
  ProcessId sink_pid = kNoProcess;
  // Derivation provenance (obs/lineage.h): when set, node relations
  // draw per-row ids from this allocator and processes stamp
  // Message::lineage / publish DeriveEvents. Null keeps the lineage-off
  // fast path to one branch per insert site.
  TupleIdAllocator* lineage_ids = nullptr;
  // Fault injection for watchdog tests: the process for this node
  // sleeps fault_park_ms once, on its first work message, wedging its
  // SCC long enough for the stall watchdog to fire. kNoNode (the
  // default) keeps the hook to one compare per message.
  NodeId fault_park_node = kNoNode;
  int fault_park_ms = 0;
};

// Base for graph-node processes: message dispatch, the termination
// participant, counters.
class NodeProcessBase : public Process, public TerminationOwner {
 public:
  ~NodeProcessBase() override = default;

  void OnMessage(const Message& message) final;

  /// Engages the Fig. 2 protocol for members of nontrivial SCCs
  /// (called by the evaluator during wiring, before Network::Start).
  void ConfigureTermination(Network* network, bool is_leader,
                            ProcessId leader, ProcessId bfst_parent,
                            std::vector<ProcessId> bfst_children);

  // TerminationOwner defaults; subclasses override as needed.
  bool LocallyIdle() const override { return true; }
  bool HasOpenCustomerWork() const override { return false; }
  void SnapshotForConclusion() override {}
  void ConcludeScc() override {}

  /// Contributes this node's counters into `out`.
  virtual void AccumulateCounters(EngineCounters& out) const;

  /// This node's Fig. 2 protocol state, for diagnostics (safe from any
  /// thread; see TerminationParticipant::ExportState).
  TerminationState termination_state() const {
    return termination_.ExportState();
  }

  NodeId node_id() const { return node_id_; }

 protected:
  NodeProcessBase(const EngineShared& shared, NodeId node_id)
      : shared_(shared),
        node_id_(node_id),
        fault_park_armed_(shared.fault_park_node == node_id &&
                          shared.fault_park_ms > 0) {}

  /// Total arrivals/results this node's duplicate elimination has
  /// rejected so far; OnMessage diffs it around each firing for the
  /// NodeFireEvent::dedup_hits delta.
  virtual uint64_t LocalDuplicateDrops() const { return 0; }

  const GraphNode& gnode() const { return shared_.graph->node(node_id_); }
  ProcessId Pid(NodeId n) const { return shared_.node_pid[n]; }
  bool SameScc(NodeId other) const {
    return shared_.graph->node(other).scc_id == gnode().scc_id;
  }

  virtual void HandleWork(const Message& message) = 0;

  /// Sends `m` to `to`, or queues it for the end-of-handler flush when
  /// packaging or segmenting is enabled. All computation messages from
  /// HandleWork should go through this.
  void Emit(ProcessId to, Message m);

  /// Emits one answer tuple on the (`to`, `binding`) stream. With
  /// segmenting on, the row lands in that stream's accumulating
  /// segment (opened at the emission point to preserve stream order,
  /// flushed at handler end or at segment_max_rows; a segment that
  /// ends up with a single row is demoted to a bare kTuple). With
  /// segmenting off this is exactly a per-tuple Emit.
  void EmitTuple(ProcessId to, const Tuple& binding, TupleRef values,
                 uint64_t lineage_id);

  /// Emits a pre-built (sealed, immutable) segment. Fan-out call sites
  /// pass the same handle to several consumers — no per-tuple copy.
  void EmitSegment(ProcessId to, std::shared_ptr<const TupleSegment> segment);

  /// Current row cap for segments built for destination `to`. Starts
  /// at segment_max_rows; with adaptive sizing enabled
  /// (segment_max_rows_limit > segment_max_rows) it doubles toward the
  /// limit as full segments flow (NoteSealedSegment). Call sites that
  /// build shared fan-out segments for several consumers use
  /// kNoProcess as the node-wide destination key.
  size_t SegmentCap(ProcessId to);

  /// Records that a segment headed to `to` sealed; `full` means it hit
  /// its row cap. Two consecutive full seals double the destination's
  /// cap (up to segment_max_rows_limit); a partial seal resets the
  /// streak — bursty producers keep small segments, steady full
  /// streams down rule chains grow theirs.
  void NoteSealedSegment(ProcessId to, bool full);

  bool lineage_on() const { return shared_.lineage_ids != nullptr; }

  /// Publishes the first-derivation record for tuple `id` to the
  /// observers (lineage tracking; see obs/lineage.h). `inputs` and
  /// `values` need only stay valid through the call.
  void PublishDerive(uint64_t id, DeriveKind kind, uint64_t source,
                     const uint64_t* inputs, size_t num_inputs,
                     TupleRef values);

  /// Publishes one batched derivation record for a whole segment
  /// (row i of `segment` derived from the single input `inputs[i]`;
  /// see DeriveBatchEvent). One observer callback per segment instead
  /// of one per row.
  void PublishDeriveBatch(DeriveKind kind,
                          const std::shared_ptr<const TupleSegment>& segment,
                          const std::vector<uint64_t>& inputs);

  const EngineShared& shared_;
  NodeId node_id_;
  TerminationParticipant termination_;

 private:
  void Dispatch(const Message& message);
  void FlushEmits();
  NodeRole Role() const;

  // A segment still accepting rows. Its (const-aliased) handle already
  // sits in outbox_ at `outbox_index` — opened at first-row time so
  // later non-tuple emissions to the same destination cannot overtake
  // the rows. Nothing reads the payload until FlushEmits sends it.
  struct OpenSegment {
    ProcessId to = kNoProcess;
    size_t outbox_index = 0;
    size_t cap = 0;  // row cap latched from SegmentCap(to) at open time
    std::shared_ptr<TupleSegment> segment;
  };

  // Adaptive per-destination sizing state (see SegmentCap).
  struct DestSizing {
    size_t cap = 0;
    uint32_t full_streak = 0;
  };

  std::vector<std::pair<ProcessId, Message>> outbox_;
  std::vector<OpenSegment> open_segments_;
  std::unordered_map<ProcessId, DestSizing> dest_sizing_;
  // Per-firing observability scratch: tuples emitted during the
  // current OnMessage, counted only while observers are installed.
  uint32_t fire_tuples_out_ = 0;
  bool observing_fire_ = false;
  // Fault injection (EngineShared::fault_park_node): armed at
  // construction, disarmed after the one park.
  bool fault_park_armed_ = false;
};

/// Creates the process for graph node `id`.
std::unique_ptr<NodeProcessBase> MakeNodeProcess(const EngineShared& shared,
                                                 NodeId id);

// The query client at the top of the network.
class SinkProcess : public Process {
 public:
  SinkProcess(ProcessId root_pid, size_t answer_arity)
      : root_pid_(root_pid), answers_(answer_arity) {}

  void OnStart() override;
  void OnMessage(const Message& message) override;

  bool done() const { return done_; }
  const Relation& answers() const { return answers_; }

 private:
  ProcessId root_pid_;
  Relation answers_;
  bool done_ = false;
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_NODE_PROCESSES_H_
