#include "engine/trace.h"

#include "common/string_util.h"

namespace mpqe {

void MessageTrace::OnSend(const SendEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEntry entry;
  entry.sequence = next_sequence_++;
  entry.from = event.from;
  entry.to = event.to;
  entry.message = *event.message;
  entries_.push_back(std::move(entry));
  if (capacity_ != 0 && entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

uint64_t MessageTrace::total_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_;
}

std::vector<TraceEntry> MessageTrace::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TraceEntry>(entries_.begin(), entries_.end());
}

std::vector<TraceEntry> MessageTrace::EntriesFor(ProcessId pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEntry> out;
  for (const TraceEntry& e : entries_) {
    if (e.from == pid || e.to == pid) out.push_back(e);
  }
  return out;
}

namespace {

std::string Endpoint(ProcessId pid, const RuleGoalGraph* graph) {
  if (pid == kNoProcess) return "(external)";
  if (graph != nullptr) {
    if (static_cast<size_t>(pid) < graph->size()) {
      return graph->NodeLabel(pid);
    }
    return "sink";
  }
  return StrCat("#", pid);
}

}  // namespace

std::string MessageTrace::ToString(const RuleGoalGraph* graph,
                                   const SymbolTable* symbols) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const TraceEntry& e : entries_) {
    out += StrCat(e.sequence, ": ", Endpoint(e.from, graph), " => ",
                  Endpoint(e.to, graph), " ", e.message.ToString(symbols),
                  "\n");
  }
  return out;
}

void MessageTrace::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace mpqe
