// The prepared-query engine API (DESIGN.md §11): the three-object
// lifecycle that splits evaluation into compile-once / run-many.
//
//   Engine engine;                                 // worker pool + plan cache
//   auto snap = engine.Attach(std::move(db));      // immutable EDB snapshot
//   auto plan = engine.Prepare(snap, program_text) // parse+adorn+sips+graph,
//                                                  //   LRU-cached
//   auto session = engine.CreateSession(*plan);    // per-execution state
//   auto result = (*session)->Run();               // or engine.RunAsync(...)
//
// * Engine owns the worker pool and the plan cache. Prepare compiles a
//   program against one snapshot and caches the result keyed on the
//   canonicalized program text (which carries the goal adornment —
//   same rules, different query constants => distinct entries), the
//   plan options, and the snapshot uid. A repeat of the *raw* text
//   hits an alias key before the parser even runs, so the hit path is
//   a hash lookup (prepare_ns ~ 0).
//
// * DatabaseSnapshot wraps a Database the engine treats as immutable.
//   All mutation the old API performed lazily at run time — index
//   registration in EdbProcess::OnStart, relation creation inside
//   Program::Validate — happens at prepare time under the snapshot
//   mutex, and only while no session is running. Sessions then execute
//   with EdbIndexMode::kLookupOnly: shared reads, no locks, no writes.
//
// * PreparedQuery is an immutable compiled plan: its own Program copy,
//   the adorned rule/goal graph with sips choices baked in, the EDB
//   index specs, and the §4.3 cost-model parameters sized from the
//   snapshot. Any number of concurrent sessions may share one plan.
//
// * QuerySession is one execution: scheduler choice, wire format,
//   observers, metrics — the run-time half of the old
//   EvaluationOptions. Sessions with lineage enabled take the snapshot
//   exclusively (provenance instrumentation writes id allocators into
//   the shared relations); everything else runs concurrently.
//
// The one-shot Evaluate() in engine/evaluator.h remains as a thin
// compatibility wrapper over the same run-time half.

#ifndef MPQE_ENGINE_ENGINE_H_
#define MPQE_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"
#include "engine/evaluator.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "engine/stats_server.h"
#include "graph/rule_goal_graph.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "relational/database.h"
#include "sips/cost_model.h"

namespace mpqe {

class Engine;
class PreparedQuery;
class QuerySession;

struct EngineOptions {
  // Worker-pool size; 0 picks from the hardware concurrency
  // (clamped to [2, 8]).
  int workers = 0;

  // Max resident plans in the LRU plan cache (>= 1).
  size_t plan_cache_capacity = 64;

  // Optional engine-lifetime metrics (not owned): plan_cache/hit,
  // plan_cache/miss, plan_cache/evictions counters; engine/prepare_ns
  // and engine/session_latency_ns histograms; engine/sessions counter.
  // Independent of any per-session SessionOptions::metrics registry
  // and of the built-in telemetry below.
  MetricsRegistry* metrics = nullptr;

  // Engine-wide telemetry (DESIGN.md §12): cross-session metric
  // aggregation, the structured query log, query-id minting, live
  // gauges. On by default; the switch exists for overhead A/B runs
  // (bench/bench_concurrent --telemetry=off) — with it off sessions
  // skip the built-in metrics collection entirely, no query ids are
  // minted and the stats server cannot start.
  bool telemetry = true;

  // Query-log capacity / slow-query threshold / background gauge
  // sampling interval (see obs/telemetry.h).
  TelemetryOptions telemetry_options = {};

  // TCP port of the built-in stats endpoint (GET /metrics, /queries,
  // /healthz on loopback; engine/stats_server.h). -1 = off (default);
  // 0 = ephemeral port (tests: read it back from stats_port());
  // >0 = that port. Requires `telemetry`.
  int stats_port = -1;

  // Bind address of the stats endpoint. Loopback unless explicitly
  // widened.
  std::string stats_bind_address = "127.0.0.1";

  // The engine black box (obs/flight_recorder.h): an always-on
  // lock-free ring of recent events every session feeds. Cheap enough
  // to leave on (CI guards <= 5% on the segment-hop bench); the switch
  // exists for overhead A/B runs. With it off, sessions record
  // nothing, /debug/flight serves an empty manual dump and the
  // watchdog still fires but its dumps carry no event history.
  bool flight_recorder = true;

  // Flight-recorder retention (per ring / ring count; see
  // FlightRecorderOptions).
  FlightRecorderOptions flight_recorder_options = {};

  // Default stall-watchdog threshold stamped into every session that
  // does not set its own SessionOptions::watchdog_stall_ms (threaded
  // scheduler only): a session with no delivery progress for this long
  // gets a diagnostic FlightDump (counted as watchdog/stalls +
  // watchdog/dumps, written to debug_dump_dir, served at
  // /debug/flight). 0 disables the engine-level default.
  int watchdog_stall_ms = 30000;

  // Directory for watchdog dump files (flight-<query_id>.json). Empty
  // = keep dumps in memory only (still served via /debug/flight).
  std::string debug_dump_dir = "";

  Status Validate() const;
};

// An EDB the engine treats as immutable. All plan-time mutation
// (validation-created relations, index builds) is serialized under the
// snapshot mutex and refused or degraded while sessions are running;
// run-time access is lock-free shared reads.
class DatabaseSnapshot {
 public:
  const Database& db() const { return db_; }
  // Distinguishes snapshots in plan-cache keys (plans bind to the
  // symbol table and catalog of one snapshot).
  uint64_t uid() const { return uid_; }
  const std::string& name() const { return name_; }

  /// Sessions currently executing against this snapshot.
  int running_sessions() const;

 private:
  friend class Engine;
  friend class QuerySession;

  DatabaseSnapshot(Database db, std::string name, uint64_t uid)
      : db_(std::move(db)), name_(std::move(name)), uid_(uid) {}

  /// Validates `program` against the snapshot catalog. With no session
  /// running this is Program::Validate(&db) (which may create missing
  /// EDB relations, empty). With sessions in flight the catalog is
  /// frozen: validation is read-only and a missing EDB relation is a
  /// FailedPrecondition instead of an implicit create.
  Status ValidateProgram(const Program& program);

  /// Builds the hash indexes in `specs` that do not exist yet. Builds
  /// happen only while no session is running (BeginSession shares this
  /// mutex, so there is no window); otherwise the missing ones are
  /// skipped and the plan's EDB leaves degrade to scans. Returns the
  /// number skipped.
  size_t EnsureIndexes(const std::vector<EdbIndexSpec>& specs);

  /// Registers a session start. Non-exclusive sessions admit any
  /// number of peers but no exclusive one; an exclusive session
  /// (lineage) requires the snapshot to itself.
  Status BeginSession(bool exclusive);
  void EndSession(bool exclusive);

  Database db_;
  std::string name_;
  uint64_t uid_;
  mutable std::mutex mutex_;
  int running_ = 0;
  bool exclusive_running_ = false;
};

// An immutable compiled plan. Produced by Engine::Prepare, shared (via
// shared_ptr) between the plan cache and any number of sessions.
class PreparedQuery {
 public:
  const Program& program() const { return *program_; }
  const RuleGoalGraph& graph() const { return *graph_; }
  const PlanOptions& plan_options() const { return plan_options_; }
  const std::shared_ptr<DatabaseSnapshot>& snapshot() const {
    return snapshot_;
  }

  /// The canonicalized program text this plan was keyed on.
  const std::string& canonical_text() const { return canonical_text_; }

  /// The (relation, key columns) hash indexes the plan's EDB leaves
  /// probe, pre-built on the snapshot at prepare time.
  const std::vector<EdbIndexSpec>& index_specs() const {
    return index_specs_;
  }

  /// §4.3 cost-model parameters sized from the snapshot's actual EDB
  /// cardinalities (what EXPLAIN and the profiler use).
  const CostModelParams& cost_params() const { return cost_params_; }

  GraphStats graph_stats() const { return graph_->Stats(); }

  /// Wall time of the cold compile that built this plan (a cache hit
  /// returns the same object, so this does not change on hits —
  /// per-call timing lives in Engine::plan_cache_stats()).
  uint64_t prepare_ns() const { return prepare_ns_; }

  /// One-line human summary: nodes/edges/SCCs, strategy, indexes.
  std::string Describe() const;

 private:
  friend class Engine;
  PreparedQuery() = default;

  std::shared_ptr<DatabaseSnapshot> snapshot_;
  std::unique_ptr<Program> program_;  // graph_ points into this copy
  std::unique_ptr<RuleGoalGraph> graph_;
  PlanOptions plan_options_;
  std::string canonical_text_;
  std::vector<EdbIndexSpec> index_specs_;
  CostModelParams cost_params_;
  uint64_t prepare_ns_ = 0;
  // Sessions created over this plan so far — mutable bookkeeping on an
  // otherwise-immutable object; feeds QueryLogEntry::plan_reused
  // (every session after the first ran on a reused plan).
  mutable std::atomic<uint64_t> sessions_created_{0};
};

// One execution of a compiled plan. Single-use: Run() evaluates once
// (on the calling thread — use Engine::RunAsync or Engine::Submit for
// the worker pool) and stores the result.
class QuerySession {
 public:
  const SessionOptions& options() const { return options_; }
  const std::shared_ptr<const PreparedQuery>& plan() const { return plan_; }

  /// Evaluates the plan. Acquires the snapshot (shared, or exclusive
  /// when options().lineage is set), runs the process network, and
  /// releases it. Calling Run twice returns FailedPrecondition.
  StatusOr<EvaluationResult> Run();

  /// Wall time of the completed Run (0 before).
  uint64_t latency_ns() const { return latency_ns_; }

  /// The engine-minted stable query id correlating this session across
  /// trace spans, log lines, lineage dumps and the query log (0 when
  /// the engine runs with telemetry off).
  uint64_t query_id() const { return options_.query_id; }

 private:
  friend class Engine;
  QuerySession(Engine* engine, std::shared_ptr<const PreparedQuery> plan,
               SessionOptions options)
      : engine_(engine), plan_(std::move(plan)), options_(std::move(options)) {}

  Engine* engine_;
  std::shared_ptr<const PreparedQuery> plan_;
  SessionOptions options_;
  // Whether this session reuses a plan another session already ran
  // (stamped at CreateSession; reported in the query log).
  bool plan_reused_ = false;
  std::atomic<bool> ran_{false};
  uint64_t latency_ns_ = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();  // drains the queue and joins the workers

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Takes ownership of `db` as an immutable snapshot.
  std::shared_ptr<DatabaseSnapshot> Attach(Database db,
                                           std::string name = "");

  /// Compiles `program_text` (rules and queries only — facts belong in
  /// the snapshot) against `snapshot`, or returns the cached plan. The
  /// raw text is an alias key: a repeat Prepare with byte-identical
  /// text skips the parser entirely.
  StatusOr<std::shared_ptr<const PreparedQuery>> Prepare(
      const std::shared_ptr<DatabaseSnapshot>& snapshot,
      std::string_view program_text, const PlanOptions& options = {});

  /// As above for an already-parsed Program (constants must be
  /// interned in the snapshot's symbol table). Keyed on the
  /// canonicalized text.
  StatusOr<std::shared_ptr<const PreparedQuery>> Prepare(
      const std::shared_ptr<DatabaseSnapshot>& snapshot,
      const Program& program, const PlanOptions& options = {});

  /// Builds a session over `plan` after validating `options`
  /// (InvalidArgument naming the offending field on misconfiguration).
  StatusOr<std::unique_ptr<QuerySession>> CreateSession(
      std::shared_ptr<const PreparedQuery> plan,
      const SessionOptions& options = {});

  /// Creates a session and runs it on the worker pool.
  std::future<StatusOr<EvaluationResult>> RunAsync(
      std::shared_ptr<const PreparedQuery> plan,
      const SessionOptions& options = {});

  /// Runs `fn` on the worker pool.
  std::future<void> Submit(std::function<void()> fn);

  /// Cache counters plus the duration of the most recent Prepare call
  /// (hit or cold) in last_prepare_ns.
  PlanCacheStats plan_cache_stats() const;

  int workers() const { return static_cast<int>(workers_.size()); }
  MetricsRegistry* metrics() const { return options_.metrics; }

  /// The engine-wide telemetry (nullptr iff EngineOptions::telemetry
  /// is off): the cross-session registry, the query log, the /metrics
  /// payload source.
  EngineTelemetry* telemetry() const { return telemetry_.get(); }

  /// The bound port of the stats endpoint, or -1 when it is not
  /// running (off, or the bind failed — see stats_server_status()).
  int stats_port() const {
    return stats_server_ != nullptr ? stats_server_->port() : -1;
  }

  /// OK when the stats endpoint was not requested or is serving; the
  /// bind/listen error otherwise (the engine itself still works).
  const Status& stats_server_status() const { return stats_server_status_; }

  /// The engine's black box (nullptr iff EngineOptions::flight_recorder
  /// is off). Sessions record into it; the watchdog and /debug/flight
  /// read it.
  FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// The most recent watchdog diagnostic bundle as mpqe-flightdump-v1
  /// JSON — or, when no watchdog has fired, a fresh "manual" dump of
  /// the recorder's current contents. This is what GET /debug/flight
  /// and `mpqe_query --flight-dump` serve.
  std::string FlightDumpJson() const;

  /// Dumps the watchdog has produced over the engine's lifetime.
  uint64_t watchdog_dumps() const {
    return watchdog_dumps_.load(std::memory_order_relaxed);
  }

 private:
  friend class QuerySession;

  StatusOr<std::shared_ptr<const PreparedQuery>> PrepareImpl(
      const std::shared_ptr<DatabaseSnapshot>& snapshot,
      const Program* program, std::string_view program_text,
      const PlanOptions& options);

  /// Compiles a plan (cold path; no cache involvement).
  StatusOr<std::shared_ptr<const PreparedQuery>> Compile(
      const std::shared_ptr<DatabaseSnapshot>& snapshot,
      const Program& program, std::string canonical_text,
      const PlanOptions& options);

  void WorkerLoop();
  void RecordSessionLatency(uint64_t ns);
  /// The session watchdogs' dump sink: serialize once, retain as the
  /// latest dump, persist to debug_dump_dir when set.
  void HandleFlightDump(const FlightDump& dump);
  /// The gauge-refresh hook telemetry samples: plan-cache size /
  /// capacity / hit-rate, pool queue depth, worker count/utilization.
  void SampleEngineGauges(MetricsRegistry& registry);

  EngineOptions options_;
  PlanCache plan_cache_;
  std::atomic<uint64_t> last_prepare_ns_{0};
  std::atomic<uint64_t> next_snapshot_uid_{1};

  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<int> busy_workers_{0};
  std::vector<std::thread> workers_;

  // The black box. Sessions hold the raw pointer through
  // SessionOptions::flight; destroyed after the pool joins (and after
  // the stats server stops) so no recording or snapshotting thread can
  // outlive it.
  std::unique_ptr<FlightRecorder> flight_;
  // Latest watchdog bundle, pre-serialized (the monitor thread pays
  // the serialization once; /debug/flight is then a string copy).
  mutable std::mutex flight_dump_mutex_;
  std::string latest_flight_dump_json_;
  std::atomic<uint64_t> watchdog_dumps_{0};

  // Declared after the pool so they are destroyed first; ~Engine also
  // tears them down explicitly (server before telemetry — its handlers
  // read the telemetry registry).
  std::unique_ptr<EngineTelemetry> telemetry_;
  std::unique_ptr<StatsServer> stats_server_;
  Status stats_server_status_;
};

}  // namespace mpqe

#endif  // MPQE_ENGINE_ENGINE_H_
