#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "obs/prometheus.h"
#include "sips/strategy.h"

namespace mpqe {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The non-text part of a plan-cache key: every input that changes the
// compiled plan besides the program itself.
std::string KeyPrefix(const DatabaseSnapshot& snapshot,
                      const PlanOptions& options) {
  return StrCat("snap=", snapshot.uid(), ";strategy=", options.strategy,
                ";max_nodes=", options.graph_options.max_nodes,
                ";coalesce=", options.graph_options.coalesce_nodes ? 1 : 0,
                ";");
}

}  // namespace

// ---------------------------------------------------------------------------
// EngineOptions

Status EngineOptions::Validate() const {
  if (workers < 0) {
    return InvalidArgumentError(
        StrCat("workers: must be >= 0 (0 = auto), got ", workers));
  }
  if (plan_cache_capacity < 1) {
    return InvalidArgumentError("plan_cache_capacity: must be >= 1");
  }
  MPQE_RETURN_IF_ERROR(telemetry_options.Validate());
  if (stats_port > 65535) {
    return InvalidArgumentError(
        StrCat("stats_port: must be <= 65535, got ", stats_port));
  }
  if (stats_port >= 0 && !telemetry) {
    return InvalidArgumentError(
        "stats_port: the stats endpoint serves telemetry; enable "
        "EngineOptions::telemetry");
  }
  if (watchdog_stall_ms < 0) {
    return InvalidArgumentError(
        StrCat("watchdog_stall_ms: must be >= 0, got ", watchdog_stall_ms));
  }
  if (flight_recorder && (flight_recorder_options.ring_capacity < 1 ||
                          flight_recorder_options.ring_count < 1)) {
    return InvalidArgumentError(
        "flight_recorder_options: ring_capacity and ring_count must be "
        ">= 1");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// DatabaseSnapshot

int DatabaseSnapshot::running_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

Status DatabaseSnapshot::ValidateProgram(const Program& program) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_ == 0 && !exclusive_running_) {
    return program.Validate(&db_);
  }
  // Sessions in flight: the catalog is frozen under them. Validate
  // without a database, then check EDB atoms against the catalog
  // read-only — a relation Program::Validate would have created is a
  // FailedPrecondition here.
  MPQE_RETURN_IF_ERROR(program.Validate(nullptr));
  for (const Rule& rule : program.rules()) {
    for (const Atom& atom : rule.body) {
      if (!program.IsEdb(atom.predicate)) continue;
      const std::string& name = program.predicates().Name(atom.predicate);
      const Relation* relation = db_.GetRelation(name);
      if (relation == nullptr) {
        return FailedPreconditionError(
            StrCat("EDB relation ", name,
                   " does not exist and cannot be created while ", running_,
                   " session(s) are running on snapshot ", uid_));
      }
      if (relation->arity() != atom.args.size()) {
        return InvalidArgumentError(
            StrCat("EDB predicate ", name, " used with arity ",
                   atom.args.size(), " but relation has arity ",
                   relation->arity()));
      }
    }
  }
  return Status::Ok();
}

size_t DatabaseSnapshot::EnsureIndexes(
    const std::vector<EdbIndexSpec>& specs) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t skipped = 0;
  for (const EdbIndexSpec& spec : specs) {
    Relation* relation = db_.GetMutableRelation(spec.relation);
    if (relation == nullptr) continue;
    size_t handle = 0;
    if (relation->FindIndex(spec.key_columns, &handle)) continue;
    if (running_ > 0 || exclusive_running_) {
      // Sessions are probing these relations right now; building would
      // race them. The plan's leaves degrade to scans for this index.
      ++skipped;
      continue;
    }
    relation->EnsureIndex(spec.key_columns);
  }
  return skipped;
}

Status DatabaseSnapshot::BeginSession(bool exclusive) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (exclusive_running_) {
    return FailedPreconditionError(
        StrCat("snapshot ", uid_,
               " is held exclusively by a lineage session"));
  }
  if (exclusive && running_ > 0) {
    return FailedPreconditionError(
        StrCat("lineage requires exclusive snapshot access, but ", running_,
               " session(s) are running on snapshot ", uid_));
  }
  ++running_;
  exclusive_running_ = exclusive;
  return Status::Ok();
}

void DatabaseSnapshot::EndSession(bool exclusive) {
  std::lock_guard<std::mutex> lock(mutex_);
  --running_;
  if (exclusive) exclusive_running_ = false;
}

// ---------------------------------------------------------------------------
// PreparedQuery

std::string PreparedQuery::Describe() const {
  GraphStats stats = graph_->Stats();
  return StrCat("plan: nodes=", stats.node_count,
                " nontrivial_sccs=", stats.nontrivial_sccs,
                " strategy=", plan_options_.strategy,
                " edb_indexes=", index_specs_.size(),
                " prepare_ns=", prepare_ns_);
}

// ---------------------------------------------------------------------------
// QuerySession

StatusOr<EvaluationResult> QuerySession::Run() {
  bool expected = false;
  if (!ran_.compare_exchange_strong(expected, true)) {
    return FailedPreconditionError(
        "QuerySession::Run called twice; sessions are single-use");
  }
  DatabaseSnapshot& snapshot = *plan_->snapshot();
  // Lineage instrumentation writes tuple-id allocators into the shared
  // EDB relations, so it needs the snapshot to itself; everything else
  // shares. Exclusive sessions may also register indexes (kRegister),
  // shared ones must not (kLookupOnly).
  const bool exclusive = options_.lineage;
  MPQE_RETURN_IF_ERROR(snapshot.BeginSession(exclusive));

  EngineTelemetry* telemetry = options_.telemetry;
  // With telemetry on, a SAMPLE of sessions (every Nth —
  // TelemetryOptions::session_metrics_every) collects deep metrics:
  // the session registry is merged into the engine-lifetime one on
  // completion. Observation forfeits the network's zero-observer fast
  // path, so doing this for every session would cost far more than the
  // 5% telemetry budget on message-heavy queries. When the caller
  // brought their own registry it is used as-is but NOT merged (they
  // own those numbers, and a caller registry spans sessions — merging
  // would double-count) — the query-log entry is still recorded, just
  // without the fire_ns breakdown.
  MetricsRegistry session_metrics;
  SessionOptions run_options = options_;
  const bool own_metrics = telemetry != nullptr &&
                           run_options.metrics == nullptr &&
                           telemetry->ShouldSampleSessionMetrics();
  if (own_metrics) run_options.metrics = &session_metrics;
  if (telemetry != nullptr) telemetry->OnSessionStart();

  const uint64_t start = NowNs();
  StatusOr<EvaluationResult> result =
      RunSession(plan_->graph(), snapshot.db_, run_options,
                 exclusive ? EdbIndexMode::kRegister
                           : EdbIndexMode::kLookupOnly);
  latency_ns_ = NowNs() - start;
  snapshot.EndSession(exclusive);
  engine_->RecordSessionLatency(latency_ns_);

  if (options_.flight != nullptr) {
    const uint64_t rows = result.ok() ? result.value().answers.size() : 0;
    options_.flight->RecordEvent(
        FlightEventType::kSessionEnd, options_.query_id,
        result.ok() ? 1 : 0, -1,
        static_cast<uint32_t>(std::min<uint64_t>(rows, UINT32_MAX)));
  }

  if (telemetry != nullptr) {
    QueryLogEntry entry;
    entry.query_id = options_.query_id;
    entry.text_hash = HashQueryText(plan_->canonical_text());
    entry.plan_reused = plan_reused_;
    entry.rows_out = result.ok() ? result.value().answers.size() : 0;
    entry.wall_ns = latency_ns_;
    entry.status =
        result.ok() ? "ok" : StatusCodeToString(result.status().code());
    telemetry->OnSessionComplete(std::move(entry),
                                 own_metrics ? &session_metrics : nullptr);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      plan_cache_(std::max<size_t>(1, options_.plan_cache_capacity)) {
  int n = options_.workers;
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(std::clamp(hw, 2u, 8u));
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }

  if (options_.flight_recorder) {
    flight_ =
        std::make_unique<FlightRecorder>(options_.flight_recorder_options);
  }

  if (options_.telemetry) {
    telemetry_ = std::make_unique<EngineTelemetry>(options_.telemetry_options);
    // Pre-register the cumulative families so a scrape sees them (at
    // zero) before the first Prepare/Run.
    MetricsRegistry& registry = telemetry_->registry();
    registry.GetCounter("plan_cache/hit");
    registry.GetCounter("plan_cache/miss");
    registry.GetCounter("plan_cache/evictions");
    registry.GetHistogram("engine/prepare_ns");
    registry.GetHistogram("engine/session_latency_ns");
    // The message-layer families too: session registries only merge
    // non-zero counters, so without these a workload that (say) never
    // ships a multi-row segment would drop the whole family from the
    // exposition instead of reporting 0 — and Prometheus rate() needs
    // the zero sample to exist.
    registry.GetCounter("msg/sent/tuple");
    registry.GetCounter("msg/sent/tuple_segment");
    registry.GetCounter("msg/delivered");
    registry.GetCounter("msg/segment_rows");
    registry.GetCounter("node/fires");
    registry.GetCounter("dedup/hits");
    registry.GetCounter("watchdog/stalls");
    registry.GetCounter("watchdog/dumps");
    telemetry_->StartSampling(
        [this](MetricsRegistry& r) { SampleEngineGauges(r); });

    if (options_.stats_port >= 0) {
      StatsServerOptions server_options;
      server_options.port = options_.stats_port;
      server_options.bind_address = options_.stats_bind_address;
      stats_server_ = std::make_unique<StatsServer>(server_options);
      EngineTelemetry* telemetry = telemetry_.get();
      stats_server_->AddRoute("/metrics", PrometheusContentType(),
                              [telemetry] {
                                telemetry->SampleNow();
                                return ToPrometheusText(telemetry->registry());
                              });
      stats_server_->AddRoute("/queries", "application/json", [telemetry] {
        return telemetry->QueryLogJson();
      });
      stats_server_->AddRoute("/healthz", "text/plain",
                              [] { return std::string("ok\n"); });
      stats_server_->AddRoute("/debug/flight", "application/json",
                              [this] { return FlightDumpJson(); });
      stats_server_status_ = stats_server_->Start();
      if (!stats_server_status_.ok()) stats_server_.reset();
    }
  }
}

Engine::~Engine() {
  // The stats server's handlers read the telemetry registry, so it
  // goes first. Then drain and join the pool BEFORE destroying
  // telemetry_: WorkerLoop runs every queued task during shutdown, and
  // pending RunAsync sessions hold the raw EngineTelemetry* stamped at
  // CreateSession — freeing it earlier is a use-after-free. The
  // sampler reading pool state is safe until members destruct.
  stats_server_.reset();
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    stopping_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  telemetry_.reset();
}

void Engine::SampleEngineGauges(MetricsRegistry& registry) {
  const PlanCacheStats cache = plan_cache_.stats();
  registry.GetGauge("plan_cache/size").Set(static_cast<double>(cache.size));
  registry.GetGauge("plan_cache/capacity")
      .Set(static_cast<double>(cache.capacity));
  const uint64_t lookups = cache.hits + cache.misses;
  registry.GetGauge("plan_cache/hit_rate")
      .Set(lookups == 0 ? 0.0
                        : static_cast<double>(cache.hits) /
                              static_cast<double>(lookups));
  size_t queue_depth;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    queue_depth = queue_.size();
  }
  registry.GetGauge("engine/pool_queue_depth")
      .Set(static_cast<double>(queue_depth));
  const int workers = static_cast<int>(workers_.size());
  registry.GetGauge("engine/workers").Set(static_cast<double>(workers));
  registry.GetGauge("engine/pool_utilization")
      .Set(workers == 0
               ? 0.0
               : static_cast<double>(
                     busy_workers_.load(std::memory_order_relaxed)) /
                     static_cast<double>(workers));
}

void Engine::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before exiting: everything Submit accepted
      // runs, even if the Engine is being destroyed.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::future<void> Engine::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    queue_.emplace_back([task] { (*task)(); });
  }
  pool_cv_.notify_one();
  return future;
}

std::shared_ptr<DatabaseSnapshot> Engine::Attach(Database db,
                                                 std::string name) {
  uint64_t uid = next_snapshot_uid_.fetch_add(1, std::memory_order_relaxed);
  if (name.empty()) name = StrCat("snapshot-", uid);
  return std::shared_ptr<DatabaseSnapshot>(
      new DatabaseSnapshot(std::move(db), std::move(name), uid));
}

StatusOr<std::shared_ptr<const PreparedQuery>> Engine::Prepare(
    const std::shared_ptr<DatabaseSnapshot>& snapshot,
    std::string_view program_text, const PlanOptions& options) {
  return PrepareImpl(snapshot, nullptr, program_text, options);
}

StatusOr<std::shared_ptr<const PreparedQuery>> Engine::Prepare(
    const std::shared_ptr<DatabaseSnapshot>& snapshot, const Program& program,
    const PlanOptions& options) {
  return PrepareImpl(snapshot, &program, std::string_view(), options);
}

StatusOr<std::shared_ptr<const PreparedQuery>> Engine::PrepareImpl(
    const std::shared_ptr<DatabaseSnapshot>& snapshot, const Program* program,
    std::string_view program_text, const PlanOptions& options) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("Prepare: snapshot must not be null");
  }
  MPQE_RETURN_IF_ERROR(options.Validate());
  const uint64_t start = NowNs();
  // Counters land in the caller's engine registry (EngineOptions::
  // metrics) and in the built-in telemetry; either may be absent.
  auto count = [this](const char* name, uint64_t delta = 1) {
    if (options_.metrics) options_.metrics->GetCounter(name).Increment(delta);
    if (telemetry_) telemetry_->registry().GetCounter(name).Increment(delta);
  };
  auto record_prepare_ns = [this, start] {
    const uint64_t ns = NowNs() - start;
    last_prepare_ns_.store(ns, std::memory_order_relaxed);
    if (options_.metrics) {
      options_.metrics->GetHistogram("engine/prepare_ns").Record(ns);
    }
    if (telemetry_) {
      telemetry_->registry().GetHistogram("engine/prepare_ns").Record(ns);
    }
  };

  const std::string prefix = KeyPrefix(*snapshot, options);

  // Fast path: byte-identical raw text seen before — no parse at all.
  std::string raw_key;
  if (program == nullptr) {
    raw_key = StrCat("raw;", prefix, program_text);
    if (std::shared_ptr<const PreparedQuery> plan =
            plan_cache_.Lookup(raw_key, /*count_miss=*/false)) {
      record_prepare_ns();
      count("plan_cache/hit");
      if (flight_) {
        flight_->RecordEvent(FlightEventType::kPlanPrepare, 0, /*a=*/1);
      }
      return plan;
    }
  }

  // Parse (text path) and canonicalize.
  Program parsed;
  if (program == nullptr) {
    Status parse_status =
        ParseRulesInto(program_text, parsed, snapshot->db_.symbols());
    if (!parse_status.ok()) {
      count("plan_cache/miss");
      return parse_status;
    }
    program = &parsed;
  }
  std::string canonical_text = program->ToString(&snapshot->db().symbols());
  std::string canonical_key = StrCat("canon;", prefix, canonical_text);

  std::shared_ptr<const PreparedQuery> plan =
      plan_cache_.Lookup(canonical_key);
  const bool hit = plan != nullptr;
  if (!hit) {
    MPQE_ASSIGN_OR_RETURN(
        plan, Compile(snapshot, *program, std::move(canonical_text), options));
    size_t evicted = plan_cache_.Insert(canonical_key, plan);
    if (evicted > 0) count("plan_cache/evictions", evicted);
  }
  if (!raw_key.empty()) plan_cache_.AddAlias(raw_key, canonical_key);

  record_prepare_ns();
  count(hit ? "plan_cache/hit" : "plan_cache/miss");
  if (flight_) {
    flight_->RecordEvent(FlightEventType::kPlanPrepare, 0,
                         /*a=*/hit ? 1 : 0);
  }
  return plan;
}

StatusOr<std::shared_ptr<const PreparedQuery>> Engine::Compile(
    const std::shared_ptr<DatabaseSnapshot>& snapshot, const Program& program,
    std::string canonical_text, const PlanOptions& options) {
  const uint64_t start = NowNs();
  auto plan = std::shared_ptr<PreparedQuery>(new PreparedQuery());
  plan->snapshot_ = snapshot;
  plan->plan_options_ = options;
  plan->canonical_text_ = std::move(canonical_text);
  // The graph keeps a pointer to its program, so the plan owns a copy
  // with the same lifetime.
  plan->program_ = std::make_unique<Program>(program);

  if (!options.skip_validation) {
    MPQE_RETURN_IF_ERROR(snapshot->ValidateProgram(*plan->program_));
  }
  MPQE_ASSIGN_OR_RETURN(std::unique_ptr<SipsStrategy> strategy,
                        MakeStrategyByName(options.strategy));
  MPQE_ASSIGN_OR_RETURN(
      plan->graph_, RuleGoalGraph::Build(*plan->program_, *strategy,
                                         options.graph_options));
  // Decide and build physical access paths now so sessions never touch
  // the relation catalog.
  plan->index_specs_ = ComputeEdbIndexSpecs(*plan->graph_);
  size_t skipped = snapshot->EnsureIndexes(plan->index_specs_);
  if (skipped > 0 && options_.metrics) {
    options_.metrics->GetCounter("plan_cache/index_builds_skipped")
        .Increment(skipped);
  }
  plan->cost_params_ =
      CostModelParamsFromDatabase(*plan->program_, snapshot->db());
  plan->prepare_ns_ = NowNs() - start;
  return std::shared_ptr<const PreparedQuery>(std::move(plan));
}

StatusOr<std::unique_ptr<QuerySession>> Engine::CreateSession(
    std::shared_ptr<const PreparedQuery> plan, const SessionOptions& options) {
  if (plan == nullptr) {
    return InvalidArgumentError("CreateSession: plan must not be null");
  }
  MPQE_RETURN_IF_ERROR(options.Validate());
  if (options_.metrics) {
    options_.metrics->GetCounter("engine/sessions").Increment();
  }
  SessionOptions session_options = options;
  bool plan_reused = false;
  if (telemetry_) {
    // Mint the stable query id here — it identifies the session from
    // birth, whether or not Run is ever called.
    session_options.query_id = telemetry_->MintQueryId();
    session_options.telemetry = telemetry_.get();
    plan_reused =
        plan->sessions_created_.fetch_add(1, std::memory_order_relaxed) > 0;
  }
  if (flight_) session_options.flight = flight_.get();
  // Engine-level watchdog default; a session may set a tighter (or
  // looser) threshold of its own. The sink persists through the
  // engine unless the caller installed one.
  if (session_options.watchdog_stall_ms == 0) {
    session_options.watchdog_stall_ms = options_.watchdog_stall_ms;
  }
  if (session_options.watchdog_stall_ms > 0 &&
      !session_options.flight_dump_sink) {
    session_options.flight_dump_sink = [this](const FlightDump& dump) {
      HandleFlightDump(dump);
    };
  }
  auto session = std::unique_ptr<QuerySession>(
      new QuerySession(this, std::move(plan), std::move(session_options)));
  session->plan_reused_ = plan_reused;
  return session;
}

std::future<StatusOr<EvaluationResult>> Engine::RunAsync(
    std::shared_ptr<const PreparedQuery> plan, const SessionOptions& options) {
  auto promise =
      std::make_shared<std::promise<StatusOr<EvaluationResult>>>();
  std::future<StatusOr<EvaluationResult>> future = promise->get_future();
  StatusOr<std::unique_ptr<QuerySession>> session =
      CreateSession(std::move(plan), options);
  if (!session.ok()) {
    promise->set_value(session.status());
    return future;
  }
  auto shared_session =
      std::shared_ptr<QuerySession>(std::move(session).value());
  Submit([promise, shared_session] {
    promise->set_value(shared_session->Run());
  });
  return future;
}

void Engine::RecordSessionLatency(uint64_t ns) {
  if (options_.metrics) {
    options_.metrics->GetHistogram("engine/session_latency_ns").Record(ns);
  }
  if (telemetry_) {
    telemetry_->registry().GetHistogram("engine/session_latency_ns")
        .Record(ns);
  }
}

void Engine::HandleFlightDump(const FlightDump& dump) {
  // Runs on a stalled session's monitor thread: serialize once here so
  // /debug/flight is a string copy under the mutex.
  FlightDump annotated = dump;
  if (telemetry_) {
    for (const QueryLogEntry& entry : telemetry_->QueryLog()) {
      if (entry.query_id == dump.query_id) {
        annotated.query_log_entry_json = entry.ToJson();
        break;
      }
    }
  }
  std::string json = annotated.ToJson();
  watchdog_dumps_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(flight_dump_mutex_);
    latest_flight_dump_json_ = json;
  }
  MPQE_LOG(kWarning) << "watchdog: stall dump for query " << dump.query_id
                     << " (stuck_scc=" << dump.stuck_scc << ", "
                     << dump.events.size() << " events)";
  if (!options_.debug_dump_dir.empty()) {
    const std::string path = StrCat(options_.debug_dump_dir, "/flight-",
                                    dump.query_id, ".json");
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << json;
    } else {
      MPQE_LOG(kWarning) << "watchdog: cannot write dump to " << path;
    }
  }
}

std::string Engine::FlightDumpJson() const {
  {
    std::lock_guard<std::mutex> lock(flight_dump_mutex_);
    if (!latest_flight_dump_json_.empty()) return latest_flight_dump_json_;
  }
  // No watchdog has fired: a manual snapshot of the black box.
  FlightDump dump;
  if (flight_) dump.events = flight_->Snapshot();
  return dump.ToJson();
}

PlanCacheStats Engine::plan_cache_stats() const {
  PlanCacheStats stats = plan_cache_.stats();
  stats.last_prepare_ns = last_prepare_ns_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mpqe
