// Rendering of adorned atoms in the paper's superscript style,
// e.g. p(V^d, Z^f); class-c constants print bare: p(a, Z^f).

#ifndef MPQE_SIPS_ADORNED_PRINTER_H_
#define MPQE_SIPS_ADORNED_PRINTER_H_

#include <string>

#include "datalog/adornment.h"
#include "datalog/ast.h"
#include "datalog/program.h"

namespace mpqe {

std::string AdornedAtomToString(const Atom& atom, const Adornment& adornment,
                                const Program& program,
                                const SymbolTable* symbols);

}  // namespace mpqe

#endif  // MPQE_SIPS_ADORNED_PRINTER_H_
