#include "sips/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace mpqe {
namespace {

std::set<VariableId> AtomVars(const Atom& atom) {
  std::set<VariableId> vars;
  for (const Term& t : atom.args) {
    if (t.is_variable()) vars.insert(t.var());
  }
  return vars;
}

}  // namespace

std::string OrderCost::ToString() const {
  return StrCat("order=[", StrJoin(order, ","), "] log_max=",
                log_max_intermediate, " generated=", total_generated,
                " cost=", total_cost);
}

OrderCost EstimateOrderCost(const Rule& rule, const Adornment& head_adornment,
                            const std::vector<size_t>& order,
                            const CostModelParams& params) {
  OrderCost out;
  out.order = order;

  // The running "context" relation: its variables and log10 size.
  std::set<VariableId> context_vars;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_variable() && IsBound(head_adornment[i])) {
      context_vars.insert(t.var());
    }
  }
  double log_context = 0.0;  // one tuple request

  for (size_t k : order) {
    const Atom& atom = rule.body[k];
    // Constants act as selections on the subgoal relation.
    size_t constant_args = 0;
    for (const Term& t : atom.args) {
      if (t.is_constant()) ++constant_args;
    }
    double log_subgoal =
        params.LogSizeOf(atom.predicate) *
        std::pow(params.alpha, static_cast<double>(constant_args));

    // Join with the context: one order-of-magnitude reduction per
    // shared variable (each is a pair of join arguments).
    std::set<VariableId> vars = AtomVars(atom);
    size_t shared = 0;
    for (VariableId v : vars) {
      if (context_vars.count(v) != 0) ++shared;
    }
    double log_result = (log_context + log_subgoal) *
                        std::pow(params.alpha, static_cast<double>(shared));

    out.total_cost += std::pow(10.0, log_context) +
                      std::pow(10.0, log_subgoal) +
                      std::pow(10.0, log_result);
    out.total_generated += std::pow(10.0, log_result);
    out.log_max_intermediate = std::max(out.log_max_intermediate, log_result);

    context_vars.insert(vars.begin(), vars.end());
    log_context = log_result;
  }
  out.log_final = log_context;
  return out;
}

CostModelParams CostModelParamsFromDatabase(const Program& program,
                                            const Database& db, double alpha) {
  CostModelParams params;
  params.alpha = alpha;
  double largest = 0.0;
  const PredicatePool& predicates = program.predicates();
  for (PredicateId p = 0; p < static_cast<PredicateId>(predicates.size());
       ++p) {
    if (!program.IsEdb(p)) continue;
    const Relation* r = db.GetRelation(predicates.Name(p));
    if (r == nullptr) continue;
    double log_size =
        std::log10(static_cast<double>(std::max<size_t>(r->size(), 1)));
    params.log_size_by_predicate.emplace(p, log_size);
    largest = std::max(largest, log_size);
  }
  params.log_relation_size = largest;
  return params;
}

StatusOr<std::vector<OrderCost>> EnumerateOrderCosts(
    const Rule& rule, const Adornment& head_adornment,
    const CostModelParams& params) {
  size_t n = rule.body.size();
  if (n > 8) {
    return InvalidArgumentError(
        StrCat("rule body too large to enumerate (", n, " > 8 subgoals)"));
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<OrderCost> costs;
  do {
    costs.push_back(EstimateOrderCost(rule, head_adornment, order, params));
  } while (std::next_permutation(order.begin(), order.end()));
  std::sort(costs.begin(), costs.end(),
            [](const OrderCost& a, const OrderCost& b) {
              return a.total_cost < b.total_cost;
            });
  return costs;
}

}  // namespace mpqe
