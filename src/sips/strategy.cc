#include "sips/strategy.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "hypergraph/monotone_flow.h"
#include "sips/adorned_printer.h"

namespace mpqe {

SipsResult ClassifySubgoals(const Rule& rule, const Adornment& head_adornment,
                            const std::vector<size_t>& order,
                            const ClassifyOptions& options) {
  MPQE_CHECK(head_adornment.size() == rule.head.arity());
  MPQE_CHECK(order.size() == rule.body.size());

  // Bound variables and which subgoal furnished them (-1 = the head).
  std::unordered_map<VariableId, int> provider;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_variable() && IsBound(head_adornment[i])) {
      provider.emplace(t.var(), -1);
    }
  }

  // In how many subgoals does each variable occur?
  std::unordered_map<VariableId, int> subgoal_count;
  for (const Atom& a : rule.body) {
    std::vector<VariableId> vars;
    CollectVariables(a, vars);
    for (VariableId v : vars) subgoal_count[v]++;
  }

  // Does the head need the variable's value (occurs at a non-e head
  // position)? Head-e occurrences require existence only.
  std::unordered_set<VariableId> head_needs_value;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_variable() && head_adornment[i] != BindingClass::kExistential) {
      head_needs_value.insert(t.var());
    }
  }

  SipsResult result;
  result.subgoal_adornments.resize(rule.body.size());
  result.arcs.resize(rule.body.size());
  result.order = order;

  for (size_t k : order) {
    const Atom& atom = rule.body[k];
    std::vector<VariableId> vars;
    CollectVariables(atom, vars);

    // Decide the class of each distinct variable of this subgoal.
    std::unordered_map<VariableId, BindingClass> var_class;
    std::unordered_set<size_t> arc_sources;
    for (VariableId v : vars) {
      auto bound_it = provider.find(v);
      if (bound_it != provider.end() &&
          (options.use_dynamic || bound_it->second == -1)) {
        var_class[v] = BindingClass::kDynamic;
        if (bound_it->second >= 0) {
          arc_sources.insert(static_cast<size_t>(bound_it->second));
        }
      } else if (options.use_existential && subgoal_count[v] == 1 &&
                 head_needs_value.count(v) == 0) {
        var_class[v] = BindingClass::kExistential;
      } else {
        var_class[v] = BindingClass::kFree;
      }
    }

    Adornment& adornment = result.subgoal_adornments[k];
    adornment.resize(atom.args.size());
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      adornment[i] = t.is_constant() ? BindingClass::kConstant
                                     : var_class[t.var()];
    }
    for (size_t source : arc_sources) result.arcs[source].push_back(k);

    // This subgoal's f variables are bound for later subgoals.
    for (VariableId v : vars) {
      if (var_class[v] == BindingClass::kFree) provider.emplace(v, static_cast<int>(k));
    }
  }
  for (auto& arc : result.arcs) std::sort(arc.begin(), arc.end());
  return result;
}

std::string SipsResult::ToString(const Rule& rule,
                                 const Program& program) const {
  return StrJoin(order, " -> ", [&](std::ostream& os, size_t k) {
    os << AdornedAtomToString(rule.body[k], subgoal_adornments[k], program,
                              nullptr);
  });
}

namespace {

// Counts arguments of `atom` that are constants or currently bound vars.
size_t BoundArgumentCount(const Atom& atom,
                          const std::unordered_set<VariableId>& bound) {
  size_t n = 0;
  for (const Term& t : atom.args) {
    if (t.is_constant() || bound.count(t.var()) != 0) ++n;
  }
  return n;
}

std::unordered_set<VariableId> HeadBoundVars(const Rule& rule,
                                             const Adornment& head_adornment) {
  std::unordered_set<VariableId> bound;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_variable() && IsBound(head_adornment[i])) bound.insert(t.var());
  }
  return bound;
}

class GreedyStrategy : public SipsStrategy {
 public:
  GreedyStrategy() = default;
  explicit GreedyStrategy(const ClassifyOptions& options)
      : options_(options) {}

  std::string name() const override {
    return options_.use_existential ? "greedy" : "greedy_no_e";
  }

  StatusOr<SipsResult> Classify(const Rule& rule,
                                const Adornment& head_adornment,
                                const Program& program) const override {
    (void)program;
    std::unordered_set<VariableId> bound = HeadBoundVars(rule, head_adornment);
    size_t n = rule.body.size();
    std::vector<bool> taken(n, false);
    std::vector<size_t> order;
    order.reserve(n);
    for (size_t step = 0; step < n; ++step) {
      size_t best = n;
      size_t best_bound = 0;
      for (size_t k = 0; k < n; ++k) {
        if (taken[k]) continue;
        size_t b = BoundArgumentCount(rule.body[k], bound);
        if (best == n || b > best_bound) {
          best = k;
          best_bound = b;
        }
      }
      taken[best] = true;
      order.push_back(best);
      std::vector<VariableId> vars;
      CollectVariables(rule.body[best], vars);
      bound.insert(vars.begin(), vars.end());
    }
    return ClassifySubgoals(rule, head_adornment, order, options_);
  }

 private:
  ClassifyOptions options_;
};

class LeftToRightStrategy : public SipsStrategy {
 public:
  std::string name() const override { return "left_to_right"; }

  StatusOr<SipsResult> Classify(const Rule& rule,
                                const Adornment& head_adornment,
                                const Program& program) const override {
    (void)program;
    std::vector<size_t> order(rule.body.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    return ClassifySubgoals(rule, head_adornment, order, ClassifyOptions{});
  }
};

class QualTreeStrategy : public SipsStrategy {
 public:
  explicit QualTreeStrategy(bool fall_back_to_greedy)
      : fall_back_to_greedy_(fall_back_to_greedy) {}

  std::string name() const override {
    return fall_back_to_greedy_ ? "qual_tree_or_greedy" : "qual_tree";
  }

  StatusOr<SipsResult> Classify(const Rule& rule,
                                const Adornment& head_adornment,
                                const Program& program) const override {
    MonotoneFlowResult flow = TestMonotoneFlow(rule, head_adornment, program);
    if (!flow.has_monotone_flow) {
      if (fall_back_to_greedy_) {
        return GreedyStrategy().Classify(rule, head_adornment, program);
      }
      return FailedPreconditionError(StrCat(
          "rule lacks the monotone flow property (cyclic evaluation "
          "hypergraph): ",
          flow.evaluation.hypergraph.ToString()));
    }
    RootedQualTree rooted =
        RootQualTree(flow.gyo.qual_tree, flow.evaluation.head_edge);
    std::vector<size_t> order;
    order.reserve(rule.body.size());
    for (size_t edge : rooted.preorder) {
      if (edge == flow.evaluation.head_edge) continue;
      order.push_back(edge - 1);  // edge i+1 is body subgoal i
    }
    return ClassifySubgoals(rule, head_adornment, order, ClassifyOptions{});
  }

 private:
  bool fall_back_to_greedy_;
};

class NoSipsStrategy : public SipsStrategy {
 public:
  std::string name() const override { return "no_sips"; }

  StatusOr<SipsResult> Classify(const Rule& rule,
                                const Adornment& head_adornment,
                                const Program& program) const override {
    (void)program;
    std::vector<size_t> order(rule.body.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    ClassifyOptions options;
    options.use_dynamic = false;
    options.use_existential = false;
    return ClassifySubgoals(rule, head_adornment, order, options);
  }
};

}  // namespace

std::unique_ptr<SipsStrategy> MakeGreedyStrategy() {
  return std::make_unique<GreedyStrategy>();
}
std::unique_ptr<SipsStrategy> MakeGreedyNoExistentialStrategy() {
  ClassifyOptions options;
  options.use_existential = false;
  return std::make_unique<GreedyStrategy>(options);
}
std::unique_ptr<SipsStrategy> MakeLeftToRightStrategy() {
  return std::make_unique<LeftToRightStrategy>();
}
std::unique_ptr<SipsStrategy> MakeQualTreeStrategy() {
  return std::make_unique<QualTreeStrategy>(/*fall_back_to_greedy=*/false);
}
std::unique_ptr<SipsStrategy> MakeQualTreeOrGreedyStrategy() {
  return std::make_unique<QualTreeStrategy>(/*fall_back_to_greedy=*/true);
}
std::unique_ptr<SipsStrategy> MakeNoSipsStrategy() {
  return std::make_unique<NoSipsStrategy>();
}

StatusOr<std::unique_ptr<SipsStrategy>> MakeStrategyByName(
    const std::string& name) {
  if (name == "greedy") return MakeGreedyStrategy();
  if (name == "greedy_no_e") return MakeGreedyNoExistentialStrategy();
  if (name == "left_to_right") return MakeLeftToRightStrategy();
  if (name == "qual_tree") return MakeQualTreeStrategy();
  if (name == "qual_tree_or_greedy") return MakeQualTreeOrGreedyStrategy();
  if (name == "no_sips") return MakeNoSipsStrategy();
  return InvalidArgumentError(StrCat("unknown sips strategy: ", name));
}

}  // namespace mpqe
