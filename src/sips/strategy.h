// Information passing strategies (Def. 2.3): given a rule whose head
// has known binding classes, decide the order in which subgoals are
// solved and classify every subgoal argument as c/d/e/f. "Essentially,
// Prolog solves the subgoals in order, left to right. Here the system
// decides in which order to solve them" (§2.2).
//
// A strategy is an acyclic directed graph on the subgoals: the arc
// r -> s is present whenever an "f" argument of r furnishes bindings
// for a "d" argument of s.

#ifndef MPQE_SIPS_STRATEGY_H_
#define MPQE_SIPS_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/adornment.h"
#include "datalog/ast.h"
#include "datalog/program.h"

namespace mpqe {

// The output of a strategy for one rule instance.
struct SipsResult {
  // Adornment of each body subgoal (parallel to rule.body).
  std::vector<Adornment> subgoal_adornments;
  // Evaluation order: a permutation of body indexes; when subgoal
  // order[k] is solved, every d argument of it is already furnished by
  // the head or by subgoals order[0..k-1].
  std::vector<size_t> order;
  // arcs[i] = subgoals whose d arguments receive bindings from an f
  // argument of subgoal i (the Def. 2.3 graph; head-furnished bindings
  // do not appear).
  std::vector<std::vector<size_t>> arcs;

  std::string ToString(const Rule& rule, const Program& program) const;
};

// Tuning knobs shared by the strategies.
struct ClassifyOptions {
  // If false, never produce class d: subgoals are requested with free
  // arguments and intermediate relations are computed in full (the
  // McKay-Shapiro-style baseline of §1.1).
  bool use_dynamic = true;
  // If false, never produce class e (treat single-use variables as f).
  bool use_existential = true;
};

/// Classifies subgoal arguments for a fixed evaluation `order`
/// (permutation of body indexes):
///   * constants -> c;
///   * variables already bound (head c/d positions or an earlier
///     subgoal's f/e argument) -> d;
///   * unbound variables occurring in exactly one subgoal whose head
///     occurrences (if any) are all class e -> e;
///   * all other variables -> f (and become bound for later subgoals).
SipsResult ClassifySubgoals(const Rule& rule, const Adornment& head_adornment,
                            const std::vector<size_t>& order,
                            const ClassifyOptions& options);

// Strategy interface. Implementations are stateless and thread-safe.
class SipsStrategy {
 public:
  virtual ~SipsStrategy() = default;

  virtual std::string name() const = 0;

  /// Chooses an order and classifies the subgoals of `rule` given the
  /// binding classes of its head.
  virtual StatusOr<SipsResult> Classify(const Rule& rule,
                                        const Adornment& head_adornment,
                                        const Program& program) const = 0;
};

/// Greedy strategy (Def. 2.4): repeatedly solve next a subgoal with
/// the maximum number of bound arguments, so the set of d arguments is
/// "maximally pushed forward". Ties break toward textual order.
std::unique_ptr<SipsStrategy> MakeGreedyStrategy();

/// Greedy ordering but with the class-e optimization disabled
/// (single-use variables stay f; values are transmitted). Isolates the
/// benefit of the "e" designation (§2.2).
std::unique_ptr<SipsStrategy> MakeGreedyNoExistentialStrategy();

/// Prolog-style: subgoals in textual left-to-right order.
std::unique_ptr<SipsStrategy> MakeLeftToRightStrategy();

/// Qual-tree strategy (Thm. 4.1): requires the rule to have the
/// monotone flow property; directs the qual tree away from the root
/// and solves subgoals in BFS preorder. Fails with
/// FailedPreconditionError when the evaluation hypergraph is cyclic.
std::unique_ptr<SipsStrategy> MakeQualTreeStrategy();

/// Like the qual-tree strategy but falls back to greedy on rules
/// without monotone flow (the practical default).
std::unique_ptr<SipsStrategy> MakeQualTreeOrGreedyStrategy();

/// No sideways information passing: all variables class f (constants
/// still c). Reproduces the "intermediate relations tend to be
/// entirely computed" behavior of [MS81].
std::unique_ptr<SipsStrategy> MakeNoSipsStrategy();

/// Factory by name ("greedy", "greedy_no_e", "left_to_right",
/// "qual_tree", "qual_tree_or_greedy", "no_sips") for CLI tools and
/// benches.
StatusOr<std::unique_ptr<SipsStrategy>> MakeStrategyByName(
    const std::string& name);

}  // namespace mpqe

#endif  // MPQE_SIPS_STRATEGY_H_
