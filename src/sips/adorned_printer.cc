#include "sips/adorned_printer.h"

#include "common/string_util.h"

namespace mpqe {

std::string AdornedAtomToString(const Atom& atom, const Adornment& adornment,
                                const Program& program,
                                const SymbolTable* symbols) {
  std::ostringstream out;
  out << program.predicates().Name(atom.predicate) << "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out << ", ";
    const Term& t = atom.args[i];
    if (t.is_constant()) {
      out << t.constant().ToString(symbols);
    } else {
      out << program.variables().Name(t.var()) << "^"
          << BindingClassToChar(adornment[i]);
    }
  }
  out << ")";
  return out.str();
}

}  // namespace mpqe
