#include "baseline/tabled_top_down.h"

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/unify.h"

namespace mpqe {
namespace {

// A partially resolved rule instance deriving answers for `table`.
struct State {
  size_t table = 0;   // index into Engine::tables_
  Rule rule;          // renamed-apart instance
  Substitution subst;
  size_t next = 0;    // body position to resolve
};

// A derivation suspended on a table's answers.
struct Consumer {
  State state;  // state.next is the subgoal consuming the answers
};

struct Table {
  Atom call;                       // canonical call atom
  Relation answers;                // full-arity instantiations
  std::vector<Consumer> consumers;

  explicit Table(Atom c)
      : call(std::move(c)), answers(call.args.size()) {}
};

class Engine {
 public:
  Engine(const Program& program, Database& db)
      : program_(program), db_(db), vars_(program.variables()) {}

  StatusOr<TabledResult> Run() {
    PredicateId goal = program_.GoalPredicate();
    Atom top;
    top.predicate = goal;
    for (size_t i = 0; i < program_.predicates().Arity(goal); ++i) {
      top.args.push_back(Term::Var(vars_.Fresh("q")));
    }
    size_t root = EnsureTable(top);

    while (!worklist_.empty()) {
      State state = std::move(worklist_.front());
      worklist_.pop_front();
      Step(std::move(state));
    }

    TabledResult result;
    result.answers = tables_[root]->answers;
    result.tables = tables_.size();
    result.derived = derived_;
    result.resumptions = resumptions_;
    return result;
  }

 private:
  // Canonical key: predicate, constants, repeated-free-variable
  // pattern. Two calls with the same key share one table.
  static std::string KeyOf(const Atom& atom) {
    std::string key = StrCat("p", atom.predicate);
    std::unordered_map<VariableId, int> canon;
    for (const Term& t : atom.args) {
      if (t.is_constant()) {
        key += StrCat("|k", static_cast<int>(t.constant().kind()), ":",
                      t.constant().payload());
      } else {
        auto [it, inserted] =
            canon.emplace(t.var(), static_cast<int>(canon.size()));
        key += StrCat("|v", it->second);
      }
    }
    return key;
  }

  // Finds or creates the table for (the canonical form of) `call`;
  // on creation schedules its rule expansions.
  size_t EnsureTable(const Atom& call) {
    std::string key = KeyOf(call);
    auto it = table_index_.find(key);
    if (it != table_index_.end()) return it->second;

    size_t index = tables_.size();
    tables_.push_back(std::make_unique<Table>(call));
    table_index_.emplace(std::move(key), index);

    for (size_t rule_index : program_.RuleIndexesFor(call.predicate)) {
      Rule renamed = RenameApart(program_.rules()[rule_index], vars_);
      Substitution subst;
      if (!ExtendMgu(renamed.head, call, subst)) continue;
      State state;
      state.table = index;
      state.rule = std::move(renamed);
      state.subst = std::move(subst);
      state.next = 0;
      worklist_.push_back(std::move(state));
    }
    return index;
  }

  void Step(State state) {
    if (state.next == state.rule.body.size()) {
      EmitAnswer(state);
      return;
    }
    Atom selected = state.subst.Apply(state.rule.body[state.next]);
    if (program_.IsEdb(selected.predicate)) {
      ResolveAgainstEdb(state, selected);
      return;
    }
    size_t table = EnsureTable(selected);
    // Register, then replay the snapshot: later inserts notify the
    // consumer exactly once each.
    tables_[table]->consumers.push_back(Consumer{state});
    size_t snapshot = tables_[table]->answers.size();
    for (size_t i = 0; i < snapshot; ++i) {
      Resume(state, tables_[table]->answers.tuple(i));
    }
  }

  void EmitAnswer(const State& state) {
    Atom head = state.subst.Apply(state.rule.head);
    Tuple tuple;
    tuple.reserve(head.args.size());
    for (const Term& t : head.args) {
      MPQE_CHECK(t.is_constant()) << "non-ground tabled answer";
      tuple.push_back(t.constant());
    }
    Table& table = *tables_[state.table];
    if (!table.answers.Insert(tuple)) return;
    ++derived_;
    // Deliver the new answer to every consumer registered so far.
    // (Consumers registered later replay it from the snapshot.)
    for (size_t i = 0; i < table.consumers.size(); ++i) {
      Resume(table.consumers[i].state, tuple);
    }
  }

  // Extends `state` (suspended at its current subgoal) with one answer
  // instantiation and schedules the continuation.
  void Resume(const State& state, TupleRef answer) {
    ++resumptions_;
    State extended = state;
    const Atom& raw = extended.rule.body[extended.next];
    bool ok = true;
    for (size_t i = 0; i < raw.args.size() && ok; ++i) {
      Term lhs = extended.subst.Resolve(raw.args[i]);
      if (lhs.is_constant()) {
        ok = lhs.constant() == answer[i];
      } else {
        extended.subst.Bind(lhs.var(), Term::Const(answer[i]));
      }
    }
    if (!ok) return;
    ++extended.next;
    worklist_.push_back(std::move(extended));
  }

  void ResolveAgainstEdb(const State& state, const Atom& selected) {
    Relation* rel =
        db_.GetMutableRelation(program_.predicates().Name(selected.predicate));
    if (rel == nullptr) return;
    std::vector<size_t> key_positions;
    Tuple key;
    for (size_t i = 0; i < selected.args.size(); ++i) {
      if (selected.args[i].is_constant()) {
        key_positions.push_back(i);
        key.push_back(selected.args[i].constant());
      }
    }
    auto try_fact = [&](TupleRef fact) {
      State extended = state;
      bool ok = true;
      for (size_t i = 0; i < selected.args.size() && ok; ++i) {
        Term lhs = extended.subst.Resolve(selected.args[i]);
        if (lhs.is_constant()) {
          ok = lhs.constant() == fact[i];
        } else {
          extended.subst.Bind(lhs.var(), Term::Const(fact[i]));
        }
      }
      if (!ok) return;
      ++extended.next;
      worklist_.push_back(std::move(extended));
    };
    if (!key_positions.empty()) {
      size_t handle = rel->EnsureIndex(key_positions);
      const std::vector<size_t>* hits = rel->Probe(handle, key);
      if (hits != nullptr) {
        for (size_t pos : *hits) try_fact(rel->tuple(pos));
      }
    } else {
      for (TupleRef fact : rel->tuples()) try_fact(fact);
    }
  }

  const Program& program_;
  Database& db_;
  VariablePool vars_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, size_t> table_index_;
  std::deque<State> worklist_;
  uint64_t derived_ = 0;
  uint64_t resumptions_ = 0;
};

}  // namespace

StatusOr<TabledResult> TabledTopDown(const Program& program, Database& db) {
  MPQE_RETURN_IF_ERROR(program.Validate(&db));
  Engine engine(program, db);
  return engine.Run();
}

}  // namespace mpqe
