#include "baseline/bottom_up.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "datalog/unify.h"

namespace mpqe {
namespace {

// Backtracking matcher for one rule body over given relations, with
// index probes on bound argument positions. Relations are mutable only
// so lazily created indexes can be registered; tuples are never added
// while matching (callers buffer inserts per round).
class RuleMatcher {
 public:
  // `relations[i]` serves body atom i. `order` is the evaluation
  // order; if empty, a greedy most-bound-first order is computed.
  RuleMatcher(const Rule& rule, std::vector<Relation*> relations,
              std::vector<size_t> order)
      : rule_(rule), relations_(std::move(relations)), order_(std::move(order)) {
    if (order_.empty()) order_ = GreedyOrder();
  }

  void Run(const std::function<void(const Tuple&)>& emit) {
    emit_ = &emit;
    Step(0);
  }

  // Greedy order: repeatedly pick the unchosen atom with the most
  // statically bound arguments (constants or already-bound variables);
  // the caller may force a first atom by passing it via `pinned`.
  static std::vector<size_t> GreedyOrderFor(const Rule& rule, int pinned) {
    std::unordered_set<VariableId> bound;
    std::vector<size_t> order;
    size_t n = rule.body.size();
    std::vector<bool> taken(n, false);
    auto bind_vars = [&](size_t k) {
      std::vector<VariableId> vars;
      CollectVariables(rule.body[k], vars);
      bound.insert(vars.begin(), vars.end());
    };
    if (pinned >= 0) {
      order.push_back(static_cast<size_t>(pinned));
      taken[static_cast<size_t>(pinned)] = true;
      bind_vars(static_cast<size_t>(pinned));
    }
    while (order.size() < n) {
      size_t best = n, best_count = 0;
      for (size_t k = 0; k < n; ++k) {
        if (taken[k]) continue;
        size_t count = 0;
        for (const Term& t : rule.body[k].args) {
          if (t.is_constant() || bound.count(t.var()) != 0) ++count;
        }
        if (best == n || count > best_count) {
          best = k;
          best_count = count;
        }
      }
      taken[best] = true;
      order.push_back(best);
      bind_vars(best);
    }
    return order;
  }

 private:
  std::vector<size_t> GreedyOrder() const {
    return GreedyOrderFor(rule_, /*pinned=*/-1);
  }

  void Step(size_t depth) {
    if (depth == order_.size()) {
      Tuple head;
      head.reserve(rule_.head.args.size());
      for (const Term& t : rule_.head.args) {
        head.push_back(t.is_constant() ? t.constant()
                                       : bindings_.at(t.var()));
      }
      (*emit_)(head);
      return;
    }
    size_t body_index = order_[depth];
    const Atom& atom = rule_.body[body_index];
    Relation* rel = relations_[body_index];

    // Bound positions form the index key.
    std::vector<size_t> key_positions;
    Tuple key;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_constant()) {
        key_positions.push_back(i);
        key.push_back(t.constant());
      } else {
        auto it = bindings_.find(t.var());
        if (it != bindings_.end()) {
          key_positions.push_back(i);
          key.push_back(it->second);
        }
      }
    }

    auto try_tuple = [&](TupleRef tuple) {
      std::vector<VariableId> bound_here;
      bool ok = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant()) {
          if (tuple[i] != t.constant()) {
            ok = false;
            break;
          }
          continue;
        }
        auto [it, inserted] = bindings_.emplace(t.var(), tuple[i]);
        if (inserted) {
          bound_here.push_back(t.var());
        } else if (it->second != tuple[i]) {
          ok = false;
          break;
        }
      }
      if (ok) Step(depth + 1);
      for (VariableId v : bound_here) bindings_.erase(v);
    };

    if (!key_positions.empty()) {
      size_t handle = rel->EnsureIndex(key_positions);
      const std::vector<size_t>* hits = rel->Probe(handle, key);
      if (hits != nullptr) {
        for (size_t pos : *hits) try_tuple(rel->tuple(pos));
      }
    } else {
      for (TupleRef t : rel->tuples()) try_tuple(t);
    }
  }

  const Rule& rule_;
  std::vector<Relation*> relations_;
  std::vector<size_t> order_;
  std::unordered_map<VariableId, Value> bindings_;
  const std::function<void(const Tuple&)>* emit_ = nullptr;
};

// Shared state for both bottom-up evaluators.
class BottomUpState {
 public:
  BottomUpState(const Program& program, Database& db)
      : program_(program), db_(db) {
    for (PredicateId p = 0;
         p < static_cast<PredicateId>(program.predicates().size()); ++p) {
      if (program.IsIdb(p)) {
        idb_.emplace(p, Relation(program.predicates().Arity(p)));
      }
    }
  }

  Relation* RelationFor(PredicateId p) {
    auto it = idb_.find(p);
    if (it != idb_.end()) return &it->second;
    return db_.GetMutableRelation(program_.predicates().Name(p));
  }

  Relation& Idb(PredicateId p) { return idb_.at(p); }

  BottomUpResult Finish() {
    BottomUpResult result;
    PredicateId goal = program_.GoalPredicate();
    result.goal = idb_.at(goal);
    result.total_derived = derived_;
    result.iterations = iterations_;
    for (const auto& [p, rel] : idb_) {
      result.idb_sizes[program_.predicates().Name(p)] = rel.size();
    }
    return result;
  }

  const Program& program_;
  Database& db_;
  std::unordered_map<PredicateId, Relation> idb_;
  uint64_t derived_ = 0;
  uint64_t iterations_ = 0;
};

}  // namespace

StatusOr<BottomUpResult> NaiveBottomUp(const Program& program, Database& db) {
  MPQE_RETURN_IF_ERROR(program.Validate(&db));
  BottomUpState state(program, db);

  bool changed = true;
  while (changed) {
    changed = false;
    ++state.iterations_;
    // Buffer inserts so every rule sees the relations as of the round
    // start (and so index iteration is never invalidated mid-match).
    std::vector<std::pair<PredicateId, Tuple>> fresh;
    for (const Rule& rule : program.rules()) {
      std::vector<Relation*> rels;
      rels.reserve(rule.body.size());
      for (const Atom& a : rule.body) {
        rels.push_back(state.RelationFor(a.predicate));
      }
      RuleMatcher matcher(rule, std::move(rels), {});
      matcher.Run([&](const Tuple& head) {
        fresh.emplace_back(rule.head.predicate, head);
      });
    }
    for (auto& [p, t] : fresh) {
      if (state.Idb(p).Insert(std::move(t))) {
        changed = true;
        ++state.derived_;
      }
    }
  }
  return state.Finish();
}

StatusOr<BottomUpResult> SemiNaiveBottomUp(const Program& program,
                                           Database& db) {
  MPQE_RETURN_IF_ERROR(program.Validate(&db));
  BottomUpState state(program, db);
  PredicateDependencies deps = AnalyzeDependencies(program);

  // Group IDB predicates by SCC; components are numbered callees
  // before callers, so increasing id is a valid stratum order.
  std::vector<std::vector<PredicateId>> strata(deps.scc_count);
  for (PredicateId p = 0;
       p < static_cast<PredicateId>(program.predicates().size()); ++p) {
    if (program.IsIdb(p)) strata[deps.scc_of[p]].push_back(p);
  }

  for (int scc = 0; scc < deps.scc_count; ++scc) {
    const std::vector<PredicateId>& preds = strata[scc];
    if (preds.empty()) continue;
    std::unordered_set<PredicateId> in_scc(preds.begin(), preds.end());
    bool recursive = preds.size() > 1;
    if (!recursive) {
      PredicateId p = preds[0];
      recursive = std::binary_search(deps.adjacency[p].begin(),
                                     deps.adjacency[p].end(), p);
    }

    // Rules of this stratum, split into base (no in-SCC body atom) and
    // recursive.
    std::vector<const Rule*> base_rules, rec_rules;
    for (const Rule& rule : program.rules()) {
      if (in_scc.count(rule.head.predicate) == 0) continue;
      bool rec = false;
      for (const Atom& a : rule.body) {
        if (in_scc.count(a.predicate) != 0) rec = true;
      }
      (rec ? rec_rules : base_rules).push_back(&rule);
    }

    // Base pass.
    std::unordered_map<PredicateId, Relation> delta;
    for (PredicateId p : preds) {
      delta.emplace(p, Relation(program.predicates().Arity(p)));
    }
    ++state.iterations_;
    for (const Rule* rule : base_rules) {
      std::vector<Relation*> rels;
      for (const Atom& a : rule->body) {
        rels.push_back(state.RelationFor(a.predicate));
      }
      RuleMatcher matcher(*rule, std::move(rels), {});
      matcher.Run([&](const Tuple& head) {
        if (state.Idb(rule->head.predicate).Insert(head)) {
          ++state.derived_;
          delta.at(rule->head.predicate).Insert(head);
        }
      });
    }
    if (!recursive) continue;

    // Delta iteration.
    for (;;) {
      bool any_delta = false;
      for (const auto& [p, d] : delta) {
        if (!d.empty()) any_delta = true;
      }
      if (!any_delta) break;
      ++state.iterations_;

      std::vector<std::pair<PredicateId, Tuple>> fresh;
      for (const Rule* rule : rec_rules) {
        for (size_t i = 0; i < rule->body.size(); ++i) {
          PredicateId bp = rule->body[i].predicate;
          if (in_scc.count(bp) == 0) continue;
          if (delta.at(bp).empty()) continue;
          std::vector<Relation*> rels;
          for (size_t j = 0; j < rule->body.size(); ++j) {
            PredicateId q = rule->body[j].predicate;
            rels.push_back(j == i ? &delta.at(q) : state.RelationFor(q));
          }
          // Pin the delta atom first so each new tuple drives probes.
          std::vector<size_t> order =
              RuleMatcher::GreedyOrderFor(*rule, static_cast<int>(i));
          RuleMatcher matcher(*rule, std::move(rels), std::move(order));
          matcher.Run([&](const Tuple& head) {
            fresh.emplace_back(rule->head.predicate, head);
          });
        }
      }
      // New deltas = fresh minus everything already known.
      std::unordered_map<PredicateId, Relation> next_delta;
      for (PredicateId p : preds) {
        next_delta.emplace(p, Relation(program.predicates().Arity(p)));
      }
      for (auto& [p, t] : fresh) {
        if (state.Idb(p).Insert(t)) {
          ++state.derived_;
          next_delta.at(p).Insert(std::move(t));
        }
      }
      delta = std::move(next_delta);
    }
  }
  return state.Finish();
}

}  // namespace mpqe
