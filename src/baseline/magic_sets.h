// Magic-sets rewriting (Bancilhon/Maier/Sagiv/Ullman, PODS 1986) — the
// contemporaneous *bottom-up* realization of sideways information
// passing, included as a third comparator: where Van Gelder's engine
// restricts computation with class-d tuple requests at run time, magic
// sets compile the same binding propagation into extra "magic"
// predicates and then run ordinary semi-naive evaluation.
//
// The rewrite uses this repository's own sips machinery: binding
// classes c/d map to "bound", e/f to "free", and the subgoal order is
// the strategy's order, so the comparison isolates exactly the
// run-time-messages vs compiled-rules difference.

#ifndef MPQE_BASELINE_MAGIC_SETS_H_
#define MPQE_BASELINE_MAGIC_SETS_H_

#include <string>

#include "baseline/bottom_up.h"
#include "common/status.h"
#include "datalog/program.h"
#include "relational/database.h"
#include "sips/strategy.h"

namespace mpqe {

struct MagicSetsResult {
  // The rewritten (adorned + magic) program, for inspection.
  Program transformed;
  // Semi-naive evaluation of the rewritten program.
  BottomUpResult evaluation;
  // Rewrite statistics.
  size_t adorned_predicates = 0;
  size_t magic_rules = 0;
};

/// Rewrites `program` with magic sets (driven by `strategy`'s subgoal
/// orders) and evaluates the result semi-naively over `db`. Magic seed
/// facts are inserted into `db` under fresh "m_..." relation names.
StatusOr<MagicSetsResult> MagicSetsEvaluate(const Program& program,
                                            Database& db,
                                            const SipsStrategy& strategy);

}  // namespace mpqe

#endif  // MPQE_BASELINE_MAGIC_SETS_H_
