// Tabled (memoizing) top-down evaluation — an OLDT/QSQ-style
// comparator in the spirit of Vieille's recursive query processing,
// which the paper cites ([Vie85]) among contemporary proposals. Like
// the message-passing engine it explores only goal-relevant bindings
// and terminates on recursion (answer tables break the loops that sink
// plain SLD); unlike the engine it is a sequential algorithm with a
// global worklist instead of communicating processes.

#ifndef MPQE_BASELINE_TABLED_TOP_DOWN_H_
#define MPQE_BASELINE_TABLED_TOP_DOWN_H_

#include <cstdint>

#include "common/status.h"
#include "datalog/program.h"
#include "relational/database.h"

namespace mpqe {

struct TabledResult {
  // The goal relation.
  Relation answers{0};
  // Distinct call patterns tabled (the analogue of engine goal nodes
  // materialized at run time).
  uint64_t tables = 0;
  // Answers inserted across all tables (work measure comparable to
  // the engine's stored tuples / magic sets' derived tuples).
  uint64_t derived = 0;
  // Consumer resumptions processed.
  uint64_t resumptions = 0;
};

/// Evaluates the program's goal by tabled top-down resolution over the
/// EDB in `db` (indexes may be registered on its relations).
StatusOr<TabledResult> TabledTopDown(const Program& program, Database& db);

}  // namespace mpqe

#endif  // MPQE_BASELINE_TABLED_TOP_DOWN_H_
