#include "baseline/magic_sets.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {
namespace {

// "b"/"f" pattern of one atom occurrence given its mpqe binding classes.
std::string BoundPattern(const Adornment& adornment) {
  std::string pattern;
  pattern.reserve(adornment.size());
  for (BindingClass c : adornment) {
    pattern.push_back(IsBound(c) ? 'b' : 'f');
  }
  return pattern;
}

// Positions marked 'b' in `pattern`.
std::vector<size_t> BoundPositionsOf(const std::string& pattern) {
  std::vector<size_t> out;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == 'b') out.push_back(i);
  }
  return out;
}

// Head binding classes for re-running the sips on a rule whose head is
// to be evaluated with `pattern`: bound variable positions become d,
// constants c, the rest f.
Adornment HeadAdornmentFor(const Rule& rule, const std::string& pattern) {
  Adornment adornment(rule.head.arity());
  for (size_t i = 0; i < rule.head.arity(); ++i) {
    if (rule.head.args[i].is_constant()) {
      adornment[i] = BindingClass::kConstant;
    } else {
      adornment[i] =
          pattern[i] == 'b' ? BindingClass::kDynamic : BindingClass::kFree;
    }
  }
  return adornment;
}

class Rewriter {
 public:
  Rewriter(const Program& program, Database& db, const SipsStrategy& strategy)
      : program_(program), db_(db), strategy_(strategy) {}

  StatusOr<MagicSetsResult> Run() {
    MagicSetsResult result;
    out_ = &result.transformed;
    out_->variables() = program_.variables();

    PredicateId goal = program_.GoalPredicate();
    std::string goal_pattern(program_.predicates().Arity(goal), 'f');
    MPQE_ASSIGN_OR_RETURN(PredicateId adorned_goal,
                          AdornedPredicate(goal, goal_pattern));
    (void)adorned_goal;

    // Seed: the magic fact for the (unbound) goal.
    MPQE_ASSIGN_OR_RETURN(std::string magic_goal,
                          MagicName(goal, goal_pattern));
    MPQE_RETURN_IF_ERROR(db_.InsertFact(magic_goal, Tuple{}).status());

    while (!worklist_.empty()) {
      auto [p, pattern] = worklist_.front();
      worklist_.pop_front();
      MPQE_RETURN_IF_ERROR(RewritePredicate(p, pattern));
    }
    result.adorned_predicates = adorned_.size();
    result.magic_rules = magic_rules_;
    MPQE_ASSIGN_OR_RETURN(result.evaluation,
                          SemiNaiveBottomUp(*out_, db_));
    return result;
  }

 private:
  // Name of the adorned copy of p for `pattern`. The goal keeps its
  // name (there is only the all-free pattern for it, and the bottom-up
  // evaluator looks `goal` up by name).
  std::string AdornedName(PredicateId p, const std::string& pattern) const {
    const std::string& name = program_.predicates().Name(p);
    if (p == program_.GoalPredicate()) return name;
    return StrCat(name, "__", pattern);
  }

  StatusOr<std::string> MagicName(PredicateId p, const std::string& pattern) {
    return StrCat("m__", program_.predicates().Name(p), "__", pattern);
  }

  // Interns (and schedules for rewriting) the adorned copy of p.
  StatusOr<PredicateId> AdornedPredicate(PredicateId p,
                                         const std::string& pattern) {
    auto key = std::make_pair(p, pattern);
    auto it = adorned_.find(key);
    if (it != adorned_.end()) return it->second;
    MPQE_ASSIGN_OR_RETURN(
        PredicateId id,
        out_->predicates().Intern(AdornedName(p, pattern),
                                  program_.predicates().Arity(p)));
    adorned_.emplace(key, id);
    worklist_.emplace_back(p, pattern);
    return id;
  }

  StatusOr<PredicateId> MagicPredicate(PredicateId p,
                                       const std::string& pattern) {
    MPQE_ASSIGN_OR_RETURN(std::string name, MagicName(p, pattern));
    size_t arity = BoundPositionsOf(pattern).size();
    return out_->predicates().Intern(name, arity);
  }

  // Interns an EDB atom's predicate unchanged.
  StatusOr<PredicateId> PassThrough(PredicateId p) {
    return out_->predicates().Intern(program_.predicates().Name(p),
                                     program_.predicates().Arity(p));
  }

  // The magic atom m__p__pattern(bound args of `atom`).
  StatusOr<Atom> MagicAtom(PredicateId p, const std::string& pattern,
                           const Atom& atom) {
    Atom magic;
    MPQE_ASSIGN_OR_RETURN(magic.predicate, MagicPredicate(p, pattern));
    for (size_t pos : BoundPositionsOf(pattern)) {
      magic.args.push_back(atom.args[pos]);
    }
    return magic;
  }

  Status RewritePredicate(PredicateId p, const std::string& pattern) {
    for (size_t rule_index : program_.RuleIndexesFor(p)) {
      const Rule& rule = program_.rules()[rule_index];
      Adornment head_adornment = HeadAdornmentFor(rule, pattern);
      MPQE_ASSIGN_OR_RETURN(
          SipsResult sips,
          strategy_.Classify(rule, head_adornment, program_));

      MPQE_ASSIGN_OR_RETURN(Atom head_magic, MagicAtom(p, pattern, rule.head));

      // Body in sips order, adorned.
      std::vector<Atom> adorned_body;
      adorned_body.reserve(rule.body.size());
      for (size_t k : sips.order) {
        Atom atom = rule.body[k];
        std::string sub_pattern = BoundPattern(sips.subgoal_adornments[k]);
        if (program_.IsIdb(atom.predicate)) {
          // Magic rule: m__q(bound q args) :- m__p(...), preceding body.
          Atom q_magic_head;
          MPQE_ASSIGN_OR_RETURN(q_magic_head,
                                MagicAtom(atom.predicate, sub_pattern, atom));
          Rule magic_rule;
          magic_rule.head = std::move(q_magic_head);
          magic_rule.body.push_back(head_magic);
          magic_rule.body.insert(magic_rule.body.end(), adorned_body.begin(),
                                 adorned_body.end());
          out_->AddRule(std::move(magic_rule));
          ++magic_rules_;

          MPQE_ASSIGN_OR_RETURN(atom.predicate,
                                AdornedPredicate(atom.predicate, sub_pattern));
        } else {
          MPQE_ASSIGN_OR_RETURN(atom.predicate, PassThrough(atom.predicate));
        }
        adorned_body.push_back(std::move(atom));
      }

      // Modified rule: p__pattern(head) :- m__p__pattern(...), body.
      Rule modified;
      modified.head = rule.head;
      MPQE_ASSIGN_OR_RETURN(modified.head.predicate,
                            AdornedPredicate(p, pattern));
      modified.body.push_back(std::move(head_magic));
      modified.body.insert(modified.body.end(), adorned_body.begin(),
                           adorned_body.end());
      out_->AddRule(std::move(modified));
    }
    return Status::Ok();
  }

  struct PairHash {
    size_t operator()(const std::pair<PredicateId, std::string>& key) const {
      size_t seed = std::hash<PredicateId>{}(key.first);
      HashCombine(seed, std::hash<std::string>{}(key.second));
      return seed;
    }
  };

  const Program& program_;
  Database& db_;
  const SipsStrategy& strategy_;
  Program* out_ = nullptr;
  std::unordered_map<std::pair<PredicateId, std::string>, PredicateId,
                     PairHash>
      adorned_;
  std::deque<std::pair<PredicateId, std::string>> worklist_;
  size_t magic_rules_ = 0;
};

}  // namespace

StatusOr<MagicSetsResult> MagicSetsEvaluate(const Program& program,
                                            Database& db,
                                            const SipsStrategy& strategy) {
  MPQE_RETURN_IF_ERROR(program.Validate(&db));
  Rewriter rewriter(program, db, strategy);
  return rewriter.Run();
}

}  // namespace mpqe
