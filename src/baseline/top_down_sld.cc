#include "baseline/top_down_sld.h"

#include <vector>

#include "common/logging.h"
#include "datalog/unify.h"

namespace mpqe {
namespace {

class SldEngine {
 public:
  SldEngine(const Program& program, Database& db, const SldOptions& options)
      : program_(program),
        db_(db),
        options_(options),
        vars_(program.variables()) {}

  SldResult Run() {
    PredicateId goal = program_.GoalPredicate();
    result_.answers = Relation(program_.predicates().Arity(goal));
    for (size_t idx : program_.RuleIndexesFor(goal)) {
      Rule rule = RenameApart(program_.rules()[idx], vars_);
      if (!Solve(rule.body, Substitution(), 0, rule.head)) break;
    }
    return std::move(result_);
  }

 private:
  // Returns false when the global step cap is exhausted.
  bool Solve(const std::vector<Atom>& goals, const Substitution& subst,
             size_t depth, const Atom& answer_head) {
    if (++result_.steps > options_.max_steps) {
      result_.steps_exceeded = true;
      return false;
    }
    if (goals.empty()) {
      Atom head = subst.Apply(answer_head);
      Tuple answer;
      answer.reserve(head.args.size());
      for (const Term& t : head.args) {
        // Safe programs ground every head variable on success.
        MPQE_CHECK(t.is_constant()) << "non-ground SLD answer";
        answer.push_back(t.constant());
      }
      result_.answers.Insert(std::move(answer));
      return true;
    }
    if (depth >= options_.max_depth) {
      result_.depth_exceeded = true;
      return true;  // prune this branch, keep searching others
    }

    // Leftmost selection.
    Atom selected = subst.Apply(goals[0]);
    std::vector<Atom> rest(goals.begin() + 1, goals.end());

    if (program_.IsEdb(selected.predicate)) {
      const std::string& name = program_.predicates().Name(selected.predicate);
      Relation* rel = db_.GetMutableRelation(name);
      if (rel == nullptr) return true;  // empty EDB relation
      // Probe on ground positions.
      std::vector<size_t> key_positions;
      Tuple key;
      for (size_t i = 0; i < selected.args.size(); ++i) {
        if (selected.args[i].is_constant()) {
          key_positions.push_back(i);
          key.push_back(selected.args[i].constant());
        }
      }
      auto try_fact = [&](TupleRef fact) -> bool {
        Substitution extended = subst;
        bool ok = true;
        for (size_t i = 0; i < selected.args.size() && ok; ++i) {
          Term lhs = extended.Resolve(selected.args[i]);
          if (lhs.is_constant()) {
            ok = lhs.constant() == fact[i];
          } else {
            extended.Bind(lhs.var(), Term::Const(fact[i]));
          }
        }
        if (!ok) return true;
        return Solve(rest, extended, depth + 1, answer_head);
      };
      if (!key_positions.empty()) {
        size_t handle = rel->EnsureIndex(key_positions);
        const std::vector<size_t>* hits = rel->Probe(handle, key);
        if (hits != nullptr) {
          for (size_t pos : *hits) {
            if (!try_fact(rel->tuple(pos))) return false;
          }
        }
      } else {
        for (TupleRef fact : rel->tuples()) {
          if (!try_fact(fact)) return false;
        }
      }
      return true;
    }

    // IDB: resolve against each rule, in program order (Prolog-style).
    for (size_t idx : program_.RuleIndexesFor(selected.predicate)) {
      Rule rule = RenameApart(program_.rules()[idx], vars_);
      Substitution extended = subst;
      if (!ExtendMgu(rule.head, selected, extended)) continue;
      std::vector<Atom> next;
      next.reserve(rule.body.size() + rest.size());
      next.insert(next.end(), rule.body.begin(), rule.body.end());
      next.insert(next.end(), rest.begin(), rest.end());
      if (!Solve(next, extended, depth + 1, answer_head)) return false;
    }
    return true;
  }

  const Program& program_;
  Database& db_;
  SldOptions options_;
  VariablePool vars_;
  SldResult result_;
};

}  // namespace

StatusOr<SldResult> TopDownSld(const Program& program, Database& db,
                               const SldOptions& options) {
  MPQE_RETURN_IF_ERROR(program.Validate(&db));
  SldEngine engine(program, db, options);
  return engine.Run();
}

}  // namespace mpqe
