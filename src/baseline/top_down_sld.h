// Strictly top-down SLD resolution (Prolog-style, leftmost selection,
// depth-first, rules in program order) — the comparison point for the
// paper's §1.2 claim that the message-passing method "is certain to
// terminate, avoiding the well-known 'left recursion' problems of
// strictly top-down methods". SLD must run with resource caps; on
// left-recursive programs it hits them instead of answering.

#ifndef MPQE_BASELINE_TOP_DOWN_SLD_H_
#define MPQE_BASELINE_TOP_DOWN_SLD_H_

#include <cstdint>

#include "common/status.h"
#include "datalog/program.h"
#include "relational/database.h"

namespace mpqe {

struct SldOptions {
  size_t max_depth = 512;        // resolution depth cap
  uint64_t max_steps = 1000000;  // total resolution steps cap
};

struct SldResult {
  Relation answers{0};
  bool depth_exceeded = false;  // some branch hit max_depth
  bool steps_exceeded = false;  // the whole search hit max_steps
  uint64_t steps = 0;

  /// Answers are complete only if no cap was hit.
  bool complete() const { return !depth_exceeded && !steps_exceeded; }
};

/// Runs SLD resolution for the program's goal rules. EDB subgoals
/// match facts in `db` (indexes may be registered).
StatusOr<SldResult> TopDownSld(const Program& program, Database& db,
                               const SldOptions& options = {});

}  // namespace mpqe

#endif  // MPQE_BASELINE_TOP_DOWN_SLD_H_
