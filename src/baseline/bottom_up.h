// Bottom-up baselines for comparison (§1.1):
//
//  * NaiveBottomUp    — the brute-force least-fixpoint computation
//                       [VEK76, AU79]: apply every rule to the full
//                       current relations until nothing new appears.
//  * SemiNaiveBottomUp — stratified by predicate SCC with delta
//                       iteration: each round only joins against
//                       tuples new in the previous round.
//
// Both compute the entire minimum model reachable from the rules (no
// relevance restriction), which is exactly the contrast the paper
// draws with sideways information passing: they count every derived
// tuple, relevant to the query or not.

#ifndef MPQE_BASELINE_BOTTOM_UP_H_
#define MPQE_BASELINE_BOTTOM_UP_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "datalog/program.h"
#include "relational/database.h"

namespace mpqe {

struct BottomUpResult {
  // The goal relation.
  Relation goal{0};
  // Tuples inserted into IDB relations (including goal) — the total
  // work measure the paper cares about.
  uint64_t total_derived = 0;
  // Fixpoint rounds summed over strata.
  uint64_t iterations = 0;
  // Final size of every IDB relation.
  std::unordered_map<std::string, size_t> idb_sizes;
};

/// Computes the minimum model naively. `db` supplies the EDB (indexes
/// may be added to its relations).
StatusOr<BottomUpResult> NaiveBottomUp(const Program& program, Database& db);

/// Semi-naive (delta) evaluation, stratified by predicate SCC.
StatusOr<BottomUpResult> SemiNaiveBottomUp(const Program& program,
                                           Database& db);

}  // namespace mpqe

#endif  // MPQE_BASELINE_BOTTOM_UP_H_
