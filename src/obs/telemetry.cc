#include "obs/telemetry.h"

#include <chrono>
#include <utility>

#include "common/string_util.h"

namespace mpqe {

Status TelemetryOptions::Validate() const {
  if (query_log_capacity < 1) {
    return InvalidArgumentError("query_log_capacity: must be >= 1");
  }
  if (sample_interval_ms < 0) {
    return InvalidArgumentError(
        StrCat("sample_interval_ms: must be >= 0, got ", sample_interval_ms));
  }
  return Status::Ok();
}

uint64_t HashQueryText(const std::string& text) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return h;
}

std::string QueryLogEntry::ToJson() const {
  return StrCat("{\"query_id\": ", query_id, ", \"text_hash\": \"",
                text_hash,  // string: JSON numbers lose 64-bit precision
                "\", \"plan_reused\": ", plan_reused ? "true" : "false",
                ", \"rows_out\": ", rows_out, ", \"wall_ns\": ", wall_ns,
                ", \"queue_wait_ns\": ", queue_wait_ns,
                ", \"fire_ns\": ", fire_ns, ", \"status\": \"", status,
                "\", \"slow\": ", slow ? "true" : "false", "}");
}

EngineTelemetry::EngineTelemetry(TelemetryOptions options)
    : options_(std::move(options)) {
  if (options_.query_log_capacity < 1) options_.query_log_capacity = 1;
  // Register the always-present families up front so a scrape exposes
  // them (at zero) before the first query completes — scrapers rely on
  // family existence, not on traffic having happened.
  registry_.GetCounter("telemetry/queries");
  registry_.GetCounter("telemetry/slow_queries");
  registry_.GetCounter("telemetry/failed_queries");
  registry_.GetHistogram("engine/query_wall_ns");
  registry_.GetGauge("engine/active_sessions");
  registry_.GetGauge("engine/in_flight_messages");
}

EngineTelemetry::~EngineTelemetry() {
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    stopping_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_thread_.joinable()) sampler_thread_.join();
}

void EngineTelemetry::StartSampling(
    std::function<void(MetricsRegistry&)> sampler) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sampler_ = std::move(sampler);
  }
  SampleNow();
  if (options_.sample_interval_ms > 0 && !sampler_thread_.joinable()) {
    sampler_thread_ = std::thread([this] { SamplerLoop(); });
  }
}

void EngineTelemetry::SamplerLoop() {
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  while (!stopping_) {
    sampler_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.sample_interval_ms),
        [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void EngineTelemetry::SampleNow() {
  std::function<void(MetricsRegistry&)> sampler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sampler = sampler_;
  }
  if (sampler) sampler(registry_);
}

void EngineTelemetry::OnSessionStart() {
  registry_.GetGauge("engine/active_sessions").Add(1.0);
}

void EngineTelemetry::OnSessionComplete(
    QueryLogEntry entry, const MetricsRegistry* session_metrics) {
  registry_.GetGauge("engine/active_sessions").Add(-1.0);
  if (session_metrics != nullptr) {
    // Pull the query-log timing breakdown out of the session registry
    // before it is folded in: fire time is the sum of per-message
    // handling, queue wait only exists when the session profiled
    // (aggregated/node/<id>/queue_wait_ns counters).
    if (const Histogram* h = session_metrics->FindHistogram("msg/handle_ns")) {
      entry.fire_ns = h->sum();
    }
    constexpr char kQueueWaitSuffix[] = "/queue_wait_ns";
    constexpr size_t kSuffixLen = sizeof(kQueueWaitSuffix) - 1;
    for (const auto& [name, value] : session_metrics->CounterRows()) {
      if (name.size() >= kSuffixLen &&
          name.compare(name.size() - kSuffixLen, kSuffixLen,
                       kQueueWaitSuffix) == 0) {
        entry.queue_wait_ns += value;
      }
    }
    registry_.MergeFrom(*session_metrics);
  }
  entry.slow =
      options_.slow_query_ns > 0 && entry.wall_ns > options_.slow_query_ns;

  completed_.fetch_add(1, std::memory_order_relaxed);
  registry_.GetCounter("telemetry/queries").Increment();
  if (entry.slow) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    registry_.GetCounter("telemetry/slow_queries").Increment();
  }
  if (entry.status != "ok") {
    registry_.GetCounter("telemetry/failed_queries").Increment();
  }
  registry_.GetHistogram("engine/query_wall_ns").Record(entry.wall_ns);
  registry_.GetHistogram("engine/query_rows_out").Record(entry.rows_out);

  const uint64_t completed_query = entry.query_id;
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(entry));
  while (ring_.size() > options_.query_log_capacity) ring_.pop_front();
  // A completed session means ITS stall (if any) resolved; other
  // sessions may still be stalled, so drop only this query's
  // contribution and re-derive the gauges from what remains.
  if (stalls_by_query_.erase(completed_query) > 0) {
    RepublishStallGaugesLocked();
  }
}

void EngineTelemetry::ReportQueueDepths(
    uint64_t query_id,
    const std::vector<std::pair<int64_t, uint64_t>>& scc_depths,
    uint64_t in_flight) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (scc_depths.empty() && in_flight == 0) {
    stalls_by_query_.erase(query_id);
  } else {
    stalls_by_query_[query_id] = StallState{scc_depths, in_flight};
  }
  RepublishStallGaugesLocked();
}

void EngineTelemetry::RepublishStallGaugesLocked() {
  std::map<int64_t, uint64_t> by_scc;
  uint64_t in_flight = 0;
  for (const auto& [unused_query, stall] : stalls_by_query_) {
    for (const auto& [scc, depth] : stall.scc_depths) by_scc[scc] += depth;
    in_flight += stall.in_flight;
  }
  // Zero the gauges of SCCs that were published before but have no
  // stalled session anymore, so a recovered stall does not pin a stale
  // snapshot forever.
  for (int64_t scc : published_sccs_) {
    if (by_scc.find(scc) == by_scc.end()) {
      registry_.GetGauge(StrCat("scc/", scc, "/queue_depth")).Set(0.0);
    }
  }
  published_sccs_.clear();
  for (const auto& [scc, depth] : by_scc) {
    registry_.GetGauge(StrCat("scc/", scc, "/queue_depth"))
        .Set(static_cast<double>(depth));
    published_sccs_.push_back(scc);
  }
  registry_.GetGauge("engine/in_flight_messages")
      .Set(static_cast<double>(in_flight));
}

std::vector<QueryLogEntry> EngineTelemetry::QueryLog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<QueryLogEntry>(ring_.begin(), ring_.end());
}

std::string EngineTelemetry::QueryLogJson() const {
  std::vector<QueryLogEntry> entries = QueryLog();
  std::string out = StrCat(
      "{\n  \"schema\": \"mpqe-querylog-v1\",\n  \"completed\": ",
      completed_queries(), ",\n  \"slow\": ", slow_queries(),
      ",\n  \"capacity\": ", options_.query_log_capacity,
      ",\n  \"queries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    out += StrCat("    ", entries[i].ToJson(),
                  i + 1 < entries.size() ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace mpqe
