// Engine-wide telemetry (DESIGN.md §12): the always-on, engine-scoped
// aggregation layer that every QuerySession reports into. Where the
// per-evaluation MetricsRegistry of PRs 2/3 dies with its session,
// EngineTelemetry outlives them all and is what the ops surface — the
// Prometheus exposition (obs/prometheus.h), the /metrics and /queries
// endpoints (engine/stats_server.h) and `mpqe_query --stats` — reads.
//
// Three pieces:
//
//  * an engine-lifetime MetricsRegistry. Counters and histograms from
//    each completed session merge in (MetricsRegistry::MergeFrom);
//    live *gauges* — active sessions, plan-cache size/hit-rate,
//    worker-pool utilization, per-SCC queue depths from the stall
//    heartbeat — are written in place and re-sampled by a background
//    thread at `sample_interval_ms` via the sampler hook the Engine
//    installs (and once more, synchronously, on every scrape).
//
//  * a structured query log: a fixed-capacity ring buffer of
//    QueryLogEntry rows (query id, query text hash, plan reuse, rows
//    out, wall/queue/fire time, status), with a slow-query threshold
//    that marks and counts entries over `slow_query_ns`. Exposed as
//    JSON (QueryLogJson — the /queries payload) and by
//    `mpqe_query --stats`.
//
//  * the query-id mint: MintQueryId() hands out the stable ids
//    Engine::CreateSession stamps onto sessions; the id then travels
//    through trace spans, log lines, lineage output and the query log
//    (SessionStartEvent in obs/observer.h).
//
// Thread safety: the registry is internally synchronized; the ring and
// the sampler hook are guarded by one telemetry mutex. RecordQueryDone
// and scrapes may run concurrently with sessions and with each other.

#ifndef MPQE_OBS_TELEMETRY_H_
#define MPQE_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace mpqe {

struct TelemetryOptions {
  // Ring-buffer capacity of the query log (>= 1).
  size_t query_log_capacity = 256;

  // Sessions whose wall time exceeds this are flagged slow in the
  // query log and counted under telemetry/slow_queries. 0 disables.
  uint64_t slow_query_ns = 100'000'000;  // 100 ms

  // Gauge re-sampling period of the background thread. 0 disables the
  // thread; gauges are then refreshed only on demand (every scrape
  // calls SampleNow, so /metrics is never stale either way).
  int sample_interval_ms = 0;

  // Deep per-session metrics (a MetricsObserver on the session's
  // network: per-message counters, handle-time histograms, per-node
  // fires) are collected for every Nth session and merged into the
  // engine registry on completion. Observation disables the network's
  // zero-observer fast path and costs real per-message time, so
  // always-on collection would blow the <= 5% qps budget on
  // message-heavy workloads; sampling keeps the cumulative families
  // moving at bounded cost. 1 = every session (full fidelity — what
  // the tests use), 0 = never. Sessions that bring their own registry
  // (SessionOptions::metrics) are unaffected. The query log and the
  // session-latency histogram still cover EVERY session.
  uint32_t session_metrics_every = 16;

  Status Validate() const;
};

// One completed query execution, as the ops surface sees it.
struct QueryLogEntry {
  uint64_t query_id = 0;
  // FNV-1a hash of the canonicalized program text — correlates repeats
  // of one query without retaining (possibly sensitive) query text.
  uint64_t text_hash = 0;
  // True when the session ran over a plan that was already compiled
  // (every session after a plan's first — the plan-cache payoff).
  bool plan_reused = false;
  uint64_t rows_out = 0;
  uint64_t wall_ns = 0;
  // Cumulative scheduler-queue wait and in-handler time across the
  // session's node processes (0 when the source metric was not
  // collected — queue_wait_ns needs profiling).
  uint64_t queue_wait_ns = 0;
  uint64_t fire_ns = 0;
  std::string status = "ok";  // "ok" or the failing Status code name
  bool slow = false;

  std::string ToJson() const;
};

/// The stable hash used for QueryLogEntry::text_hash (FNV-1a 64).
uint64_t HashQueryText(const std::string& text);

class EngineTelemetry {
 public:
  explicit EngineTelemetry(TelemetryOptions options = {});
  ~EngineTelemetry();  // stops the sampler thread

  EngineTelemetry(const EngineTelemetry&) = delete;
  EngineTelemetry& operator=(const EngineTelemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }

  /// The engine-lifetime registry every scrape serializes.
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Next stable query id (1, 2, 3, ...).
  uint64_t MintQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Installs the gauge-refresh hook (the Engine's: plan-cache
  /// size/hit-rate, pool queue depth, utilization) and starts the
  /// background sampler when sample_interval_ms > 0. Call once.
  void StartSampling(std::function<void(MetricsRegistry&)> sampler);

  /// Runs the sampler hook synchronously (scrape freshness).
  void SampleNow();

  /// Session lifecycle: bumps the engine/active_sessions gauge.
  void OnSessionStart();

  /// Whether the next own-metrics session should collect deep metrics
  /// (every `session_metrics_every`th call returns true, starting with
  /// the first). Sessions with a caller-supplied registry skip this.
  bool ShouldSampleSessionMetrics() {
    uint32_t every = options_.session_metrics_every;
    if (every == 0) return false;
    return sampled_sessions_.fetch_add(1, std::memory_order_relaxed) %
               every ==
           0;
  }

  /// Session completion: merges the session's registry (pass nullptr
  /// when the session collected none), appends the query-log entry
  /// (stamping `slow` from the threshold), and updates the engine
  /// counters/histograms (telemetry/queries, telemetry/slow_queries,
  /// engine/query_wall_ns, engine/query_rows_out).
  void OnSessionComplete(QueryLogEntry entry,
                         const MetricsRegistry* session_metrics);

  /// Stall-heartbeat sink: publishes per-SCC queue depths and the
  /// total in-flight count as gauges (scc/<id>/queue_depth,
  /// engine/in_flight_messages). Stall state is tracked per query so
  /// concurrent sessions compose: each gauge is the sum over the live
  /// stalled sessions, and a session completing clears only its own
  /// contribution (OnSessionComplete matches on query_id).
  void ReportQueueDepths(
      uint64_t query_id,
      const std::vector<std::pair<int64_t, uint64_t>>& scc_depths,
      uint64_t in_flight);

  /// Oldest-to-newest snapshot of the query log ring.
  std::vector<QueryLogEntry> QueryLog() const;

  /// {"queries": [...]} — the /queries payload.
  std::string QueryLogJson() const;

  uint64_t completed_queries() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t slow_queries() const {
    return slow_.load(std::memory_order_relaxed);
  }

 private:
  // One session's latest stall heartbeat.
  struct StallState {
    std::vector<std::pair<int64_t, uint64_t>> scc_depths;
    uint64_t in_flight = 0;
  };

  void SamplerLoop();

  // Re-derives the stall gauges from stalls_by_query_: per-SCC depth
  // summed across sessions, SCCs that dropped out zeroed. Caller holds
  // mutex_.
  void RepublishStallGaugesLocked();

  TelemetryOptions options_;
  MetricsRegistry registry_;
  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> slow_{0};
  std::atomic<uint64_t> sampled_sessions_{0};

  mutable std::mutex mutex_;  // ring + sampler hook + stall state
  std::deque<QueryLogEntry> ring_;
  std::function<void(MetricsRegistry&)> sampler_;
  // Live stall heartbeat per query id, so one session completing (or
  // recovering) cannot clobber the gauges of another still-stalled
  // session. published_sccs_ is the set of SCC ids whose gauge is
  // currently nonzero, so a recovered stall resets its gauges instead
  // of pinning them.
  std::map<uint64_t, StallState> stalls_by_query_;
  std::vector<int64_t> published_sccs_;

  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool stopping_ = false;
  std::thread sampler_thread_;
};

}  // namespace mpqe

#endif  // MPQE_OBS_TELEMETRY_H_
