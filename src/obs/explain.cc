#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/string_util.h"

namespace mpqe {

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string FmtMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FmtPct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  return buf;
}

// Def. 2.3 arcs rendered as "0->2 1->2".
std::string ArcsToString(const SipsResult& sips) {
  std::vector<std::string> parts;
  for (size_t i = 0; i < sips.arcs.size(); ++i) {
    for (size_t j : sips.arcs[i]) {
      parts.push_back(StrCat(i, "->", j));
    }
  }
  return parts.empty() ? "none" : StrJoin(parts, " ");
}

}  // namespace

std::string ExplainPlan(const RuleGoalGraph& graph,
                        const CostModelParams& params,
                        const ProfileReport* profile,
                        const SymbolTable* symbols,
                        const ExplainOptions& options) {
  // Per-node actuals, indexed by node id.
  std::vector<const NodeProfile*> actual(graph.size(), nullptr);
  if (profile != nullptr) {
    for (const NodeProfile& n : profile->nodes) {
      if (n.node >= 0 && static_cast<size_t>(n.node) < actual.size()) {
        actual[static_cast<size_t>(n.node)] = &n;
      }
    }
  }

  // Estimates, via the same path the evaluator uses so EXPLAIN and
  // EXPLAIN ANALYZE agree.
  ProfileReport estimates;
  estimates.nodes.resize(graph.size());
  for (size_t i = 0; i < graph.size(); ++i) {
    estimates.nodes[i].node = static_cast<int32_t>(i);
  }
  FillCostEstimates(graph, params, estimates);

  std::string out =
      StrCat(options.analyze ? "EXPLAIN ANALYZE" : "EXPLAIN", " (strategy sips",
             ", alpha=", params.alpha, ", nodes=", graph.size(), ")\n");

  // The graph stores nodes in construction (preorder) sequence and
  // each carries its tree depth, so a linear scan prints the tree.
  for (const GraphNode& n : graph.nodes()) {
    std::string indent(static_cast<size_t>(n.depth) * 2, ' ');
    out += StrCat(indent, "#", n.id, " ", NodeKindToString(n.kind), " ",
                  graph.NodeLabel(n.id, symbols));
    if (!n.scc_is_trivial) {
      out += StrCat("  [scc ", n.scc_id, n.is_leader ? " leader" : "", "]");
    }
    if (n.kind == NodeKind::kCycleRef) {
      out += StrCat("  <== #", n.cycle_source);
    }
    out += "\n";

    if (n.kind == NodeKind::kRule) {
      out += StrCat(indent, "  sips: ", StrJoin(n.sips.order, " -> "),
                    "  arcs: ", ArcsToString(n.sips), "\n");
    }

    const NodeProfile& est = estimates.nodes[static_cast<size_t>(n.id)];
    bool has_estimate = est.est_log10_tuples != kNoEstimate;
    if (has_estimate) {
      out += StrCat(indent, "  est: ~10^", Fmt(est.est_log10_tuples),
                    " tuples/req");
      if (est.est_total_cost != kNoEstimate) {
        out += StrCat(", total_cost ~10^",
                      Fmt(std::log10(std::max(est.est_total_cost, 1.0))));
      }
      out += "\n";
    }

    if (options.analyze) {
      const NodeProfile* act = actual[static_cast<size_t>(n.id)];
      if (act != nullptr) {
        out += StrCat(indent, "  act: ", act->tuples_out, " tuples out, ",
                      act->tuples_in, " in (sel ", Fmt(act->Selectivity()),
                      "), ", act->requests_in, " reqs, dup ",
                      FmtPct(act->DupHitRate()), ", msgs ", act->msgs_in, "/",
                      act->msgs_out, ", fire ", FmtMs(act->fire_ns), ", wait ",
                      FmtMs(act->queue_wait_ns));
        if (has_estimate) {
          NodeProfile merged = *act;
          merged.est_log10_tuples = est.est_log10_tuples;
          merged.est_total_cost = est.est_total_cost;
          double dev = merged.DeviationFactor();
          if (dev > options.deviation_factor) {
            out += StrCat("  !! deviates x", Fmt(dev), " from estimate");
          }
        }
        out += "\n";
      }
    }
  }

  // Strong-component footer: Fig. 2 protocol attribution.
  bool header_done = false;
  for (int scc = 0; scc < graph.scc_count(); ++scc) {
    const std::vector<NodeId>& members = graph.scc_members(scc);
    if (members.empty() || graph.node(members.front()).scc_is_trivial) continue;
    if (!header_done) {
      out += "strong components:\n";
      header_done = true;
    }
    out += StrCat("  scc ", scc, ": {", StrJoin(members, ","), "} leader #",
                  graph.scc_leader(scc), " tree_depth ", graph.BfstHeight(scc));
    if (options.analyze && profile != nullptr) {
      for (const SccProfile& s : profile->sccs) {
        if (s.scc_id != scc) continue;
        out += StrCat("  waves ", s.waves, ", neg ", s.negative_answers,
                      ", conf ", s.confirmed_answers, ", notices ",
                      s.work_notices, ", concluded ", s.concluded);
        break;
      }
    }
    out += "\n";
  }

  if (options.analyze && profile != nullptr) {
    out += StrCat("totals: ", profile->total_tuples_out, " tuples out, ",
                  profile->total_tuples_in, " in, ",
                  profile->total_dedup_hits, " dup hits, ",
                  profile->total_msgs_sent, " msgs, fire ",
                  FmtMs(profile->total_fire_ns), ", wait ",
                  FmtMs(profile->total_queue_wait_ns), "\n");
  }
  return out;
}

}  // namespace mpqe
