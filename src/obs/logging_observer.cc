#include "obs/logging_observer.h"

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"

namespace mpqe {

LoggingObserver::LoggingObserver(LogLevel level, std::ostream* out)
    : level_(level), out_(out != nullptr ? out : &std::cerr) {}

void LoggingObserver::Line(LogLevel level, const std::string& text) {
  if (level < level_) return;
  std::string line =
      StrCat("[", LogLevelName(level), " ", ThreadTag(), " engine] ",
             query_id_ != 0 ? StrCat("q", query_id_, " ") : std::string(),
             text, "\n");
  std::lock_guard<std::mutex> lock(mutex_);
  (*out_) << line;
  out_->flush();
}

void LoggingObserver::OnSessionStart(const SessionStartEvent& event) {
  query_id_ = event.query_id;
  Line(LogLevel::kInfo, "session start");
}

void LoggingObserver::OnPhase(const PhaseEvent& event) {
  Line(LogLevel::kInfo, StrCat("phase ", PhaseToString(event.phase),
                               event.begin ? " begin" : " end"));
}

void LoggingObserver::OnTermination(const TerminationEvent& event) {
  switch (event.kind) {
    case TerminationEvent::Kind::kWaveStarted:
      Line(LogLevel::kInfo, StrCat("wave ", event.wave, " started at node ",
                                   event.node, " (idleness=", event.idleness,
                                   ")"));
      break;
    case TerminationEvent::Kind::kConcluded:
      Line(LogLevel::kInfo,
           StrCat("wave ", event.wave, " concluded at node ", event.node));
      break;
    case TerminationEvent::Kind::kAnswerNegative:
    case TerminationEvent::Kind::kAnswerConfirmed:
      Line(LogLevel::kDebug,
           StrCat("wave ", event.wave, ": node ", event.node, " answered ",
                  event.kind == TerminationEvent::Kind::kAnswerNegative
                      ? "end_negative"
                      : "end_confirmed",
                  " (open_work=", event.open_work ? 1 : 0, ")"));
      break;
    case TerminationEvent::Kind::kWorkNotice:
      Line(LogLevel::kDebug,
           StrCat("work notice from node ", event.node, " (wave ", event.wave,
                  ")"));
      break;
    case TerminationEvent::Kind::kKindCount:
      break;
  }
}

StatusOr<std::optional<LogLevel>> EngineLogLevelFromName(
    const std::string& name) {
  if (name.empty() || name == "off" || name == "none") {
    return std::optional<LogLevel>();
  }
  if (name == "debug") return std::optional<LogLevel>(LogLevel::kDebug);
  if (name == "info") return std::optional<LogLevel>(LogLevel::kInfo);
  if (name == "warning") return std::optional<LogLevel>(LogLevel::kWarning);
  if (name == "error") return std::optional<LogLevel>(LogLevel::kError);
  return InvalidArgumentError(
      StrCat("unknown log level \"", name,
             "\" (expected debug, info, warning, error, or off)"));
}

std::optional<LogLevel> ResolveEngineLogLevel(const std::string& option_value) {
  std::string name = option_value;
  if (name.empty()) {
    const char* env = std::getenv("MPQE_LOG_LEVEL");
    if (env == nullptr) return std::nullopt;
    name = env;
  }
  auto parsed = EngineLogLevelFromName(name);
  if (!parsed.ok()) return std::nullopt;
  return *parsed;
}

}  // namespace mpqe
