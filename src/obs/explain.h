// EXPLAIN / EXPLAIN ANALYZE rendering of the adorned rule/goal graph.
//
// ExplainPlan walks the graph from the root and prints one line per
// node — adorned atoms in the paper's superscript style (c/d/e/f), a
// rule node's sips order and arcs, and its strong component — plus
// §4.3 cost-model estimates (log10 result size, total join cost). In
// ANALYZE mode a ProfileReport collected from an actual run is
// rendered side by side with the estimates: tuples in/out, duplicate
// hit rate, selectivity, messages, and fire/queue-wait time, and
// nodes whose actual cardinality deviates from the estimate by more
// than a configurable factor are flagged with `!!`. A footer lists
// the nontrivial strong components with their Fig. 2 protocol rounds
// and termination-tree depth.

#ifndef MPQE_OBS_EXPLAIN_H_
#define MPQE_OBS_EXPLAIN_H_

#include <string>

#include "graph/rule_goal_graph.h"
#include "obs/profiler.h"
#include "sips/cost_model.h"

namespace mpqe {

struct ExplainOptions {
  // When true (EXPLAIN ANALYZE), `profile` must be non-null and its
  // per-node actuals are printed next to the estimates.
  bool analyze = false;
  // Flag nodes whose actual output deviates from the estimate by more
  // than this factor (either direction).
  double deviation_factor = 10.0;
};

/// Renders the plan. `params` sizes the cost-model estimates (use
/// CostModelParamsFromDatabase to confront estimates with reality);
/// `profile` supplies the actuals for ANALYZE mode (may be null
/// otherwise); `symbols` resolves predicate/constant names.
std::string ExplainPlan(const RuleGoalGraph& graph,
                        const CostModelParams& params,
                        const ProfileReport* profile,
                        const SymbolTable* symbols,
                        const ExplainOptions& options = ExplainOptions());

}  // namespace mpqe

#endif  // MPQE_OBS_EXPLAIN_H_
