// Chrome trace-event export: an ExecutionObserver that records every
// event of an evaluation and serializes it as Chrome trace-event JSON
// (the "JSON Array/Object Format" understood by chrome://tracing and
// Perfetto).
//
// Track model: one trace *process* (pid 0) per exporter; evaluator
// phases live on tid 0 ("evaluator"); network process P gets tid P+1,
// named with its graph-node label when AttachGraph was called.
// Message deliveries render as duration ("X") events on the receiving
// track; sends as flow arrows ("s" at the sender, "f" at the
// receiver) so chrome://tracing draws who-talked-to-whom; termination
// protocol events as instants ("i"); cumulative tuple/dedup totals as
// counter ("C") series.
//
// Thread safety: all callbacks lock one internal mutex — safe under
// every scheduler (and the serialization this imposes is exactly the
// per-event ordering the trace records). Validate exports with
// scripts/check_trace.py.

#ifndef MPQE_OBS_TRACE_EXPORTER_H_
#define MPQE_OBS_TRACE_EXPORTER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/rule_goal_graph.h"
#include "obs/observer.h"

namespace mpqe {

class TraceExporter : public ExecutionObserver {
 public:
  struct Options {
    // Emit flow arrows for every send. The dominant share of events;
    // disable for very large runs.
    bool flow_events = true;
    // Emit instant events for termination-protocol activity.
    bool instant_events = true;
    // Emit cumulative counter series (tuples_out, dedup_hits).
    bool counter_events = true;
    // Stop recording after this many events (0 = unlimited). The
    // trace stays valid; `dropped_events()` reports the overflow.
    size_t max_events = 0;
  };

  TraceExporter() : TraceExporter(Options()) {}
  explicit TraceExporter(Options options);

  /// Resolves track names to graph-node labels at serialization time
  /// (pass the graph the evaluation ran on; the one-past-the-end
  /// process renders as "sink").
  void AttachGraph(const RuleGoalGraph* graph, const SymbolTable* symbols);

  // ExecutionObserver:
  void OnSessionStart(const SessionStartEvent& event) override;
  void OnSend(const SendEvent& event) override;
  void OnDeliver(const DeliverEvent& event) override;
  void OnNodeFire(const NodeFireEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnTermination(const TerminationEvent& event) override;

  /// The complete trace as a Chrome trace-event JSON object:
  /// {"displayTimeUnit": "ms", "traceEvents": [...]}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

  size_t event_count() const;
  size_t dropped_events() const;

  /// The engine-minted query id of the traced session (0 = one-shot
  /// Evaluate path; then absent from the JSON metadata too).
  uint64_t query_id() const;

  /// Timestamp-free rendering ("ph name tid ..." per line, in record
  /// order) — stable for a fixed query under the deterministic
  /// scheduler, which makes golden-file tests possible.
  std::string NormalizedSummary() const;

 private:
  struct Event {
    char ph = 'X';
    int32_t tid = 0;
    double ts_us = 0;
    double dur_us = -1;     // X only
    uint64_t flow_id = 0;   // s/f only
    bool has_flow_id = false;
    std::string name;
    std::string args_json;  // preformatted object body, may be empty
  };

  double NowUs() const;
  // All Push/record helpers require mutex_ held.
  void Push(Event event);
  static int32_t TrackOf(ProcessId pid) { return pid < 0 ? 0 : pid + 1; }

  Options options_;
  uint64_t origin_ns_ = 0;

  mutable std::mutex mutex_;
  uint64_t query_id_ = 0;
  std::vector<Event> events_;
  size_t dropped_ = 0;
  std::set<int32_t> tids_;
  // Per-channel FIFO indexes pairing the i-th send with the i-th
  // delivery; the pair (channel, index) is the flow id.
  std::map<std::pair<ProcessId, ProcessId>, uint64_t> channel_sends_;
  std::map<std::pair<ProcessId, ProcessId>, uint64_t> channel_delivers_;
  std::map<std::pair<ProcessId, ProcessId>, uint64_t> channel_ids_;
  uint64_t tuples_out_total_ = 0;
  uint64_t dedup_total_ = 0;
  double phase_begin_us_[static_cast<size_t>(Phase::kPhaseCount)] = {};

  const RuleGoalGraph* graph_ = nullptr;
  const SymbolTable* symbols_ = nullptr;
};

}  // namespace mpqe

#endif  // MPQE_OBS_TRACE_EXPORTER_H_
