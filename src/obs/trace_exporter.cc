#include "obs/trace_exporter.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace mpqe {

namespace {

uint64_t NowNsRaw() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us < 0 ? 0.0 : us);
  return buf;
}

}  // namespace

TraceExporter::TraceExporter(Options options)
    : options_(options), origin_ns_(NowNsRaw()) {
  tids_.insert(0);  // the evaluator track always exists
}

void TraceExporter::AttachGraph(const RuleGoalGraph* graph,
                                const SymbolTable* symbols) {
  std::lock_guard<std::mutex> lock(mutex_);
  graph_ = graph;
  symbols_ = symbols;
}

double TraceExporter::NowUs() const {
  return static_cast<double>(NowNsRaw() - origin_ns_) / 1000.0;
}

void TraceExporter::Push(Event event) {
  if (options_.max_events != 0 && events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  tids_.insert(event.tid);
  events_.push_back(std::move(event));
}

void TraceExporter::OnSend(const SendEvent& event) {
  if (!options_.flow_events) return;
  double ts = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  std::pair<ProcessId, ProcessId> channel{event.from, event.to};
  auto [cit, inserted] =
      channel_ids_.emplace(channel, channel_ids_.size() + 1);
  uint64_t index = channel_sends_[channel]++;
  Event e;
  e.ph = 's';
  e.tid = TrackOf(event.from);
  e.ts_us = ts;
  e.flow_id = (cit->second << 32) | index;
  e.has_flow_id = true;
  e.name = StrCat("msg:", MessageKindToString(event.message->kind));
  e.args_json = StrCat("\"to\": ", event.to);
  if (event.message->kind == MessageKind::kTupleSegment) {
    e.args_json += StrCat(", \"rows\": ", event.message->segment().num_rows);
  }
  Push(std::move(e));
}

void TraceExporter::OnDeliver(const DeliverEvent& event) {
  double end = NowUs();
  double dur = static_cast<double>(event.handle_ns) / 1000.0;
  double start = end > dur ? end - dur : 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  Event slice;
  slice.ph = 'X';
  slice.tid = TrackOf(event.to);
  slice.ts_us = start;
  slice.dur_us = dur;
  slice.name = MessageKindToString(event.kind);
  slice.args_json = StrCat("\"from\": ", event.from);
  if (event.payload_rows > 0) {
    slice.args_json += StrCat(", \"rows\": ", event.payload_rows);
  }
  Push(std::move(slice));
  if (options_.flow_events) {
    std::pair<ProcessId, ProcessId> channel{event.from, event.to};
    auto cit = channel_ids_.find(channel);
    if (cit != channel_ids_.end()) {
      uint64_t index = channel_delivers_[channel]++;
      Event flow;
      flow.ph = 'f';
      flow.tid = TrackOf(event.to);
      flow.ts_us = start;
      flow.flow_id = (cit->second << 32) | index;
      flow.has_flow_id = true;
      flow.name = StrCat("msg:", MessageKindToString(event.kind));
      Push(std::move(flow));
    }
  }
}

void TraceExporter::OnNodeFire(const NodeFireEvent& event) {
  if (!options_.counter_events) return;
  double ts = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  tuples_out_total_ += event.tuples_out;
  dedup_total_ += event.dedup_hits;
  Event tuples;
  tuples.ph = 'C';
  tuples.tid = 0;
  tuples.ts_us = ts;
  tuples.name = "tuples_out";
  tuples.args_json = StrCat("\"tuples_out\": ", tuples_out_total_);
  Push(std::move(tuples));
  Event dedup;
  dedup.ph = 'C';
  dedup.tid = 0;
  dedup.ts_us = ts;
  dedup.name = "dedup_hits";
  dedup.args_json = StrCat("\"dedup_hits\": ", dedup_total_);
  Push(std::move(dedup));
}

void TraceExporter::OnSessionStart(const SessionStartEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  query_id_ = event.query_id;
}

void TraceExporter::OnPhase(const PhaseEvent& event) {
  double ts = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  size_t index = static_cast<size_t>(event.phase);
  if (event.begin) {
    phase_begin_us_[index] = ts;
    return;
  }
  Event e;
  e.ph = 'X';
  e.tid = 0;
  e.ts_us = phase_begin_us_[index];
  e.dur_us = ts - phase_begin_us_[index];
  e.name = StrCat("phase:", PhaseToString(event.phase));
  Push(std::move(e));
}

void TraceExporter::OnTermination(const TerminationEvent& event) {
  if (!options_.instant_events) return;
  double ts = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  Event e;
  e.ph = 'i';
  e.tid = TrackOf(event.node);
  e.ts_us = ts;
  e.name = StrCat("term:", TerminationEvent::KindToString(event.kind));
  e.args_json =
      StrCat("\"wave\": ", event.wave, ", \"idleness\": ", event.idleness,
             ", \"open_work\": ", event.open_work ? "true" : "false");
  Push(std::move(e));
}

std::string TraceExporter::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    out += StrCat(first ? "" : ",\n", line);
    first = false;
  };
  // Metadata: process and track names, plus the engine query id when
  // the trace came out of a QuerySession (correlates the file with log
  // lines, lineage dumps and the engine query log — DESIGN.md §12).
  emit("{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 0, \"tid\": 0, "
       "\"args\": {\"name\": \"mpqe\"}}");
  if (query_id_ != 0) {
    emit(StrCat("{\"ph\": \"M\", \"name\": \"query_id\", \"pid\": 0, "
                "\"tid\": 0, \"args\": {\"query_id\": ",
                query_id_, "}}"));
  }
  for (int32_t tid : tids_) {
    std::string label;
    if (tid == 0) {
      label = "evaluator";
    } else {
      ProcessId pid = tid - 1;
      if (graph_ != nullptr && static_cast<size_t>(pid) < graph_->size()) {
        label = graph_->NodeLabel(pid, symbols_);
      } else if (graph_ != nullptr &&
                 static_cast<size_t>(pid) == graph_->size()) {
        label = "sink";
      } else {
        label = StrCat("process ", pid);
      }
    }
    emit(StrCat("{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, "
                "\"tid\": ",
                tid, ", \"args\": {\"name\": \"", JsonEscape(label), "\"}}"));
  }
  for (const Event& e : events_) {
    std::string line =
        StrCat("{\"ph\": \"", e.ph, "\", \"name\": \"", JsonEscape(e.name),
               "\", \"pid\": 0, \"tid\": ", e.tid,
               ", \"ts\": ", FormatUs(e.ts_us));
    if (e.ph == 'X') {
      line += StrCat(", \"dur\": ", FormatUs(e.dur_us < 0 ? 0 : e.dur_us));
    }
    if (e.has_flow_id) {
      char idbuf[32];
      std::snprintf(idbuf, sizeof(idbuf), "0x%" PRIx64, e.flow_id);
      line += StrCat(", \"id\": \"", idbuf, "\", \"cat\": \"msg\"");
      if (e.ph == 'f') line += ", \"bp\": \"e\"";
    }
    if (e.ph == 'i') line += ", \"s\": \"t\"";
    if (!e.args_json.empty()) {
      line += StrCat(", \"args\": {", e.args_json, "}");
    }
    line += "}";
    emit(line);
  }
  out += "\n]}\n";
  return out;
}

Status TraceExporter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return InvalidArgumentError(StrCat("cannot open trace file: ", path));
  }
  file << ToJson();
  file.close();
  if (!file.good()) {
    return InternalError(StrCat("failed writing trace file: ", path));
  }
  return Status::Ok();
}

size_t TraceExporter::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t TraceExporter::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

uint64_t TraceExporter::query_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return query_id_;
}

std::string TraceExporter::NormalizedSummary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Event& e : events_) {
    out += StrCat(e.ph, " ", e.name, " tid=", e.tid);
    if (e.has_flow_id) out += StrCat(" flow=", e.flow_id);
    out += "\n";
  }
  return out;
}

}  // namespace mpqe
