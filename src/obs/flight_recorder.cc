#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace mpqe {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Node labels come from user programs and may contain anything.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

uint32_t ClampU32(uint64_t v) {
  return v > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(v);
}

}  // namespace

const char* FlightEventTypeToString(FlightEventType type) {
  switch (type) {
    case FlightEventType::kSessionStart: return "session_start";
    case FlightEventType::kSessionEnd: return "session_end";
    case FlightEventType::kSend: return "send";
    case FlightEventType::kDeliver: return "deliver";
    case FlightEventType::kNodeFire: return "node_fire";
    case FlightEventType::kPhase: return "phase";
    case FlightEventType::kTermination: return "termination";
    case FlightEventType::kStall: return "stall";
    case FlightEventType::kWatchdogDump: return "watchdog_dump";
    case FlightEventType::kPlanPrepare: return "plan_prepare";
    case FlightEventType::kEventTypeCount: break;
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  if (options_.ring_count == 0) options_.ring_count = 1;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  options_.ring_capacity = RoundUpPow2(options_.ring_capacity);
  slot_mask_ = options_.ring_capacity - 1;
  rings_ = std::vector<Ring>(options_.ring_count);
  for (Ring& ring : rings_) {
    ring.slots = std::make_unique<Slot[]>(options_.ring_capacity);
  }
}

FlightRecorder::Ring& FlightRecorder::ThisThreadRing() {
  // A process-wide thread counter assigns each thread a stable ring
  // index on first use. Plain thread_local POD: no destructor, no
  // reference to any recorder instance, so short-lived session worker
  // threads cannot leave dangling state behind.
  static std::atomic<uint32_t> thread_counter{0};
  thread_local uint32_t thread_index =
      thread_counter.fetch_add(1, std::memory_order_relaxed);
  return rings_[thread_index % rings_.size()];
}

void FlightRecorder::Record(FlightRecord record) {
  record.ts_ns = NowNs();
  uint64_t words[5];
  static_assert(sizeof(words) == sizeof(FlightRecord), "word count");
  std::memcpy(words, &record, sizeof(record));

  Ring& ring = ThisThreadRing();
  const uint64_t claim = ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[claim & slot_mask_];
  // Seqlock publish: odd while writing, then the unique even value for
  // this claim. A snapshot that observes mismatched or odd sequences
  // drops the slot. Two threads sharing a ring can race on one slot
  // only when their claims are a full ring apart; the loser's final
  // seq then fails the seq1==seq2 check and the slot reads as torn —
  // lost diagnostics, never a misread. The payload stores are release
  // so the odd mark cannot sink below them (and the reader's acquire
  // payload loads pair with them); fence-free on purpose — GCC rejects
  // atomic_thread_fence under -fsanitize=thread with -Werror.
  slot.seq.store(2 * claim + 1, std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) {
    slot.words[i].store(words[i], std::memory_order_release);
  }
  slot.seq.store(2 * (claim + 1), std::memory_order_release);
}

void FlightRecorder::RecordEvent(FlightEventType type, uint64_t query_id,
                                 int32_t a, int32_t b, uint32_t rows,
                                 uint32_t aux, uint8_t kind) {
  FlightRecord record;
  record.query_id = query_id;
  record.a = a;
  record.b = b;
  record.rows = rows;
  record.aux = aux;
  record.type = static_cast<uint8_t>(type);
  record.kind = kind;
  Record(record);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(rings_.size() * 64);
  for (const Ring& ring : rings_) {
    const uint64_t next = ring.next.load(std::memory_order_acquire);
    const uint64_t count =
        std::min<uint64_t>(next, options_.ring_capacity);
    for (uint64_t i = next - count; i < next; ++i) {
      const Slot& slot = ring.slots[i & slot_mask_];
      const uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0 || (seq1 & 1) != 0) continue;
      uint64_t words[5];
      // Acquire payload loads keep the seq2 re-read from hoisting above
      // them (an acquire load orders everything after it in program
      // order), standing in for the classic acquire fence, which GCC
      // refuses to compile under -fsanitize=thread with -Werror.
      for (int w = 0; w < 5; ++w) {
        words[w] = slot.words[w].load(std::memory_order_acquire);
      }
      const uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
      if (seq1 != seq2) continue;  // torn: overwritten mid-copy
      FlightRecord record;
      std::memcpy(&record, words, sizeof(record));
      if (record.type >=
          static_cast<uint8_t>(FlightEventType::kEventTypeCount)) {
        continue;
      }
      out.push_back(record);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& x, const FlightRecord& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  return out;
}

uint64_t FlightRecorder::recorded() const {
  uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.next.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// FlightSessionObserver

void FlightSessionObserver::OnSend(const SendEvent& event) {
  uint32_t rows = 0;
  uint8_t kind = 0;
  if (event.message != nullptr) {
    kind = static_cast<uint8_t>(event.message->kind);
    // Row counts only where they are O(1) to read; batch envelopes
    // report their sub-message count instead (full rows arrive with
    // the paired kDeliver record, which the network has already
    // computed).
    if (event.message->kind == MessageKind::kTuple) {
      rows = 1;
    } else if (event.message->kind == MessageKind::kTupleSegment) {
      rows = ClampU32(event.message->segment().num_rows);
    } else if (event.message->kind == MessageKind::kBatch) {
      rows = ClampU32(event.message->batch().size());
    }
  }
  recorder_->RecordEvent(FlightEventType::kSend, query_id_, event.from,
                         event.to, rows, 0, kind);
}

void FlightSessionObserver::OnDeliver(const DeliverEvent& event) {
  recorder_->RecordEvent(FlightEventType::kDeliver, query_id_, event.from,
                         event.to, ClampU32(event.payload_rows),
                         ClampU32(event.handle_ns),
                         static_cast<uint8_t>(event.kind));
}

void FlightSessionObserver::OnNodeFire(const NodeFireEvent& event) {
  recorder_->RecordEvent(FlightEventType::kNodeFire, query_id_, event.node,
                         static_cast<int32_t>(event.tuples_in),
                         event.tuples_out, ClampU32(event.handle_ns),
                         static_cast<uint8_t>(event.trigger));
}

void FlightSessionObserver::OnPhase(const PhaseEvent& event) {
  recorder_->RecordEvent(FlightEventType::kPhase, query_id_,
                         event.begin ? 1 : 0, -1, 0, 0,
                         static_cast<uint8_t>(event.phase));
}

void FlightSessionObserver::OnTermination(const TerminationEvent& event) {
  recorder_->RecordEvent(
      FlightEventType::kTermination, query_id_, event.node,
      static_cast<int32_t>(event.wave),
      ClampU32(event.idleness < 0 ? 0 : static_cast<uint64_t>(event.idleness)),
      event.open_work ? 1 : 0, static_cast<uint8_t>(event.kind));
}

// ---------------------------------------------------------------------------
// FlightDump serialization (mpqe-flightdump-v1)

namespace {

// One flight record as a JSON object. Numeric raw fields are always
// present; the decoded `type`/detail names make dumps grep-able
// without a record-layout decoder at hand.
std::string RecordJson(const FlightRecord& r) {
  const auto type = static_cast<FlightEventType>(r.type);
  std::string detail;
  switch (type) {
    case FlightEventType::kSend:
    case FlightEventType::kDeliver:
      detail = StrCat(", \"kind\": \"",
                      MessageKindToString(static_cast<MessageKind>(r.kind)),
                      "\"");
      break;
    case FlightEventType::kNodeFire:
      detail = StrCat(", \"trigger\": \"",
                      MessageKindToString(static_cast<MessageKind>(r.kind)),
                      "\"");
      break;
    case FlightEventType::kPhase:
      detail = StrCat(", \"phase\": \"",
                      PhaseToString(static_cast<Phase>(r.kind)),
                      "\", \"begin\": ", r.a == 1 ? "true" : "false");
      break;
    case FlightEventType::kTermination:
      detail = StrCat(", \"event\": \"",
                      TerminationEvent::KindToString(
                          static_cast<TerminationEvent::Kind>(r.kind)),
                      "\"");
      break;
    default:
      break;
  }
  return StrCat("{\"ts_ns\": ", r.ts_ns, ", \"type\": \"",
                FlightEventTypeToString(type), "\", \"query_id\": ",
                r.query_id, ", \"a\": ", r.a, ", \"b\": ", r.b,
                ", \"rows\": ", r.rows, ", \"aux\": ", r.aux, detail, "}");
}

std::string SccJson(const FlightDumpScc& s) {
  return StrCat(
      "{\"scc\": ", s.scc, ", \"leader\": ", s.leader,
      ", \"queue_depth\": ", s.queue_depth, ", \"members\": ", s.members,
      ", \"nontrivial\": ", s.nontrivial ? "true" : "false",
      ", \"wave_active\": ", s.wave_active ? "true" : "false",
      ", \"wave\": ", s.wave, ", \"waves_started\": ", s.waves_started,
      ", \"waiting_for\": ", s.waiting_for,
      ", \"all_confirmed\": ", s.all_confirmed ? "true" : "false",
      ", \"idleness\": ", s.idleness,
      ", \"open_work\": ", s.open_work ? "true" : "false",
      ", \"notice_pending\": ", s.notice_pending ? "true" : "false", "}");
}

std::string NodeJson(const FlightDumpNode& n) {
  return StrCat("{\"node\": ", n.node, ", \"label\": \"",
                EscapeJson(n.label), "\", \"scc\": ", n.scc,
                ", \"queue_depth\": ", n.queue_depth,
                ", \"fires\": ", n.fires,
                ", \"last_fire_ts_ns\": ", n.last_fire_ts_ns,
                ", \"sends\": ", n.sends,
                ", \"deliveries\": ", n.deliveries,
                ", \"last_delivery_ts_ns\": ", n.last_delivery_ts_ns, "}");
}

template <typename Container, typename Formatter>
void AppendJsonArray(std::string* out, std::string_view key,
                     const Container& items, Formatter&& fmt) {
  *out += StrCat("  \"", key, "\": [\n");
  size_t i = 0;
  for (const auto& item : items) {
    *out += StrCat("    ", fmt(item), ++i < items.size() ? ",\n" : "\n");
  }
  *out += "  ]";
}

}  // namespace

std::string FlightDump::ToJson() const {
  std::string out = StrCat(
      "{\n  \"schema\": \"mpqe-flightdump-v1\",\n  \"reason\": \"",
      EscapeJson(reason), "\",\n  \"query_id\": ", query_id,
      ",\n  \"stalled_ms\": ", stalled_ms, ",\n  \"delivered\": ", delivered,
      ",\n  \"in_flight\": ", in_flight, ",\n  \"stuck_scc\": ", stuck_scc,
      ",\n");
  AppendJsonArray(&out, "sccs", sccs, SccJson);
  out += ",\n";
  AppendJsonArray(&out, "nodes", nodes, NodeJson);
  out += ",\n";
  AppendJsonArray(&out, "events", events, RecordJson);
  if (!query_log_entry_json.empty()) {
    out += StrCat(",\n  \"query_log_entry\": ", query_log_entry_json);
  }
  out += "\n}\n";
  return out;
}

}  // namespace mpqe
