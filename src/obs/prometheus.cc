#include "obs/prometheus.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace mpqe {
namespace {

// A registry path mapped onto a Prometheus family: the low-cardinality
// segments become the family name, the high-cardinality middle segment
// (node id, predicate name, arc, ...) becomes a label.
struct MappedPath {
  std::string family;  // without the mpqe_ prefix
  std::string label_key;
  std::string label_value;  // unescaped
};

std::vector<std::string> SplitPath(const std::string& name) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '/') {
      parts.push_back(name.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string JoinUnderscore(const std::vector<std::string>& parts, size_t from,
                           size_t to) {
  std::string out;
  for (size_t i = from; i < to; ++i) {
    if (!out.empty()) out += '_';
    out += parts[i];
  }
  return out;
}

MappedPath MapPath(const std::string& name) {
  std::vector<std::string> p = SplitPath(name);
  const size_t n = p.size();
  if (n == 3 && p[0] == "node") return {"node_" + p[2], "node", p[1]};
  if (n == 3 && p[0] == "predicate") {
    return {"predicate_" + p[2], "predicate", p[1]};
  }
  if (n == 3 && p[0] == "arc") return {"arc_" + p[2], "arc", p[1]};
  if (n == 3 && p[0] == "phase") return {"phase_" + p[2], "phase", p[1]};
  if (n == 3 && p[0] == "scc") return {"scc_" + p[2], "scc", p[1]};
  if (n == 4 && p[0] == "aggregated" && p[1] == "node") {
    return {"profile_node_" + p[3], "node", p[2]};
  }
  if (n == 3 && p[0] == "msg" && p[1] == "sent") {
    return {"msg_sent", "kind", p[2]};
  }
  if (n == 2 && p[0] == "termination") {
    return {"termination_events", "event", p[1]};
  }
  return {JoinUnderscore(p, 0, n), "", ""};
}

// Metric names admit [a-zA-Z0-9_:] only.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

// Text-format 0.0.4 escaping for HELP text: backslash and line feed
// only (quotes stay literal — help is not quoted).
std::string EscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Text-format 0.0.4 escaping for quoted label values: backslash,
// double-quote, and line feed.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// `label="value"` rendered for a series, or "" for a bare family.
std::string RenderLabels(const MappedPath& mapped) {
  if (mapped.label_key.empty()) return "";
  return StrCat(mapped.label_key, "=\"", EscapeLabelValue(mapped.label_value),
                "\"");
}

std::string FormatValue(double value) {
  const int64_t as_int = static_cast<int64_t>(value);
  if (value == static_cast<double>(as_int)) return StrCat(as_int);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return std::string(buf);
}

struct Series {
  std::string labels;  // rendered `key="value"`, or ""
  double value = 0;
  const Histogram* histogram = nullptr;
};

struct Family {
  char type = 'c';  // 'c'ounter | 'g'auge | 'h'istogram
  std::string help;
  std::vector<Series> series;
};

const char* TypeName(char type) {
  switch (type) {
    case 'g':
      return "gauge";
    case 'h':
      return "histogram";
    default:
      return "counter";
  }
}

// Inserts the series into its family, creating the family on first
// use. A family name is claimed by one metric type; should a path of a
// different type map onto a taken name, the type is appended to keep
// the exposition well-formed instead of silently dropping the series.
void AddSeries(std::map<std::string, Family>& families, std::string family,
               char type, const std::string& source_path, Series series) {
  auto [it, inserted] = families.emplace(family, Family{});
  if (!inserted && it->second.type != type) {
    family = StrCat(family, "_", TypeName(type));
    it = families.emplace(family, Family{}).first;
  }
  if (it->second.series.empty()) {
    it->second.type = type;
    it->second.help =
        StrCat(TypeName(type), " from registry path '", source_path, "'");
  }
  it->second.series.push_back(std::move(series));
}

// Inclusive upper bound of log2 bucket b (bucket b holds samples of
// bit width b; bucket 0 holds sample 0).
uint64_t BucketBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

void AppendHistogram(std::string& out, const std::string& family_name,
                     const Series& series) {
  const Histogram& h = *series.histogram;
  const std::vector<uint64_t> buckets = h.BucketCounts();
  size_t last_nonzero = 0;
  uint64_t total = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] != 0) last_nonzero = b;
    total += buckets[b];
  }
  const std::string sep = series.labels.empty() ? "" : ",";
  uint64_t cumulative = 0;
  // Empty histograms emit only +Inf: scrape stays small, count 0 says
  // the rest.
  if (total > 0) {
    for (size_t b = 0; b <= last_nonzero; ++b) {
      cumulative += buckets[b];
      out += StrCat(family_name, "_bucket{", series.labels, sep,
                    "le=\"", BucketBound(b), "\"} ", cumulative, "\n");
    }
  }
  // +Inf and _count derive from the SAME bucket snapshot as the
  // cumulative rows above — a concurrent Record between BucketCounts()
  // and a separate h.count() read could otherwise make +Inf smaller
  // than a preceding bucket, i.e. a non-monotonic histogram.
  out += StrCat(family_name, "_bucket{", series.labels, sep,
                "le=\"+Inf\"} ", total, "\n");
  const std::string braces =
      series.labels.empty() ? "" : StrCat("{", series.labels, "}");
  out += StrCat(family_name, "_sum", braces, " ", h.sum(), "\n");
  out += StrCat(family_name, "_count", braces, " ", total, "\n");
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry,
                             const PrometheusOptions& options) {
  std::map<std::string, Family> families;

  for (const auto& [name, value] : registry.CounterRows()) {
    MappedPath mapped = MapPath(name);
    AddSeries(families, SanitizeName(mapped.family), 'c', name,
              Series{RenderLabels(mapped), static_cast<double>(value),
                     nullptr});
  }
  for (const auto& [name, value] : registry.GaugeRows()) {
    MappedPath mapped = MapPath(name);
    AddSeries(families, SanitizeName(mapped.family), 'g', name,
              Series{RenderLabels(mapped), value, nullptr});
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* histogram = registry.FindHistogram(name);
    if (histogram == nullptr) continue;
    MappedPath mapped = MapPath(name);
    AddSeries(families, SanitizeName(mapped.family), 'h', name,
              Series{RenderLabels(mapped), 0.0, histogram});
  }

  std::string out;
  const std::string prefix =
      options.prefix.empty() ? "" : options.prefix + "_";
  for (auto& [family, data] : families) {
    const std::string full = prefix + family;
    out += StrCat("# HELP ", full, " ", EscapeHelp(data.help), "\n");
    out += StrCat("# TYPE ", full, " ", TypeName(data.type), "\n");
    // Rows within a family come out sorted by label: the registry rows
    // arrive sorted by path, and within one family the label is the
    // only varying path segment — but paths sort on the raw '/' form,
    // so impose label order explicitly for byte-stable scrapes.
    std::sort(data.series.begin(), data.series.end(),
              [](const Series& a, const Series& b) {
                return a.labels < b.labels;
              });
    for (const Series& series : data.series) {
      if (data.type == 'h') {
        AppendHistogram(out, full, series);
      } else if (series.labels.empty()) {
        out += StrCat(full, " ", FormatValue(series.value), "\n");
      } else {
        out += StrCat(full, "{", series.labels, "} ",
                      FormatValue(series.value), "\n");
      }
    }
  }
  return out;
}

}  // namespace mpqe
