// Derivation provenance (lineage): record, for every tuple first
// inserted into any node's relation, how it came to exist — the
// deriving graph node, the program rule (for rule firings), the
// ordered input tuple ids, and the lineage id of the message whose
// handling produced it — and answer "WHY is this an answer?" with a
// minimal proof tree grounding out in EDB facts.
//
// Ids: every relation of an evaluation draws row ids from one shared
// TupleIdAllocator (Relation::EnableLineage), so ids are globally
// unique and numerically consistent with derivation order — a tuple's
// inputs were allocated strictly before it (the input exists at its
// producer before the carrying message is sent, the send
// happens-before the delivery, and the delivery is what derives the
// new tuple). Every record's inputs therefore carry smaller ids than
// the record itself: the derivation structure is a DAG by
// construction. scripts/check_trace.py --lineage re-checks this
// invariant on the exported JSON.
//
// First-derivation semantics: duplicate insertions map to the
// existing row (and its id) and produce no record, exactly mirroring
// the duplicate elimination that makes cyclic programs terminate
// (§1.2). Each id thus has exactly one derivation record, and proof
// extraction needs no cycle breaking — though FormatProof still
// guards against malformed input.
//
// Usage: set EvaluationOptions::lineage and read
// EvaluationResult::lineage, or attach a LineageObserver manually:
//   LineageObserver lineage;
//   lineage.AttachGraph(graph.get(), &db.symbols());
//   ... EnableLineage + AttachEdbRelation for each EDB relation ...
//   options.observers.push_back(&lineage);
//   ... evaluate ...
//   LineageReport report = lineage.Finalize();
//   std::cout << report.FormatProof(report.Match("tc", args)[0]->id);
//
// Overhead: opt-in like the profiler (PR 3). With lineage off the
// zero-observer fast path is untouched — one null-pointer branch per
// insert site and an extra 8-byte field on Message. See
// BENCH_obs.json (BM_MessageHopLineage) for the tracked numbers.

#ifndef MPQE_OBS_LINEAGE_H_
#define MPQE_OBS_LINEAGE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/rule_goal_graph.h"
#include "obs/observer.h"
#include "relational/relation.h"

namespace mpqe {

// One node of the derivation DAG: how the tuple with this id was
// first derived. EDB facts are leaves (no inputs, depth 0).
struct LineageRecord {
  uint64_t id = kNoTupleId;
  DeriveKind kind = DeriveKind::kEdbFact;
  int32_t node = -1;        // graph NodeId; -1 for EDB facts
  int32_t rule_index = -1;  // program rule index (kRuleFire only)
  uint64_t source_msg = kNoTupleId;  // trigger message's lineage id
  int64_t depth = 0;        // minimal proof depth; EDB facts are 0
  Tuple values;             // the stored tuple (output positions)
  std::vector<uint64_t> inputs;  // ordered input ids; empty for EDB

  std::string predicate;  // predicate / relation name ("" for rules)
  std::string display;    // rendered atom or rule instance
  // The full atom image for query matching: one entry per atom
  // argument, nullopt at existential positions (not transmitted, so
  // any value matches there).
  std::vector<std::optional<Value>> atom_args;
};

struct ProofFormatOptions {
  bool include_ids = true;   // append "#<id>" to every line
  size_t max_lines = 10000;  // rendering budget (defensive)
};

// A parsed --why query: predicate name plus ground arguments, with
// nullopt for `_` wildcards.
struct LineageQuery {
  std::string predicate;
  std::vector<std::optional<Value>> args;
};

/// Parses a ground query atom such as "tc(a, c)", "edge(a, _)" or
/// "p(3)". Identifiers intern into `symbols`, integer literals parse
/// as ints, `_` is a wildcard; "p" and "p()" both mean zero arity.
StatusOr<LineageQuery> ParseLineageQuery(const std::string& text,
                                         SymbolTable& symbols);

// The assembled derivation DAG. Self-contained after Finalize():
// display strings and atom images are baked in, so the report outlives
// the database, graph and evaluation that produced it.
struct LineageReport {
  std::vector<LineageRecord> records;  // sorted by ascending id
  int32_t root_node = -1;              // the top goal's graph node
  size_t edb_facts = 0;
  size_t derived = 0;
  int64_t max_depth = 0;
  // The engine-minted query id of the session that produced this
  // report (0 for the one-shot Evaluate path; then omitted from the
  // JSON dump, keeping pinned goldens id-free).
  uint64_t query_id = 0;

  /// The record for `id`, or nullptr (binary search; records are
  /// sorted by id).
  const LineageRecord* Find(uint64_t id) const;

  /// Records whose atom matches `predicate(args...)` — goal unions and
  /// EDB facts only (rule instances are not atoms). nullopt arguments
  /// are wildcards, and existential positions match anything. Sorted
  /// by ascending proof depth, then id, so front() roots the minimal
  /// proof tree.
  std::vector<const LineageRecord*> Match(
      const std::string& predicate,
      const std::vector<std::optional<Value>>& args) const;
  std::vector<const LineageRecord*> Match(const LineageQuery& query) const {
    return Match(query.predicate, query.args);
  }

  /// The indented proof tree rooted at `id`, grounding out in EDB
  /// facts. Deterministic: each tuple has exactly one (first)
  /// derivation. Cycle-safe: a repeated id on the current path renders
  /// as "(cycle)" and recursion stops — impossible for well-formed
  /// reports, where inputs precede their derivation.
  std::string FormatProof(uint64_t id,
                          const ProofFormatOptions& options = {}) const;

  /// Machine-readable dump (schema "mpqe-lineage-v1"), validated by
  /// scripts/check_trace.py --lineage.
  std::string ToJson() const;
};

// The ExecutionObserver that assembles the DAG. Owns the evaluation's
// TupleIdAllocator; the evaluator enables lineage on every relation
// against ids() and registers the EDB relations so Finalize() can
// resolve referenced base facts into leaf records.
//
// Thread-safe: OnDerive callbacks from different processes may arrive
// concurrently (threaded scheduler) and append under one mutex.
class LineageObserver : public ExecutionObserver {
 public:
  LineageObserver() = default;

  /// Attaches the rule/goal graph + symbols used to render node
  /// predicates, atoms and rule instances. Optional: without a graph,
  /// records keep numeric node ids and empty displays.
  void AttachGraph(const RuleGoalGraph* graph, const SymbolTable* symbols);

  /// Registers an EDB relation (call after Relation::EnableLineage
  /// against ids()). The relation must stay alive until Finalize().
  void AttachEdbRelation(const std::string& name, const Relation* relation);

  /// The evaluation's id allocator: pass to Relation::EnableLineage
  /// and EngineShared::lineage_ids.
  TupleIdAllocator* ids() { return &ids_; }

  /// Captures the session's query id for the report.
  void OnSessionStart(const SessionStartEvent& event) override;

  void OnDerive(const DeriveEvent& event) override;

  /// One entry per absorbed segment instead of one record per row:
  /// retains the (shared, immutable) segment — the derived ids ride in
  /// its lineage column for free — plus a delta-encoded input column
  /// (id - input per row; always positive, inputs precede their
  /// derivation). Finalize() expands the rows into LineageRecords.
  void OnDeriveBatch(const DeriveBatchEvent& event) override;

  /// Records captured so far, counting each batched segment row.
  size_t record_count() const;

  /// Builds the self-contained report: resolves referenced EDB facts
  /// into leaf records, computes minimal proof depths, and bakes
  /// display strings. Call after the evaluation, while the attached
  /// relations (and graph) are still alive.
  LineageReport Finalize() const;

 private:
  struct EdbRange {
    std::string name;
    const Relation* relation = nullptr;
    uint64_t first = 0;  // row_id(0); rows are numbered contiguously
  };

  // A segment absorbed whole (see OnDeriveBatch): row i was first
  // derived as id segment->lineage[i] from the single input
  // segment->lineage[i] - input_deltas[i].
  struct BatchEntry {
    int32_t node = -1;
    DeriveKind kind = DeriveKind::kUnion;
    std::shared_ptr<const TupleSegment> segment;
    std::vector<uint64_t> input_deltas;
  };

  TupleIdAllocator ids_;
  uint64_t query_id_ = 0;  // set before any derivation event
  mutable std::mutex mutex_;
  std::vector<LineageRecord> records_;  // raw: display fields unset
  std::vector<BatchEntry> batches_;     // raw: expanded by Finalize
  size_t batch_rows_ = 0;               // rows across batches_
  std::vector<EdbRange> edb_;
  const RuleGoalGraph* graph_ = nullptr;
  const SymbolTable* symbols_ = nullptr;
};

}  // namespace mpqe

#endif  // MPQE_OBS_LINEAGE_H_
