#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace mpqe {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimal JSON string escaping for node labels (rule labels contain
// no quotes/backslashes today, but labels are user-predicate-derived).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// NodeProfile / ProfileReport
// ---------------------------------------------------------------------------

double NodeProfile::DupHitRate() const {
  uint64_t seen = tuples_in + dedup_hits;
  return seen == 0 ? 0.0
                   : static_cast<double>(dedup_hits) /
                         static_cast<double>(seen);
}

double NodeProfile::RowsPerSegmentOut() const {
  return segments_out == 0 ? 0.0
                           : static_cast<double>(segment_rows_out) /
                                 static_cast<double>(segments_out);
}

double NodeProfile::RowsPerSegmentIn() const {
  return segments_in == 0 ? 0.0
                          : static_cast<double>(segment_rows_in) /
                                static_cast<double>(segments_in);
}

double NodeProfile::BatchDedupHitRate() const {
  return batch_rows_in == 0 ? 0.0
                            : static_cast<double>(batch_dedup_hits) /
                                  static_cast<double>(batch_rows_in);
}

double NodeProfile::Selectivity() const {
  return tuples_in == 0 ? 0.0
                        : static_cast<double>(tuples_out) /
                              static_cast<double>(tuples_in);
}

double NodeProfile::DeviationFactor() const {
  if (est_log10_tuples == kNoEstimate) return 0.0;
  // The §4.3 estimate is per tuple request; scale by the observed
  // request count to compare against the whole-run output. max(·, 1)
  // keeps the ratio finite for empty results.
  double expected = std::pow(10.0, est_log10_tuples) *
                    static_cast<double>(std::max<uint64_t>(requests_in, 1));
  double actual = static_cast<double>(std::max<uint64_t>(tuples_out, 1));
  expected = std::max(expected, 1.0);
  return expected > actual ? expected / actual : actual / expected;
}

std::vector<int32_t> ProfileReport::DeviatingNodes(
    double deviation_factor) const {
  std::vector<int32_t> out;
  for (const NodeProfile& n : nodes) {
    if (n.est_log10_tuples == kNoEstimate) continue;
    if (n.DeviationFactor() > deviation_factor) out.push_back(n.node);
  }
  return out;
}

std::string ProfileReport::ToJson() const {
  std::string out = "{\n  \"schema\": \"mpqe-profile-v1\",\n";
  if (query_id != 0) out += StrCat("  \"query_id\": ", query_id, ",\n");
  out += "  \"totals\": {";
  out += StrCat("\"fires\": ", total_fires,
                ", \"tuples_in\": ", total_tuples_in,
                ", \"tuples_out\": ", total_tuples_out,
                ", \"dedup_hits\": ", total_dedup_hits,
                ", \"msgs_sent\": ", total_msgs_sent,
                ", \"msgs_delivered\": ", total_msgs_delivered,
                ", \"fire_ns\": ", total_fire_ns,
                ", \"queue_wait_ns\": ", total_queue_wait_ns, "},\n");
  out += "  \"phases\": {";
  bool first = true;
  for (size_t i = 0; i < phase_ns.size(); ++i) {
    if (phase_ns[i] == 0) continue;
    out += StrCat(first ? "" : ", ", "\"",
                  PhaseToString(static_cast<Phase>(i)), "_ns\": ",
                  phase_ns[i]);
    first = false;
  }
  out += "},\n  \"nodes\": [";
  first = true;
  for (const NodeProfile& n : nodes) {
    out += StrCat(first ? "\n" : ",\n", "    {\"id\": ", n.node,
                  ", \"role\": \"", NodeRoleToString(n.role), "\"",
                  ", \"label\": \"", JsonEscape(n.label), "\"",
                  ", \"scc\": ", n.scc_id, ", \"fires\": ", n.fires,
                  ", \"requests_in\": ", n.requests_in,
                  ", \"tuples_in\": ", n.tuples_in,
                  ", \"tuples_out\": ", n.tuples_out,
                  ", \"dedup_hits\": ", n.dedup_hits,
                  ", \"dup_hit_rate\": ", JsonDouble(n.DupHitRate()),
                  ", \"selectivity\": ", JsonDouble(n.Selectivity()),
                  ", \"msgs_in\": ", n.msgs_in, ", \"msgs_out\": ", n.msgs_out,
                  ", \"batch_envelopes_in\": ", n.batch_envelopes_in,
                  ", \"batch_envelopes_out\": ", n.batch_envelopes_out,
                  ", \"segments_in\": ", n.segments_in,
                  ", \"segments_out\": ", n.segments_out,
                  ", \"segment_rows_in\": ", n.segment_rows_in,
                  ", \"segment_rows_out\": ", n.segment_rows_out,
                  ", \"rows_per_segment_out\": ",
                  JsonDouble(n.RowsPerSegmentOut()),
                  ", \"rows_per_segment_in\": ",
                  JsonDouble(n.RowsPerSegmentIn()),
                  ", \"batch_rows_in\": ", n.batch_rows_in,
                  ", \"batch_dedup_hits\": ", n.batch_dedup_hits,
                  ", \"batch_dedup_hit_rate\": ",
                  JsonDouble(n.BatchDedupHitRate()),
                  ", \"fire_ns\": ", n.fire_ns,
                  ", \"queue_wait_ns\": ", n.queue_wait_ns);
    if (n.est_log10_tuples != kNoEstimate) {
      out += StrCat(", \"est_log10_tuples\": ",
                    JsonDouble(n.est_log10_tuples));
      if (n.est_total_cost != kNoEstimate) {
        out += StrCat(", \"est_total_cost\": ", JsonDouble(n.est_total_cost));
      }
      out += StrCat(", \"deviation_factor\": ",
                    JsonDouble(n.DeviationFactor()));
    }
    out += "}";
    first = false;
  }
  out += "\n  ],\n  \"sccs\": [";
  first = true;
  for (const SccProfile& s : sccs) {
    out += StrCat(first ? "\n" : ",\n", "    {\"id\": ", s.scc_id,
                  ", \"members\": [", StrJoin(s.members, ","),
                  "], \"leader\": ", s.leader,
                  ", \"tree_depth\": ", s.tree_depth, ", \"waves\": ", s.waves,
                  ", \"negative_answers\": ", s.negative_answers,
                  ", \"confirmed_answers\": ", s.confirmed_answers,
                  ", \"work_notices\": ", s.work_notices,
                  ", \"concluded\": ", s.concluded, "}");
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// ProfilingObserver
// ---------------------------------------------------------------------------

void ProfilingObserver::AttachGraph(const RuleGoalGraph* graph,
                                    const SymbolTable* symbols) {
  std::lock_guard<std::mutex> lock(mutex_);
  graph_ = graph;
  symbols_ = symbols;
}

ProfilingObserver::PidStats& ProfilingObserver::Stats(ProcessId pid) {
  size_t index = static_cast<size_t>(pid);
  if (by_pid_.size() <= index) by_pid_.resize(index + 1);
  return by_pid_[index];
}

void ProfilingObserver::OnSessionStart(const SessionStartEvent& event) {
  query_id_ = event.query_id;
}

void ProfilingObserver::OnSend(const SendEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_sends_;
  in_flight_sends_[{event.from, event.to}].push_back(NowNs());
  if (event.from >= 0) {
    PidStats& s = Stats(event.from);
    ++s.msgs_out;
    if (event.message->kind == MessageKind::kBatch) {
      ++s.batch_envelopes_out;
      for (const Message& sub : event.message->batch()) {
        if (sub.kind == MessageKind::kTupleSegment) {
          ++s.segments_out;
          s.segment_rows_out += sub.segment().num_rows;
        }
      }
    } else if (event.message->kind == MessageKind::kTupleSegment) {
      ++s.segments_out;
      s.segment_rows_out += event.message->segment().num_rows;
    }
  }
}

void ProfilingObserver::OnDeliver(const DeliverEvent& event) {
  uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_delivers_;
  PidStats& s = Stats(event.to);
  ++s.msgs_in;
  if (event.kind == MessageKind::kBatch) ++s.batch_envelopes_in;
  if (event.kind == MessageKind::kTupleRequest) ++s.requests_in;
  s.segments_in += event.payload_segments;
  s.segment_rows_in += event.payload_rows;
  // Per-channel FIFO: the oldest in-flight send on this channel is the
  // one just delivered. The delivery *started* handle_ns ago.
  auto it = in_flight_sends_.find({event.from, event.to});
  if (it != in_flight_sends_.end() && !it->second.empty()) {
    uint64_t sent_at = it->second.front();
    it->second.pop_front();
    uint64_t started_at = now - std::min(now, event.handle_ns);
    if (started_at > sent_at) s.queue_wait_ns += started_at - sent_at;
  }
}

void ProfilingObserver::OnNodeFire(const NodeFireEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  PidStats& s = Stats(event.pid);
  s.fired = true;
  s.node = event.node;
  s.role = event.role;
  ++s.fires;
  s.tuples_in += event.tuples_in;
  s.tuples_out += event.tuples_out;
  s.dedup_hits += event.dedup_hits;
  if (event.trigger == MessageKind::kTupleSegment ||
      event.trigger == MessageKind::kBatch) {
    // Batched arrivals: the rows (and the dedup hits their handling
    // produced) that flow through the whole-segment absorb paths.
    s.batch_rows_in += event.tuples_in;
    s.batch_dedup_hits += event.dedup_hits;
  }
  s.fire_ns += event.handle_ns;
}

void ProfilingObserver::OnPhase(const PhaseEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t index = static_cast<size_t>(event.phase);
  size_t count = static_cast<size_t>(Phase::kPhaseCount);
  if (phase_ns_.size() < count) {
    phase_ns_.resize(count, 0);
    phase_begin_ns_.resize(count, 0);
  }
  if (event.begin) {
    phase_begin_ns_[index] = NowNs();
  } else if (phase_begin_ns_[index] != 0) {
    phase_ns_[index] += NowNs() - phase_begin_ns_[index];
  }
}

void ProfilingObserver::OnTermination(const TerminationEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  SccStats& s = term_by_pid_[event.node];
  switch (event.kind) {
    case TerminationEvent::Kind::kWaveStarted:
      ++s.waves;
      break;
    case TerminationEvent::Kind::kAnswerNegative:
      ++s.negative_answers;
      break;
    case TerminationEvent::Kind::kAnswerConfirmed:
      ++s.confirmed_answers;
      break;
    case TerminationEvent::Kind::kConcluded:
      ++s.concluded;
      break;
    case TerminationEvent::Kind::kWorkNotice:
      ++s.work_notices;
      break;
    case TerminationEvent::Kind::kKindCount:
      break;
  }
}

ProfileReport ProfilingObserver::Finalize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileReport report;
  report.query_id = query_id_;
  report.phase_ns = phase_ns_;
  report.phase_ns.resize(static_cast<size_t>(Phase::kPhaseCount), 0);
  report.total_msgs_sent = total_sends_;
  report.total_msgs_delivered = total_delivers_;

  for (size_t pid = 0; pid < by_pid_.size(); ++pid) {
    const PidStats& s = by_pid_[pid];
    report.total_fires += s.fires;
    report.total_tuples_in += s.tuples_in;
    report.total_tuples_out += s.tuples_out;
    report.total_dedup_hits += s.dedup_hits;
    report.total_fire_ns += s.fire_ns;
    report.total_queue_wait_ns += s.queue_wait_ns;

    // Rows: graph nodes when a graph is attached (pid == node id);
    // otherwise every pid that saw traffic.
    bool is_graph_node =
        graph_ != nullptr ? pid < graph_->size() : (s.msgs_in + s.msgs_out) > 0;
    if (!is_graph_node) continue;
    NodeProfile row;
    row.node = s.fired ? s.node : static_cast<int32_t>(pid);
    row.fires = s.fires;
    row.requests_in = s.requests_in;
    row.tuples_in = s.tuples_in;
    row.tuples_out = s.tuples_out;
    row.dedup_hits = s.dedup_hits;
    row.msgs_in = s.msgs_in;
    row.msgs_out = s.msgs_out;
    row.batch_envelopes_in = s.batch_envelopes_in;
    row.batch_envelopes_out = s.batch_envelopes_out;
    row.segments_in = s.segments_in;
    row.segments_out = s.segments_out;
    row.segment_rows_in = s.segment_rows_in;
    row.segment_rows_out = s.segment_rows_out;
    row.batch_rows_in = s.batch_rows_in;
    row.batch_dedup_hits = s.batch_dedup_hits;
    row.fire_ns = s.fire_ns;
    row.queue_wait_ns = s.queue_wait_ns;
    if (graph_ != nullptr) {
      const GraphNode& n = graph_->node(static_cast<NodeId>(pid));
      row.label = graph_->NodeLabel(n.id, symbols_);
      row.scc_id = n.scc_id;
      switch (n.kind) {
        case NodeKind::kGoal:
          row.role = NodeRole::kGoal;
          break;
        case NodeKind::kRule:
          row.role = NodeRole::kRule;
          break;
        case NodeKind::kEdbLeaf:
          row.role = NodeRole::kEdbLeaf;
          break;
        case NodeKind::kCycleRef:
          row.role = NodeRole::kCycleRef;
          break;
      }
    } else {
      row.role = s.role;
      row.label = StrCat("pid", pid);
    }
    report.nodes.push_back(std::move(row));
  }

  if (graph_ != nullptr) {
    // One SccProfile per nontrivial component, protocol events summed
    // over its members.
    for (int scc = 0; scc < graph_->scc_count(); ++scc) {
      const std::vector<NodeId>& members = graph_->scc_members(scc);
      if (members.empty()) continue;
      if (graph_->node(members.front()).scc_is_trivial) continue;
      SccProfile row;
      row.scc_id = scc;
      row.members.assign(members.begin(), members.end());
      row.leader = graph_->scc_leader(scc);
      row.tree_depth = graph_->BfstHeight(scc);
      for (NodeId m : members) {
        auto it = term_by_pid_.find(static_cast<ProcessId>(m));
        if (it == term_by_pid_.end()) continue;
        row.waves += it->second.waves;
        row.negative_answers += it->second.negative_answers;
        row.confirmed_answers += it->second.confirmed_answers;
        row.work_notices += it->second.work_notices;
        row.concluded += it->second.concluded;
      }
      report.sccs.push_back(std::move(row));
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Cost-model hookup
// ---------------------------------------------------------------------------

void FillCostEstimates(const RuleGoalGraph& graph,
                       const CostModelParams& params, ProfileReport& report) {
  // report.nodes is indexed by position, not id — build an id map.
  std::vector<NodeProfile*> by_node(graph.size(), nullptr);
  for (NodeProfile& n : report.nodes) {
    if (n.node >= 0 && static_cast<size_t>(n.node) < by_node.size()) {
      by_node[static_cast<size_t>(n.node)] = &n;
    }
  }
  for (const GraphNode& n : graph.nodes()) {
    if (n.kind != NodeKind::kRule) continue;
    NodeProfile* row = by_node[static_cast<size_t>(n.id)];
    if (row == nullptr) continue;
    OrderCost cost =
        EstimateOrderCost(n.rule, n.adornment, n.sips.order, params);
    row->est_log10_tuples = cost.log_final;
    row->est_total_cost = cost.total_cost;
  }
  // Goal nodes: union of the rule children's relations — sum the
  // children's (linear-scale) estimates.
  for (const GraphNode& n : graph.nodes()) {
    if (n.kind != NodeKind::kGoal || n.rule_children.empty()) continue;
    NodeProfile* row = by_node[static_cast<size_t>(n.id)];
    if (row == nullptr) continue;
    double sum = 0.0;
    bool any = false;
    for (NodeId c : n.rule_children) {
      NodeProfile* child = by_node[static_cast<size_t>(c)];
      if (child == nullptr || child->est_log10_tuples == kNoEstimate) continue;
      sum += std::pow(10.0, child->est_log10_tuples);
      any = true;
    }
    if (any) row->est_log10_tuples = std::log10(std::max(sum, 1.0));
  }
}

}  // namespace mpqe
