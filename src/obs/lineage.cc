#include "obs/lineage.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders "pred(a, _, 3)" from a predicate name and optional args
// (nullopt = existential position, printed as '_').
std::string AtomDisplay(const std::string& predicate,
                        const std::vector<std::optional<Value>>& args,
                        const SymbolTable* symbols) {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].has_value() ? args[i]->ToString(symbols) : "_";
  }
  out += ")";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ParseLineageQuery
// ---------------------------------------------------------------------------

StatusOr<LineageQuery> ParseLineageQuery(const std::string& text,
                                         SymbolTable& symbols) {
  auto bad = [&text](const std::string& why) {
    return InvalidArgumentError(
        StrCat("cannot parse query atom \"", text, "\": ", why));
  };
  size_t i = 0;
  auto skip_space = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };

  skip_space();
  size_t start = i;
  while (i < text.size() && is_ident(text[i])) ++i;
  if (i == start) return bad("expected a predicate name");
  LineageQuery query;
  query.predicate = text.substr(start, i - start);
  skip_space();
  if (i == text.size()) return query;  // zero arity, no parens
  if (text[i] != '(') return bad("expected '(' after the predicate name");
  ++i;
  skip_space();
  if (i < text.size() && text[i] == ')') {
    ++i;
  } else {
    for (;;) {
      skip_space();
      size_t arg_start = i;
      bool numeric = i < text.size() && (text[i] == '-' || text[i] == '+');
      if (numeric) ++i;
      while (i < text.size() && is_ident(text[i])) ++i;
      if (i == arg_start) return bad("expected an argument");
      std::string arg = text.substr(arg_start, i - arg_start);
      if (arg == "_") {
        query.args.emplace_back(std::nullopt);
      } else if (std::all_of(arg.begin() + (numeric ? 1 : 0), arg.end(),
                             [](char c) {
                               return std::isdigit(
                                   static_cast<unsigned char>(c));
                             }) &&
                 arg.size() > (numeric ? 1u : 0u)) {
        query.args.emplace_back(Value::Int(std::stoll(arg)));
      } else {
        query.args.emplace_back(symbols.Symbol(arg));
      }
      skip_space();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == ')') {
        ++i;
        break;
      }
      return bad("expected ',' or ')'");
    }
  }
  skip_space();
  if (i != text.size()) return bad("trailing characters after ')'");
  return query;
}

// ---------------------------------------------------------------------------
// LineageReport
// ---------------------------------------------------------------------------

const LineageRecord* LineageReport::Find(uint64_t id) const {
  auto it = std::lower_bound(
      records.begin(), records.end(), id,
      [](const LineageRecord& r, uint64_t v) { return r.id < v; });
  if (it == records.end() || it->id != id) return nullptr;
  return &*it;
}

std::vector<const LineageRecord*> LineageReport::Match(
    const std::string& predicate,
    const std::vector<std::optional<Value>>& args) const {
  std::vector<const LineageRecord*> out;
  for (const LineageRecord& r : records) {
    if (r.kind == DeriveKind::kRuleFire) continue;
    if (r.predicate != predicate || r.atom_args.size() != args.size()) continue;
    bool ok = true;
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].has_value() && r.atom_args[i].has_value() &&
          *args[i] != *r.atom_args[i]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const LineageRecord* a, const LineageRecord* b) {
              if (a->depth != b->depth) return a->depth < b->depth;
              return a->id < b->id;
            });
  return out;
}

std::string LineageReport::FormatProof(uint64_t id,
                                       const ProofFormatOptions& options) const {
  std::string out;
  size_t lines = 0;
  std::vector<uint64_t> path;  // ids on the current recursion path
  // Recursive lambda; the DAG is finite and ids strictly decrease
  // along inputs for well-formed reports, but guard anyway.
  auto render = [&](auto&& self, uint64_t rid, size_t indent) -> void {
    if (lines >= options.max_lines) return;
    std::string pad(indent * 2, ' ');
    const LineageRecord* r = Find(rid);
    if (r == nullptr) {
      out += StrCat(pad, "(unknown #", rid, ")\n");
      ++lines;
      return;
    }
    if (std::find(path.begin(), path.end(), rid) != path.end()) {
      out += StrCat(pad, "(cycle #", rid, ")\n");
      ++lines;
      return;
    }
    out += pad;
    out += r->display.empty() ? StrCat("tuple#", rid) : r->display;
    out += StrCat("  (", DeriveKindToString(r->kind));
    if (options.include_ids) out += StrCat(" #", rid);
    out += ")\n";
    ++lines;
    path.push_back(rid);
    for (uint64_t input : r->inputs) self(self, input, indent + 1);
    path.pop_back();
  };
  render(render, id, 0);
  return out;
}

std::string LineageReport::ToJson() const {
  std::string out = "{\n  \"schema\": \"mpqe-lineage-v1\",\n";
  if (query_id != 0) out += StrCat("  \"query_id\": ", query_id, ",\n");
  out += StrCat("  \"root_node\": ", root_node, ",\n");
  out += StrCat("  \"stats\": {\"edb_facts\": ", edb_facts,
                ", \"derived\": ", derived, ", \"max_depth\": ", max_depth,
                "},\n");
  out += "  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const LineageRecord& r = records[i];
    out += StrCat("    {\"id\": ", r.id, ", \"kind\": \"",
                  DeriveKindToString(r.kind), "\", \"depth\": ", r.depth);
    if (r.node >= 0) out += StrCat(", \"node\": ", r.node);
    if (r.kind == DeriveKind::kRuleFire) {
      out += StrCat(", \"rule\": ", r.rule_index);
    }
    if (r.source_msg != kNoTupleId) {
      out += StrCat(", \"source\": ", r.source_msg);
    }
    if (!r.predicate.empty()) {
      out += StrCat(", \"predicate\": \"", JsonEscape(r.predicate), "\"");
    }
    out += StrCat(", \"display\": \"", JsonEscape(r.display), "\"");
    out += ", \"values\": [";
    for (size_t v = 0; v < r.values.size(); ++v) {
      if (v > 0) out += ", ";
      out += StrCat("\"", JsonEscape(r.values[v].ToString()), "\"");
    }
    out += "]";
    if (r.kind != DeriveKind::kEdbFact) {
      out += ", \"inputs\": [";
      for (size_t v = 0; v < r.inputs.size(); ++v) {
        if (v > 0) out += ", ";
        out += StrCat(r.inputs[v]);
      }
      out += "]";
    }
    out += i + 1 < records.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// LineageObserver
// ---------------------------------------------------------------------------

void LineageObserver::AttachGraph(const RuleGoalGraph* graph,
                                  const SymbolTable* symbols) {
  graph_ = graph;
  symbols_ = symbols;
}

void LineageObserver::AttachEdbRelation(const std::string& name,
                                        const Relation* relation) {
  MPQE_CHECK(relation != nullptr);
  MPQE_CHECK(relation->lineage_enabled())
      << "EnableLineage(" << name << ") before AttachEdbRelation";
  std::lock_guard<std::mutex> lock(mutex_);
  EdbRange range;
  range.name = name;
  range.relation = relation;
  range.first = relation->empty() ? 0 : relation->row_id(0);
  edb_.push_back(std::move(range));
}

void LineageObserver::OnDerive(const DeriveEvent& event) {
  LineageRecord record;
  record.id = event.tuple_id;
  record.kind = event.kind;
  record.node = event.node;
  record.rule_index = event.rule_index;
  record.source_msg = event.source_msg;
  record.values = event.values.ToTuple();
  record.inputs.assign(event.inputs, event.inputs + event.num_inputs);
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

void LineageObserver::OnDeriveBatch(const DeriveBatchEvent& event) {
  const TupleSegment& segment = *event.segment;
  BatchEntry entry;
  entry.node = event.node;
  entry.kind = event.kind;
  entry.segment = event.segment;
  entry.input_deltas.reserve(segment.num_rows);
  for (size_t i = 0; i < segment.num_rows; ++i) {
    entry.input_deltas.push_back(segment.lineage[i] - event.inputs[i]);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  batch_rows_ += segment.num_rows;
  batches_.push_back(std::move(entry));
}

size_t LineageObserver::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size() + batch_rows_;
}

void LineageObserver::OnSessionStart(const SessionStartEvent& event) {
  query_id_ = event.query_id;
}

LineageReport LineageObserver::Finalize() const {
  LineageReport report;
  report.query_id = query_id_;
  std::vector<EdbRange> edb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    report.records = records_;
    report.records.reserve(records_.size() + batch_rows_);
    // Expand the batched segments: row i of a batch is a single-input
    // derivation (id = lineage column, input = id - delta), exactly
    // what the per-tuple path would have recorded.
    for (const BatchEntry& b : batches_) {
      const TupleSegment& segment = *b.segment;
      for (size_t i = 0; i < segment.num_rows; ++i) {
        LineageRecord r;
        r.id = segment.lineage[i];
        r.kind = b.kind;
        r.node = b.node;
        uint64_t input = r.id - b.input_deltas[i];
        r.source_msg = input;
        r.values = segment.row(i).ToTuple();
        r.inputs.push_back(input);
        report.records.push_back(std::move(r));
      }
    }
    edb = edb_;
  }

  // Resolve every referenced-but-underived id into an EDB leaf record
  // (only referenced base facts enter the report, not whole relations).
  std::unordered_set<uint64_t> derived_ids;
  derived_ids.reserve(report.records.size());
  for (const LineageRecord& r : report.records) derived_ids.insert(r.id);
  std::unordered_set<uint64_t> leaves;
  for (const LineageRecord& r : report.records) {
    for (uint64_t input : r.inputs) {
      if (derived_ids.count(input) == 0) leaves.insert(input);
    }
    if (r.source_msg != kNoTupleId && derived_ids.count(r.source_msg) == 0) {
      leaves.insert(r.source_msg);
    }
  }
  for (uint64_t id : leaves) {
    LineageRecord leaf;
    leaf.id = id;
    leaf.kind = DeriveKind::kEdbFact;
    for (const EdbRange& range : edb) {
      if (id < range.first) continue;
      size_t row = static_cast<size_t>(id - range.first);
      if (row >= range.relation->size() || range.relation->row_id(row) != id) {
        continue;
      }
      leaf.predicate = range.name;
      leaf.values = range.relation->tuple(row).ToTuple();
      for (const Value& v : leaf.values) leaf.atom_args.emplace_back(v);
      leaf.display = AtomDisplay(range.name, leaf.atom_args, symbols_);
      break;
    }
    if (leaf.display.empty()) leaf.display = StrCat("fact#", id);
    report.records.push_back(std::move(leaf));
  }

  std::sort(report.records.begin(), report.records.end(),
            [](const LineageRecord& a, const LineageRecord& b) {
              return a.id < b.id;
            });

  // Minimal proof depths in one forward pass: records are sorted by id
  // and a well-formed record's inputs all carry smaller ids, so every
  // input's depth is final when its consumer is visited. Unresolvable
  // or out-of-order inputs (malformed data) are skipped defensively.
  for (LineageRecord& r : report.records) {
    if (r.kind == DeriveKind::kEdbFact) {
      r.depth = 0;
      ++report.edb_facts;
      continue;
    }
    ++report.derived;
    int64_t depth = 0;
    for (uint64_t input : r.inputs) {
      if (input >= r.id) continue;
      const LineageRecord* in = report.Find(input);
      if (in != nullptr) depth = std::max(depth, in->depth + 1);
    }
    r.depth = depth;
    report.max_depth = std::max(report.max_depth, depth);
  }

  // Bake displays from the graph's node templates so the report stays
  // meaningful after the graph is gone.
  if (graph_ != nullptr) {
    report.root_node = graph_->root();
    const PredicatePool& predicates = graph_->program().predicates();
    for (LineageRecord& r : report.records) {
      if (r.kind == DeriveKind::kEdbFact || r.node < 0 ||
          static_cast<size_t>(r.node) >= graph_->size()) {
        continue;
      }
      const GraphNode& n = graph_->node(r.node);
      if (r.kind == DeriveKind::kRuleFire) {
        r.predicate = predicates.Name(n.rule.head.predicate);
        r.display = graph_->NodeLabel(r.node, symbols_);
        continue;
      }
      // Goal union: rebuild the full atom image from the node's atom
      // template — constants at c positions, the stored values at the
      // other non-existential positions, nullopt at e positions.
      r.predicate = predicates.Name(n.atom.predicate);
      std::vector<size_t> out_positions = n.OutputPositions();
      r.atom_args.assign(n.atom.args.size(), std::nullopt);
      for (size_t i = 0;
           i < out_positions.size() && i < r.values.size(); ++i) {
        r.atom_args[out_positions[i]] = r.values[i];
      }
      r.display = AtomDisplay(r.predicate, r.atom_args, symbols_);
    }
  }
  for (LineageRecord& r : report.records) {
    if (r.display.empty()) {
      r.display = StrCat("node", r.node, TupleToString(r.values, symbols_));
    }
  }
  return report;
}

}  // namespace mpqe
