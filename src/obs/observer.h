// The execution observability layer (src/obs/): structured,
// composable observers receive typed events from every layer of an
// evaluation — message sends and deliveries (msg/network), node
// firings (engine/node_processes), evaluator phases
// (engine/evaluator), and the Fig. 2 termination protocol
// (engine/termination) — and can be stacked: tracing, metrics and
// test assertions all run side by side on one evaluation.
//
// Threading contract (see DESIGN.md § Observability):
//  * OnSend fires in the *sending* process's execution context, after
//    the message is stamped and before it is enqueued. Under the
//    threaded scheduler, sends from different processes may invoke an
//    observer concurrently; observers must synchronize themselves.
//  * OnDeliver and OnNodeFire for one process are serialized (the
//    network is an actor system: at most one message of a process is
//    in flight), but callbacks for *different* processes may run
//    concurrently. OnDeliver fires after the process finished handling
//    the message and carries the measured handling duration.
//  * The send of a message happens-before its delivery callback: for
//    every (from, to) channel the i-th OnSend precedes the i-th
//    OnDeliver (per-channel FIFO).
//  * OnPhase and OnTermination events for a single evaluation are
//    serialized with the callbacks of the process that produced them.
//  * All callbacks must return; they run on the engine's hot path.
//    With no observers installed the engine skips event construction
//    entirely (one empty() branch per site).

#ifndef MPQE_OBS_OBSERVER_H_
#define MPQE_OBS_OBSERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "msg/message.h"

namespace mpqe {

// Coarse evaluation phases, reported by the evaluator in order.
enum class Phase : uint8_t {
  kAdornment = 0,      // sips strategy construction + program validation
  kGraphBuild = 1,     // rule/goal graph construction
  kNetworkWiring = 2,  // process creation + termination configuration
  kRun = 3,            // scheduler loop (bulk of the evaluation)
  kDrain = 4,          // result collection after the run
  kPhaseCount = 5,
};

const char* PhaseToString(Phase phase);

// The role a graph-node process plays (mirror of graph NodeKind, kept
// here so obs/ does not depend on graph/).
enum class NodeRole : uint8_t {
  kGoal = 0,
  kRule = 1,
  kEdbLeaf = 2,
  kCycleRef = 3,
};

const char* NodeRoleToString(NodeRole role);

// One message send (msg/network.cc, before enqueue).
struct SendEvent {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  // Valid only for the duration of the callback.
  const Message* message = nullptr;
};

// One message delivery, reported after the receiving process handled
// it (msg/network.cc).
struct DeliverEvent {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  MessageKind kind = MessageKind::kRelationRequest;
  // Answer tuples that traveled inside this message's columnar
  // segment(s): the segment's row count for kTupleSegment, the sum
  // over packaged segments for kBatch, 0 otherwise.
  uint64_t payload_rows = 0;
  // Columnar segments inside this message: 1 for kTupleSegment, the
  // packaged-segment count for kBatch, 0 otherwise.
  uint64_t payload_segments = 0;
  // Wall time the receiver spent inside OnMessage.
  uint64_t handle_ns = 0;
};

// One node-process firing: a graph node handled one message
// (engine/node_processes.cc). `tuples_in`/`tuples_out` count answer
// tuples consumed/emitted during this firing — bare kTuple payloads
// and rows inside columnar segments both count; `dedup_hits` is how
// many arrivals/results duplicate elimination rejected.
struct NodeFireEvent {
  int32_t node = -1;  // graph NodeId
  ProcessId pid = kNoProcess;
  NodeRole role = NodeRole::kGoal;
  MessageKind trigger = MessageKind::kRelationRequest;
  uint32_t tuples_in = 0;
  uint32_t tuples_out = 0;
  uint64_t dedup_hits = 0;
  // Wall time the node spent handling this message (dispatch + emit
  // flush), measured only while observers are installed.
  uint64_t handle_ns = 0;
};

// How a tuple came to exist at a node. Only a tuple's *first*
// derivation is reported — duplicate re-derivations are dropped by the
// node relations exactly as before, which is also why cyclic programs
// still terminate. See obs/lineage.h for the DAG assembled from these.
enum class DeriveKind : uint8_t {
  kEdbFact = 0,   // a base fact (ids pre-assigned at wiring; no event)
  kRuleFire = 1,  // a rule head instance joined from the input tuples
  kUnion = 2,     // a goal node absorbed a child's tuple into its union
};

const char* DeriveKindToString(DeriveKind kind);

// One first-derivation of a tuple (engine/node_processes.cc, fired
// only when lineage tracking is enabled). Serialized per deriving
// process like OnNodeFire; derivations at different processes may
// report concurrently. `inputs` and `values` point into the deriving
// process's storage and are valid only for the duration of the
// callback.
struct DeriveEvent {
  uint64_t tuple_id = kNoLineage;  // the derived tuple's lineage id
  int32_t node = -1;               // graph NodeId of the deriving node
  NodeRole role = NodeRole::kGoal;
  DeriveKind kind = DeriveKind::kRuleFire;
  int32_t rule_index = -1;         // program rule index (kRuleFire only)
  uint64_t source_msg = kNoLineage;  // lineage id of the trigger message
  const uint64_t* inputs = nullptr;  // ordered input ids (sips order)
  size_t num_inputs = 0;
  TupleRef values;                 // the derived tuple's values
};

// A run of first-derivations published as one event: the deriving node
// absorbed a whole columnar segment in one firing
// (engine/node_processes.cc, segmented path, lineage tracking only).
// Row i of `segment` was derived with id `segment->lineage[i]` from
// the single input `inputs[i]` (segment-batched derivations are
// single-input unions; rule firings keep per-tuple DeriveEvents
// because their input lists vary in length). The segment handle may be
// retained — it is the same shared object the consumers receive — but
// `inputs` is valid only for the duration of the callback. Serialized
// per deriving process like OnDerive.
struct DeriveBatchEvent {
  int32_t node = -1;  // graph NodeId of the deriving node
  NodeRole role = NodeRole::kGoal;
  DeriveKind kind = DeriveKind::kUnion;
  std::shared_ptr<const TupleSegment> segment;
  const uint64_t* inputs = nullptr;  // one id per segment row
};

// Session identification, published once at the top of RunSession
// before any other event (engine/evaluator.cc). `query_id` is the
// engine-minted stable id correlating this execution across every
// artifact — trace spans, log lines, lineage dumps, profiler reports,
// the engine query log and the /queries endpoint (DESIGN.md §12).
// 0 means "no engine involved" (the one-shot Evaluate path), in which
// case no event is published and all outputs stay id-free.
struct SessionStartEvent {
  uint64_t query_id = 0;
};

// A phase boundary (engine/evaluator.cc). Phases nest at most one
// level deep and begin/end events alternate per phase.
struct PhaseEvent {
  Phase phase = Phase::kRun;
  bool begin = true;
};

// One Fig. 2 end-message-protocol event (engine/termination.cc).
struct TerminationEvent {
  enum class Kind : uint8_t {
    kWaveStarted = 0,      // leader initiated an end-request wave
    kAnswerNegative = 1,   // member answered `end negative`
    kAnswerConfirmed = 2,  // member answered `end confirmed`
    kConcluded = 3,        // protocol succeeded at this node
    kWorkNotice = 4,       // member pinged the leader (footnote 4)
    kKindCount = 5,
  };

  Kind kind = Kind::kWaveStarted;
  ProcessId node = kNoProcess;
  int64_t wave = 0;
  int64_t idleness = 0;
  bool open_work = false;

  static const char* KindToString(Kind kind);
};

// The observer interface. All callbacks default to no-ops so
// implementations override only what they consume.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  virtual void OnSessionStart(const SessionStartEvent& event) { (void)event; }
  virtual void OnSend(const SendEvent& event) { (void)event; }
  virtual void OnDeliver(const DeliverEvent& event) { (void)event; }
  virtual void OnNodeFire(const NodeFireEvent& event) { (void)event; }
  virtual void OnDerive(const DeriveEvent& event) { (void)event; }
  virtual void OnDeriveBatch(const DeriveBatchEvent& event) { (void)event; }
  virtual void OnPhase(const PhaseEvent& event) { (void)event; }
  virtual void OnTermination(const TerminationEvent& event) { (void)event; }
};

// A non-owning, ordered collection of observers. Composition is
// sequential: every event is delivered to each observer in
// registration order. Mutation (Add) is only legal before the
// evaluation starts; notification is lock-free and the empty() check
// is the entire zero-observer fast path.
class ObserverList {
 public:
  ObserverList() = default;

  void Add(ExecutionObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  bool empty() const { return observers_.empty(); }
  size_t size() const { return observers_.size(); }
  const std::vector<ExecutionObserver*>& items() const { return observers_; }

  void NotifySessionStart(const SessionStartEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnSessionStart(event);
  }
  void NotifySend(const SendEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnSend(event);
  }
  void NotifyDeliver(const DeliverEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnDeliver(event);
  }
  void NotifyNodeFire(const NodeFireEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnNodeFire(event);
  }
  void NotifyDerive(const DeriveEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnDerive(event);
  }
  void NotifyDeriveBatch(const DeriveBatchEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnDeriveBatch(event);
  }
  void NotifyPhase(const PhaseEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnPhase(event);
  }
  void NotifyTermination(const TerminationEvent& event) const {
    for (ExecutionObserver* o : observers_) o->OnTermination(event);
  }

 private:
  std::vector<ExecutionObserver*> observers_;
};

}  // namespace mpqe

#endif  // MPQE_OBS_OBSERVER_H_
