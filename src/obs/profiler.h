// The per-node query profiler: a ProfilingObserver that attributes an
// evaluation's runtime to rule/goal-graph structure, and the
// JSON-serializable ProfileReport it produces. This is the layer that
// closes the loop between the §4.3 cost model's order-of-magnitude
// estimates and what the engine actually did — per node it records
// tuples consumed/produced, duplicate-elimination hit rate, join
// selectivity (input vs. output cardinality), messages in/out (and
// batch envelope counts), wall time spent firing, and queue-wait time
// (send-to-delivery latency, recovered from the per-channel FIFO
// pairing of OnSend and OnDeliver); per strong component it records
// Fig. 2 protocol rounds and the termination tree's depth.
//
// Usage: set EvaluationOptions::profile and read
// EvaluationResult::profile, or attach a ProfilingObserver manually:
//   ProfilingObserver profiler;
//   profiler.AttachGraph(graph.get(), &db.symbols());
//   options.observers.push_back(&profiler);
//   ... evaluate ...
//   ProfileReport report = profiler.Finalize();
//   std::cout << report.ToJson();
//
// Overhead: profiling is opt-in; every callback takes one internal
// mutex (the zero-observer fast path is untouched, and with the
// profiler off no event is even constructed). See BENCH_obs.json for
// the tracked profiler-on vs. profiler-off message-hop numbers.

#ifndef MPQE_OBS_PROFILER_H_
#define MPQE_OBS_PROFILER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "graph/rule_goal_graph.h"
#include "obs/observer.h"
#include "sips/cost_model.h"

namespace mpqe {

// Sentinel for "no cost-model estimate" (non-rule nodes, or profiles
// collected without a database to size the estimates against).
inline constexpr double kNoEstimate = -1.0;

// Per-node attribution row. Counters cover the whole evaluation; the
// estimate fields are filled by the evaluator (or ExplainPlan) from
// the §4.3 cost model for rule nodes.
struct NodeProfile {
  int32_t node = -1;
  NodeRole role = NodeRole::kGoal;
  std::string label;  // RuleGoalGraph::NodeLabel when a graph is attached
  int scc_id = -1;

  uint64_t fires = 0;         // messages handled (all kinds)
  uint64_t requests_in = 0;   // kTupleRequest deliveries
  uint64_t tuples_in = 0;     // kTuple payloads consumed
  uint64_t tuples_out = 0;    // kTuple payloads emitted
  uint64_t dedup_hits = 0;    // arrivals/results rejected by dedup
  uint64_t msgs_in = 0;       // physical deliveries
  uint64_t msgs_out = 0;      // physical sends
  uint64_t batch_envelopes_in = 0;
  uint64_t batch_envelopes_out = 0;
  // Columnar segments (bare kTupleSegment messages plus segments
  // packaged inside batch envelopes) and the rows they carried.
  uint64_t segments_in = 0;
  uint64_t segments_out = 0;
  uint64_t segment_rows_in = 0;
  uint64_t segment_rows_out = 0;
  // Rows that arrived in batched envelopes (kTupleSegment or kBatch
  // fires) and the dedup hits those firings produced — the traffic the
  // vectorized batch kernels absorb, vs. per-tuple arrivals.
  uint64_t batch_rows_in = 0;
  uint64_t batch_dedup_hits = 0;
  uint64_t fire_ns = 0;        // wall time inside message handling
  uint64_t queue_wait_ns = 0;  // send-to-delivery-start latency

  /// Mean rows per emitted segment (0 when none were emitted).
  double RowsPerSegmentOut() const;

  /// Mean rows per arriving segment (0 when none arrived).
  double RowsPerSegmentIn() const;

  /// Fraction of batch-delivered rows rejected by dedup:
  /// batch_dedup_hits / batch_rows_in; 0 when no batches arrived.
  double BatchDedupHitRate() const;

  // §4.3 estimates (rule nodes; kNoEstimate elsewhere). The estimate
  // is per tuple request, so the comparable figure is
  // 10^est_log10_tuples * max(requests_in, 1) vs. tuples_out.
  double est_log10_tuples = kNoEstimate;
  double est_total_cost = kNoEstimate;

  /// Fraction of arriving/produced tuples rejected by duplicate
  /// elimination: dedup_hits / (tuples_in + dedup_hits); 0 when idle.
  double DupHitRate() const;

  /// Join/semijoin selectivity: output vs. input cardinality
  /// (tuples_out / tuples_in); 0 when no input arrived.
  double Selectivity() const;

  /// Ratio by which the actual output cardinality deviates from the
  /// cost-model estimate (always >= 1; symmetric in direction).
  /// Returns 0 when no estimate is available.
  double DeviationFactor() const;
};

// Per-strong-component protocol attribution (nontrivial SCCs only).
struct SccProfile {
  int scc_id = -1;
  std::vector<int32_t> members;
  int32_t leader = -1;
  int tree_depth = 0;        // depth of the BFST the protocol runs over
  uint64_t waves = 0;        // Fig. 2 end-request waves (protocol rounds)
  uint64_t negative_answers = 0;
  uint64_t confirmed_answers = 0;
  uint64_t work_notices = 0;
  uint64_t concluded = 0;
};

struct ProfileReport {
  std::vector<NodeProfile> nodes;
  std::vector<SccProfile> sccs;
  // The engine-minted query id of the profiled session (0 = one-shot
  // Evaluate path; then omitted from ToJson).
  uint64_t query_id = 0;
  // Wall time per evaluator phase, in Phase order (0 if unobserved).
  std::vector<uint64_t> phase_ns;

  // Whole-evaluation sums (include the sink's message traffic, which
  // has no NodeProfile row).
  uint64_t total_fires = 0;
  uint64_t total_tuples_in = 0;
  uint64_t total_tuples_out = 0;
  uint64_t total_dedup_hits = 0;
  uint64_t total_msgs_sent = 0;
  uint64_t total_msgs_delivered = 0;
  uint64_t total_fire_ns = 0;
  uint64_t total_queue_wait_ns = 0;

  /// Flags rule nodes whose actual output cardinality deviates from
  /// the cost-model estimate by more than `deviation_factor` in
  /// either direction.
  std::vector<int32_t> DeviatingNodes(double deviation_factor) const;

  /// Machine-readable report ("mpqe-profile-v1"; validated by
  /// scripts/check_trace.py --profile).
  std::string ToJson() const;
};

// The observer. All callbacks lock one mutex — correct under every
// scheduler; profiling is opt-in, so the serialization cost is paid
// only when asked for (tracked in BENCH_obs.json).
class ProfilingObserver : public ExecutionObserver {
 public:
  ProfilingObserver() = default;

  /// Resolves node labels, roles, and SCC structure at Finalize time.
  /// Without a graph the report still carries per-pid counters (rows
  /// are labeled "pid<N>") — useful for raw Network benchmarks.
  void AttachGraph(const RuleGoalGraph* graph, const SymbolTable* symbols);

  // ExecutionObserver:
  void OnSessionStart(const SessionStartEvent& event) override;
  void OnSend(const SendEvent& event) override;
  void OnDeliver(const DeliverEvent& event) override;
  void OnNodeFire(const NodeFireEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnTermination(const TerminationEvent& event) override;

  /// Builds the report from everything observed so far. Estimate
  /// fields are left at kNoEstimate — callers with a database fill
  /// them via FillCostEstimates (the evaluator does both).
  ProfileReport Finalize() const;

 private:
  // Raw per-pid accumulation (graph nodes and the sink alike).
  struct PidStats {
    uint64_t fires = 0;
    uint64_t requests_in = 0;
    uint64_t tuples_in = 0;
    uint64_t tuples_out = 0;
    uint64_t dedup_hits = 0;
    uint64_t msgs_in = 0;
    uint64_t msgs_out = 0;
    uint64_t batch_envelopes_in = 0;
    uint64_t batch_envelopes_out = 0;
    uint64_t segments_in = 0;
    uint64_t segments_out = 0;
    uint64_t segment_rows_in = 0;
    uint64_t segment_rows_out = 0;
    uint64_t batch_rows_in = 0;
    uint64_t batch_dedup_hits = 0;
    uint64_t fire_ns = 0;
    uint64_t queue_wait_ns = 0;
    NodeRole role = NodeRole::kGoal;
    int32_t node = -1;
    bool fired = false;  // saw a NodeFireEvent (i.e. is a graph node)
  };

  struct SccStats {
    uint64_t waves = 0;
    uint64_t negative_answers = 0;
    uint64_t confirmed_answers = 0;
    uint64_t work_notices = 0;
    uint64_t concluded = 0;
  };

  PidStats& Stats(ProcessId pid);  // requires mutex_ held; grows store

  uint64_t query_id_ = 0;  // set before any other event
  mutable std::mutex mutex_;
  std::vector<PidStats> by_pid_;
  // Send timestamps per (from, to) channel; channels are FIFO, so the
  // front entry pairs with the next delivery on that channel.
  std::map<std::pair<ProcessId, ProcessId>, std::deque<uint64_t>>
      in_flight_sends_;
  // Termination-protocol events by participant pid; Finalize groups
  // them into SCCs via the attached graph.
  std::map<ProcessId, SccStats> term_by_pid_;
  std::vector<uint64_t> phase_ns_;
  std::vector<uint64_t> phase_begin_ns_;
  uint64_t total_sends_ = 0;
  uint64_t total_delivers_ = 0;

  const RuleGoalGraph* graph_ = nullptr;
  const SymbolTable* symbols_ = nullptr;
};

/// Fills the §4.3 estimate fields of `report` for every rule node of
/// `graph`, using `params` (typically CostModelParamsFromDatabase so
/// estimates reflect the actual EDB cardinalities). Goal nodes get the
/// log-sum of their rule children's estimates.
void FillCostEstimates(const RuleGoalGraph& graph,
                       const CostModelParams& params, ProfileReport& report);

}  // namespace mpqe

#endif  // MPQE_OBS_PROFILER_H_
