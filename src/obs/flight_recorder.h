// The flight recorder (DESIGN.md §14): the engine's black box. A set
// of fixed-size lock-free ring buffers holds compact binary records of
// the most recent engine events — sends, deliveries, node fires,
// Fig. 2 protocol transitions, phases, scheduler/session lifecycle —
// cheap enough to leave on in production (the CI guard holds the
// segment-hop overhead at <= 5% vs. recording off), unlike the full
// Chrome trace exporter which retains every event of a run.
//
// Writers never block and never allocate: a thread claims a slot with
// one fetch_add on its ring's cursor and publishes the record under a
// per-slot seqlock (all record words are relaxed atomics, so
// concurrent snapshot reads are race-free and TSan-clean; a torn slot
// is detected by its sequence and dropped). Rings are selected by a
// cheap per-thread index, so unrelated threads rarely share a cursor
// cache line. Old records are overwritten — the recorder answers
// "what was the engine doing just now", not "what has it ever done".
//
// Readers (the stall watchdog, GET /debug/flight, `mpqe_query
// --flight-dump`) call Snapshot() at any time, from any thread, and
// get a time-ordered copy of whatever is currently retained.
//
// The diagnostic bundle a watchdog (engine/evaluator.cc) or operator
// snapshot produces is the FlightDump below, serialized as
// `mpqe-flightdump-v1` JSON: the merged recorder contents plus per-SCC
// termination-protocol state, per-node queue/fire accounting, and the
// query-log entry when one exists. scripts/check_trace.py --flight
// validates the schema.

#ifndef MPQE_OBS_FLIGHT_RECORDER_H_
#define MPQE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/observer.h"

namespace mpqe {

// What one FlightRecord describes. Serialized names (ToJson /
// FlightEventTypeToString) are part of the mpqe-flightdump-v1 schema.
enum class FlightEventType : uint8_t {
  kSessionStart = 0,  // query_id minted; a = scheduler kind, b = workers
  kSessionEnd = 1,    // a = ok(1)/error(0), rows = answers
  kSend = 2,          // kind = MessageKind, a = from, b = to, rows
  kDeliver = 3,       // kind = MessageKind, a = from, b = to, rows, aux = ns
  kNodeFire = 4,      // kind = trigger, a = node, b = tuples_in,
                      // rows = tuples_out, aux = handle ns
  kPhase = 5,         // kind = Phase, a = begin(1)/end(0)
  kTermination = 6,   // kind = TerminationEvent::Kind, a = node, b = wave,
                      // rows = idleness, aux = open_work
  kStall = 7,         // a = in-flight messages, aux = stalled ms
  kWatchdogDump = 8,  // a = stuck scc id
  kPlanPrepare = 9,   // a = cache hit(1)/miss(0)
  kEventTypeCount = 10,
};

const char* FlightEventTypeToString(FlightEventType type);

// One compact binary event record. Fixed-size and trivially copyable —
// recording is a handful of relaxed stores, no allocation, no
// formatting. Field meaning depends on `type` (see FlightEventType);
// unused fields are zero.
struct FlightRecord {
  uint64_t ts_ns = 0;     // steady-clock time (stamped by Record)
  uint64_t query_id = 0;  // engine-minted id; 0 = engine-level event
  int32_t a = -1;
  int32_t b = -1;
  uint32_t rows = 0;
  uint32_t aux = 0;
  uint8_t type = 0;  // FlightEventType
  uint8_t kind = 0;  // MessageKind / Phase / TerminationEvent::Kind
  uint16_t unused = 0;
  uint32_t unused2 = 0;
};
static_assert(sizeof(FlightRecord) == 40, "keep flight records compact");

struct FlightRecorderOptions {
  // Per-ring record capacity; rounded up to a power of two. Retention
  // is ring_count * ring_capacity records total.
  size_t ring_capacity = 4096;
  // Number of rings. Threads spread across rings by a per-thread
  // index, so with ring_count >= the number of concurrently recording
  // threads each cursor cache line has a single writer.
  size_t ring_count = 16;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends `record` (stamping ts_ns) to the calling thread's ring.
  /// Lock-free, allocation-free, safe from any thread at any time.
  void Record(FlightRecord record);

  /// Convenience: record with the common fields filled in.
  void RecordEvent(FlightEventType type, uint64_t query_id, int32_t a = -1,
                   int32_t b = -1, uint32_t rows = 0, uint32_t aux = 0,
                   uint8_t kind = 0);

  /// A time-ordered copy of every retained record. Torn slots (being
  /// overwritten during the copy) are dropped, not misread.
  std::vector<FlightRecord> Snapshot() const;

  /// Total records ever written (monotonic; wraps never).
  uint64_t recorded() const;

  const FlightRecorderOptions& options() const { return options_; }

 private:
  // One slot = a sequence word plus the record payload, all relaxed
  // atomics. seq == 2*(claim+1) marks a fully published record from
  // claim index `claim`; odd values mark a write in progress.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[5];
  };

  struct alignas(64) Ring {
    std::atomic<uint64_t> next{0};  // claim cursor (monotonic)
    std::unique_ptr<Slot[]> slots;
  };

  Ring& ThisThreadRing();

  FlightRecorderOptions options_;
  size_t slot_mask_ = 0;  // ring_capacity - 1 (capacity is pow2)
  std::vector<Ring> rings_;
};

// The per-session event tap: an ExecutionObserver that forwards the
// session's events into the engine's FlightRecorder as FlightRecords
// stamped with the session's query id. Attached by RunSession whenever
// SessionOptions::flight is set (i.e. for every engine session when
// EngineOptions::flight_recorder is on). All callbacks are a clock
// read plus a handful of relaxed stores.
class FlightSessionObserver : public ExecutionObserver {
 public:
  FlightSessionObserver(FlightRecorder* recorder, uint64_t query_id)
      : recorder_(recorder), query_id_(query_id) {}

  // (No OnSessionStart override: the engine writes the kSessionStart
  // record itself, with scheduler and worker settings the observer
  // cannot see.)
  void OnSend(const SendEvent& event) override;
  void OnDeliver(const DeliverEvent& event) override;
  void OnNodeFire(const NodeFireEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnTermination(const TerminationEvent& event) override;

 private:
  FlightRecorder* recorder_;
  uint64_t query_id_;
};

// ---------------------------------------------------------------------------
// The diagnostic bundle (mpqe-flightdump-v1).

// Fig. 2 protocol state of one strong component at snapshot time, as
// exported by the leader's TerminationParticipant (plain data here so
// obs/ stays independent of engine/).
struct FlightDumpScc {
  int64_t scc = -1;
  int32_t leader = -1;       // graph node id of the BFST leader
  uint64_t queue_depth = 0;  // undelivered messages across members
  size_t members = 0;
  bool nontrivial = false;
  // Leader protocol state (meaningful iff nontrivial).
  bool wave_active = false;
  int64_t wave = 0;
  int64_t waves_started = 0;
  int32_t waiting_for = 0;  // children yet to answer the open wave
  bool all_confirmed = false;
  int64_t idleness = 0;
  bool open_work = false;
  bool notice_pending = false;
};

// Per-node accounting at snapshot time: live queue depth plus fire /
// send / delivery counts and last-activity timestamps derived from the
// retained flight records of the dumped session.
struct FlightDumpNode {
  int32_t node = -1;
  std::string label;
  int64_t scc = -1;
  uint64_t queue_depth = 0;
  uint64_t fires = 0;
  uint64_t last_fire_ts_ns = 0;  // 0 = no retained fire record
  uint64_t sends = 0;
  uint64_t deliveries = 0;
  uint64_t last_delivery_ts_ns = 0;
};

struct FlightDump {
  // "stall" (watchdog-triggered) or "manual" (--flight-dump /
  // GET /debug/flight with no stall on record).
  std::string reason = "manual";
  uint64_t query_id = 0;
  int64_t stalled_ms = 0;
  uint64_t delivered = 0;
  uint64_t in_flight = 0;
  // The wedged strong component: the one holding the deepest queues
  // (protocol state as tiebreaker); -1 when nothing is stuck.
  int64_t stuck_scc = -1;
  std::vector<FlightDumpScc> sccs;
  std::vector<FlightDumpNode> nodes;
  std::vector<FlightRecord> events;  // time-ordered
  // The query log entry for query_id as JSON, or "" when none exists
  // yet (a stalled session has not completed).
  std::string query_log_entry_json;

  /// Serializes the bundle as mpqe-flightdump-v1 JSON.
  std::string ToJson() const;
};

}  // namespace mpqe

#endif  // MPQE_OBS_FLIGHT_RECORDER_H_
