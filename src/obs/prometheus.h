// Prometheus text exposition (format version 0.0.4) over a
// MetricsRegistry — what `GET /metrics` on the engine's StatsServer
// serves and what scripts/check_trace.py --prometheus validates.
//
// Naming scheme (DESIGN.md §12): registry paths are '/'-separated with
// the lowest-cardinality prefix first; the serializer folds the
// high-cardinality middle segment into a label so one *family* covers
// all of its series:
//
//   plan_cache/hit               -> mpqe_plan_cache_hit
//   engine/session_latency_ns    -> mpqe_engine_session_latency_ns
//   node/7/fires                 -> mpqe_node_fires{node="7"}
//   predicate/path/stored_tuples -> mpqe_predicate_stored_tuples{predicate="path"}
//   scc/3/queue_depth            -> mpqe_scc_queue_depth{scc="3"}
//   phase/run/ns                 -> mpqe_phase_ns{phase="run"}
//   arc/1->2/sends               -> mpqe_arc_sends{arc="1->2"}
//   msg/sent/tuple               -> mpqe_msg_sent{kind="tuple"}
//   termination/wave_started     -> mpqe_termination_events{event="wave_started"}
//   aggregated/node/7/fires      -> mpqe_profile_node_fires{node="7"}
//
// Counters serialize as `counter`, gauges as `gauge`, histograms as
// native Prometheus `histogram` families with the log2 bucket
// boundaries as cumulative `le` bounds (le="2^b - 1" for bucket b,
// trailing empty buckets folded into +Inf) plus `_sum` and `_count`.
// Families are emitted once, sorted by family name, each preceded by
// its # HELP / # TYPE header — so two scrapes of the same state are
// byte-identical regardless of metric registration order.

#ifndef MPQE_OBS_PROMETHEUS_H_
#define MPQE_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace mpqe {

struct PrometheusOptions {
  // Prepended to every family name (the `mpqe` of mpqe_node_fires).
  std::string prefix = "mpqe";
};

/// Serializes `registry` in Prometheus text exposition format 0.0.4.
/// Deterministic: families and series come out sorted by name.
std::string ToPrometheusText(const MetricsRegistry& registry,
                             const PrometheusOptions& options = {});

/// The content type a conforming HTTP endpoint must serve.
inline const char* PrometheusContentType() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace mpqe

#endif  // MPQE_OBS_PROMETHEUS_H_
