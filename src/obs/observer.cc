#include "obs/observer.h"

namespace mpqe {

const char* PhaseToString(Phase phase) {
  switch (phase) {
    case Phase::kAdornment:
      return "adornment";
    case Phase::kGraphBuild:
      return "graph_build";
    case Phase::kNetworkWiring:
      return "network_wiring";
    case Phase::kRun:
      return "run";
    case Phase::kDrain:
      return "drain";
    case Phase::kPhaseCount:
      break;
  }
  return "?";
}

const char* NodeRoleToString(NodeRole role) {
  switch (role) {
    case NodeRole::kGoal:
      return "goal";
    case NodeRole::kRule:
      return "rule";
    case NodeRole::kEdbLeaf:
      return "edb";
    case NodeRole::kCycleRef:
      return "cycle_ref";
  }
  return "?";
}

const char* DeriveKindToString(DeriveKind kind) {
  switch (kind) {
    case DeriveKind::kEdbFact:
      return "edb";
    case DeriveKind::kRuleFire:
      return "rule";
    case DeriveKind::kUnion:
      return "union";
  }
  return "?";
}

const char* TerminationEvent::KindToString(Kind kind) {
  switch (kind) {
    case Kind::kWaveStarted:
      return "wave_started";
    case Kind::kAnswerNegative:
      return "answer_negative";
    case Kind::kAnswerConfirmed:
      return "answer_confirmed";
    case Kind::kConcluded:
      return "concluded";
    case Kind::kWorkNotice:
      return "work_notice";
    case Kind::kKindCount:
      break;
  }
  return "?";
}

}  // namespace mpqe
