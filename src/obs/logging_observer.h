// Wires common/logging into the engine: a LoggingObserver turns
// evaluation phases and Fig. 2 termination-protocol waves into
// leveled, thread-tagged log lines. Off by default — the evaluator
// attaches one only when EvaluationOptions::log_level (or the
// MPQE_LOG_LEVEL environment variable) asks for it, so the
// deterministic scheduler tests see no extra output or state.
//
//   $ MPQE_LOG_LEVEL=debug ./mpqe_query examples/transitive_closure.dl
//   [INFO t0 engine] phase run begin
//   [DEBUG t2 engine] wave 1: node 3 answered end_negative (open_work=0)
//   [INFO t1 engine] wave 2 concluded at node 1

#ifndef MPQE_OBS_LOGGING_OBSERVER_H_
#define MPQE_OBS_LOGGING_OBSERVER_H_

#include <mutex>
#include <optional>
#include <ostream>
#include <string>

#include "common/logging.h"
#include "common/status.h"
#include "obs/observer.h"

namespace mpqe {

// Emits engine events at `level` and above to one stream. kInfo keeps
// to the coarse story (phase boundaries, wave starts/conclusions);
// kDebug adds every protocol answer and work notice. Lines are written
// whole under an internal mutex, so threaded runs interleave complete
// lines only.
class LoggingObserver : public ExecutionObserver {
 public:
  /// Logs to `out`, or std::cerr when null.
  explicit LoggingObserver(LogLevel level, std::ostream* out = nullptr);

  void OnSessionStart(const SessionStartEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnTermination(const TerminationEvent& event) override;

 private:
  void Line(LogLevel level, const std::string& text);

  LogLevel level_;
  std::ostream* out_;
  // Engine query id prefixed to every line ("q17 ...") once a
  // SessionStartEvent arrives — 0 (one-shot Evaluate) keeps lines
  // exactly as before. Set before any other event is published.
  uint64_t query_id_ = 0;
  std::mutex mutex_;
};

/// Parses an engine log-level name: "debug", "info", "warning" and
/// "error" enable logging at that level; "off", "none" and "" disable
/// (empty optional). InvalidArgument for anything else.
StatusOr<std::optional<LogLevel>> EngineLogLevelFromName(
    const std::string& name);

/// The effective engine log level: `option_value` when non-empty, else
/// the MPQE_LOG_LEVEL environment variable. Unset/invalid env means
/// disabled (option values are validated earlier, by
/// EvaluationOptions::Validate).
std::optional<LogLevel> ResolveEngineLogLevel(const std::string& option_value);

}  // namespace mpqe

#endif  // MPQE_OBS_LOGGING_OBSERVER_H_
