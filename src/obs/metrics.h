// Named metrics for evaluations: monotonic counters, level gauges and
// log2-bucketed histograms, grouped in a MetricsRegistry. The registry
// subsumes the ad-hoc EngineCounters / NodeCounters plumbing: the
// evaluator (when EvaluationOptions::metrics is set) installs a
// MetricsObserver that counts live events and, after the run, dumps
// the per-node / per-predicate / per-kind breakdowns into the same
// registry.
//
// Naming convention: '/'-separated paths, lowest-cardinality prefix
// first — e.g. "msg/sent/tuple", "node/7/fires",
// "predicate/path/stored_tuples", "phase/run/ns". The Prometheus
// serializer (obs/prometheus.h) maps these paths onto metric families
// `mpqe_<subsystem>_<name>{label="..."}` (DESIGN.md §12).
//
// Thread safety: Counter::Increment, Gauge::Set/Add and
// Histogram::Record are lock-free (relaxed atomics); Get*() takes a
// registry mutex, so callers on hot paths should resolve references
// once and cache them (MetricsObserver does).
//
// Dump determinism: every dump (ToString, ToJson, CounterRows,
// GaugeRows, HistogramNames — and the Prometheus exposition built on
// them) is sorted by metric name, independent of registration order
// and of the underlying container, so golden tests and scrape diffs
// are stable across runs and schedulers.

#ifndef MPQE_OBS_METRICS_H_
#define MPQE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/observer.h"

namespace mpqe {

// A monotonic counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A level that can go up and down (active sessions, queue depths,
// cache occupancy, hit rates). Doubles, because Prometheus gauges are
// floats and ratios (plan-cache hit rate, worker utilization) are the
// main consumers. Set/Add are lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// A histogram over uint64 samples with power-of-two buckets: bucket b
// counts samples whose bit width is b (bucket 0 holds sample 0).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Adds every sample of `other` into this histogram (bucket-wise;
  /// min/max/sum/count folded in). The engine-wide aggregation path:
  /// session histograms merge into the engine registry on completion.
  void MergeFrom(const Histogram& other);

  /// Upper-bound estimate of the p-th percentile (p in [0, 100]),
  /// resolved to bucket boundaries.
  uint64_t Percentile(double p) const;

  std::vector<uint64_t> BucketCounts() const;
  std::string ToString() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// A registry of named counters and histograms. Entries are created on
// first access and live as long as the registry; returned references
// are stable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Snapshot of all counters (sorted by name). Zero-valued counters
  /// are included — existence means the metric was registered.
  std::vector<std::pair<std::string, uint64_t>> CounterRows() const;
  /// Snapshot of all gauges (sorted by name).
  std::vector<std::pair<std::string, double>> GaugeRows() const;
  std::vector<std::string> HistogramNames() const;

  /// The named histogram, or nullptr if never registered (read-only
  /// companion to GetHistogram for serializers that must not create).
  const Histogram* FindHistogram(const std::string& name) const;

  /// Folds `other` into this registry: counters add, histograms merge
  /// sample-by-bucket. Gauges are *levels*, not deltas — they are
  /// skipped (an engine-wide gauge is sampled, never summed from
  /// per-session values). This is how EngineTelemetry aggregates a
  /// completed session's registry into the engine-lifetime one.
  void MergeFrom(const MetricsRegistry& other);

  /// "name=value" per line for counters, then gauges, then one summary
  /// line per histogram — each section sorted by name.
  std::string ToString() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, p50, p95, p99}}} — machine-readable companion to
  /// the trace export. Keys come out sorted, so dumps diff cleanly
  /// across runs regardless of registration order.
  std::string ToJson() const;

  void Clear();

 private:
  // Sorted (name, entry) snapshots; callers hold no lock afterwards
  // because entry pointers are stable for the registry's lifetime.
  std::vector<std::pair<std::string, Counter*>> SortedCounters() const;
  std::vector<std::pair<std::string, Gauge*>> SortedGauges() const;
  std::vector<std::pair<std::string, Histogram*>> SortedHistograms() const;

  mutable std::mutex mutex_;
  // Unordered on purpose: Get*() is the hot path (plan-cache counters
  // on every Prepare); dump order is imposed by the Sorted* helpers.
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// An ExecutionObserver that feeds a MetricsRegistry from live events:
//   msg/sent/<kind>         sends per message kind
//   msg/delivered           deliveries
//   msg/handle_ns           histogram of per-message handling time
//   node/fires              node firings (all nodes)
//   node/<id>/fires         per-node firings (when per_node)
//   arc/<from>-><to>/sends  per-arc sends (when per_arc; high card.)
//   fire/tuples_out         histogram of tuples emitted per firing
//   dedup/hits              duplicate-elimination rejections
//   phase/<name>/ns         histogram (single sample) per phase
//   termination/<event>     protocol events per kind
class MetricsObserver : public ExecutionObserver {
 public:
  struct Options {
    bool per_node = true;
    bool per_arc = false;  // cardinality = live (from, to) pairs
  };

  explicit MetricsObserver(MetricsRegistry* registry)
      : MetricsObserver(registry, Options()) {}
  MetricsObserver(MetricsRegistry* registry, Options options);

  void OnSend(const SendEvent& event) override;
  void OnDeliver(const DeliverEvent& event) override;
  void OnNodeFire(const NodeFireEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnTermination(const TerminationEvent& event) override;

 private:
  Counter& PerNodeFires(int32_t node);
  Counter& PerArcSends(ProcessId from, ProcessId to);

  MetricsRegistry* registry_;
  Options options_;

  // Cached hot-path handles (resolved once in the constructor).
  std::array<Counter*, static_cast<size_t>(MessageKind::kMessageKindCount)>
      sent_by_kind_{};
  std::array<Counter*,
             static_cast<size_t>(TerminationEvent::Kind::kKindCount)>
      termination_by_kind_{};
  Counter* delivered_ = nullptr;
  Counter* fires_ = nullptr;
  Counter* dedup_hits_ = nullptr;
  Counter* segment_rows_sent_ = nullptr;
  Histogram* handle_ns_ = nullptr;
  Histogram* tuples_out_ = nullptr;
  Histogram* segment_rows_ = nullptr;  // rows per emitted segment

  // Per-node / per-arc handles are created lazily under mutex_.
  std::mutex mutex_;
  std::map<int32_t, Counter*> node_fires_;
  std::map<uint64_t, Counter*> arc_sends_;

  // Phase begin timestamps (phases are serialized; no lock needed).
  std::array<uint64_t,
             static_cast<size_t>(Phase::kPhaseCount)> phase_begin_ns_{};
};

}  // namespace mpqe

#endif  // MPQE_OBS_METRICS_H_
