#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "common/string_util.h"

namespace mpqe {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::Record(uint64_t sample) {
  size_t bucket = static_cast<size_t>(std::bit_width(sample));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t n = count();
  // Empty histogram: every percentile is 0 (and the rank arithmetic
  // below would be meaningless). ToString/ToJson rely on this.
  if (n == 0) return 0;
  // NaN slips through std::clamp (all comparisons false) and would
  // make the rank cast undefined; treat it as p0.
  if (std::isnan(p)) p = 0.0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Upper bound of bucket b: samples with bit width b, i.e. < 2^b.
      return b == 0 ? 0 : (b >= 64 ? UINT64_MAX : (uint64_t{1} << b) - 1);
    }
  }
  return max();
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  uint64_t other_max = other.max();
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kBuckets);
  for (size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

std::string Histogram::ToString() const {
  return StrCat("{count=", count(), " sum=", sum(), " min=", min(),
                " max=", max(), " p50<=", Percentile(50),
                " p95<=", Percentile(95), " p99<=", Percentile(99), "}");
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counters_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = histograms_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Histogram>();
  return *it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, Counter*>>
MetricsRegistry::SortedCounters() const {
  std::vector<std::pair<std::string, Counter*>> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      rows.emplace_back(name, counter.get());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::pair<std::string, Gauge*>> MetricsRegistry::SortedGauges()
    const {
  std::vector<std::pair<std::string, Gauge*>> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      rows.emplace_back(name, gauge.get());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::pair<std::string, Histogram*>>
MetricsRegistry::SortedHistograms() const {
  std::vector<std::pair<std::string, Histogram*>> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      rows.emplace_back(name, histogram.get());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterRows()
    const {
  std::vector<std::pair<std::string, uint64_t>> rows;
  for (const auto& [name, counter] : SortedCounters()) {
    rows.emplace_back(name, counter->value());
  }
  return rows;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeRows()
    const {
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& [name, gauge] : SortedGauges()) {
    rows.emplace_back(name, gauge->value());
  }
  return rows;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::vector<std::string> names;
  for (const auto& [name, histogram] : SortedHistograms()) {
    (void)histogram;
    names.push_back(name);
  }
  return names;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other` first: GetCounter/GetHistogram below take our own
  // mutex, and self-merge (or two registries merging into each other)
  // must not deadlock on lock order.
  for (const auto& [name, counter] : other.SortedCounters()) {
    uint64_t v = counter->value();
    if (v != 0) GetCounter(name).Increment(v);
  }
  for (const auto& [name, histogram] : other.SortedHistograms()) {
    if (histogram->count() != 0) GetHistogram(name).MergeFrom(*histogram);
  }
  // Gauges are levels, not deltas: summing per-session gauge values
  // into an engine gauge would be meaningless. Engine-wide gauges are
  // sampled by EngineTelemetry instead.
}

std::string MetricsRegistry::ToString() const {
  std::string out;
  for (const auto& [name, counter] : SortedCounters()) {
    out += StrCat(name, "=", counter->value(), "\n");
  }
  for (const auto& [name, gauge] : SortedGauges()) {
    out += StrCat(name, "=", gauge->value(), "\n");
  }
  for (const auto& [name, histogram] : SortedHistograms()) {
    out += StrCat(name, "=", histogram->ToString(), "\n");
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : SortedCounters()) {
    out += StrCat(first ? "" : ",", "\n    \"", name,
                  "\": ", counter->value());
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : SortedGauges()) {
    out += StrCat(first ? "" : ",", "\n    \"", name, "\": ", gauge->value());
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : SortedHistograms()) {
    out += StrCat(first ? "" : ",", "\n    \"", name, "\": {\"count\": ",
                  h->count(), ", \"sum\": ", h->sum(), ", \"min\": ", h->min(),
                  ", \"max\": ", h->max(), ", \"p50\": ", h->Percentile(50),
                  ", \"p95\": ", h->Percentile(95),
                  ", \"p99\": ", h->Percentile(99), "}");
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// ---------------------------------------------------------------------------
// MetricsObserver
// ---------------------------------------------------------------------------

MetricsObserver::MetricsObserver(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  for (size_t k = 0; k < sent_by_kind_.size(); ++k) {
    sent_by_kind_[k] = &registry_->GetCounter(
        StrCat("msg/sent/", MessageKindToString(static_cast<MessageKind>(k))));
  }
  for (size_t k = 0; k < termination_by_kind_.size(); ++k) {
    termination_by_kind_[k] = &registry_->GetCounter(
        StrCat("termination/", TerminationEvent::KindToString(
                                   static_cast<TerminationEvent::Kind>(k))));
  }
  delivered_ = &registry_->GetCounter("msg/delivered");
  fires_ = &registry_->GetCounter("node/fires");
  dedup_hits_ = &registry_->GetCounter("dedup/hits");
  segment_rows_sent_ = &registry_->GetCounter("msg/segment_rows");
  handle_ns_ = &registry_->GetHistogram("msg/handle_ns");
  tuples_out_ = &registry_->GetHistogram("fire/tuples_out");
  segment_rows_ = &registry_->GetHistogram("msg/segment_rows_per_segment");
}

Counter& MetricsObserver::PerNodeFires(int32_t node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = node_fires_.emplace(node, nullptr);
  if (inserted) {
    it->second = &registry_->GetCounter(StrCat("node/", node, "/fires"));
  }
  return *it->second;
}

Counter& MetricsObserver::PerArcSends(ProcessId from, ProcessId to) {
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
                 static_cast<uint32_t>(to);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = arc_sends_.emplace(key, nullptr);
  if (inserted) {
    it->second =
        &registry_->GetCounter(StrCat("arc/", from, "->", to, "/sends"));
  }
  return *it->second;
}

void MetricsObserver::OnSend(const SendEvent& event) {
  sent_by_kind_[static_cast<size_t>(event.message->kind)]->Increment();
  if (event.message->kind == MessageKind::kTupleSegment) {
    uint64_t rows = event.message->segment().num_rows;
    segment_rows_sent_->Increment(rows);
    segment_rows_->Record(rows);
  } else if (event.message->kind == MessageKind::kBatch) {
    for (const Message& sub : event.message->batch()) {
      if (sub.kind != MessageKind::kTupleSegment) continue;
      uint64_t rows = sub.segment().num_rows;
      segment_rows_sent_->Increment(rows);
      segment_rows_->Record(rows);
    }
  }
  if (options_.per_arc) PerArcSends(event.from, event.to).Increment();
}

void MetricsObserver::OnDeliver(const DeliverEvent& event) {
  delivered_->Increment();
  handle_ns_->Record(event.handle_ns);
}

void MetricsObserver::OnNodeFire(const NodeFireEvent& event) {
  fires_->Increment();
  dedup_hits_->Increment(event.dedup_hits);
  tuples_out_->Record(event.tuples_out);
  if (options_.per_node) PerNodeFires(event.node).Increment();
}

void MetricsObserver::OnPhase(const PhaseEvent& event) {
  size_t index = static_cast<size_t>(event.phase);
  if (event.begin) {
    phase_begin_ns_[index] = NowNs();
    return;
  }
  uint64_t begin = phase_begin_ns_[index];
  if (begin == 0) return;  // end without begin (defensive)
  registry_->GetHistogram(StrCat("phase/", PhaseToString(event.phase), "/ns"))
      .Record(NowNs() - begin);
}

void MetricsObserver::OnTermination(const TerminationEvent& event) {
  termination_by_kind_[static_cast<size_t>(event.kind)]->Increment();
}

}  // namespace mpqe
