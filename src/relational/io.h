// Bulk import/export of EDB relations as tab-separated values, so the
// CLI and benchmarks can work with real data files instead of inline
// facts. Fields that parse as integers become integer values; all
// other fields are interned as symbols.

#ifndef MPQE_RELATIONAL_IO_H_
#define MPQE_RELATIONAL_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.h"
#include "relational/database.h"

namespace mpqe {

// Import results.
struct LoadStats {
  size_t rows = 0;
  size_t duplicates = 0;  // rows merged by set semantics
};

/// Loads tab-separated rows from `in` into relation `name` (created on
/// first use; arity fixed by the first row). Blank lines and lines
/// starting with '#' are skipped. Fails on ragged rows.
StatusOr<LoadStats> LoadRelationTsv(Database& db, std::string_view name,
                                    std::istream& in);

/// As above, reading from `path`.
StatusOr<LoadStats> LoadRelationTsvFile(Database& db, std::string_view name,
                                        const std::string& path);

/// Writes `relation` as tab-separated rows (sorted, deterministic).
Status SaveRelationTsv(const Relation& relation, const SymbolTable& symbols,
                       std::ostream& out);

Status SaveRelationTsvFile(const Relation& relation,
                           const SymbolTable& symbols,
                           const std::string& path);

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_IO_H_
