#include "relational/database.h"

#include "common/string_util.h"

namespace mpqe {

Status Database::CreateRelation(std::string_view name, size_t arity) {
  auto it = relations_.find(std::string(name));
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return InvalidArgumentError(
          StrCat("relation ", name, " already exists with arity ",
                 it->second.arity(), ", requested ", arity));
    }
    return Status::Ok();
  }
  relations_.emplace(std::string(name), Relation(arity));
  return Status::Ok();
}

bool Database::HasRelation(std::string_view name) const {
  return relations_.count(std::string(name)) != 0;
}

const Relation* Database::GetRelation(std::string_view name) const {
  auto it = relations_.find(std::string(name));
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::GetMutableRelation(std::string_view name) {
  auto it = relations_.find(std::string(name));
  return it == relations_.end() ? nullptr : &it->second;
}

StatusOr<bool> Database::InsertFact(std::string_view name, Tuple tuple) {
  MPQE_RETURN_IF_ERROR(CreateRelation(name, tuple.size()));
  Relation* rel = GetMutableRelation(name);
  if (rel->arity() != tuple.size()) {
    return InvalidArgumentError(
        StrCat("fact for ", name, " has arity ", tuple.size(),
               " but relation has arity ", rel->arity()));
  }
  return rel->Insert(std::move(tuple));
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

}  // namespace mpqe
