#include "relational/io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace mpqe {
namespace {

// Parses a field as an integer if it looks like one, else interns it.
Value ParseField(Database& db, const std::string& field) {
  if (!field.empty()) {
    size_t start = field[0] == '-' ? 1 : 0;
    if (start < field.size()) {
      bool all_digits = true;
      for (size_t i = start; i < field.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(field[i]))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(field.c_str(), &end, 10);
        if (errno == 0 && end == field.c_str() + field.size()) {
          return Value::Int(v);
        }
      }
    }
  }
  return db.Sym(field);
}

}  // namespace

StatusOr<LoadStats> LoadRelationTsv(Database& db, std::string_view name,
                                    std::istream& in) {
  LoadStats stats;
  std::string line;
  size_t line_number = 0;
  size_t arity = 0;
  bool arity_known = db.HasRelation(name);
  if (arity_known) arity = db.GetRelation(name)->arity();

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> fields = StrSplit(line, '\t');
    if (!arity_known) {
      arity = fields.size();
      arity_known = true;
      MPQE_RETURN_IF_ERROR(db.CreateRelation(name, arity));
    }
    if (fields.size() != arity) {
      return InvalidArgumentError(
          StrCat("line ", line_number, ": expected ", arity, " fields, got ",
                 fields.size()));
    }
    Tuple tuple;
    tuple.reserve(arity);
    for (const std::string& field : fields) {
      tuple.push_back(ParseField(db, field));
    }
    MPQE_ASSIGN_OR_RETURN(bool inserted,
                          db.InsertFact(name, std::move(tuple)));
    ++stats.rows;
    if (!inserted) ++stats.duplicates;
  }
  return stats;
}

StatusOr<LoadStats> LoadRelationTsvFile(Database& db, std::string_view name,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError(StrCat("cannot open ", path));
  return LoadRelationTsv(db, name, in);
}

Status SaveRelationTsv(const Relation& relation, const SymbolTable& symbols,
                       std::ostream& out) {
  for (const Tuple& t : relation.SortedTuples()) {
    bool first = true;
    for (const Value& v : t) {
      if (!first) out << '\t';
      first = false;
      out << v.ToString(&symbols);
    }
    out << '\n';
  }
  if (!out) return InternalError("write failed");
  return Status::Ok();
}

Status SaveRelationTsvFile(const Relation& relation,
                           const SymbolTable& symbols,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return NotFoundError(StrCat("cannot open ", path));
  return SaveRelationTsv(relation, symbols, out);
}

}  // namespace mpqe
