// Tuples: flat vectors of Values, plus hashing and printing helpers.

#ifndef MPQE_RELATIONAL_TUPLE_H_
#define MPQE_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "relational/value.h"

namespace mpqe {

using Tuple = std::vector<Value>;
using TupleHash = VectorHash<Value>;

/// Projects `tuple` onto `columns` (in the given order).
Tuple ProjectTuple(const Tuple& tuple, const std::vector<size_t>& columns);

/// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple,
                          const SymbolTable* symbols = nullptr);

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_TUPLE_H_
