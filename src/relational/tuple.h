// Tuples: owning flat vectors of Values, the non-owning TupleRef view
// over arena storage, plus hashing and printing helpers.

#ifndef MPQE_RELATIONAL_TUPLE_H_
#define MPQE_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/hash.h"
#include "relational/value.h"

namespace mpqe {

using Tuple = std::vector<Value>;
using TupleHash = VectorHash<Value>;

// Non-owning view of a contiguous run of Values. Relations store all
// tuples flat in one arena strided by arity, and every read path hands
// out TupleRefs instead of materializing owning copies. Two words,
// cheap to pass by value.
//
// Lifetime: a TupleRef must not outlive the storage it points into.
// In particular Relation::Insert may reallocate the arena, which
// invalidates refs obtained from that relation earlier.
class TupleRef {
 public:
  TupleRef() = default;
  TupleRef(const Value* data, size_t size) : data_(data), size_(size) {}
  // Implicit on purpose: lets Tuple-producing call sites feed view-based
  // APIs (Insert/Contains/Probe) without copies or overloads.
  TupleRef(const Tuple& tuple)  // NOLINT(google-explicit-constructor)
      : data_(tuple.data()), size_(tuple.size()) {}
  // Safe only as a function argument: the backing array lives to the
  // end of the full expression (same caveat as std::span's overload).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
  TupleRef(std::initializer_list<Value> values)  // NOLINT
      : data_(values.begin()), size_(values.size()) {}
#pragma GCC diagnostic pop

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value& operator[](size_t i) const { return data_[i]; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  /// Materializes an owning copy (e.g. for message payloads).
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

 private:
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

inline bool operator==(TupleRef a, TupleRef b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}
inline bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }
// Lexicographic, consistent with std::vector<Value>'s ordering.
inline bool operator<(TupleRef a, TupleRef b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

/// Hashes the viewed values; agrees with TupleHash on equal contents.
inline size_t HashTuple(TupleRef tuple) {
  return HashRange(tuple.begin(), tuple.end());
}

/// Projects `tuple` onto `columns` (in the given order).
Tuple ProjectTuple(TupleRef tuple, const std::vector<size_t>& columns);

/// Renders "(v1, v2, ...)".
std::string TupleToString(TupleRef tuple,
                          const SymbolTable* symbols = nullptr);

std::ostream& operator<<(std::ostream& os, TupleRef tuple);

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_TUPLE_H_
