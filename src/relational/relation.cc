#include "relational/relation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

namespace {

// Open-addressing tables resize at 7/8 occupancy; linear probing stays
// fast well past that with a mixed hash, and 7/8 keeps the row-id
// tables within ~1.15 slots per tuple.
inline bool NeedsGrow(size_t used, size_t capacity) {
  return used * 8 >= capacity * 7;
}

constexpr size_t kInitialSlots = 16;  // power of two

}  // namespace

// ---------------------------------------------------------------------------
// RelationIndex
// ---------------------------------------------------------------------------

uint64_t RelationIndex::HashRowKey(const Relation& rel, size_t position) const {
  TupleRef row = rel.tuple(position);
  size_t seed = 0xcbf29ce484222325ULL;
  for (size_t c : key_columns_) {
    HashCombine(seed, std::hash<Value>{}(row[c]));
  }
  return seed;
}

bool RelationIndex::RowKeyEquals(const Relation& rel, size_t position,
                                 TupleRef key) const {
  TupleRef row = rel.tuple(position);
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (row[key_columns_[i]] != key[i]) return false;
  }
  return true;
}

bool RelationIndex::RowKeysEqual(const Relation& rel, size_t a,
                                 size_t b) const {
  TupleRef ra = rel.tuple(a);
  TupleRef rb = rel.tuple(b);
  for (size_t c : key_columns_) {
    if (ra[c] != rb[c]) return false;
  }
  return true;
}

void RelationIndex::Grow() {
  size_t capacity = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  slots_.assign(capacity, 0);
  size_t mask = capacity - 1;
  for (size_t g = 0; g < groups_.size(); ++g) {
    size_t i = Mix64(groups_[g].hash) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(g + 1);
  }
}

void RelationIndex::Add(const Relation& rel, size_t position) {
  if (slots_.empty() || NeedsGrow(groups_.size(), slots_.size())) Grow();
  uint64_t hash = HashRowKey(rel, position);
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    Group& group = groups_[slots_[i] - 1];
    if (group.hash == hash &&
        RowKeysEqual(rel, group.positions.front(), position)) {
      group.positions.push_back(position);
      return;
    }
    i = (i + 1) & mask;
  }
  MPQE_CHECK(groups_.size() < UINT32_MAX);
  slots_[i] = static_cast<uint32_t>(groups_.size() + 1);
  groups_.push_back(Group{hash, {position}});
}

const std::vector<size_t>* RelationIndex::Lookup(const Relation& rel,
                                                 TupleRef key) const {
  size_t seed = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < key.size(); ++i) {
    HashCombine(seed, std::hash<Value>{}(key[i]));
  }
  return LookupHashed(rel, key, seed);
}

const std::vector<size_t>* RelationIndex::LookupHashed(const Relation& rel,
                                                       TupleRef key,
                                                       uint64_t hash) const {
  if (slots_.empty()) return nullptr;
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    const Group& group = groups_[slots_[i] - 1];
    if (group.hash == hash &&
        RowKeyEquals(rel, group.positions.front(), key)) {
      return &group.positions;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

void RelationIndex::LookupBlock(const Relation& rel, const Value* keys,
                                size_t num_rows,
                                std::vector<size_t>& offsets,
                                std::vector<size_t>& positions) const {
  size_t stride = key_columns_.size();
  offsets.clear();
  offsets.reserve(num_rows + 1);
  offsets.push_back(positions.size());
  if (slots_.empty()) {
    for (size_t r = 0; r < num_rows; ++r) offsets.push_back(positions.size());
    return;
  }
  size_t mask = slots_.size() - 1;

  // Staged probe in chunks (group prefetching): each stage issues the
  // next level of the per-key pointer chain for the whole chunk, so
  // the chain's cache misses overlap across keys instead of
  // serializing within one. The stages only warm the cache; stage E
  // resolves each key for real, falling back to the serial cluster
  // walk on the (rare) slot collision.
  constexpr size_t kChunk = 32;
  uint64_t chunk_hash[kChunk];
  size_t chunk_slot[kChunk];
  const Group* chunk_group[kChunk];
  for (size_t base = 0; base < num_rows; base += kChunk) {
    size_t n = std::min(kChunk, num_rows - base);
    // Stage A: hash each key, warm its home slot line.
    for (size_t j = 0; j < n; ++j) {
      const Value* key = keys + (base + j) * stride;
      size_t seed = 0xcbf29ce484222325ULL;
      for (size_t c = 0; c < stride; ++c) {
        HashCombine(seed, std::hash<Value>{}(key[c]));
      }
      chunk_hash[j] = seed;
      chunk_slot[j] = Mix64(seed) & mask;
      __builtin_prefetch(slots_.data() + chunk_slot[j]);
    }
    // Stage B: read the home slot; warm the candidate group record.
    for (size_t j = 0; j < n; ++j) {
      uint32_t s = slots_[chunk_slot[j]];
      chunk_group[j] = s == 0 ? nullptr : &groups_[s - 1];
      if (chunk_group[j] != nullptr) __builtin_prefetch(chunk_group[j]);
    }
    // Stage C: on a hash match, warm the group's position buffer.
    for (size_t j = 0; j < n; ++j) {
      const Group* g = chunk_group[j];
      if (g != nullptr && g->hash == chunk_hash[j]) {
        __builtin_prefetch(g->positions.data());
      }
    }
    // Stage D: warm the arena row the key compare reads.
    for (size_t j = 0; j < n; ++j) {
      const Group* g = chunk_group[j];
      if (g != nullptr && g->hash == chunk_hash[j]) {
        __builtin_prefetch(rel.values_.data() +
                           g->positions.front() * rel.arity_);
      }
    }
    // Stage E: resolve. An empty home slot is a definitive miss
    // (linear probing); a home-slot group that matches hash and key is
    // the answer; anything else walks the collision cluster serially.
    for (size_t j = 0; j < n; ++j) {
      TupleRef key(keys + (base + j) * stride, stride);
      const Group* g = chunk_group[j];
      const std::vector<size_t>* hits = nullptr;
      if (g != nullptr) {
        if (g->hash == chunk_hash[j] &&
            RowKeyEquals(rel, g->positions.front(), key)) {
          hits = &g->positions;
        } else {
          hits = LookupHashed(rel, key, chunk_hash[j]);
        }
      }
      if (hits != nullptr) {
        positions.insert(positions.end(), hits->begin(), hits->end());
      }
      offsets.push_back(positions.size());
    }
  }
}

void RelationIndex::Clear() {
  std::fill(slots_.begin(), slots_.end(), 0);
  groups_.clear();
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

bool Relation::RowEquals(size_t position, TupleRef tuple) const {
  const Value* row = values_.data() + position * arity_;
  for (size_t i = 0; i < arity_; ++i) {
    if (row[i] != tuple[i]) return false;
  }
  return true;
}

void Relation::RebuildDedup(size_t capacity) {
  slots_.assign(capacity, 0);
  size_t mask = capacity - 1;
  for (size_t row = 0; row < num_rows_; ++row) {
    size_t i = Mix64(hashes_[row]) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(row + 1);
  }
}

void Relation::GrowDedup() {
  RebuildDedup(slots_.empty() ? kInitialSlots : slots_.size() * 2);
}

void Relation::ReserveRows(size_t total_rows) {
  // Keep geometric growth when a batch outruns the current capacity: a
  // bare reserve(total) reallocates to exactly `total`, which would
  // copy the whole arena on every segment of a long stream (quadratic).
  if (values_.capacity() < total_rows * arity_) {
    values_.reserve(std::max(total_rows * arity_, values_.capacity() * 2));
  }
  if (hashes_.capacity() < total_rows) {
    hashes_.reserve(std::max(total_rows, hashes_.capacity() * 2));
  }
  if (lineage_ids_ != nullptr && row_ids_.capacity() < total_rows) {
    row_ids_.reserve(std::max(total_rows, row_ids_.capacity() * 2));
  }
  const size_t current = slots_.size();
  size_t capacity = current == 0 ? kInitialSlots : current;
  bool grew = false;
  while (NeedsGrow(total_rows, capacity)) {
    capacity *= 2;
    grew = true;
  }
  // A rebuild re-places every existing row, so its cost is what
  // dominates bulk loads. When one is unavoidable anyway, take an
  // extra doubling: a steady stream of segments then rebuilds at 4x
  // strides instead of 2x, cutting the total re-placement work from
  // ~2N to ~1.33N while the table stays within 4x of the strict
  // doubling footprint.
  if (grew) capacity *= 2;
  if (capacity != current) RebuildDedup(capacity);
}

void Relation::CheckBlockArity(size_t block_arity) const {
  MPQE_CHECK(block_arity == arity_)
      << "segment arity " << block_arity << " != relation arity " << arity_;
}

Relation::InsertResult Relation::InsertRow(TupleRef tuple) {
  MPQE_CHECK(tuple.size() == arity_)
      << "tuple arity " << tuple.size() << " != relation arity " << arity_;
  if (slots_.empty() || NeedsGrow(num_rows_, slots_.size())) GrowDedup();
  uint64_t hash = HashTuple(tuple);
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    size_t row = slots_[i] - 1;
    if (hashes_[row] == hash && RowEquals(row, tuple)) {
      return InsertResult{row, false};
    }
    i = (i + 1) & mask;
  }
  // New row: append to the arena. (If `tuple` views this relation's own
  // arena it is necessarily a duplicate and was rejected above, so the
  // copy below never reads from a buffer the append may reallocate.)
  MPQE_CHECK(num_rows_ < UINT32_MAX);
  size_t position = num_rows_++;
  values_.insert(values_.end(), tuple.begin(), tuple.end());
  hashes_.push_back(hash);
  slots_[i] = static_cast<uint32_t>(position + 1);
  if (lineage_ids_ != nullptr) row_ids_.push_back(lineage_ids_->Allocate());
  for (auto& index : indexes_) index.Add(*this, position);
  return InsertResult{position, true};
}

const BatchInsertResult& Relation::InsertBlock(const Value* values,
                                               size_t num_rows) {
  BatchInsertResult& result = batch_result_;
  result.num_rows = num_rows;
  result.num_inserted = 0;
  result.rows.clear();
  result.inserted_bits.assign((num_rows + 63) / 64, 0);
  if (num_rows == 0) return result;
  result.rows.reserve(num_rows);

  // One hashing pass over the contiguous block.
  batch_hashes_.clear();
  batch_hashes_.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    batch_hashes_.push_back(HashTuple(TupleRef(values + r * arity_, arity_)));
  }

  // Reserve arena + dedup capacity once for the worst case (every row
  // new) — the insert loop below never grows or rehashes, so the slot
  // mask is fixed across the whole block.
  ReserveRows(num_rows_ + num_rows);
  size_t mask = slots_.size() - 1;

  // Staged insertion in chunks: a dedup probe is a chain of dependent
  // cache misses (slot line, then the candidate's stored hash and
  // arena row on a hit). Per-row insertion serializes that chain; with
  // the whole hash block in hand we instead issue the prefetches for a
  // chunk of rows per stage so the misses overlap (group prefetching).
  // The stages only warm the cache — stage C re-reads the live table
  // serially, so intra-chunk duplicates still dedup against rows
  // inserted moments earlier.
  constexpr size_t kChunk = 32;
  size_t chunk_slot[kChunk];
  for (size_t base = 0; base < num_rows; base += kChunk) {
    size_t n = std::min(kChunk, num_rows - base);
    // Stage A: warm each row's first slot line.
    for (size_t j = 0; j < n; ++j) {
      chunk_slot[j] = Mix64(batch_hashes_[base + j]) & mask;
      __builtin_prefetch(slots_.data() + chunk_slot[j]);
    }
    // Stage B: read the (now warm) slot; for occupied slots warm the
    // candidate's stored hash and arena row for the compare.
    for (size_t j = 0; j < n; ++j) {
      uint32_t s = slots_[chunk_slot[j]];
      if (s != 0) {
        size_t candidate = s - 1;
        __builtin_prefetch(hashes_.data() + candidate);
        __builtin_prefetch(values_.data() + candidate * arity_);
      }
    }
    // Stage C: serial resolve against the live table.
    for (size_t j = 0; j < n; ++j) {
      size_t r = base + j;
      const Value* row_values = values + r * arity_;
      uint64_t hash = batch_hashes_[r];
      size_t i = chunk_slot[j];
      size_t row;
      for (;;) {
        if (slots_[i] == 0) {
          // New row (earlier rows of this block are already in the
          // table, so intra-block duplicates dedup naturally).
          MPQE_CHECK(num_rows_ < UINT32_MAX);
          row = num_rows_++;
          values_.insert(values_.end(), row_values, row_values + arity_);
          hashes_.push_back(hash);
          slots_[i] = static_cast<uint32_t>(row + 1);
          if (lineage_ids_ != nullptr) {
            row_ids_.push_back(lineage_ids_->Allocate());
          }
          for (auto& index : indexes_) index.Add(*this, row);
          result.inserted_bits[r >> 6] |= uint64_t{1} << (r & 63);
          ++result.num_inserted;
          break;
        }
        size_t candidate = slots_[i] - 1;
        if (hashes_[candidate] == hash &&
            RowEquals(candidate, TupleRef(row_values, arity_))) {
          row = candidate;
          break;
        }
        i = (i + 1) & mask;
      }
      result.rows.push_back(row);
    }
  }
  return result;
}

void Relation::ProbeBlock(size_t index_handle, const Value* keys,
                          size_t num_rows, std::vector<size_t>& offsets,
                          std::vector<size_t>& positions) const {
  indexes_[index_handle].LookupBlock(*this, keys, num_rows, offsets,
                                     positions);
}

void Relation::Clear() {
  num_rows_ = 0;
  values_.clear();
  hashes_.clear();
  row_ids_.clear();
  std::fill(slots_.begin(), slots_.end(), 0);
  for (auto& index : indexes_) index.Clear();
}

void Relation::EnableLineage(TupleIdAllocator* ids) {
  MPQE_CHECK(ids != nullptr);
  if (lineage_ids_ == ids) return;
  lineage_ids_ = ids;
  row_ids_.clear();
  row_ids_.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    row_ids_.push_back(ids->Allocate());
  }
}

bool Relation::Contains(TupleRef tuple) const {
  if (tuple.size() != arity_ || slots_.empty()) return false;
  uint64_t hash = HashTuple(tuple);
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    size_t row = slots_[i] - 1;
    if (hashes_[row] == hash && RowEquals(row, tuple)) return true;
    i = (i + 1) & mask;
  }
  return false;
}

size_t Relation::EnsureIndex(const std::vector<size_t>& key_columns) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].key_columns() == key_columns) return i;
  }
  indexes_.emplace_back(key_columns);
  RelationIndex& index = indexes_.back();
  for (size_t pos = 0; pos < num_rows_; ++pos) {
    index.Add(*this, pos);
  }
  return indexes_.size() - 1;
}

bool Relation::FindIndex(const std::vector<size_t>& key_columns,
                         size_t* handle) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].key_columns() == key_columns) {
      *handle = i;
      return true;
    }
  }
  return false;
}

const std::vector<size_t>* Relation::Probe(size_t index_handle,
                                           TupleRef key) const {
  return indexes_[index_handle].Lookup(*this, key);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted;
  sorted.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    sorted.push_back(tuple(row).ToTuple());
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_ || a.size() != b.size()) return false;
  for (size_t row = 0; row < a.num_rows_; ++row) {
    if (!b.Contains(a.tuple(row))) return false;
  }
  return true;
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  return StrCat("{",
                StrJoin(SortedTuples(), ", ",
                        [symbols](std::ostream& os, const Tuple& t) {
                          os << TupleToString(t, symbols);
                        }),
                "}");
}

}  // namespace mpqe
