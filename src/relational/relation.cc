#include "relational/relation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

void RelationIndex::Add(const Tuple& tuple, size_t position) {
  buckets_[ProjectTuple(tuple, key_columns_)].push_back(position);
}

const std::vector<size_t>* RelationIndex::Lookup(const Tuple& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

bool Relation::Insert(Tuple tuple) {
  MPQE_CHECK(tuple.size() == arity_)
      << "tuple arity " << tuple.size() << " != relation arity " << arity_;
  auto [it, inserted] = seen_.insert(tuple);
  if (!inserted) return false;
  size_t position = tuples_.size();
  tuples_.push_back(std::move(tuple));
  for (auto& index : indexes_) index.Add(tuples_.back(), position);
  return true;
}

size_t Relation::EnsureIndex(const std::vector<size_t>& key_columns) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].key_columns() == key_columns) return i;
  }
  indexes_.emplace_back(key_columns);
  RelationIndex& index = indexes_.back();
  for (size_t pos = 0; pos < tuples_.size(); ++pos) {
    index.Add(tuples_[pos], pos);
  }
  return indexes_.size() - 1;
}

const std::vector<size_t>* Relation::Probe(size_t index_handle,
                                           const Tuple& key) const {
  return indexes_[index_handle].Lookup(key);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted = tuples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_ || a.size() != b.size()) return false;
  for (const Tuple& t : a.tuples_) {
    if (!b.Contains(t)) return false;
  }
  return true;
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  return StrCat("{",
                StrJoin(SortedTuples(), ", ",
                        [symbols](std::ostream& os, const Tuple& t) {
                          os << TupleToString(t, symbols);
                        }),
                "}");
}

}  // namespace mpqe
