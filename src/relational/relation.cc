#include "relational/relation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpqe {

namespace {

// Open-addressing tables resize at 7/8 occupancy; linear probing stays
// fast well past that with a mixed hash, and 7/8 keeps the row-id
// tables within ~1.15 slots per tuple.
inline bool NeedsGrow(size_t used, size_t capacity) {
  return used * 8 >= capacity * 7;
}

constexpr size_t kInitialSlots = 16;  // power of two

}  // namespace

// ---------------------------------------------------------------------------
// RelationIndex
// ---------------------------------------------------------------------------

uint64_t RelationIndex::HashRowKey(const Relation& rel, size_t position) const {
  TupleRef row = rel.tuple(position);
  size_t seed = 0xcbf29ce484222325ULL;
  for (size_t c : key_columns_) {
    HashCombine(seed, std::hash<Value>{}(row[c]));
  }
  return seed;
}

bool RelationIndex::RowKeyEquals(const Relation& rel, size_t position,
                                 TupleRef key) const {
  TupleRef row = rel.tuple(position);
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (row[key_columns_[i]] != key[i]) return false;
  }
  return true;
}

bool RelationIndex::RowKeysEqual(const Relation& rel, size_t a,
                                 size_t b) const {
  TupleRef ra = rel.tuple(a);
  TupleRef rb = rel.tuple(b);
  for (size_t c : key_columns_) {
    if (ra[c] != rb[c]) return false;
  }
  return true;
}

void RelationIndex::Grow() {
  size_t capacity = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  slots_.assign(capacity, 0);
  size_t mask = capacity - 1;
  for (size_t g = 0; g < groups_.size(); ++g) {
    size_t i = Mix64(groups_[g].hash) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(g + 1);
  }
}

void RelationIndex::Add(const Relation& rel, size_t position) {
  if (slots_.empty() || NeedsGrow(groups_.size(), slots_.size())) Grow();
  uint64_t hash = HashRowKey(rel, position);
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    Group& group = groups_[slots_[i] - 1];
    if (group.hash == hash &&
        RowKeysEqual(rel, group.positions.front(), position)) {
      group.positions.push_back(position);
      return;
    }
    i = (i + 1) & mask;
  }
  MPQE_CHECK(groups_.size() < UINT32_MAX);
  slots_[i] = static_cast<uint32_t>(groups_.size() + 1);
  groups_.push_back(Group{hash, {position}});
}

const std::vector<size_t>* RelationIndex::Lookup(const Relation& rel,
                                                 TupleRef key) const {
  if (slots_.empty()) return nullptr;
  size_t seed = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < key.size(); ++i) {
    HashCombine(seed, std::hash<Value>{}(key[i]));
  }
  uint64_t hash = seed;
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    const Group& group = groups_[slots_[i] - 1];
    if (group.hash == hash &&
        RowKeyEquals(rel, group.positions.front(), key)) {
      return &group.positions;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

bool Relation::RowEquals(size_t position, TupleRef tuple) const {
  const Value* row = values_.data() + position * arity_;
  for (size_t i = 0; i < arity_; ++i) {
    if (row[i] != tuple[i]) return false;
  }
  return true;
}

void Relation::GrowDedup() {
  size_t capacity = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  slots_.assign(capacity, 0);
  size_t mask = capacity - 1;
  for (size_t row = 0; row < num_rows_; ++row) {
    size_t i = Mix64(hashes_[row]) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(row + 1);
  }
}

Relation::InsertResult Relation::InsertRow(TupleRef tuple) {
  MPQE_CHECK(tuple.size() == arity_)
      << "tuple arity " << tuple.size() << " != relation arity " << arity_;
  if (slots_.empty() || NeedsGrow(num_rows_, slots_.size())) GrowDedup();
  uint64_t hash = HashTuple(tuple);
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    size_t row = slots_[i] - 1;
    if (hashes_[row] == hash && RowEquals(row, tuple)) {
      return InsertResult{row, false};
    }
    i = (i + 1) & mask;
  }
  // New row: append to the arena. (If `tuple` views this relation's own
  // arena it is necessarily a duplicate and was rejected above, so the
  // copy below never reads from a buffer the append may reallocate.)
  MPQE_CHECK(num_rows_ < UINT32_MAX);
  size_t position = num_rows_++;
  values_.insert(values_.end(), tuple.begin(), tuple.end());
  hashes_.push_back(hash);
  slots_[i] = static_cast<uint32_t>(position + 1);
  if (lineage_ids_ != nullptr) row_ids_.push_back(lineage_ids_->Allocate());
  for (auto& index : indexes_) index.Add(*this, position);
  return InsertResult{position, true};
}

void Relation::EnableLineage(TupleIdAllocator* ids) {
  MPQE_CHECK(ids != nullptr);
  if (lineage_ids_ == ids) return;
  lineage_ids_ = ids;
  row_ids_.clear();
  row_ids_.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    row_ids_.push_back(ids->Allocate());
  }
}

bool Relation::Contains(TupleRef tuple) const {
  if (tuple.size() != arity_ || slots_.empty()) return false;
  uint64_t hash = HashTuple(tuple);
  size_t mask = slots_.size() - 1;
  size_t i = Mix64(hash) & mask;
  while (slots_[i] != 0) {
    size_t row = slots_[i] - 1;
    if (hashes_[row] == hash && RowEquals(row, tuple)) return true;
    i = (i + 1) & mask;
  }
  return false;
}

size_t Relation::EnsureIndex(const std::vector<size_t>& key_columns) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].key_columns() == key_columns) return i;
  }
  indexes_.emplace_back(key_columns);
  RelationIndex& index = indexes_.back();
  for (size_t pos = 0; pos < num_rows_; ++pos) {
    index.Add(*this, pos);
  }
  return indexes_.size() - 1;
}

bool Relation::FindIndex(const std::vector<size_t>& key_columns,
                         size_t* handle) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].key_columns() == key_columns) {
      *handle = i;
      return true;
    }
  }
  return false;
}

const std::vector<size_t>* Relation::Probe(size_t index_handle,
                                           TupleRef key) const {
  return indexes_[index_handle].Lookup(*this, key);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted;
  sorted.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    sorted.push_back(tuple(row).ToTuple());
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_ || a.size() != b.size()) return false;
  for (size_t row = 0; row < a.num_rows_; ++row) {
    if (!b.Contains(a.tuple(row))) return false;
  }
  return true;
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  return StrCat("{",
                StrJoin(SortedTuples(), ", ",
                        [symbols](std::ostream& os, const Tuple& t) {
                          os << TupleToString(t, symbols);
                        }),
                "}");
}

}  // namespace mpqe
