#include "relational/value.h"

#include "common/string_util.h"

namespace mpqe {

std::string Value::ToString(const SymbolTable* symbols) const {
  if (is_int()) return std::to_string(payload_);
  if (symbols != nullptr) return symbols->Name(payload_);
  return StrCat("$", payload_);
}

int64_t SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int64_t id = static_cast<int64_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

std::string SymbolTable::Name(int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) {
    return StrCat("$", id);
  }
  return names_[static_cast<size_t>(id)];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

}  // namespace mpqe
