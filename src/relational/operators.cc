#include "relational/operators.h"

#include <unordered_map>

#include "common/logging.h"

namespace mpqe {

bool Selection::Matches(const Tuple& tuple) const {
  for (const auto& c : value_conditions) {
    if (tuple[c.column] != c.value) return false;
  }
  for (const auto& c : column_conditions) {
    if (tuple[c.left] != tuple[c.right]) return false;
  }
  return true;
}

Relation Select(const Relation& input, const Selection& selection) {
  Relation out(input.arity());
  for (const Tuple& t : input.tuples()) {
    if (selection.Matches(t)) out.Insert(t);
  }
  return out;
}

Relation Project(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(columns.size());
  for (const Tuple& t : input.tuples()) {
    out.Insert(ProjectTuple(t, columns));
  }
  return out;
}

namespace {

std::vector<size_t> LeftColumns(const std::vector<JoinColumn>& on) {
  std::vector<size_t> cols;
  cols.reserve(on.size());
  for (const auto& jc : on) cols.push_back(jc.left);
  return cols;
}

std::vector<size_t> RightColumns(const std::vector<JoinColumn>& on) {
  std::vector<size_t> cols;
  cols.reserve(on.size());
  for (const auto& jc : on) cols.push_back(jc.right);
  return cols;
}

Tuple Concatenate(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

Relation Join(const Relation& left, const Relation& right,
              const std::vector<JoinColumn>& on) {
  Relation out(left.arity() + right.arity());
  const std::vector<size_t> left_cols = LeftColumns(on);
  const std::vector<size_t> right_cols = RightColumns(on);

  // Build on the smaller side, probe with the larger.
  const bool build_left = left.size() <= right.size();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<size_t>& build_cols = build_left ? left_cols : right_cols;
  const std::vector<size_t>& probe_cols = build_left ? right_cols : left_cols;

  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> table;
  for (const Tuple& t : build.tuples()) {
    table[ProjectTuple(t, build_cols)].push_back(&t);
  }
  for (const Tuple& t : probe.tuples()) {
    auto it = table.find(ProjectTuple(t, probe_cols));
    if (it == table.end()) continue;
    for (const Tuple* b : it->second) {
      out.Insert(build_left ? Concatenate(*b, t) : Concatenate(t, *b));
    }
  }
  return out;
}

Relation SemiJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinColumn>& on) {
  Relation out(left.arity());
  const std::vector<size_t> left_cols = LeftColumns(on);
  const std::vector<size_t> right_cols = RightColumns(on);

  std::unordered_set<Tuple, TupleHash> keys;
  for (const Tuple& t : right.tuples()) {
    keys.insert(ProjectTuple(t, right_cols));
  }
  for (const Tuple& t : left.tuples()) {
    if (keys.count(ProjectTuple(t, left_cols)) != 0) out.Insert(t);
  }
  return out;
}

Relation Union(const Relation& a, const Relation& b) {
  MPQE_CHECK(a.arity() == b.arity());
  Relation out(a.arity());
  for (const Tuple& t : a.tuples()) out.Insert(t);
  for (const Tuple& t : b.tuples()) out.Insert(t);
  return out;
}

Relation Difference(const Relation& a, const Relation& b) {
  MPQE_CHECK(a.arity() == b.arity());
  Relation out(a.arity());
  for (const Tuple& t : a.tuples()) {
    if (!b.Contains(t)) out.Insert(t);
  }
  return out;
}

}  // namespace mpqe
