#include "relational/operators.h"

#include <algorithm>

#include "common/logging.h"

namespace mpqe {

bool Selection::Matches(TupleRef tuple) const {
  for (const auto& c : value_conditions) {
    if (tuple[c.column] != c.value) return false;
  }
  for (const auto& c : column_conditions) {
    if (tuple[c.left] != tuple[c.right]) return false;
  }
  return true;
}

Relation Select(const Relation& input, const Selection& selection) {
  Relation out(input.arity());
  for (TupleRef t : input.tuples()) {
    if (selection.Matches(t)) out.Insert(t);
  }
  return out;
}

Relation Project(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(columns.size());
  Tuple scratch(columns.size(), Value());
  for (TupleRef t : input.tuples()) {
    for (size_t i = 0; i < columns.size(); ++i) scratch[i] = t[columns[i]];
    out.Insert(scratch);
  }
  return out;
}

namespace {

std::vector<size_t> LeftColumns(const std::vector<JoinColumn>& on) {
  std::vector<size_t> cols;
  cols.reserve(on.size());
  for (const auto& jc : on) cols.push_back(jc.left);
  return cols;
}

std::vector<size_t> RightColumns(const std::vector<JoinColumn>& on) {
  std::vector<size_t> cols;
  cols.reserve(on.size());
  for (const auto& jc : on) cols.push_back(jc.right);
  return cols;
}

}  // namespace

Relation Join(const Relation& left, const Relation& right,
              const std::vector<JoinColumn>& on) {
  Relation out(left.arity() + right.arity());
  const std::vector<size_t> left_cols = LeftColumns(on);
  const std::vector<size_t> right_cols = RightColumns(on);

  // Build on the smaller side, probe with the larger. The build table
  // is a position-keyed RelationIndex over the build relation's arena;
  // probes fill a reused scratch key, so the steady state allocates
  // only for output growth.
  const bool build_left = left.size() <= right.size();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<size_t>& build_cols = build_left ? left_cols : right_cols;
  const std::vector<size_t>& probe_cols = build_left ? right_cols : left_cols;

  RelationIndex table(build_cols);
  for (size_t pos = 0; pos < build.size(); ++pos) table.Add(build, pos);

  // Probe in blocks: gather each chunk's keys into a contiguous
  // scratch block, resolve the whole chunk with one LookupBlock call,
  // compose the matches row-major, and hand them to the output
  // relation as one batch insert per chunk.
  constexpr size_t kProbeChunk = 1024;
  std::vector<Value> keys;
  keys.reserve(kProbeChunk * on.size());
  std::vector<size_t> offsets;
  std::vector<size_t> positions;
  std::vector<Value> out_block;
  for (size_t base = 0; base < probe.size(); base += kProbeChunk) {
    const size_t n = std::min(kProbeChunk, probe.size() - base);
    keys.clear();
    for (size_t i = 0; i < n; ++i) {
      TupleRef p = probe.tuple(base + i);
      for (size_t c : probe_cols) keys.push_back(p[c]);
    }
    positions.clear();
    table.LookupBlock(build, keys.data(), n, offsets, positions);
    out_block.clear();
    size_t rows = 0;
    for (size_t i = 0; i < n; ++i) {
      if (offsets[i] == offsets[i + 1]) continue;
      TupleRef p = probe.tuple(base + i);
      for (size_t j = offsets[i]; j < offsets[i + 1]; ++j) {
        TupleRef b = build.tuple(positions[j]);
        TupleRef l = build_left ? b : p;
        TupleRef r = build_left ? p : b;
        out_block.insert(out_block.end(), l.begin(), l.end());
        out_block.insert(out_block.end(), r.begin(), r.end());
        ++rows;
      }
    }
    if (rows != 0) out.InsertBlock(out_block.data(), rows);
  }
  return out;
}

Relation SemiJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinColumn>& on) {
  Relation out(left.arity());
  const std::vector<size_t> left_cols = LeftColumns(on);
  const std::vector<size_t> right_cols = RightColumns(on);

  RelationIndex keys_index(right_cols);
  for (size_t pos = 0; pos < right.size(); ++pos) keys_index.Add(right, pos);

  // Same chunked shape as Join: one LookupBlock per block of gathered
  // keys; a probe row passes on any hit.
  constexpr size_t kProbeChunk = 1024;
  std::vector<Value> keys;
  keys.reserve(kProbeChunk * on.size());
  std::vector<size_t> offsets;
  std::vector<size_t> positions;
  for (size_t base = 0; base < left.size(); base += kProbeChunk) {
    const size_t n = std::min(kProbeChunk, left.size() - base);
    keys.clear();
    for (size_t i = 0; i < n; ++i) {
      TupleRef t = left.tuple(base + i);
      for (size_t c : left_cols) keys.push_back(t[c]);
    }
    positions.clear();
    keys_index.LookupBlock(right, keys.data(), n, offsets, positions);
    for (size_t i = 0; i < n; ++i) {
      if (offsets[i] != offsets[i + 1]) out.Insert(left.tuple(base + i));
    }
  }
  return out;
}

Relation Union(const Relation& a, const Relation& b) {
  MPQE_CHECK(a.arity() == b.arity());
  Relation out(a.arity());
  // Each input's arena is one contiguous row-major block — absorb it
  // with a single batch insert instead of a per-row loop.
  if (a.size() != 0) out.InsertBlock(a.tuple(0).begin(), a.size());
  if (b.size() != 0) out.InsertBlock(b.tuple(0).begin(), b.size());
  return out;
}

Relation Difference(const Relation& a, const Relation& b) {
  MPQE_CHECK(a.arity() == b.arity());
  Relation out(a.arity());
  for (TupleRef t : a.tuples()) {
    if (!b.Contains(t)) out.Insert(t);
  }
  return out;
}

}  // namespace mpqe
