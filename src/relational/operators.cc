#include "relational/operators.h"

#include "common/logging.h"

namespace mpqe {

bool Selection::Matches(TupleRef tuple) const {
  for (const auto& c : value_conditions) {
    if (tuple[c.column] != c.value) return false;
  }
  for (const auto& c : column_conditions) {
    if (tuple[c.left] != tuple[c.right]) return false;
  }
  return true;
}

Relation Select(const Relation& input, const Selection& selection) {
  Relation out(input.arity());
  for (TupleRef t : input.tuples()) {
    if (selection.Matches(t)) out.Insert(t);
  }
  return out;
}

Relation Project(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(columns.size());
  Tuple scratch(columns.size(), Value());
  for (TupleRef t : input.tuples()) {
    for (size_t i = 0; i < columns.size(); ++i) scratch[i] = t[columns[i]];
    out.Insert(scratch);
  }
  return out;
}

namespace {

std::vector<size_t> LeftColumns(const std::vector<JoinColumn>& on) {
  std::vector<size_t> cols;
  cols.reserve(on.size());
  for (const auto& jc : on) cols.push_back(jc.left);
  return cols;
}

std::vector<size_t> RightColumns(const std::vector<JoinColumn>& on) {
  std::vector<size_t> cols;
  cols.reserve(on.size());
  for (const auto& jc : on) cols.push_back(jc.right);
  return cols;
}

// Fills `key` (pre-sized scratch) with `t` projected onto `cols`.
inline void FillKey(Tuple& key, TupleRef t, const std::vector<size_t>& cols) {
  for (size_t i = 0; i < cols.size(); ++i) key[i] = t[cols[i]];
}

}  // namespace

Relation Join(const Relation& left, const Relation& right,
              const std::vector<JoinColumn>& on) {
  Relation out(left.arity() + right.arity());
  const std::vector<size_t> left_cols = LeftColumns(on);
  const std::vector<size_t> right_cols = RightColumns(on);

  // Build on the smaller side, probe with the larger. The build table
  // is a position-keyed RelationIndex over the build relation's arena;
  // probes fill a reused scratch key, so the steady state allocates
  // only for output growth.
  const bool build_left = left.size() <= right.size();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<size_t>& build_cols = build_left ? left_cols : right_cols;
  const std::vector<size_t>& probe_cols = build_left ? right_cols : left_cols;

  RelationIndex table(build_cols);
  for (size_t pos = 0; pos < build.size(); ++pos) table.Add(build, pos);

  Tuple key(on.size(), Value());
  Tuple out_row(left.arity() + right.arity(), Value());
  for (size_t pos = 0; pos < probe.size(); ++pos) {
    TupleRef p = probe.tuple(pos);
    FillKey(key, p, probe_cols);
    const std::vector<size_t>* hits = table.Lookup(build, key);
    if (hits == nullptr) continue;
    for (size_t bpos : *hits) {
      TupleRef b = build.tuple(bpos);
      TupleRef l = build_left ? b : p;
      TupleRef r = build_left ? p : b;
      std::copy(l.begin(), l.end(), out_row.begin());
      std::copy(r.begin(), r.end(), out_row.begin() + left.arity());
      out.Insert(out_row);
    }
  }
  return out;
}

Relation SemiJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinColumn>& on) {
  Relation out(left.arity());
  const std::vector<size_t> left_cols = LeftColumns(on);
  const std::vector<size_t> right_cols = RightColumns(on);

  RelationIndex keys(right_cols);
  for (size_t pos = 0; pos < right.size(); ++pos) keys.Add(right, pos);

  Tuple key(on.size(), Value());
  for (size_t pos = 0; pos < left.size(); ++pos) {
    TupleRef t = left.tuple(pos);
    FillKey(key, t, left_cols);
    if (keys.Lookup(right, key) != nullptr) out.Insert(t);
  }
  return out;
}

Relation Union(const Relation& a, const Relation& b) {
  MPQE_CHECK(a.arity() == b.arity());
  Relation out(a.arity());
  for (TupleRef t : a.tuples()) out.Insert(t);
  for (TupleRef t : b.tuples()) out.Insert(t);
  return out;
}

Relation Difference(const Relation& a, const Relation& b) {
  MPQE_CHECK(a.arity() == b.arity());
  Relation out(a.arity());
  for (TupleRef t : a.tuples()) {
    if (!b.Contains(t)) out.Insert(t);
  }
  return out;
}

}  // namespace mpqe
