// Relation: a duplicate-free multiset of fixed-arity tuples with
// insertion-order iteration and incrementally maintained hash indexes.
//
// Duplicate elimination is load-bearing for the whole system: the paper
// relies on it so that "nodes become idle when the computation is
// complete" (§1.2) — cycles of messages terminate because re-derived
// tuples are dropped.
//
// Storage layout: all values live in one contiguous arena
// (std::vector<Value>) strided by arity; a tuple is addressed by its
// row id (insertion order) and read through a TupleRef view, so no
// read path materializes an owning copy. Duplicate elimination and the
// column indexes are open-addressing (linear probe, power-of-two) hash
// tables whose entries are row ids — hashing and equality read the
// arena in place, so each tuple is stored exactly once.
//
// Indexes are registered on demand via EnsureIndex({cols...}) and kept
// current by Insert, so engine processes can interleave probes and
// inserts freely. Row ids are stable: positions never move or get
// reused, which the engine relies on for replaying answer streams.

#ifndef MPQE_RELATIONAL_RELATION_H_
#define MPQE_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/tuple.h"

namespace mpqe {

class Relation;

// Hash index over a subset of columns. Bucket keys are row positions
// into the owning relation's arena — the projected key tuples are
// never materialized; hashing and comparison read the arena in place.
// The owning relation is passed into each call (instead of stored)
// so Relation stays freely copyable and movable.
class RelationIndex {
 public:
  explicit RelationIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Adds arena row `position` of `rel` to the index.
  void Add(const Relation& rel, size_t position);

  /// Returns positions of tuples whose projection on key_columns equals
  /// `key` (one value per key column, in key-column order), or nullptr
  /// if none.
  const std::vector<size_t>* Lookup(const Relation& rel, TupleRef key) const;

 private:
  struct Group {
    uint64_t hash = 0;               // projected-key hash, shared by rows
    std::vector<size_t> positions;   // rows with this key, insertion order
  };

  uint64_t HashRowKey(const Relation& rel, size_t position) const;
  bool RowKeyEquals(const Relation& rel, size_t position, TupleRef key) const;
  bool RowKeysEqual(const Relation& rel, size_t a, size_t b) const;
  void Grow();

  std::vector<size_t> key_columns_;
  std::vector<uint32_t> slots_;  // group id + 1; 0 = empty
  std::vector<Group> groups_;
};

class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Inserts a copy of `tuple` if not already present; returns true if
  /// inserted. The tuple's size must equal arity().
  bool Insert(TupleRef tuple);

  bool Contains(TupleRef tuple) const;

  /// View of the tuple at `position` (a row id in [0, size())). Stable
  /// across Inserts in identity, but the underlying pointer may move
  /// when the arena grows — do not hold TupleRefs across Insert.
  TupleRef tuple(size_t position) const {
    return TupleRef(values_.data() + position * arity_, arity_);
  }

  // Insertion-order iteration over TupleRef views; tuples() is stable
  // across Inserts (positions never move), which the engine relies on
  // for replaying answer streams.
  // Row-id based so zero-arity relations (stride 0, e.g. magic-set
  // seed relations holding the empty tuple) still iterate size() times.
  class const_iterator {
   public:
    const_iterator(const Relation* rel, size_t row) : rel_(rel), row_(row) {}
    TupleRef operator*() const { return rel_->tuple(row_); }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return row_ == o.row_; }
    bool operator!=(const const_iterator& o) const { return row_ != o.row_; }

   private:
    const Relation* rel_;
    size_t row_;
  };

  class TupleRange {
   public:
    explicit TupleRange(const Relation* rel) : rel_(rel) {}
    const_iterator begin() const { return const_iterator(rel_, 0); }
    const_iterator end() const { return const_iterator(rel_, rel_->num_rows_); }
    size_t size() const { return rel_->num_rows_; }
    bool empty() const { return rel_->num_rows_ == 0; }
    TupleRef operator[](size_t i) const { return rel_->tuple(i); }

   private:
    const Relation* rel_;
  };

  /// Tuples in insertion order.
  TupleRange tuples() const { return TupleRange(this); }

  /// Registers (or finds) an incrementally maintained index on
  /// `key_columns` and returns its handle for Probe().
  size_t EnsureIndex(const std::vector<size_t>& key_columns);

  /// Positions of tuples matching `key` on the index's key columns.
  const std::vector<size_t>* Probe(size_t index_handle, TupleRef key) const;

  /// Sorted copy of the tuples (for deterministic output/comparison).
  std::vector<Tuple> SortedTuples() const;

  friend bool operator==(const Relation& a, const Relation& b);

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  friend class RelationIndex;

  bool RowEquals(size_t position, TupleRef tuple) const;
  void GrowDedup();

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<Value> values_;     // arena: arity_ values per row
  std::vector<uint64_t> hashes_;  // per-row full-tuple hash
  std::vector<uint32_t> slots_;   // dedup table: row id + 1; 0 = empty
  std::vector<RelationIndex> indexes_;
};

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_RELATION_H_
