// Relation: a duplicate-free multiset of fixed-arity tuples with
// insertion-order iteration and incrementally maintained hash indexes.
//
// Duplicate elimination is load-bearing for the whole system: the paper
// relies on it so that "nodes become idle when the computation is
// complete" (§1.2) — cycles of messages terminate because re-derived
// tuples are dropped.
//
// Indexes are registered on demand via EnsureIndex({cols...}) and kept
// current by Insert, so engine processes can interleave probes and
// inserts freely.

#ifndef MPQE_RELATIONAL_RELATION_H_
#define MPQE_RELATIONAL_RELATION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/tuple.h"

namespace mpqe {

// Hash index over a subset of columns: key = projected tuple,
// value = indexes into the relation's tuple vector.
class RelationIndex {
 public:
  explicit RelationIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  void Add(const Tuple& tuple, size_t position);

  /// Returns positions of tuples whose projection on key_columns equals
  /// `key`, or nullptr if none.
  const std::vector<size_t>* Lookup(const Tuple& key) const;

 private:
  std::vector<size_t> key_columns_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets_;
};

class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `tuple` if not already present; returns true if inserted.
  /// The tuple's size must equal arity().
  bool Insert(Tuple tuple);

  bool Contains(const Tuple& tuple) const {
    return seen_.count(tuple) != 0;
  }

  /// Tuples in insertion order. Stable across Inserts (positions never
  /// move), which the engine relies on for replaying answer streams.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  const Tuple& tuple(size_t position) const { return tuples_[position]; }

  /// Registers (or finds) an incrementally maintained index on
  /// `key_columns` and returns its handle for Probe().
  size_t EnsureIndex(const std::vector<size_t>& key_columns);

  /// Positions of tuples matching `key` on the index's key columns.
  const std::vector<size_t>* Probe(size_t index_handle,
                                   const Tuple& key) const;

  /// Sorted copy of the tuples (for deterministic output/comparison).
  std::vector<Tuple> SortedTuples() const;

  friend bool operator==(const Relation& a, const Relation& b);

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> seen_;
  std::vector<RelationIndex> indexes_;
};

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_RELATION_H_
