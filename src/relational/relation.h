// Relation: a duplicate-free multiset of fixed-arity tuples with
// insertion-order iteration and incrementally maintained hash indexes.
//
// Duplicate elimination is load-bearing for the whole system: the paper
// relies on it so that "nodes become idle when the computation is
// complete" (§1.2) — cycles of messages terminate because re-derived
// tuples are dropped.
//
// Storage layout: all values live in one contiguous arena
// (std::vector<Value>) strided by arity; a tuple is addressed by its
// row id (insertion order) and read through a TupleRef view, so no
// read path materializes an owning copy. Duplicate elimination and the
// column indexes are open-addressing (linear probe, power-of-two) hash
// tables whose entries are row ids — hashing and equality read the
// arena in place, so each tuple is stored exactly once.
//
// Indexes are registered on demand via EnsureIndex({cols...}) and kept
// current by Insert, so engine processes can interleave probes and
// inserts freely. Row ids are stable: positions never move or get
// reused, which the engine relies on for replaying answer streams.

#ifndef MPQE_RELATIONAL_RELATION_H_
#define MPQE_RELATIONAL_RELATION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "relational/tuple.h"

namespace mpqe {

class Relation;

// Sentinel for "no lineage id" (lineage disabled, or no id attached).
inline constexpr uint64_t kNoTupleId = ~uint64_t{0};

// Allocates globally unique, monotonically increasing 64-bit tuple
// ids. One allocator is shared by every relation of an evaluation so
// that numeric id order is consistent with derivation order: a derived
// tuple's inputs were allocated (hence numbered) strictly before it,
// which makes the lineage graph a DAG by construction (obs/lineage.h).
// fetch_add keeps allocation safe from concurrent node processes.
class TupleIdAllocator {
 public:
  uint64_t Allocate() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Ids handed out so far (all ids are in [0, allocated())).
  uint64_t allocated() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_{0};
};

// Result of a batch insert (Relation::InsertBlock / InsertSegment).
// Row dispositions are reported in segment order: rows[r] is the row id
// input row r landed on — a freshly appended row when it was new, the
// original row on a duplicate hit — which is exactly the order lineage
// batching (PublishDeriveBatch) needs. The object is a reusable scratch
// owned by the relation; it is valid until the next batch insert.
struct BatchInsertResult {
  size_t num_rows = 0;
  size_t num_inserted = 0;
  std::vector<uint64_t> inserted_bits;  // bit r set = input row r was new
  std::vector<size_t> rows;             // per input row: its row id

  bool inserted(size_t r) const {
    return ((inserted_bits[r >> 6] >> (r & 63)) & 1) != 0;
  }
  bool all_inserted() const { return num_inserted == num_rows; }
};

// Hash index over a subset of columns. Bucket keys are row positions
// into the owning relation's arena — the projected key tuples are
// never materialized; hashing and comparison read the arena in place.
// The owning relation is passed into each call (instead of stored)
// so Relation stays freely copyable and movable.
class RelationIndex {
 public:
  explicit RelationIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Adds arena row `position` of `rel` to the index.
  void Add(const Relation& rel, size_t position);

  /// Returns positions of tuples whose projection on key_columns equals
  /// `key` (one value per key column, in key-column order), or nullptr
  /// if none.
  const std::vector<size_t>* Lookup(const Relation& rel, TupleRef key) const;

  /// Lookup with a precomputed key hash (must equal the FNV/HashCombine
  /// hash Lookup derives from `key`) — the batch-probe path hashes all
  /// keys in one columnar pass and resolves each here.
  const std::vector<size_t>* LookupHashed(const Relation& rel, TupleRef key,
                                          uint64_t hash) const;

  /// Batch lookup over a columnar key block (`num_rows` keys of
  /// key_columns().size() values each, row-major). Matching arena
  /// positions are appended to `positions`; `offsets` is rewritten to
  /// num_rows + 1 entries so key r's matches are
  /// positions[offsets[r] .. offsets[r+1]). A per-key Lookup serializes
  /// a chain of dependent cache misses (slot line, group record,
  /// position buffer, arena row); this kernel stages the chain across
  /// chunks of keys with software prefetching so the misses overlap —
  /// the point of probing whole segments at once.
  void LookupBlock(const Relation& rel, const Value* keys, size_t num_rows,
                   std::vector<size_t>& offsets,
                   std::vector<size_t>& positions) const;

  /// Drops every entry but keeps the slot array's capacity (the
  /// reusable-scratch idiom behind Relation::Clear).
  void Clear();

 private:
  struct Group {
    uint64_t hash = 0;               // projected-key hash, shared by rows
    std::vector<size_t> positions;   // rows with this key, insertion order
  };

  uint64_t HashRowKey(const Relation& rel, size_t position) const;
  bool RowKeyEquals(const Relation& rel, size_t position, TupleRef key) const;
  bool RowKeysEqual(const Relation& rel, size_t a, size_t b) const;
  void Grow();

  std::vector<size_t> key_columns_;
  std::vector<uint32_t> slots_;  // group id + 1; 0 = empty
  std::vector<Group> groups_;
};

class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  struct InsertResult {
    size_t row = 0;        // the tuple's row (existing row on a duplicate)
    bool inserted = false; // whether a new row was created
  };

  /// Inserts a copy of `tuple` if not already present. Returns the
  /// tuple's row — the original row on a duplicate hit, so callers see
  /// the *first* insertion's identity (and lineage id) for re-derived
  /// tuples. The tuple's size must equal arity().
  InsertResult InsertRow(TupleRef tuple);

  /// Inserts a copy of `tuple` if not already present; returns true if
  /// inserted. The tuple's size must equal arity().
  bool Insert(TupleRef tuple) { return InsertRow(tuple).inserted; }

  /// Batch insert kernel: inserts every row of a columnar block
  /// (`num_rows` rows of arity() values each, row-major — the
  /// TupleSegment wire layout). All row hashes are computed in one pass
  /// over the contiguous block, arena and dedup-table capacity are
  /// reserved once for the worst case, then rows are bulk-inserted with
  /// no per-row growth checks. Intra-block duplicates dedup against
  /// earlier rows of the same block. The block must not alias this
  /// relation's own arena. The result is a reusable scratch valid until
  /// the next batch insert on this relation; see BatchInsertResult for
  /// the segment-order row-id guarantee lineage batching relies on.
  const BatchInsertResult& InsertBlock(const Value* values, size_t num_rows);

  /// InsertBlock over anything shaped like a msg TupleSegment (fields
  /// `arity`, `num_rows`, contiguous row-major `values`). Templated so
  /// relational/ stays independent of the msg/ layer.
  template <typename Segment>
  const BatchInsertResult& InsertSegment(const Segment& segment) {
    CheckBlockArity(segment.arity);
    return InsertBlock(segment.values.data(), segment.num_rows);
  }

  bool Contains(TupleRef tuple) const;

  /// View of the tuple at `position` (a row id in [0, size())). Stable
  /// across Inserts in identity, but the underlying pointer may move
  /// when the arena grows — do not hold TupleRefs across Insert.
  TupleRef tuple(size_t position) const {
    return TupleRef(values_.data() + position * arity_, arity_);
  }

  // Insertion-order iteration over TupleRef views; tuples() is stable
  // across Inserts (positions never move), which the engine relies on
  // for replaying answer streams.
  // Row-id based so zero-arity relations (stride 0, e.g. magic-set
  // seed relations holding the empty tuple) still iterate size() times.
  class const_iterator {
   public:
    const_iterator(const Relation* rel, size_t row) : rel_(rel), row_(row) {}
    TupleRef operator*() const { return rel_->tuple(row_); }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return row_ == o.row_; }
    bool operator!=(const const_iterator& o) const { return row_ != o.row_; }

   private:
    const Relation* rel_;
    size_t row_;
  };

  class TupleRange {
   public:
    explicit TupleRange(const Relation* rel) : rel_(rel) {}
    const_iterator begin() const { return const_iterator(rel_, 0); }
    const_iterator end() const { return const_iterator(rel_, rel_->num_rows_); }
    size_t size() const { return rel_->num_rows_; }
    bool empty() const { return rel_->num_rows_ == 0; }
    TupleRef operator[](size_t i) const { return rel_->tuple(i); }

   private:
    const Relation* rel_;
  };

  /// Tuples in insertion order.
  TupleRange tuples() const { return TupleRange(this); }

  /// Switches on per-row lineage ids drawn from `ids` (not owned; must
  /// outlive the relation). Existing rows are numbered immediately in
  /// row order; later inserts number new rows as they land, and
  /// duplicate hits keep the original row's id — the first derivation
  /// wins, mirroring duplicate elimination. Calling again with the same
  /// allocator is a no-op; a different allocator renumbers all rows
  /// (a fresh evaluation over the same database).
  void EnableLineage(TupleIdAllocator* ids);

  bool lineage_enabled() const { return lineage_ids_ != nullptr; }

  /// The lineage id of the tuple at `position`, or kNoTupleId when
  /// lineage is disabled. Ids are as stable as row ids: they attach to
  /// positions, which never move or get reused across arena growth.
  uint64_t row_id(size_t position) const {
    return lineage_ids_ == nullptr ? kNoTupleId : row_ids_[position];
  }

  /// Registers (or finds) an incrementally maintained index on
  /// `key_columns` and returns its handle for Probe().
  size_t EnsureIndex(const std::vector<size_t>& key_columns);

  /// Handle of an existing index on `key_columns`, or false. Never
  /// mutates the relation — the probe path for shared, immutable
  /// database snapshots whose indexes were registered at plan time
  /// (missing indexes degrade to scans instead of racing a build).
  bool FindIndex(const std::vector<size_t>& key_columns,
                 size_t* handle) const;

  /// Positions of tuples matching `key` on the index's key columns.
  const std::vector<size_t>* Probe(size_t index_handle, TupleRef key) const;

  /// Batch probe kernel: probes `index_handle` for every row of a
  /// columnar key block (`num_rows` keys, each one value per index key
  /// column in key-column order, row-major and contiguous — a
  /// TupleSegment value block whose arity equals the key width). Key
  /// hashes are computed in a single pass over the block; matching
  /// arena positions are APPENDED to the caller-owned scratch
  /// `positions`, and `offsets` is rewritten to `num_rows + 1` entries
  /// so key r's matches are positions[offsets[r] .. offsets[r+1]).
  /// Reusing the same scratch vectors across calls makes the steady
  /// state allocation-free.
  void ProbeBlock(size_t index_handle, const Value* keys, size_t num_rows,
                  std::vector<size_t>& offsets,
                  std::vector<size_t>& positions) const;

  /// ProbeBlock over anything shaped like a msg TupleSegment whose rows
  /// are the probe keys (segment.arity == the index's key width).
  template <typename Segment>
  void ProbeSegment(size_t index_handle, const Segment& segment,
                    std::vector<size_t>& offsets,
                    std::vector<size_t>& positions) const {
    ProbeBlock(index_handle, segment.values.data(), segment.num_rows, offsets,
               positions);
  }

  /// Removes every row but keeps capacity — arena, per-row hash vector,
  /// dedup table, and index registrations all survive with their
  /// allocations intact. The reusable-scratch idiom for per-request
  /// dedup relations (EdbProcess). Lineage stays enabled; cleared rows'
  /// ids are simply retired.
  void Clear();

  /// Sorted copy of the tuples (for deterministic output/comparison).
  std::vector<Tuple> SortedTuples() const;

  friend bool operator==(const Relation& a, const Relation& b);

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  friend class RelationIndex;

  bool RowEquals(size_t position, TupleRef tuple) const;
  void GrowDedup();
  void RebuildDedup(size_t capacity);
  void ReserveRows(size_t total_rows);
  void CheckBlockArity(size_t block_arity) const;

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<Value> values_;     // arena: arity_ values per row
  std::vector<uint64_t> hashes_;  // per-row full-tuple hash
  std::vector<uint32_t> slots_;   // dedup table: row id + 1; 0 = empty
  std::vector<RelationIndex> indexes_;
  TupleIdAllocator* lineage_ids_ = nullptr;  // null = lineage off
  std::vector<uint64_t> row_ids_;            // per-row id when enabled
  std::vector<uint64_t> batch_hashes_;       // InsertBlock hash scratch
  BatchInsertResult batch_result_;           // InsertBlock result scratch
};

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_RELATION_H_
