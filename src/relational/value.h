// Scalar values and symbol interning.
//
// A Value is an 8-byte tagged scalar: either a 64-bit integer or an
// interned symbol (constant like `a` or `"San Jose"` in Datalog text).
// Symbols are interned in a SymbolTable owned by the Database so that
// equality and hashing are O(1) integer operations everywhere in the
// engine; strings are only materialized when printing.

#ifndef MPQE_RELATIONAL_VALUE_H_
#define MPQE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace mpqe {

class SymbolTable;

// An immutable scalar: integer or interned symbol.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kSymbol = 1 };

  Value() : kind_(Kind::kInt), payload_(0) {}

  static Value Int(int64_t v) { return Value(Kind::kInt, v); }
  static Value Symbol(int64_t id) { return Value(Kind::kSymbol, id); }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }

  /// Integer payload; for symbols this is the intern id.
  int64_t payload() const { return payload_; }

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.payload_ == b.payload_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  // Total order: all ints precede all symbols; then by payload.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.payload_ < b.payload_;
  }

  /// Renders the value; symbols are resolved through `symbols` if given,
  /// otherwise printed as `$<id>`.
  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  Value(Kind kind, int64_t payload) : kind_(kind), payload_(payload) {}

  Kind kind_;
  int64_t payload_;
};

// Bidirectional string<->id interning. Thread-safe: the engine's node
// processes may intern trace strings concurrently under the threaded
// scheduler.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use.
  int64_t Intern(std::string_view name);

  /// Returns the symbol Value for `name` (convenience over Intern).
  Value Symbol(std::string_view name) { return Value::Symbol(Intern(name)); }

  /// Returns the name for `id`, or "$<id>" if unknown.
  std::string Name(int64_t id) const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, int64_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace mpqe

namespace std {
template <>
struct hash<mpqe::Value> {
  size_t operator()(const mpqe::Value& v) const {
    size_t seed = static_cast<size_t>(v.kind());
    mpqe::HashCombine(seed, std::hash<int64_t>{}(v.payload()));
    return seed;
  }
};
}  // namespace std

#endif  // MPQE_RELATIONAL_VALUE_H_
