// Relational-algebra operators over Relation. The paper's node
// processes "combine their subgoal relations using join, select, and
// project" (§2.2) and class-`d` arguments "function as a semi-join
// operand" (§1.2); these kernels are that vocabulary.

#ifndef MPQE_RELATIONAL_OPERATORS_H_
#define MPQE_RELATIONAL_OPERATORS_H_

#include <cstddef>
#include <vector>

#include "relational/relation.h"

namespace mpqe {

// Selection predicate: conjunctive column=constant and column=column
// equality conditions.
struct Selection {
  struct ColumnEqualsValue {
    size_t column;
    Value value;
  };
  struct ColumnEqualsColumn {
    size_t left;
    size_t right;
  };

  std::vector<ColumnEqualsValue> value_conditions;
  std::vector<ColumnEqualsColumn> column_conditions;

  /// True iff `tuple` satisfies every condition.
  bool Matches(TupleRef tuple) const;
};

/// σ: tuples of `input` satisfying `selection`.
Relation Select(const Relation& input, const Selection& selection);

/// π: projection onto `columns` with duplicate elimination.
Relation Project(const Relation& input, const std::vector<size_t>& columns);

// One equi-join condition: left tuple column == right tuple column.
struct JoinColumn {
  size_t left;
  size_t right;
};

/// ⋈: hash equi-join. Output tuples are the concatenation
/// (left columns..., right columns...); callers project afterwards.
/// Builds a hash table on the smaller input.
Relation Join(const Relation& left, const Relation& right,
              const std::vector<JoinColumn>& on);

/// ⋉: tuples of `left` that join with at least one tuple of `right`.
Relation SemiJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinColumn>& on);

/// ∪ (same arity).
Relation Union(const Relation& a, const Relation& b);

/// a − b (same arity).
Relation Difference(const Relation& a, const Relation& b);

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_OPERATORS_H_
