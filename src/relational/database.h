// Database: the EDB — a catalog of named base relations plus the
// symbol table that interns all constants appearing anywhere in the
// system (EDB facts, rules, and queries).

#ifndef MPQE_RELATIONAL_DATABASE_H_
#define MPQE_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace mpqe {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty relation `name` with the given arity. Fails if a
  /// relation of the same name but different arity exists.
  Status CreateRelation(std::string_view name, size_t arity);

  bool HasRelation(std::string_view name) const;

  /// Returns the relation, or nullptr if absent.
  const Relation* GetRelation(std::string_view name) const;
  Relation* GetMutableRelation(std::string_view name);

  /// Inserts one fact, creating the relation on first use.
  /// Returns true if the tuple was new.
  StatusOr<bool> InsertFact(std::string_view name, Tuple tuple);

  /// Total number of facts across all relations.
  size_t TotalFacts() const;

  std::vector<std::string> RelationNames() const;

  SymbolTable& symbols() { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }

  /// Shorthand: interned symbol value for `name`.
  Value Sym(std::string_view name) { return symbols_->Symbol(name); }

 private:
  // unique_ptr so Database stays movable while SymbolTable (with its
  // mutex) is not.
  std::unique_ptr<SymbolTable> symbols_ = std::make_unique<SymbolTable>();
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace mpqe

#endif  // MPQE_RELATIONAL_DATABASE_H_
