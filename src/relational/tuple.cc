#include "relational/tuple.h"

#include <ostream>

#include "common/string_util.h"

namespace mpqe {

Tuple ProjectTuple(TupleRef tuple, const std::vector<size_t>& columns) {
  Tuple out;
  out.reserve(columns.size());
  for (size_t c : columns) out.push_back(tuple[c]);
  return out;
}

std::string TupleToString(TupleRef tuple, const SymbolTable* symbols) {
  return StrCat("(",
                StrJoin(tuple, ", ",
                        [symbols](std::ostream& os, const Value& v) {
                          os << v.ToString(symbols);
                        }),
                ")");
}

std::ostream& operator<<(std::ostream& os, TupleRef tuple) {
  return os << TupleToString(tuple);
}

}  // namespace mpqe
