#include "relational/tuple.h"

#include "common/string_util.h"

namespace mpqe {

Tuple ProjectTuple(const Tuple& tuple, const std::vector<size_t>& columns) {
  Tuple out;
  out.reserve(columns.size());
  for (size_t c : columns) out.push_back(tuple[c]);
  return out;
}

std::string TupleToString(const Tuple& tuple, const SymbolTable* symbols) {
  return StrCat("(",
                StrJoin(tuple, ", ",
                        [symbols](std::ostream& os, const Value& v) {
                          os << v.ToString(symbols);
                        }),
                ")");
}

}  // namespace mpqe
