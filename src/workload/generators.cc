#include "workload/generators.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/string_util.h"

namespace mpqe {
namespace workload {
namespace {

Status AddEdge(Database& db, std::string_view name, int64_t a, int64_t b) {
  return db.InsertFact(name, {Value::Int(a), Value::Int(b)}).status();
}

}  // namespace

Status MakeChain(Database& db, std::string_view name, int64_t n) {
  MPQE_RETURN_IF_ERROR(db.CreateRelation(name, 2));
  for (int64_t i = 0; i + 1 < n; ++i) {
    MPQE_RETURN_IF_ERROR(AddEdge(db, name, i, i + 1));
  }
  return Status::Ok();
}

Status MakeCycle(Database& db, std::string_view name, int64_t n) {
  MPQE_RETURN_IF_ERROR(db.CreateRelation(name, 2));
  for (int64_t i = 0; i < n; ++i) {
    MPQE_RETURN_IF_ERROR(AddEdge(db, name, i, (i + 1) % n));
  }
  return Status::Ok();
}

Status MakeBinaryTree(Database& db, std::string_view name, int64_t n) {
  MPQE_RETURN_IF_ERROR(db.CreateRelation(name, 2));
  for (int64_t i = 0; i < n; ++i) {
    if (2 * i + 1 < n) MPQE_RETURN_IF_ERROR(AddEdge(db, name, i, 2 * i + 1));
    if (2 * i + 2 < n) MPQE_RETURN_IF_ERROR(AddEdge(db, name, i, 2 * i + 2));
  }
  return Status::Ok();
}

Status MakeRandomGraph(Database& db, std::string_view name, int64_t n,
                       int64_t out_degree, Rng& rng) {
  MPQE_RETURN_IF_ERROR(db.CreateRelation(name, 2));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < out_degree; ++k) {
      MPQE_RETURN_IF_ERROR(
          AddEdge(db, name, i, static_cast<int64_t>(rng.Below(
                                   static_cast<uint64_t>(n)))));
    }
  }
  return Status::Ok();
}

Status MakeGrid(Database& db, std::string_view name, int64_t rows,
                int64_t cols) {
  MPQE_RETURN_IF_ERROR(db.CreateRelation(name, 2));
  auto id = [cols](int64_t r, int64_t c) { return r * cols + c; };
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (r + 1 < rows) {
        MPQE_RETURN_IF_ERROR(AddEdge(db, name, id(r, c), id(r + 1, c)));
      }
      if (c + 1 < cols) {
        MPQE_RETURN_IF_ERROR(AddEdge(db, name, id(r, c), id(r, c + 1)));
      }
    }
  }
  return Status::Ok();
}

std::string LinearTcProgram(int64_t from) {
  return StrCat(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "?- tc(", from, ", W).\n");
}

std::string LeftRecursiveTcProgram(int64_t from) {
  return StrCat(
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "tc(X, Y) :- edge(X, Y).\n"
      "?- tc(", from, ", W).\n");
}

std::string NonlinearTcProgram(int64_t from) {
  return StrCat(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n"
      "?- tc(", from, ", W).\n");
}

std::string P1Program(int64_t from) {
  return StrCat(
      "p(X, Y) :- p(X, V), q(V, W), p(W, Y).\n"
      "p(X, Y) :- r(X, Y).\n"
      "?- p(", from, ", Z).\n");
}

std::string SameGenerationProgram(int64_t from) {
  return StrCat(
      "sg(X, X) :- person(X).\n"
      "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n"
      "?- sg(", from, ", W).\n");
}

StatusOr<RandomProgram> MakeRandomProgram(const RandomProgramOptions& options,
                                          Rng& rng) {
  std::string text;

  // Fixed arities per predicate.
  std::vector<int> edb_arity(static_cast<size_t>(options.edb_predicates));
  std::vector<int> idb_arity(static_cast<size_t>(options.idb_predicates));
  for (auto& a : edb_arity) {
    a = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(options.max_arity)));
  }
  for (auto& a : idb_arity) {
    a = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(options.max_arity)));
  }

  // Facts.
  for (int e = 0; e < options.edb_predicates; ++e) {
    for (int f = 0; f < options.edb_facts_per_relation; ++f) {
      std::vector<std::string> consts;
      for (int i = 0; i < edb_arity[static_cast<size_t>(e)]; ++i) {
        consts.push_back(StrCat(
            rng.Below(static_cast<uint64_t>(options.edb_nodes))));
      }
      text += StrCat("e", e, "(", StrJoin(consts, ", "), ").\n");
    }
  }

  // Rules. Variables come from a small shared pool so atoms join.
  const int var_pool = options.max_arity + 2;
  auto random_var = [&] {
    return StrCat("V", rng.Below(static_cast<uint64_t>(var_pool)));
  };
  for (int p = 0; p < options.idb_predicates; ++p) {
    for (int r = 0; r < options.rules_per_idb; ++r) {
      int arity = idb_arity[static_cast<size_t>(p)];
      std::vector<std::string> head_vars;
      for (int i = 0; i < arity; ++i) head_vars.push_back(StrCat("V", i));

      std::vector<std::string> body;
      std::set<std::string> body_vars;
      int atoms = 1 + static_cast<int>(
                          rng.Below(static_cast<uint64_t>(options.max_body_atoms)));
      for (int a = 0; a < atoms; ++a) {
        bool use_idb = rng.Chance(options.recursion_bias) &&
                       options.idb_predicates > 0;
        std::string pred;
        int pred_arity;
        if (use_idb) {
          int q = static_cast<int>(
              rng.Below(static_cast<uint64_t>(options.idb_predicates)));
          pred = StrCat("p", q);
          pred_arity = idb_arity[static_cast<size_t>(q)];
        } else {
          int q = static_cast<int>(
              rng.Below(static_cast<uint64_t>(options.edb_predicates)));
          pred = StrCat("e", q);
          pred_arity = edb_arity[static_cast<size_t>(q)];
        }
        std::vector<std::string> args;
        for (int i = 0; i < pred_arity; ++i) {
          if (rng.Chance(0.15)) {
            args.push_back(StrCat(
                rng.Below(static_cast<uint64_t>(options.edb_nodes))));
          } else {
            std::string v = random_var();
            body_vars.insert(v);
            args.push_back(v);
          }
        }
        body.push_back(StrCat(pred, "(", StrJoin(args, ", "), ")"));
      }
      // Safety: every head variable must occur in the body; patch with
      // an EDB atom per missing variable.
      for (const std::string& hv : head_vars) {
        if (body_vars.count(hv) != 0) continue;
        int q = static_cast<int>(
            rng.Below(static_cast<uint64_t>(options.edb_predicates)));
        std::vector<std::string> args;
        for (int i = 0; i < edb_arity[static_cast<size_t>(q)]; ++i) {
          args.push_back(hv);  // repeated variable is fine
        }
        body.push_back(StrCat("e", q, "(", StrJoin(args, ", "), ")"));
        body_vars.insert(hv);
      }
      text += StrCat("p", p, "(", StrJoin(head_vars, ", "),
                     ") :- ", StrJoin(body, ", "), ".\n");
    }
  }

  // Query the last IDB predicate with a bound first argument.
  int qp = options.idb_predicates - 1;
  int qarity = idb_arity[static_cast<size_t>(qp)];
  std::vector<std::string> qargs;
  qargs.push_back(StrCat(rng.Below(static_cast<uint64_t>(options.edb_nodes))));
  for (int i = 1; i < qarity; ++i) qargs.push_back(StrCat("Q", i));
  text += StrCat("?- p", qp, "(", StrJoin(qargs, ", "), ").\n");

  RandomProgram out;
  out.text = text;
  MPQE_ASSIGN_OR_RETURN(out.unit, Parse(text));
  MPQE_RETURN_IF_ERROR(out.unit.program.Validate(&out.unit.database));
  return out;
}

}  // namespace workload
}  // namespace mpqe
