// Workload generators for tests, examples, and the benchmark harness:
// graph-shaped EDBs, the canonical programs the paper discusses
// (including P1 from Example 2.1), and random safe Datalog programs
// for differential property testing.

#ifndef MPQE_WORKLOAD_GENERATORS_H_
#define MPQE_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "relational/database.h"

namespace mpqe {
namespace workload {

// --- EDB graph generators -------------------------------------------------
// All populate binary relation `name` over integer node ids 0..n-1.

/// Chain: i -> i+1.
Status MakeChain(Database& db, std::string_view name, int64_t n);

/// Cycle: i -> (i+1) mod n.
Status MakeCycle(Database& db, std::string_view name, int64_t n);

/// Complete binary tree with edges parent -> child, nodes 0..n-1.
Status MakeBinaryTree(Database& db, std::string_view name, int64_t n);

/// Random digraph: each node gets `out_degree` random successors.
Status MakeRandomGraph(Database& db, std::string_view name, int64_t n,
                       int64_t out_degree, Rng& rng);

/// Grid: node (r,c) -> (r+1,c) and (r,c+1), ids row-major.
Status MakeGrid(Database& db, std::string_view name, int64_t rows,
                int64_t cols);

// --- Canonical programs ---------------------------------------------------
// Each returns program text to be combined with an EDB built above.

/// Right-linear transitive closure over `edge`, query tc(<from>, Z).
std::string LinearTcProgram(int64_t from);

/// Left-recursive transitive closure (Prolog's nemesis).
std::string LeftRecursiveTcProgram(int64_t from);

/// Nonlinear transitive closure: tc(X,Y) :- tc(X,Z), tc(Z,Y).
std::string NonlinearTcProgram(int64_t from);

/// The paper's P1 (Example 2.1) over EDB relations q and r:
///   goal(Z) :- p(a, Z).
///   p(X, Y) :- p(X, V), q(V, W), p(W, Y).
///   p(X, Y) :- r(X, Y).
/// `from` is the query constant (an integer node id here).
std::string P1Program(int64_t from);

/// Same-generation over `par` with a bound first argument.
std::string SameGenerationProgram(int64_t from);

// --- Random safe programs -------------------------------------------------

struct RandomProgramOptions {
  int idb_predicates = 3;   // p0..pk, plus goal
  int edb_predicates = 2;   // e0..ek
  int max_arity = 2;        // predicate arity in [1, max_arity]
  int rules_per_idb = 2;
  int max_body_atoms = 3;
  int edb_nodes = 12;       // constants 0..edb_nodes-1
  int edb_facts_per_relation = 24;
  double recursion_bias = 0.5;  // chance a rule body reuses IDB preds
};

// A generated program+EDB pair (always parses and validates).
struct RandomProgram {
  std::string text;
  ParsedUnit unit;
};

/// Generates a random range-restricted Datalog program with facts and
/// one query on the last IDB predicate with a bound first argument.
/// Every output validates; evaluation is guaranteed finite (function-
/// free, finite constants).
StatusOr<RandomProgram> MakeRandomProgram(const RandomProgramOptions& options,
                                          Rng& rng);

}  // namespace workload
}  // namespace mpqe

#endif  // MPQE_WORKLOAD_GENERATORS_H_
