// The simulated asynchronous distributed system: processes with FIFO
// mailboxes exchanging Messages through a Network. This substitutes
// for the multi-machine / multi-tasking substrate the paper assumes
// (§1.2): no shared memory between processes, arbitrary interleavings.
//
// Three schedulers:
//  * RunDeterministic — round-robin FIFO delivery; reproducible, and
//    gives tests a *global quiescence oracle* to validate Thm. 3.1;
//  * RunRandom(seed)  — random process interleaving (per-channel FIFO
//    preserved), simulating asynchrony;
//  * RunThreaded(n)   — a real thread pool with actor-style per-process
//    serialization.
//
// The engine must terminate via its own end-message protocol: a run
// normally finishes because a sink process calls RequestStop(). Runs
// also finish on global quiescence (all mailboxes empty) — the oracle
// — and report which happened.

#ifndef MPQE_MSG_NETWORK_H_
#define MPQE_MSG_NETWORK_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "msg/message.h"
#include "obs/observer.h"

namespace mpqe {

class Network;

// Which run loop drives message delivery. A run-time concern: the
// choice never affects the computed answers, only the interleaving.
enum class SchedulerKind {
  kDeterministic,  // round-robin FIFO (reproducible)
  kRandom,         // seeded random interleaving
  kThreaded,       // actual thread pool
};

/// Canonical CLI name of a scheduler ("deterministic", "random",
/// "threaded").
const char* SchedulerKindToName(SchedulerKind kind);

/// Parses a scheduler name; InvalidArgument on unknown names (the
/// message lists the valid ones).
StatusOr<SchedulerKind> SchedulerKindFromName(const std::string& name);

// Run-time parameters of one scheduler run (the per-session knobs;
// everything plan-shaped lives above the msg layer).
struct SchedulerParams {
  uint64_t seed = 1;          // kRandom only
  int workers = 4;            // kThreaded only
  uint64_t max_messages = 0;  // livelock guard; 0 = unlimited
};

// A node process. OnMessage is invoked with one message at a time;
// the Network guarantees per-process serialization in every scheduler,
// so implementations need no internal locking.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before any message is delivered (initialization
  /// phase; single-threaded).
  virtual void OnStart() {}

  virtual void OnMessage(const Message& message) = 0;

  ProcessId process_id() const { return id_; }

 protected:
  Network& network() const { return *network_; }

  /// Sends `message` to `to` (stamps `from` with this process's id).
  void Send(ProcessId to, Message message);

 private:
  friend class Network;
  ProcessId id_ = kNoProcess;
  Network* network_ = nullptr;
};

// Snapshot of per-kind message counts.
struct MessageStats {
  std::array<uint64_t, static_cast<size_t>(MessageKind::kMessageKindCount)>
      by_kind{};
  // How many of the per-kind counts above traveled inside batch
  // envelopes rather than as their own messages.
  uint64_t packaged_submessages = 0;
  // Answer tuples that traveled inside columnar segments (the
  // by_kind[kTupleSegment] entry counts envelopes, this counts rows).
  uint64_t segment_rows = 0;

  uint64_t Count(MessageKind kind) const {
    return by_kind[static_cast<size_t>(kind)];
  }
  uint64_t Total() const;
  /// Computation messages only (excludes the Fig. 2 protocol traffic
  /// and batch/segment envelopes). Sub-messages inside batches and
  /// rows inside segments are counted individually, so this is the
  /// *logical* traffic.
  uint64_t ComputationTotal() const;
  /// Fig. 2 protocol traffic only.
  uint64_t ProtocolTotal() const;
  /// Physically transmitted messages: envelopes count once, their
  /// packaged contents not at all (footnote 2's saving).
  uint64_t PhysicalTotal() const;

  std::string ToString() const;
};

struct RunResult {
  bool stopped = false;    // a process called RequestStop()
  bool quiescent = false;  // all mailboxes drained
  uint64_t delivered = 0;  // messages delivered during this run
};

// Snapshot handed to the stall-monitor callback: the threaded
// scheduler completed no delivery for the configured interval.
struct StallInfo {
  uint64_t delivered = 0;  // total deliveries completed so far this run
  size_t in_flight = 0;    // undelivered messages across all mailboxes
  int64_t stalled_ms = 0;  // time since the last completed delivery
  // Nonempty mailboxes at snapshot time: (process id, queue depth).
  std::vector<std::pair<ProcessId, size_t>> queue_depths;
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers `process` and assigns its id (== registration order).
  ProcessId AddProcess(std::unique_ptr<Process> process);

  size_t process_count() const { return processes_.size(); }
  Process& process(ProcessId id) { return *processes_[id]; }

  /// Enqueues `message` (stamped with `from`) into `to`'s mailbox.
  void Send(ProcessId from, ProcessId to, Message message);

  /// Number of undelivered messages waiting for `id`. A process may
  /// inspect its *own* count from OnMessage (the paper's
  /// empty-queues()); the deterministic scheduler also uses the global
  /// sum as the Thm. 3.1 oracle.
  size_t PendingCount(ProcessId id) const;

  /// Total undelivered messages across all mailboxes.
  size_t TotalPending() const;

  /// Signals the run loop to stop after the current message.
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Calls OnStart on every process (once, before the first run).
  void Start();

  /// Registers an ExecutionObserver (not owned; must outlive the
  /// network). Observers receive OnSend for every send (in the
  /// sender's execution context — possibly concurrent across senders
  /// under the threaded scheduler) and OnDeliver after each message is
  /// handled (serialized per receiving process). Register before
  /// Start(); see obs/observer.h for the full threading contract.
  void AddObserver(ExecutionObserver* observer) { observers_.Add(observer); }

  /// The registered observers. Engine layers use this to publish
  /// higher-level events (node firings, termination protocol) to the
  /// same audience; empty() is the zero-observer fast-path check.
  const ObserverList& observers() const { return observers_; }

  /// Installs a stall heartbeat for RunThreaded: when no delivery
  /// completes for `interval_ms`, `handler` runs (on a dedicated
  /// monitor thread, concurrently with the workers — it must be
  /// thread-safe) with a queue-depth snapshot, and again after each
  /// further stalled interval. Install before running; the
  /// single-threaded schedulers ignore it (they cannot stall silently
  /// — they either progress or return). `interval_ms <= 0` disables.
  void ConfigureStallMonitor(int interval_ms,
                             std::function<void(const StallInfo&)> handler) {
    stall_interval_ms_ = interval_ms;
    stall_handler_ = std::move(handler);
  }

  // Run until RequestStop() or global quiescence. `max_messages`
  // guards against livelock (0 = unlimited); exceeding it returns an
  // error.
  StatusOr<RunResult> RunDeterministic(uint64_t max_messages = 0);
  StatusOr<RunResult> RunRandom(uint64_t seed, uint64_t max_messages = 0);
  StatusOr<RunResult> RunThreaded(int workers, uint64_t max_messages = 0);

  /// Dispatches to the scheduler named by `kind` with the relevant
  /// `params` fields. The one entry point session runners need.
  StatusOr<RunResult> Run(SchedulerKind kind, const SchedulerParams& params);

  MessageStats stats() const;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::deque<Message> queue;
    // Threaded-scheduler actor state: 0 idle, 1 scheduled, 2 running,
    // 3 running with new mail.
    std::atomic<int> state{0};
  };

  void Deliver(ProcessId id, const Message& message);

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  ObserverList observers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int64_t> total_pending_{0};
  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(MessageKind::kMessageKindCount)>
      sent_by_kind_{};
  std::atomic<uint64_t> packaged_submessages_{0};
  std::atomic<uint64_t> segment_rows_{0};

  // Threaded-scheduler shared state.
  std::mutex ready_mutex_;
  std::condition_variable ready_cv_;
  std::deque<ProcessId> ready_;
  // Workers blocked on ready_cv_ (guarded by ready_mutex_): lets Send
  // skip the notify syscall when every worker is already busy.
  int sleeping_workers_ = 0;

  // Stall heartbeat (ConfigureStallMonitor).
  int stall_interval_ms_ = 0;
  std::function<void(const StallInfo&)> stall_handler_;
};

}  // namespace mpqe

#endif  // MPQE_MSG_NETWORK_H_
