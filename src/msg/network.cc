#include "msg/network.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace mpqe {

const char* SchedulerKindToName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDeterministic:
      return "deterministic";
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kThreaded:
      return "threaded";
  }
  return "?";
}

StatusOr<SchedulerKind> SchedulerKindFromName(const std::string& name) {
  if (name == "deterministic") return SchedulerKind::kDeterministic;
  if (name == "random") return SchedulerKind::kRandom;
  if (name == "threaded") return SchedulerKind::kThreaded;
  return InvalidArgumentError(
      StrCat("unknown scheduler \"", name,
             "\" (expected deterministic, random, or threaded)"));
}

StatusOr<RunResult> Network::Run(SchedulerKind kind,
                                 const SchedulerParams& params) {
  switch (kind) {
    case SchedulerKind::kDeterministic:
      return RunDeterministic(params.max_messages);
    case SchedulerKind::kRandom:
      return RunRandom(params.seed, params.max_messages);
    case SchedulerKind::kThreaded:
      return RunThreaded(params.workers, params.max_messages);
  }
  return InvalidArgumentError(
      StrCat("invalid scheduler value ", static_cast<int>(kind)));
}

void Process::Send(ProcessId to, Message message) {
  network_->Send(id_, to, std::move(message));
}

uint64_t MessageStats::Total() const {
  uint64_t total = 0;
  for (uint64_t c : by_kind) total += c;
  return total;
}

uint64_t MessageStats::ComputationTotal() const {
  // Envelopes (batches and segments) are transport, not computation;
  // their contents count individually (sub-messages are already in
  // by_kind, segment rows only in segment_rows).
  return Total() - ProtocolTotal() - Count(MessageKind::kBatch) -
         Count(MessageKind::kTupleSegment) + segment_rows;
}

uint64_t MessageStats::PhysicalTotal() const {
  return Total() - packaged_submessages;
}

uint64_t MessageStats::ProtocolTotal() const {
  return Count(MessageKind::kEndRequest) + Count(MessageKind::kEndNegative) +
         Count(MessageKind::kEndConfirmed);
}

std::string MessageStats::ToString() const {
  std::string out;
  for (size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    if (!out.empty()) out += " ";
    out += StrCat(MessageKindToString(static_cast<MessageKind>(k)), "=",
                  by_kind[k]);
  }
  return StrCat("{", out, "}");
}

ProcessId Network::AddProcess(std::unique_ptr<Process> process) {
  MPQE_CHECK(!started_.load()) << "cannot add processes after Start()";
  ProcessId id = static_cast<ProcessId>(processes_.size());
  process->id_ = id;
  process->network_ = this;
  processes_.push_back(std::move(process));
  mailboxes_.push_back(std::make_unique<Mailbox>());
  return id;
}

void Network::Send(ProcessId from, ProcessId to, Message message) {
  MPQE_CHECK(to >= 0 && static_cast<size_t>(to) < processes_.size())
      << "send to unknown process " << to;
  message.from = from;
  if (!observers_.empty()) {
    SendEvent event;
    event.from = from;
    event.to = to;
    event.message = &message;
    observers_.NotifySend(event);
  }
  sent_by_kind_[static_cast<size_t>(message.kind)].fetch_add(
      1, std::memory_order_relaxed);
  // Batches count once physically (above) and per sub-message
  // logically; segments count once physically and per row logically —
  // so ComputationTotal() keeps its meaning.
  if (message.kind == MessageKind::kBatch) {
    const std::vector<Message>& batch = message.batch();
    for (const Message& sub : batch) {
      sent_by_kind_[static_cast<size_t>(sub.kind)].fetch_add(
          1, std::memory_order_relaxed);
      if (sub.kind == MessageKind::kTupleSegment) {
        segment_rows_.fetch_add(sub.segment().num_rows,
                                std::memory_order_relaxed);
      }
    }
    packaged_submessages_.fetch_add(batch.size(), std::memory_order_relaxed);
  } else if (message.kind == MessageKind::kTupleSegment) {
    segment_rows_.fetch_add(message.segment().num_rows,
                            std::memory_order_relaxed);
  }
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(message));
  }
  total_pending_.fetch_add(1, std::memory_order_acq_rel);

  // Threaded scheduler: make sure the target is (or will be) scheduled.
  // Harmless no-op state churn in the single-threaded schedulers.
  for (;;) {
    int cur = box.state.load(std::memory_order_acquire);
    if (cur == 0) {
      if (box.state.compare_exchange_weak(cur, 1)) {
        bool wake;
        {
          std::lock_guard<std::mutex> lock(ready_mutex_);
          ready_.push_back(to);
          wake = sleeping_workers_ > 0;
        }
        if (wake) ready_cv_.notify_one();
        return;
      }
    } else if (cur == 2) {
      if (box.state.compare_exchange_weak(cur, 3)) return;
    } else {
      return;  // 1 or 3: already scheduled / flagged dirty
    }
  }
}

size_t Network::PendingCount(ProcessId id) const {
  const Mailbox& box = *mailboxes_[id];
  std::lock_guard<std::mutex> lock(box.mutex);
  return box.queue.size();
}

size_t Network::TotalPending() const {
  int64_t n = total_pending_.load(std::memory_order_acquire);
  return n < 0 ? 0 : static_cast<size_t>(n);
}

void Network::Start() {
  if (started_.exchange(true)) return;
  for (auto& p : processes_) p->OnStart();
}

void Network::Deliver(ProcessId id, const Message& message) {
  if (observers_.empty()) {
    processes_[id]->OnMessage(message);
  } else {
    auto start = std::chrono::steady_clock::now();
    processes_[id]->OnMessage(message);
    DeliverEvent event;
    event.from = message.from;
    event.to = id;
    event.kind = message.kind;
    if (message.kind == MessageKind::kTupleSegment) {
      event.payload_rows = message.segment().num_rows;
      event.payload_segments = 1;
    } else if (message.kind == MessageKind::kBatch) {
      for (const Message& sub : message.batch()) {
        if (sub.kind == MessageKind::kTupleSegment) {
          event.payload_rows += sub.segment().num_rows;
          ++event.payload_segments;
        }
      }
    }
    event.handle_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    observers_.NotifyDeliver(event);
  }
  total_pending_.fetch_sub(1, std::memory_order_acq_rel);
}

StatusOr<RunResult> Network::RunDeterministic(uint64_t max_messages) {
  Start();
  RunResult result;
  for (;;) {
    if (stop_requested()) {
      result.stopped = true;
      return result;
    }
    bool progressed = false;
    for (ProcessId id = 0; id < static_cast<ProcessId>(processes_.size());
         ++id) {
      Message msg;
      {
        Mailbox& box = *mailboxes_[id];
        std::lock_guard<std::mutex> lock(box.mutex);
        if (box.queue.empty()) continue;
        msg = std::move(box.queue.front());
        box.queue.pop_front();
      }
      Deliver(id, msg);
      progressed = true;
      ++result.delivered;
      if (max_messages != 0 && result.delivered > max_messages) {
        return ResourceExhaustedError(
            StrCat("deterministic run exceeded max_messages=", max_messages));
      }
      if (stop_requested()) {
        result.stopped = true;
        return result;
      }
    }
    if (!progressed) {
      result.quiescent = true;
      return result;
    }
  }
}

StatusOr<RunResult> Network::RunRandom(uint64_t seed, uint64_t max_messages) {
  Start();
  Rng rng(seed);
  RunResult result;
  size_t n = processes_.size();
  for (;;) {
    if (stop_requested()) {
      result.stopped = true;
      return result;
    }
    // Pick a uniformly random starting point and deliver from the
    // first nonempty mailbox at or after it (circularly). Per-channel
    // FIFO is preserved; global interleaving is randomized.
    size_t start = rng.Below(n);
    bool progressed = false;
    for (size_t k = 0; k < n; ++k) {
      ProcessId id = static_cast<ProcessId>((start + k) % n);
      Message msg;
      {
        Mailbox& box = *mailboxes_[id];
        std::lock_guard<std::mutex> lock(box.mutex);
        if (box.queue.empty()) continue;
        msg = std::move(box.queue.front());
        box.queue.pop_front();
      }
      Deliver(id, msg);
      progressed = true;
      ++result.delivered;
      break;
    }
    if (!progressed) {
      result.quiescent = true;
      return result;
    }
    if (max_messages != 0 && result.delivered > max_messages) {
      return ResourceExhaustedError(
          StrCat("random run exceeded max_messages=", max_messages));
    }
  }
}

StatusOr<RunResult> Network::RunThreaded(int workers, uint64_t max_messages) {
  MPQE_CHECK(workers >= 1);
  Start();

  // Seed the ready queue with processes that already have mail (their
  // state may be stale from a previous single-threaded run).
  {
    std::lock_guard<std::mutex> lock(ready_mutex_);
    ready_.clear();
    for (ProcessId id = 0; id < static_cast<ProcessId>(processes_.size());
         ++id) {
      Mailbox& box = *mailboxes_[id];
      std::lock_guard<std::mutex> mail_lock(box.mutex);
      if (!box.queue.empty()) {
        box.state.store(1);
        ready_.push_back(id);
      } else {
        box.state.store(0);
      }
    }
  }

  std::atomic<uint64_t> delivered{0};
  std::atomic<int> active{0};
  std::atomic<bool> overflow{false};

  auto worker = [&]() {
    for (;;) {
      ProcessId id;
      {
        std::unique_lock<std::mutex> lock(ready_mutex_);
        auto runnable = [&] {
          return !ready_.empty() || stop_requested() || overflow.load() ||
                 (total_pending_.load(std::memory_order_acquire) == 0 &&
                  active.load(std::memory_order_acquire) == 0);
        };
        while (!runnable()) {
          ++sleeping_workers_;
          ready_cv_.wait(lock);
          --sleeping_workers_;
        }
        if (stop_requested() || overflow.load()) return;
        if (ready_.empty()) return;  // globally quiescent
        id = ready_.front();
        ready_.pop_front();
        active.fetch_add(1, std::memory_order_acq_rel);
      }
      Mailbox& box = *mailboxes_[id];
      box.state.store(2, std::memory_order_release);

      bool bail = false;
      for (;;) {
        // Drain this mailbox, one message at a time.
        for (;;) {
          Message msg;
          {
            std::lock_guard<std::mutex> lock(box.mutex);
            if (box.queue.empty()) break;
            msg = std::move(box.queue.front());
            box.queue.pop_front();
          }
          Deliver(id, msg);
          uint64_t d = delivered.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (max_messages != 0 && d > max_messages) {
            overflow.store(true);
            bail = true;
            break;
          }
          if (stop_requested()) {
            bail = true;
            break;
          }
        }

        // Transition out of running; keep draining if mail arrived
        // meanwhile (avoids a requeue round-trip for hot processes).
        int cur = box.state.load(std::memory_order_acquire);
        bool done = false;
        while (!done) {
          if (cur == 2) {
            if (box.state.compare_exchange_weak(cur, 0)) done = true;
          } else {  // 3: dirty
            if (box.state.compare_exchange_weak(cur, 2)) break;
          }
        }
        if (done || bail) break;
        // state was dirty and is 2 again: loop and drain more.
        if (bail) break;
      }

      {
        std::lock_guard<std::mutex> lock(ready_mutex_);
        active.fetch_sub(1, std::memory_order_acq_rel);
        if (stop_requested() || overflow.load() ||
            (total_pending_.load(std::memory_order_acquire) == 0 &&
             active.load(std::memory_order_acquire) == 0)) {
          ready_cv_.notify_all();
        }
      }
    }
  };

  // Stall heartbeat (ConfigureStallMonitor): a monitor thread watches
  // the `delivered` counter; whenever it sits still for a full
  // interval, the handler gets a queue-depth snapshot. Purely
  // diagnostic — it never touches scheduling state.
  std::thread monitor;
  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  bool monitor_stop = false;
  if (stall_interval_ms_ > 0 && stall_handler_) {
    monitor = std::thread([&]() {
      const auto interval = std::chrono::milliseconds(stall_interval_ms_);
      uint64_t last_seen = delivered.load(std::memory_order_acquire);
      auto last_change = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(monitor_mutex);
      for (;;) {
        if (monitor_cv.wait_for(lock, interval,
                                [&] { return monitor_stop; })) {
          return;
        }
        uint64_t now_delivered = delivered.load(std::memory_order_acquire);
        auto now = std::chrono::steady_clock::now();
        if (now_delivered != last_seen) {
          last_seen = now_delivered;
          last_change = now;
          continue;
        }
        if (now - last_change < interval) continue;
        StallInfo info;
        info.delivered = now_delivered;
        info.in_flight = TotalPending();
        info.stalled_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - last_change)
                .count();
        for (ProcessId id = 0;
             id < static_cast<ProcessId>(processes_.size()); ++id) {
          size_t depth = PendingCount(id);
          if (depth > 0) info.queue_depths.emplace_back(id, depth);
        }
        lock.unlock();
        stall_handler_(info);
        lock.lock();
        // No re-arm: while the stall persists the handler keeps firing
        // every interval with a *cumulative* stalled_ms, so a watchdog
        // can threshold on total stall age (watchdog_stall_ms) instead
        // of counting heartbeats. Any delivery resets the clock above.
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
  // In case stop was requested before/while spawning.
  {
    std::lock_guard<std::mutex> lock(ready_mutex_);
    ready_cv_.notify_all();
  }
  for (auto& t : pool) t.join();

  if (monitor.joinable()) {
    {
      std::lock_guard<std::mutex> lock(monitor_mutex);
      monitor_stop = true;
    }
    monitor_cv.notify_one();
    monitor.join();
  }

  if (overflow.load()) {
    return ResourceExhaustedError(
        StrCat("threaded run exceeded max_messages=", max_messages));
  }
  RunResult result;
  result.delivered = delivered.load();
  result.stopped = stop_requested();
  result.quiescent = TotalPending() == 0;
  return result;
}

MessageStats Network::stats() const {
  MessageStats s;
  for (size_t k = 0; k < s.by_kind.size(); ++k) {
    s.by_kind[k] = sent_by_kind_[k].load(std::memory_order_relaxed);
  }
  s.packaged_submessages =
      packaged_submessages_.load(std::memory_order_relaxed);
  s.segment_rows = segment_rows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mpqe
