// Columnar tuple segments: the wire representation of a run of answer
// tuples on one stream. A TupleSegment holds a contiguous value block
// strided by arity — the same layout as the relational arena
// (relational/relation.h) — plus an optional per-row lineage column,
// and travels between node processes as a shared-ownership
// (std::shared_ptr<const TupleSegment>) handle inside a kTupleSegment
// message. Fan-out to several consumers shares one segment object; no
// per-tuple copy is made anywhere on the path.
//
// Invariants: `values.size() == num_rows * arity` (num_rows is stored
// explicitly so arity-0 streams work), and `lineage` is either empty
// (provenance off) or holds exactly one id per row.

#ifndef MPQE_MSG_SEGMENT_H_
#define MPQE_MSG_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "relational/tuple.h"

namespace mpqe {

// Sentinel for "no lineage attached" (mirrors kNoTupleId in
// relational/relation.h; kept separate so msg/ does not depend on the
// relational layer's headers beyond tuple.h).
inline constexpr uint64_t kNoLineage = ~uint64_t{0};

struct TupleSegment {
  // The stream's tuple-request binding: every row answers it.
  Tuple binding;
  size_t arity = 0;     // values per row
  size_t num_rows = 0;  // explicit so arity-0 rows still count
  // Row-major value block, num_rows * arity entries.
  std::vector<Value> values;
  // Per-row lineage ids (empty when provenance tracking is off).
  std::vector<uint64_t> lineage;

  bool empty() const { return num_rows == 0; }

  TupleRef row(size_t i) const {
    return TupleRef(values.data() + i * arity, arity);
  }

  uint64_t row_lineage(size_t i) const {
    return lineage.empty() ? kNoLineage : lineage[i];
  }

  /// Appends a row (the caller pushes the lineage id separately when
  /// tracking is on; see the invariant above).
  void AppendRow(TupleRef row) {
    values.insert(values.end(), row.begin(), row.end());
    ++num_rows;
  }

  /// Aborts if the columnar invariants are violated: the value block
  /// must hold exactly num_rows * arity entries and the lineage column
  /// must be absent or exactly one id per row. Producers call this at
  /// seal time so a desynchronized inputs/lineage column can never
  /// reach the wire.
  void CheckConsistent() const {
    MPQE_CHECK(values.size() == num_rows * arity)
        << "segment value block " << values.size() << " != " << num_rows
        << " rows x arity " << arity;
    MPQE_CHECK(lineage.empty() || lineage.size() == num_rows)
        << "segment lineage column " << lineage.size() << " != num_rows "
        << num_rows;
  }
};

}  // namespace mpqe

#endif  // MPQE_MSG_SEGMENT_H_
