// The basic message set that drives the computation (§3.1) plus the
// termination-protocol messages (§3.2).
//
// Streams are uniform: every consumer->producer edge carries one
// *relation request* (activation/subscription) followed by *tuple
// requests*, each binding all of the producer's class-d argument
// positions (an edge with no d arguments carries exactly one tuple
// request with the empty binding). Producers answer each tuple request
// with *tuple* messages and, across strong-component boundaries, an
// *end* message once no more tuples can be produced for it. Tuple
// requests are identified by their binding values — consumers
// deduplicate by binding, so no separate request-id plumbing is
// needed.

#ifndef MPQE_MSG_MESSAGE_H_
#define MPQE_MSG_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "msg/segment.h"
#include "relational/tuple.h"

namespace mpqe {

using ProcessId = int32_t;
inline constexpr ProcessId kNoProcess = -1;

enum class MessageKind : uint8_t {
  // -- computation (§3.1) -------------------------------------------------
  kRelationRequest = 0,  // consumer subscribes to a producer
  kTupleRequest = 1,     // binding for all d arguments
  kTuple = 2,            // answer: binding + values at non-e positions
  kEnd = 3,              // the tuple request `binding` is complete
  // -- distributed termination of cycles (§3.2, Fig. 2) --------------------
  kEndRequest = 4,
  kEndNegative = 5,
  kEndConfirmed = 6,
  // -- coalesced-graph extensions (footnote 4) ------------------------------
  kSccConcluded = 7,  // leader -> members: protocol succeeded, emit ends
  kWorkNotice = 8,    // member -> leader: external work entered the SCC
  // -- packaging extension (footnote 2) --------------------------------------
  kBatch = 9,  // envelope carrying several computation messages
  // -- columnar extension (msg/segment.h) ------------------------------------
  kTupleSegment = 10,  // shared handle to a run of answer tuples

  kMessageKindCount = 11,
};

const char* MessageKindToString(MessageKind kind);

/// True for the Fig. 2 protocol messages (they do not reset a node's
/// idleness; everything else counts as "work").
inline bool IsProtocolMessage(MessageKind kind) {
  return kind == MessageKind::kEndRequest ||
         kind == MessageKind::kEndNegative ||
         kind == MessageKind::kEndConfirmed ||
         kind == MessageKind::kSccConcluded ||
         kind == MessageKind::kWorkNotice;
}

struct Message {
  MessageKind kind = MessageKind::kRelationRequest;
  ProcessId from = kNoProcess;  // stamped by Network::Send

  // kTupleRequest / kTuple / kEnd / kTupleSegment: values of the
  // producer's d positions, in position order; empty when the producer
  // has no d arguments. (For kTupleSegment this duplicates the
  // segment's binding so stream-level code never touches the payload.)
  Tuple binding;

  // kTuple: values of the producer's non-e positions, in order.
  Tuple values;

  // kTuple: the lineage id of the carried tuple in the producer's
  // relation (kNoLineage when provenance tracking is off). Stitches
  // cross-process derivations together: a consumer records this id as
  // an input of whatever it derives from the tuple. See obs/lineage.h.
  uint64_t lineage = kNoLineage;

  // Protocol wave number (diagnostics / sanity checks).
  int64_t wave = 0;

  // kEndNegative / kEndConfirmed: true when the answering subtree has
  // external customer requests that are not yet ended (lets a leader
  // of a coalesced strong component keep the protocol running until
  // every member's customers are served; see footnote 4).
  bool flag = false;

  // Indirect payload, shared and type-erased: a kBatch envelope's
  // std::vector<Message> or a kTupleSegment's TupleSegment (a message
  // never carries both — the kind discriminates). Null for every other
  // kind, so protocol/end messages carry one pointer instead of an
  // embedded vector, and copying a payload-bearing message is a
  // refcount bump, not a deep copy.
  std::shared_ptr<const void> payload;

  /// The packaged messages, in send order (footnote 2: "package a set
  /// of related tuple requests ... the retrieval can be done in one
  /// scan"). Sub-messages carry the envelope's sender. Requires
  /// kind == kBatch with a payload.
  const std::vector<Message>& batch() const {
    return *static_cast<const std::vector<Message>*>(payload.get());
  }

  /// The columnar segment. Requires kind == kTupleSegment.
  const TupleSegment& segment() const {
    return *static_cast<const TupleSegment*>(payload.get());
  }

  /// The segment as a shareable handle (forwarding a segment to
  /// another process is a refcount bump on the same object).
  std::shared_ptr<const TupleSegment> segment_ptr() const {
    return std::static_pointer_cast<const TupleSegment>(payload);
  }

  std::string ToString(const SymbolTable* symbols = nullptr) const;
};

/// Builders.
Message MakeRelationRequest();
Message MakeTupleRequest(Tuple binding);
Message MakeTuple(Tuple binding, Tuple values);
Message MakeEnd(Tuple binding);
Message MakeEndRequest(int64_t wave);
Message MakeEndNegative(int64_t wave, bool open_work);
Message MakeEndConfirmed(int64_t wave, bool open_work);
Message MakeSccConcluded();
Message MakeWorkNotice();
Message MakeBatch(std::vector<Message> messages);
Message MakeTupleSegment(std::shared_ptr<const TupleSegment> segment);

}  // namespace mpqe

#endif  // MPQE_MSG_MESSAGE_H_
