#include "msg/message.h"

#include "common/string_util.h"

namespace mpqe {

const char* MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRelationRequest:
      return "relation_request";
    case MessageKind::kTupleRequest:
      return "tuple_request";
    case MessageKind::kTuple:
      return "tuple";
    case MessageKind::kEnd:
      return "end";
    case MessageKind::kEndRequest:
      return "end_request";
    case MessageKind::kEndNegative:
      return "end_negative";
    case MessageKind::kEndConfirmed:
      return "end_confirmed";
    case MessageKind::kSccConcluded:
      return "scc_concluded";
    case MessageKind::kWorkNotice:
      return "work_notice";
    case MessageKind::kBatch:
      return "batch";
    case MessageKind::kTupleSegment:
      return "tuple_segment";
    case MessageKind::kMessageKindCount:
      break;
  }
  return "?";
}

std::string Message::ToString(const SymbolTable* symbols) const {
  std::string out = StrCat(MessageKindToString(kind), " from=", from);
  if (kind == MessageKind::kTupleRequest || kind == MessageKind::kTuple ||
      kind == MessageKind::kEnd || kind == MessageKind::kTupleSegment) {
    out += StrCat(" binding=", TupleToString(binding, symbols));
  }
  if (kind == MessageKind::kTuple) {
    out += StrCat(" values=", TupleToString(values, symbols));
  }
  if (IsProtocolMessage(kind)) out += StrCat(" wave=", wave);
  if (kind == MessageKind::kBatch) out += StrCat(" n=", batch().size());
  if (kind == MessageKind::kTupleSegment) {
    out += StrCat(" rows=", segment().num_rows);
  }
  return out;
}

// The payload indirection is the point of the exercise: every
// non-batch, non-segment message — the overwhelming majority of
// protocol traffic — must stay two cache lines. Revisit any change
// that trips this.
static_assert(sizeof(void*) != 8 || sizeof(Message) == 96,
              "Message grew past 96 bytes on LP64");

Message MakeRelationRequest() {
  Message m;
  m.kind = MessageKind::kRelationRequest;
  return m;
}

Message MakeTupleRequest(Tuple binding) {
  Message m;
  m.kind = MessageKind::kTupleRequest;
  m.binding = std::move(binding);
  return m;
}

Message MakeTuple(Tuple binding, Tuple values) {
  Message m;
  m.kind = MessageKind::kTuple;
  m.binding = std::move(binding);
  m.values = std::move(values);
  return m;
}

Message MakeEnd(Tuple binding) {
  Message m;
  m.kind = MessageKind::kEnd;
  m.binding = std::move(binding);
  return m;
}

Message MakeEndRequest(int64_t wave) {
  Message m;
  m.kind = MessageKind::kEndRequest;
  m.wave = wave;
  return m;
}

Message MakeEndNegative(int64_t wave, bool open_work) {
  Message m;
  m.kind = MessageKind::kEndNegative;
  m.wave = wave;
  m.flag = open_work;
  return m;
}

Message MakeEndConfirmed(int64_t wave, bool open_work) {
  Message m;
  m.kind = MessageKind::kEndConfirmed;
  m.wave = wave;
  m.flag = open_work;
  return m;
}

Message MakeSccConcluded() {
  Message m;
  m.kind = MessageKind::kSccConcluded;
  return m;
}

Message MakeWorkNotice() {
  Message m;
  m.kind = MessageKind::kWorkNotice;
  return m;
}

Message MakeBatch(std::vector<Message> messages) {
  Message m;
  m.kind = MessageKind::kBatch;
  m.payload =
      std::make_shared<const std::vector<Message>>(std::move(messages));
  return m;
}

Message MakeTupleSegment(std::shared_ptr<const TupleSegment> segment) {
  Message m;
  m.kind = MessageKind::kTupleSegment;
  m.binding = segment->binding;
  m.payload = std::move(segment);
  return m;
}

}  // namespace mpqe
