#include "graph/rule_goal_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/unify.h"
#include "sips/adorned_printer.h"

namespace mpqe {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGoal:
      return "goal";
    case NodeKind::kRule:
      return "rule";
    case NodeKind::kEdbLeaf:
      return "edb";
    case NodeKind::kCycleRef:
      return "cycle_ref";
  }
  return "?";
}

std::vector<NodeId> GraphNode::Suppliers() const {
  std::vector<NodeId> out;
  out.insert(out.end(), rule_children.begin(), rule_children.end());
  out.insert(out.end(), subgoal_children.begin(), subgoal_children.end());
  if (kind == NodeKind::kCycleRef && cycle_source != kNoNode) {
    out.push_back(cycle_source);
  }
  return out;
}

std::vector<size_t> GraphNode::OutputPositions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] != BindingClass::kExistential) out.push_back(i);
  }
  return out;
}

// Performs the top-down construction and the post-construction SCC /
// BFST analysis.
class GraphBuilder {
 public:
  GraphBuilder(RuleGoalGraph& graph, const SipsStrategy& strategy,
               const GraphBuildOptions& options)
      : g_(graph), strategy_(strategy), options_(options) {}

  Status Run() {
    g_.coalesced_ = options_.coalesce_nodes;
    MPQE_RETURN_IF_ERROR(CreateRoot());
    while (!pending_.empty()) {
      NodeId id = pending_.front();
      pending_.pop_front();
      MPQE_RETURN_IF_ERROR(ExpandGoal(id));
    }
    AnalyzeSccs();
    BuildBfsts();
    return Status::Ok();
  }

 private:
  StatusOr<NodeId> NewNode(NodeKind kind, NodeId parent) {
    if (g_.nodes_.size() >= options_.max_nodes) {
      return ResourceExhaustedError(
          StrCat("rule/goal graph exceeded max_nodes=", options_.max_nodes,
                 "; the IDB induces too many distinct goal variants "
                 "(nodes are not coalesced, see DESIGN.md)"));
    }
    GraphNode node;
    node.id = static_cast<NodeId>(g_.nodes_.size());
    node.kind = kind;
    node.parent = parent;
    node.depth = parent == kNoNode ? 0 : g_.nodes_[parent].depth + 1;
    g_.nodes_.push_back(std::move(node));
    return g_.nodes_.back().id;
  }

  Status CreateRoot() {
    PredicateId goal = g_.program_->GoalPredicate();
    MPQE_CHECK(goal >= 0) << "program must Validate() before Build()";
    Atom top;
    top.predicate = goal;
    size_t arity = g_.program_->predicates().Arity(goal);
    for (size_t i = 0; i < arity; ++i) {
      top.args.push_back(Term::Var(g_.variables_.Fresh("ans")));
    }
    MPQE_ASSIGN_OR_RETURN(NodeId root, NewNode(NodeKind::kGoal, kNoNode));
    g_.root_ = root;
    g_.nodes_[root].atom = std::move(top);
    g_.nodes_[root].adornment.assign(arity, BindingClass::kFree);
    pending_.push_back(root);
    return Status::Ok();
  }

  // Canonical signature of a (sub)goal occurrence: predicate,
  // adornment, constants, and the repeated-variable pattern — the
  // equivalence classes of "variant with matching classes" (§2.2).
  static std::string Signature(const Atom& atom, const Adornment& adornment) {
    std::string sig = StrCat("p", atom.predicate, "/",
                             AdornmentToString(adornment));
    std::unordered_map<VariableId, int> canon;
    for (const Term& t : atom.args) {
      if (t.is_constant()) {
        sig += StrCat("|k", static_cast<int>(t.constant().kind()), ":",
                      t.constant().payload());
      } else {
        auto [it, inserted] =
            canon.emplace(t.var(), static_cast<int>(canon.size()));
        sig += StrCat("|v", it->second);
      }
    }
    return sig;
  }

  // Creates (or, when coalescing, reuses) the goal node for one
  // subgoal occurrence and queues IDB nodes for expansion.
  // `occurrence` counts earlier same-signature subgoals within the
  // same rule node: the engine distinguishes a rule node's children by
  // sender, so one producer must never serve two subgoals of one rule.
  // The k-th duplicate occurrence therefore coalesces with the k-th
  // occurrences of other rules (keeping the node count bounded by
  // #signatures x max duplication).
  StatusOr<NodeId> CreateSubgoalNode(const Atom& atom,
                                     const Adornment& adornment,
                                     NodeId rule_parent, int occurrence) {
    if (options_.coalesce_nodes) {
      std::string sig =
          StrCat(Signature(atom, adornment), "#", occurrence);
      auto it = coalesce_map_.find(sig);
      if (it != coalesce_map_.end()) {
        NodeId shared = it->second;
        g_.nodes_[shared].customers.push_back(rule_parent);
        return shared;
      }
      NodeKind kind = g_.program_->IsEdb(atom.predicate) ? NodeKind::kEdbLeaf
                                                         : NodeKind::kGoal;
      MPQE_ASSIGN_OR_RETURN(NodeId id, NewNode(kind, rule_parent));
      g_.nodes_[id].atom = atom;
      g_.nodes_[id].adornment = adornment;
      g_.nodes_[id].customers.push_back(rule_parent);
      coalesce_map_.emplace(std::move(sig), id);
      if (kind == NodeKind::kGoal) pending_.push_back(id);
      return id;
    }
    NodeKind kind = g_.program_->IsEdb(atom.predicate) ? NodeKind::kEdbLeaf
                                                       : NodeKind::kGoal;
    MPQE_ASSIGN_OR_RETURN(NodeId id, NewNode(kind, rule_parent));
    g_.nodes_[id].atom = atom;
    g_.nodes_[id].adornment = adornment;
    g_.nodes_[id].customers.push_back(rule_parent);
    if (kind == NodeKind::kGoal) pending_.push_back(id);
    return id;
  }

  Status ExpandGoal(NodeId gid) {
    // Cycle check (non-coalesced only): is this a variant of an
    // ancestor goal node with matching classes (§2.2)? Walk the
    // goal-node ancestor chain. With coalescing the signature map
    // already closed the loop, so every pending goal node expands.
    if (!options_.coalesce_nodes) {
      for (NodeId up = g_.nodes_[gid].parent; up != kNoNode;) {
        const GraphNode& rule_node = g_.nodes_[up];
        NodeId ancestor = rule_node.parent;
        if (ancestor == kNoNode) break;
        const GraphNode& anc = g_.nodes_[ancestor];
        if (anc.kind == NodeKind::kGoal &&
            anc.adornment == g_.nodes_[gid].adornment &&
            IsVariant(anc.atom, g_.nodes_[gid].atom)) {
          g_.nodes_[gid].kind = NodeKind::kCycleRef;
          g_.nodes_[gid].cycle_source = ancestor;
          g_.nodes_[ancestor].cycle_targets.push_back(gid);
          g_.nodes_[ancestor].customers.push_back(gid);
          return Status::Ok();
        }
        up = anc.parent;
      }
    }

    // Expand: one rule node per program rule whose head unifies.
    const Atom goal_atom = g_.nodes_[gid].atom;  // copy: nodes_ may grow
    const Adornment goal_adornment = g_.nodes_[gid].adornment;
    for (size_t rule_index : g_.program_->RuleIndexesFor(goal_atom.predicate)) {
      Rule renamed = RenameApart(g_.program_->rules()[rule_index],
                                 g_.variables_);
      std::optional<Substitution> mgu = Mgu(renamed.head, goal_atom);
      if (!mgu.has_value()) continue;  // e.g. clashing head constants
      Rule instance = mgu->Apply(renamed);
      MPQE_ASSIGN_OR_RETURN(
          SipsResult sips,
          strategy_.Classify(instance, goal_adornment, *g_.program_));
      MPQE_ASSIGN_OR_RETURN(NodeId rid, NewNode(NodeKind::kRule, gid));
      g_.nodes_[rid].customers.push_back(gid);
      g_.nodes_[rid].rule = instance;
      g_.nodes_[rid].program_rule_index = rule_index;
      g_.nodes_[rid].sips = sips;
      // A rule node's head carries its goal's binding classes ("the
      // head in the rule node is exactly the same as the subgoal of
      // its parent").
      g_.nodes_[rid].atom = instance.head;
      g_.nodes_[rid].adornment = goal_adornment;
      g_.nodes_[gid].rule_children.push_back(rid);
      std::unordered_map<std::string, int> occurrence_of;
      for (size_t i = 0; i < instance.body.size(); ++i) {
        int occurrence = 0;
        if (options_.coalesce_nodes) {
          std::string sig =
              Signature(instance.body[i], sips.subgoal_adornments[i]);
          occurrence = occurrence_of[sig]++;
        }
        MPQE_ASSIGN_OR_RETURN(
            NodeId child,
            CreateSubgoalNode(instance.body[i], sips.subgoal_adornments[i],
                              rid, occurrence));
        g_.nodes_[rid].subgoal_children.push_back(child);
      }
    }
    return Status::Ok();
  }

  // Answer-flow out-edges: every customer (tree parent + cycle targets
  // in the non-coalesced graph; all consuming rule nodes when
  // coalesced).
  std::vector<NodeId> OutEdges(NodeId id) const {
    return g_.nodes_[id].customers;
  }

  void AnalyzeSccs() {
    size_t n = g_.nodes_.size();
    std::vector<int> low(n, -1), num(n, -1);
    std::vector<bool> on_stack(n, false);
    std::vector<NodeId> stack;
    int counter = 0;

    struct Frame {
      NodeId v;
      std::vector<NodeId> out;
      size_t child;
    };
    for (NodeId root = 0; root < static_cast<NodeId>(n); ++root) {
      if (num[root] != -1) continue;
      std::vector<Frame> frames;
      frames.push_back({root, OutEdges(root), 0});
      num[root] = low[root] = counter++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!frames.empty()) {
        Frame& f = frames.back();
        if (f.child < f.out.size()) {
          NodeId w = f.out[f.child++];
          if (num[w] == -1) {
            num[w] = low[w] = counter++;
            stack.push_back(w);
            on_stack[w] = true;
            frames.push_back({w, OutEdges(w), 0});
          } else if (on_stack[w]) {
            low[f.v] = std::min(low[f.v], num[w]);
          }
        } else {
          if (low[f.v] == num[f.v]) {
            int scc = g_.scc_count_++;
            g_.scc_members_.emplace_back();
            for (;;) {
              NodeId w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              g_.nodes_[w].scc_id = scc;
              g_.scc_members_[scc].push_back(w);
              if (w == f.v) break;
            }
          }
          NodeId child = f.v;
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().v] = std::min(low[frames.back().v], low[child]);
          }
        }
      }
    }

    for (int scc = 0; scc < g_.scc_count_; ++scc) {
      auto& members = g_.scc_members_[scc];
      // DFS-tree order (by node id: parents were created before children).
      std::sort(members.begin(), members.end());
      bool trivial = members.size() == 1;
      for (NodeId m : members) g_.nodes_[m].scc_is_trivial = trivial;
    }
  }

  // Within each nontrivial SCC, build a breadth-first spanning tree
  // from the leader along request-flow (customer -> supplier) edges.
  // In the non-coalesced graph the unique member whose customer lies
  // outside the component is the leader and the BFST coincides with
  // the DFS spanning tree (§3.2, footnote 3); with coalescing several
  // members can have outside customers, so the lowest-id such member
  // is designated (footnote 4 applies: the conclusion is propagated to
  // all of them).
  void BuildBfsts() {
    g_.scc_leaders_.assign(static_cast<size_t>(g_.scc_count_), kNoNode);
    for (int scc = 0; scc < g_.scc_count_; ++scc) {
      const auto& members = g_.scc_members_[scc];
      if (members.size() == 1) continue;
      NodeId leader = kNoNode;
      int external_exits = 0;
      for (NodeId m : members) {
        bool external = false;
        const GraphNode& node = g_.nodes_[m];
        if (node.customers.empty()) external = true;  // fed by the sink
        for (NodeId c : node.customers) {
          if (g_.nodes_[c].scc_id != scc) external = true;
        }
        if (external) {
          ++external_exits;
          if (leader == kNoNode) leader = m;
        }
      }
      MPQE_CHECK(leader != kNoNode)
          << "strong component " << scc << " has no external customer";
      if (!options_.coalesce_nodes) {
        MPQE_CHECK(external_exits == 1)
            << "non-coalesced component " << scc << " has " << external_exits
            << " exits; the tree + back-edge structure guarantees one";
      }
      g_.scc_leaders_[scc] = leader;
      g_.nodes_[leader].is_leader = true;

      // BFS over in-component suppliers.
      std::vector<NodeId> frontier{leader};
      std::unordered_set<NodeId> visited{leader};
      for (size_t head = 0; head < frontier.size(); ++head) {
        NodeId u = frontier[head];
        for (NodeId v : g_.nodes_[u].Suppliers()) {
          if (g_.nodes_[v].scc_id != scc || visited.count(v) != 0) continue;
          visited.insert(v);
          g_.nodes_[v].bfst_parent = u;
          g_.nodes_[u].bfst_children.push_back(v);
          frontier.push_back(v);
        }
      }
      MPQE_CHECK(visited.size() == members.size())
          << "BFST did not span strong component " << scc;
    }
  }

  RuleGoalGraph& g_;
  const SipsStrategy& strategy_;
  GraphBuildOptions options_;
  std::deque<NodeId> pending_;
  std::unordered_map<std::string, NodeId> coalesce_map_;
};

StatusOr<std::unique_ptr<RuleGoalGraph>> RuleGoalGraph::Build(
    const Program& program, const SipsStrategy& strategy,
    const GraphBuildOptions& options) {
  std::unique_ptr<RuleGoalGraph> graph(new RuleGoalGraph(program));
  GraphBuilder builder(*graph, strategy, options);
  MPQE_RETURN_IF_ERROR(builder.Run());
  return graph;
}

int RuleGoalGraph::BfstDepth(NodeId id) const {
  int depth = 0;
  for (NodeId n = nodes_[id].bfst_parent; n != kNoNode;
       n = nodes_[n].bfst_parent) {
    ++depth;
  }
  return depth;
}

int RuleGoalGraph::BfstHeight(int scc) const {
  int height = 0;
  for (NodeId m : scc_members_[scc]) {
    height = std::max(height, BfstDepth(m));
  }
  return height;
}

std::vector<NodeId> RuleGoalGraph::Feeders(NodeId id) const {
  std::vector<NodeId> feeders;
  const GraphNode& n = nodes_[id];
  auto consider = [&](NodeId pred) {
    if (nodes_[pred].scc_id != n.scc_id) feeders.push_back(pred);
  };
  for (NodeId c : n.rule_children) consider(c);
  for (NodeId c : n.subgoal_children) consider(c);
  if (n.kind == NodeKind::kCycleRef && n.cycle_source != kNoNode) {
    consider(n.cycle_source);
  }
  return feeders;
}

GraphStats RuleGoalGraph::Stats() const {
  GraphStats stats;
  stats.node_count = nodes_.size();
  for (const GraphNode& n : nodes_) {
    switch (n.kind) {
      case NodeKind::kGoal:
        ++stats.goal_nodes;
        break;
      case NodeKind::kRule:
        ++stats.rule_nodes;
        break;
      case NodeKind::kEdbLeaf:
        ++stats.edb_leaves;
        break;
      case NodeKind::kCycleRef:
        ++stats.cycle_refs;
        break;
    }
    stats.max_depth = std::max(stats.max_depth, n.depth);
  }
  for (const auto& members : scc_members_) {
    if (members.size() > 1) {
      ++stats.nontrivial_sccs;
      stats.largest_scc = std::max(stats.largest_scc, members.size());
    }
  }
  return stats;
}

std::string RuleGoalGraph::NodeLabel(NodeId id,
                                     const SymbolTable* symbols) const {
  const GraphNode& n = nodes_[id];
  switch (n.kind) {
    case NodeKind::kGoal:
    case NodeKind::kEdbLeaf:
    case NodeKind::kCycleRef:
      return AdornedAtomToString(n.atom, n.adornment, *program_, symbols);
    case NodeKind::kRule:
      return StrCat("rule#", n.program_rule_index, "[",
                    program_->RuleToString(n.rule, symbols), "]");
  }
  return "?";
}

std::string RuleGoalGraph::ToString(const SymbolTable* symbols) const {
  std::string out;
  for (const GraphNode& n : nodes_) {
    out += StrCat(std::string(static_cast<size_t>(n.depth) * 2, ' '), "#",
                  n.id, " ", NodeKindToString(n.kind), " ",
                  NodeLabel(n.id, symbols), " scc=", n.scc_id);
    if (n.is_leader) out += " LEADER";
    if (n.kind == NodeKind::kCycleRef) {
      out += StrCat(" <== #", n.cycle_source);
    }
    out += "\n";
  }
  return out;
}

std::string GraphToDot(const RuleGoalGraph& graph,
                       const SymbolTable* symbols) {
  std::string out = "digraph rule_goal_graph {\n  rankdir=BT;\n";
  for (const GraphNode& n : graph.nodes()) {
    std::string shape = n.kind == NodeKind::kRule ? "box" : "ellipse";
    std::string style = n.kind == NodeKind::kCycleRef ? ",style=dotted" : "";
    out += StrCat("  n", n.id, " [label=\"", graph.NodeLabel(n.id, symbols),
                  "\",shape=", shape, style, "];\n");
  }
  for (const GraphNode& n : graph.nodes()) {
    for (NodeId c : n.customers) {
      bool tree_edge = c == n.parent;
      bool cycle_edge = std::find(n.cycle_targets.begin(),
                                  n.cycle_targets.end(),
                                  c) != n.cycle_targets.end();
      out += StrCat("  n", n.id, " -> n", c,
                    cycle_edge || !tree_edge ? " [style=dashed]" : "", ";\n");
    }
  }
  out += "}\n";
  return out;
}

}  // namespace mpqe
