// The information passing rule/goal graph (§2).
//
// Construction is top-down, as in Prolog: starting from the top-level
// goal node, every IDB goal node is expanded by a rule node for each
// program rule whose head unifies with it (the rule node holds a copy
// of the rule that "began with all new variables, then had the mgu
// applied"), and rule nodes get one child goal node per subgoal.
// Exceptions (§2.1):
//   * EDB subgoals remain leaves;
//   * an IDB subgoal that is a variant of an ancestor *with matching
//     argument classes* (§2.2) is not expanded: a cycle edge is added
//     from the ancestor to it, and at evaluation time it performs a
//     selection on the ancestor's relation.
//
// Edges are oriented child -> parent, "the direction in which answers
// flow"; requests flow against the edges. Cycle edges run ancestor ->
// variant node (answers flow down them to the rule node that contains
// the variant subgoal).
//
// After construction the graph is analyzed: strong components (over
// tree + cycle edges), the reduced DAG's feeder/customer relation
// (Def. 2.1), and per-component breadth-first spanning trees with the
// unique leader — the node whose customer lies outside the component —
// used by the Fig. 2 termination protocol.

#ifndef MPQE_GRAPH_RULE_GOAL_GRAPH_H_
#define MPQE_GRAPH_RULE_GOAL_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/adornment.h"
#include "datalog/ast.h"
#include "datalog/program.h"
#include "sips/strategy.h"

namespace mpqe {

using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind {
  kGoal,      // predicate node: union of its rule children's relations
  kRule,      // rule node: joins its subgoal relations per its sips
  kEdbLeaf,   // EDB subgoal: selection on a base relation
  kCycleRef,  // variant subgoal: selection on an ancestor's relation
};

const char* NodeKindToString(NodeKind kind);

struct GraphNode {
  NodeId id = kNoNode;
  NodeKind kind = NodeKind::kGoal;
  NodeId parent = kNoNode;  // tree parent (customer direction)
  int depth = 0;

  // -- goal / EDB-leaf / cycle-ref fields --------------------------------
  Atom atom;             // the (sub)goal atom, constants at c positions
  Adornment adornment;   // binding classes per argument position
  std::vector<NodeId> rule_children;  // kGoal only
  NodeId cycle_source = kNoNode;      // kCycleRef: the ancestor goal node
  std::vector<NodeId> cycle_targets;  // kGoal: cycle refs fed by this node

  // All answer-flow successors: the tree parent plus cycle targets
  // (non-coalesced) or every consuming rule node (coalesced). The
  // engine's per-consumer streams and the SCC analysis use this.
  std::vector<NodeId> customers;

  // -- rule node fields ---------------------------------------------------
  Rule rule;                // renamed-apart instance with mgu applied
  size_t program_rule_index = 0;
  SipsResult sips;
  std::vector<NodeId> subgoal_children;  // parallel to rule.body

  // -- analysis results ----------------------------------------------------
  int scc_id = -1;
  bool scc_is_trivial = true;  // singleton without a self-cycle
  bool is_leader = false;      // designated leader of a nontrivial SCC
  NodeId bfst_parent = kNoNode;
  std::vector<NodeId> bfst_children;

  /// Answer-flow predecessors: children that supply this node's
  /// relation (rule children / subgoal children / the cycle source).
  std::vector<NodeId> Suppliers() const;

  /// Positions of `atom` whose values appear in answer tuples (all
  /// non-existential positions, in order). Class-e values are never
  /// transmitted (§2.2).
  std::vector<size_t> OutputPositions() const;
};

struct GraphBuildOptions {
  // Abort with ResourceExhausted beyond this many nodes. The graph size
  // is independent of the EDB (Thm. 2.1) but can be exponential in the
  // IDB in pathological cases when nodes are not coalesced.
  size_t max_nodes = 100000;

  // Coalesce goal nodes with identical predicate + binding pattern +
  // variant structure ("for single processor computation it is
  // probably desirable to coalesce such nodes", §2.2 end). The graph
  // becomes a general digraph (cross and forward edges appear), cycle
  // reference nodes disappear, graph size becomes linear in the number
  // of distinct binding patterns, and — per footnote 4 — the
  // termination protocol's leader must propagate the conclusion around
  // the strong component because several members may have customers.
  bool coalesce_nodes = false;
};

// Aggregate statistics (for Thm. 2.1 benches and diagnostics).
struct GraphStats {
  size_t node_count = 0;
  size_t goal_nodes = 0;
  size_t rule_nodes = 0;
  size_t edb_leaves = 0;
  size_t cycle_refs = 0;
  size_t nontrivial_sccs = 0;
  size_t largest_scc = 0;
  int max_depth = 0;
};

class RuleGoalGraph {
 public:
  /// Builds the information passing rule/goal graph for `program`
  /// using `strategy` to classify subgoals. The program must already
  /// Validate(). The graph keeps references to `program` — it must
  /// outlive the graph.
  static StatusOr<std::unique_ptr<RuleGoalGraph>> Build(
      const Program& program, const SipsStrategy& strategy,
      const GraphBuildOptions& options = GraphBuildOptions());

  const Program& program() const { return *program_; }
  /// Variable pool extended with construction-time fresh variables.
  const VariablePool& variables() const { return variables_; }

  NodeId root() const { return root_; }
  size_t size() const { return nodes_.size(); }
  const GraphNode& node(NodeId id) const { return nodes_[id]; }
  const std::vector<GraphNode>& nodes() const { return nodes_; }

  int scc_count() const { return scc_count_; }
  /// Nodes of component `scc`, by ascending node id.
  const std::vector<NodeId>& scc_members(int scc) const {
    return scc_members_[scc];
  }

  /// Leader node of component `scc`, or kNoNode for trivial SCCs.
  NodeId scc_leader(int scc) const { return scc_leaders_[scc]; }

  /// Depth of `id` in its component's breadth-first spanning tree
  /// (0 at the leader; 0 for members of trivial SCCs).
  int BfstDepth(NodeId id) const;

  /// Height of component `scc`'s BFST: the maximum BfstDepth over its
  /// members (the number of hops a Fig. 2 wave descends).
  int BfstHeight(int scc) const;

  bool coalesced() const { return coalesced_; }

  /// Answer-flow predecessors of `id` in a different strong component
  /// (Def. 2.1: its feeders).
  std::vector<NodeId> Feeders(NodeId id) const;

  GraphStats Stats() const;

  /// Human-readable label, e.g. "p(V^d, Z^f)" or "rule#1[p(...) :- ...]".
  std::string NodeLabel(NodeId id, const SymbolTable* symbols = nullptr) const;

  /// Multi-line structural dump (tests, debugging).
  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  RuleGoalGraph(const Program& program)
      : program_(&program), variables_(program.variables()) {}

  friend class GraphBuilder;

  const Program* program_;
  VariablePool variables_;
  std::vector<GraphNode> nodes_;
  NodeId root_ = kNoNode;
  bool coalesced_ = false;
  int scc_count_ = 0;
  std::vector<std::vector<NodeId>> scc_members_;
  std::vector<NodeId> scc_leaders_;
};

/// Graphviz DOT rendering of the graph (solid tree edges oriented
/// child->parent, dashed cycle edges, SCCs as clusters).
std::string GraphToDot(const RuleGoalGraph& graph,
                       const SymbolTable* symbols = nullptr);

}  // namespace mpqe

#endif  // MPQE_GRAPH_RULE_GOAL_GRAPH_H_
