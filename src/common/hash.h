// Hash-combining utilities shared by relations, adornments, and graph
// node signatures.

#ifndef MPQE_COMMON_HASH_H_
#define MPQE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mpqe {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of hashable elements into one value.
template <typename It>
size_t HashRange(It first, It last) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (It it = first; it != last; ++it) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*it));
  }
  return seed;
}

/// Hash functor for vectors of hashable elements.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// splitmix64 finalizer. Open-addressing tables mask hashes with a
/// power of two, so the low bits must depend on every input bit;
/// HashCombine alone leaves sequential integers nearly sequential
/// (libstdc++'s std::hash<int64_t> is the identity).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace mpqe

#endif  // MPQE_COMMON_HASH_H_
