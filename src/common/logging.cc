#include "common/logging.h"

#include <atomic>

namespace mpqe {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

CheckFailure::CheckFailure(const char* condition, const char* file, int line) {
  stream_ << "[CHECK failed " << file << ":" << line << "] " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace mpqe
