#include "common/logging.h"

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace mpqe {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* ThreadTag() {
  static std::atomic<uint32_t> next{0};
  thread_local char tag[16] = {0};
  if (tag[0] == '\0') {
    std::snprintf(tag, sizeof(tag), "t%u",
                  next.fetch_add(1, std::memory_order_relaxed));
  }
  return tag;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LogLevelName(level_) << " " << file << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

CheckFailure::CheckFailure(const char* condition, const char* file, int line) {
  stream_ << "[CHECK failed " << file << ":" << line << "] " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace mpqe
