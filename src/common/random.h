// Deterministic pseudo-random number generation for tests, workload
// generation, and the randomized message scheduler. A fixed seed yields
// an identical stream on every platform (unlike std::default_random_engine).

#ifndef MPQE_COMMON_RANDOM_H_
#define MPQE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mpqe {

// SplitMix64-seeded xoshiro256**; small, fast, reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Chance(double p);

  /// Returns a uniform double in [0, 1).
  double Uniform();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace mpqe

#endif  // MPQE_COMMON_RANDOM_H_
