// Small string helpers used across modules (joining, formatting).

#ifndef MPQE_COMMON_STRING_UTIL_H_
#define MPQE_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mpqe {

/// Joins the elements of `parts` with `sep`, rendering each via
/// operator<< if it is not already a string.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    first = false;
    out << part;
  }
  return out.str();
}

/// Like StrJoin but renders each element through `formatter(out, elem)`.
template <typename Container, typename Formatter>
std::string StrJoin(const Container& parts, std::string_view sep,
                    Formatter&& formatter) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    first = false;
    formatter(out, part);
  }
  return out.str();
}

/// Concatenates streamable arguments into one string.
template <typename... Args>
std::string StrCat(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream out;
    (out << ... << args);
    return out.str();
  }
}

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

}  // namespace mpqe

#endif  // MPQE_COMMON_STRING_UTIL_H_
