// Error handling primitives for MPQE. The project does not use C++
// exceptions; every fallible operation returns a Status or StatusOr<T>.
//
// Example:
//   StatusOr<Program> program = Parser::Parse(text);
//   if (!program.ok()) return program.status();
//   Use(program.value());

#ifndef MPQE_COMMON_STATUS_H_
#define MPQE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mpqe {

// Canonical error codes, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

// A Status is either OK or carries an error code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);

// Union of a Status and a value of type T. Exactly one is active: if
// ok(), value() is valid; otherwise status() carries the error.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);` directly (mirrors absl::StatusOr).
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression. Usable in functions
// returning Status or StatusOr<U>.
#define MPQE_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::mpqe::Status mpqe_status_tmp_ = (expr);        \
    if (!mpqe_status_tmp_.ok()) return mpqe_status_tmp_; \
  } while (false)

// Evaluates a StatusOr expression, propagating errors; on success binds
// the value to `lhs`. `lhs` may include a declaration, e.g.
//   MPQE_ASSIGN_OR_RETURN(auto graph, BuildGraph(program));
#define MPQE_ASSIGN_OR_RETURN(lhs, expr)                           \
  MPQE_ASSIGN_OR_RETURN_IMPL_(                                     \
      MPQE_STATUS_CONCAT_(mpqe_statusor_, __LINE__), lhs, expr)

#define MPQE_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define MPQE_STATUS_CONCAT_(a, b) MPQE_STATUS_CONCAT_IMPL_(a, b)
#define MPQE_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace mpqe

#endif  // MPQE_COMMON_STATUS_H_
