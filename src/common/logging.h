// Minimal leveled logging. Disabled below the active level at runtime;
// MPQE_CHECK aborts on violated invariants in all build modes.
//
// Usage:
//   MPQE_LOG(kInfo) << "built graph with " << n << " nodes";
//   MPQE_CHECK(x > 0) << "x must be positive, got " << x;

#ifndef MPQE_COMMON_LOGGING_H_
#define MPQE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mpqe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default kWarning).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// "DEBUG", "INFO", "WARNING" or "ERROR".
const char* LogLevelName(LogLevel level);

/// A short, stable tag for the calling thread ("t0", "t1", ...), for
/// correlating concurrent log lines. Assigned on first use per thread,
/// in first-use order.
const char* ThreadTag();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line);
  [[noreturn]] ~CheckFailure();

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed expression when a check passes.
struct Voidify {
  template <typename T>
  void operator&&(const T&) const {}
};

}  // namespace internal_logging
}  // namespace mpqe

#define MPQE_LOG(level)                                  \
  ::mpqe::internal_logging::LogMessage(                  \
      ::mpqe::LogLevel::level, __FILE__, __LINE__)

#define MPQE_CHECK(condition)                            \
  (condition) ? (void)0                                  \
              : ::mpqe::internal_logging::Voidify{} &&   \
                    ::mpqe::internal_logging::CheckFailure(#condition, \
                                                           __FILE__, __LINE__)

#endif  // MPQE_COMMON_LOGGING_H_
