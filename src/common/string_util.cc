#include "common/string_util.h"

namespace mpqe {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

}  // namespace mpqe
