// E2 — Theorem 2.1: "the size of the graph is independent of the
// sizes of the EDB relations". Sweeps the EDB from 10^2 to 10^5 facts
// with a fixed IDB and reports the node count (which must stay
// constant) and construction time (which must not grow with the EDB).

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void BM_GraphSizeVsEdb(benchmark::State& state) {
  int64_t edb_size = state.range(0);
  Database db;
  MPQE_CHECK(workload::MakeChain(db, "q", edb_size).ok());
  MPQE_CHECK(workload::MakeChain(db, "r", edb_size).ok());
  Program program;
  MPQE_CHECK(ParseInto(workload::P1Program(0), program, db).ok());
  MPQE_CHECK(program.Validate(&db).ok());
  auto strategy = MakeGreedyStrategy();

  size_t nodes = 0;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(program, *strategy);
    MPQE_CHECK(graph.ok());
    nodes = (*graph)->size();
    benchmark::DoNotOptimize(graph);
  }
  state.counters["edb_facts"] = static_cast<double>(db.TotalFacts());
  state.counters["graph_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GraphSizeVsEdb)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// The flip side: the graph does grow with the IDB (number of rules).
void BM_GraphSizeVsRuleCount(benchmark::State& state) {
  int64_t alternatives = state.range(0);
  std::string text;
  for (int64_t i = 0; i < alternatives; ++i) {
    text += StrCat("p(X, Y) :- e", i, "(X, Y).\n");
    text += StrCat("p(X, Y) :- e", i, "(X, Z), p(Z, Y).\n");
  }
  text += "?- p(0, W).\n";
  auto unit = Parse(text);
  MPQE_CHECK(unit.ok());
  MPQE_CHECK(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();

  size_t nodes = 0;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(unit->program, *strategy);
    MPQE_CHECK(graph.ok());
    nodes = (*graph)->size();
    benchmark::DoNotOptimize(graph);
  }
  state.counters["rules"] = static_cast<double>(2 * alternatives);
  state.counters["graph_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GraphSizeVsRuleCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Constants in the query do not leak EDB values into the graph: the
// same program with different query constants yields isomorphic
// graphs.
void BM_GraphSizeVsQueryConstant(benchmark::State& state) {
  int64_t from = state.range(0);
  Database db;
  MPQE_CHECK(workload::MakeChain(db, "edge", 1000).ok());
  Program program;
  MPQE_CHECK(ParseInto(workload::LinearTcProgram(from), program, db).ok());
  MPQE_CHECK(program.Validate(&db).ok());
  auto strategy = MakeGreedyStrategy();

  size_t nodes = 0;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(program, *strategy);
    MPQE_CHECK(graph.ok());
    nodes = (*graph)->size();
    benchmark::DoNotOptimize(graph);
  }
  state.counters["graph_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GraphSizeVsQueryConstant)->Arg(0)->Arg(500)->Arg(999);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
