// E8 — §1.2: "this formulation is amenable to parallel computation".
// Evaluates a workload with several independent recursive components
// on the threaded scheduler with 1..8 workers (UseRealTime: worker
// threads don't count toward the main thread's CPU clock) against the
// single-threaded deterministic scheduler. Setup (EDB, parse) happens
// once per benchmark, outside the timed region.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

constexpr int kComponents = 8;
constexpr int64_t kNodes = 200;

// k separate transitive closures over separate EDB graphs, unioned by
// the query — several strong components with concurrent work.
struct Fixture {
  Program program;
  Database db;

  Fixture() {
    Rng rng(7);
    std::string text;
    for (int i = 0; i < kComponents; ++i) {
      MPQE_CHECK(
          workload::MakeRandomGraph(db, StrCat("edge", i), kNodes, 2, rng)
              .ok());
      text += StrCat("t", i, "(X, Y) :- edge", i, "(X, Y).\n");
      text += StrCat("t", i, "(X, Y) :- edge", i, "(X, Z), t", i, "(Z, Y).\n");
      text += StrCat("goal(X) :- t", i, "(0, X).\n");
    }
    MPQE_CHECK(ParseInto(text, program, db).ok());
    MPQE_CHECK(program.Validate(&db).ok());
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_ThreadedWorkers(benchmark::State& state) {
  Fixture& f = GetFixture();
  int workers = static_cast<int>(state.range(0));
  size_t answers = 0;
  for (auto _ : state) {
    EvaluationOptions options;
    options.scheduler = SchedulerKind::kThreaded;
    options.workers = workers;
    options.skip_validation = true;
    auto result = Evaluate(f.program, f.db, options);
    MPQE_CHECK(result.ok()) << result.status();
    MPQE_CHECK(result->ended_by_protocol);
    answers = result->answers.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["workers"] = workers;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_ThreadedWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DeterministicReference(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t answers = 0;
  for (auto _ : state) {
    EvaluationOptions options;
    options.skip_validation = true;
    auto result = Evaluate(f.program, f.db, options);
    MPQE_CHECK(result.ok()) << result.status();
    answers = result->answers.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_DeterministicReference)->Unit(benchmark::kMillisecond);

// Message volume does not depend on the scheduler: the parallel run
// does the same logical work.
void BM_ThreadedMessageParity(benchmark::State& state) {
  Fixture& f = GetFixture();
  uint64_t det_msgs = 0, thr_msgs = 0;
  for (auto _ : state) {
    EvaluationOptions det;
    det.skip_validation = true;
    auto r1 = Evaluate(f.program, f.db, det);
    MPQE_CHECK(r1.ok());
    det_msgs = r1->message_stats.ComputationTotal();

    EvaluationOptions thr;
    thr.scheduler = SchedulerKind::kThreaded;
    thr.workers = 4;
    thr.skip_validation = true;
    auto r2 = Evaluate(f.program, f.db, thr);
    MPQE_CHECK(r2.ok());
    thr_msgs = r2->message_stats.ComputationTotal();
    MPQE_CHECK(r1->answers == r2->answers);
    benchmark::DoNotOptimize(r2);
  }
  state.counters["det_msgs"] = static_cast<double>(det_msgs);
  state.counters["thr_msgs"] = static_cast<double>(thr_msgs);
  state.counters["ratio"] =
      static_cast<double>(thr_msgs) / static_cast<double>(det_msgs);
}
BENCHMARK(BM_ThreadedMessageParity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
