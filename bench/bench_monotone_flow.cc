// E5 — Example 4.1 / Figs. 3–4: the monotone flow property and its
// efficiency consequence. Rule R2's evaluation hypergraph is acyclic
// (its b and c branches are independent and safe to evaluate in
// parallel); rule R3's is cyclic through {Y, V, W}, and evaluating its
// b and c branches independently ("in parallel") produces an
// intermediate join that is far larger than the final result — even
// though a W binding would have made either order cheap sequentially.
//
// Three measurements per scale m:
//   * parallel-style two-phase evaluation of R3 with relational
//     operators (semijoin reduce, then join b'⋈c' on W): the
//     intermediate blows up to ~m^2/K;
//   * the engine's sequential greedy evaluation of R3 (W is passed
//     sideways as class d): contexts stay O(m);
//   * the engine on R2 (monotone flow): contexts stay O(m) too.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "relational/operators.h"

namespace mpqe {
namespace {

constexpr int64_t kWBuckets = 4;  // join selectivity knob K

// EDB for R3: a(0,y,y); b(y, y%K, y); c(v, v%K, v); d(t); e(u,u).
// Pairwise consistent: every b tuple joins some c tuple on W and vice
// versa; the global join is still only m tuples because a forces Y=V.
std::string R3Facts(int64_t m) {
  std::string text;
  for (int64_t y = 0; y < m; ++y) {
    text += StrCat("a(0, ", y, ", ", y, ").\n");
    text += StrCat("b(", y, ", ", y % kWBuckets, ", ", y, ").\n");
    text += StrCat("c(", y, ", ", y % kWBuckets, ", ", y, ").\n");
    text += StrCat("d(", y, ").\n");
    text += StrCat("e(", y, ", ", y, ").\n");
  }
  return text;
}

std::string R2Facts(int64_t m) {
  std::string text;
  for (int64_t y = 0; y < m; ++y) {
    text += StrCat("a(0, ", y, ", ", y, ").\n");
    text += StrCat("b(", y, ", ", y, ").\n");
    text += StrCat("c(", y, ", ", y, ").\n");
    text += StrCat("d(", y, ").\n");
    text += StrCat("e(", y, ", ", y, ").\n");
  }
  return text;
}

constexpr const char* kR3Rule =
    "p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).\n"
    "?- p(0, Z).\n";
constexpr const char* kR2Rule =
    "p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).\n"
    "?- p(0, Z).\n";

// "Parallel" evaluation of R3's b and c branches: reduce each by its
// own flow from a, then join them on W without a sideways W binding.
void BM_R3ParallelBranches(benchmark::State& state) {
  int64_t m = state.range(0);
  auto unit = Parse(StrCat(R3Facts(m), kR3Rule));
  MPQE_CHECK(unit.ok());
  const Relation& a = *unit->database.GetRelation("a");
  const Relation& b = *unit->database.GetRelation("b");
  const Relation& c = *unit->database.GetRelation("c");

  size_t intermediate = 0, reduced_b = 0, reduced_c = 0, joined = 0;
  for (auto _ : state) {
    // Flow from a: Y values restrict b, V values restrict c — in
    // parallel, neither sees a W binding.
    Relation b_reduced = SemiJoin(b, a, {{0, 1}});  // b.Y = a.Y
    Relation c_reduced = SemiJoin(c, a, {{0, 2}});  // c.V = a.V
    Relation bc = Join(b_reduced, c_reduced, {{1, 1}});  // on W
    reduced_b = b_reduced.size();
    reduced_c = c_reduced.size();
    joined = bc.size();
    intermediate = std::max(joined, std::max(reduced_b, reduced_c));
    benchmark::DoNotOptimize(bc);
  }
  state.counters["reduced_b"] = static_cast<double>(reduced_b);
  state.counters["reduced_c"] = static_cast<double>(reduced_c);
  state.counters["bc_join"] = static_cast<double>(joined);
  state.counters["final_answers"] = static_cast<double>(m);
  state.counters["blowup_factor"] =
      static_cast<double>(joined) / static_cast<double>(m);
  (void)intermediate;
}
BENCHMARK(BM_R3ParallelBranches)->Arg(64)->Arg(256)->Arg(1024);

void RunEngine(benchmark::State& state, const std::string& facts,
               const char* rule) {
  EvaluationResult result;
  for (auto _ : state) {
    auto unit = Parse(StrCat(facts, rule));
    MPQE_CHECK(unit.ok());
    auto r = Evaluate(unit->program, unit->database);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["contexts"] = static_cast<double>(result.counters.contexts);
  state.counters["stored_tuples"] =
      static_cast<double>(result.counters.stored_tuples);
}

// The engine evaluates R3 sequentially with W passed sideways:
// contexts stay linear in m despite the cyclic hypergraph.
void BM_R3EngineSequential(benchmark::State& state) {
  RunEngine(state, R3Facts(state.range(0)), kR3Rule);
}
BENCHMARK(BM_R3EngineSequential)->Arg(64)->Arg(256)->Arg(1024);

// R2 (monotone flow): contexts stay linear as well — and here even a
// parallel branch evaluation would have been safe.
void BM_R2EngineSequential(benchmark::State& state) {
  RunEngine(state, R2Facts(state.range(0)), kR2Rule);
}
BENCHMARK(BM_R2EngineSequential)->Arg(64)->Arg(256)->Arg(1024);

// For contrast, R3 evaluated without any sideways passing at all
// (no_sips): the full-relation hazard on top of the cyclic structure.
void BM_R3EngineNoSips(benchmark::State& state) {
  int64_t m = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    auto unit = Parse(StrCat(R3Facts(m), kR3Rule));
    MPQE_CHECK(unit.ok());
    EvaluationOptions options;
    options.strategy = "no_sips";
    auto r = Evaluate(unit->program, unit->database, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["contexts"] = static_cast<double>(result.counters.contexts);
}
BENCHMARK(BM_R3EngineNoSips)->Arg(64)->Arg(128);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
