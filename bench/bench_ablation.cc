// E15 (ablation) — design choices DESIGN.md calls out, toggled one at
// a time on the same bound transitive-closure workload:
//
//   * EDB hash indexes (class c/d selections probe vs scan);
//   * the information passing strategy (greedy vs left-to-right vs
//     qual-tree vs none);
//   * batching and coalescing appear in bench_batching /
//     bench_coalescing.
//
// Answers are identical across all configurations; the counters and
// times isolate each choice's contribution.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void RunIndexed(benchmark::State& state, bool use_indexes) {
  int64_t n = state.range(0);
  size_t answers = 0;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.use_edb_indexes = use_indexes;
    auto result = Evaluate(program, db, options);
    MPQE_CHECK(result.ok()) << result.status();
    answers = result->answers.size();
  }
  state.SetLabel(use_indexes ? "indexed" : "scan");
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_EdbIndexed(benchmark::State& state) { RunIndexed(state, true); }
void BM_EdbScan(benchmark::State& state) { RunIndexed(state, false); }
BENCHMARK(BM_EdbIndexed)->Arg(128)->Arg(512);
BENCHMARK(BM_EdbScan)->Arg(128)->Arg(512);

// Strategy ablation on the paper's P1: the same query under every
// strategy; stored tuples show what each strategy's restriction buys.
void BM_StrategyAblation(benchmark::State& state) {
  const char* names[] = {"greedy", "greedy_no_e", "left_to_right",
                         "qual_tree_or_greedy", "no_sips"};
  const char* name = names[state.range(0)];
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "q", 48).ok());
    MPQE_CHECK(workload::MakeChain(db, "r", 48).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::P1Program(0), program, db).ok());
    EvaluationOptions options;
    options.strategy = name;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.SetLabel(name);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["stored_tuples"] =
      static_cast<double>(result.counters.stored_tuples);
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
}
BENCHMARK(BM_StrategyAblation)->DenseRange(0, 4);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
