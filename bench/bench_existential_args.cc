// E10 — §2.2's class "e": a variable whose value is never used is
// marked existential and its values are not transmitted — "goal
// p(X^f, Y^e) can be satisfied by producing one tuple for each unique
// X even though there may be many Y values that go with a given X".
// Sweeps the fan-out (Y values per X) and compares tuple traffic with
// the e designation (greedy) against the same order with e disabled
// (greedy_no_e).

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"

namespace mpqe {
namespace {

std::string FanOutProgram(int64_t xs, int64_t fan) {
  std::string text;
  for (int64_t x = 0; x < xs; ++x) {
    for (int64_t y = 0; y < fan; ++y) {
      text += StrCat("r(", x, ", ", x * fan + y + 1000, ").\n");
    }
  }
  text += "p(X) :- r(X, Y).\n?- p(W).\n";
  return text;
}

void RunFanOut(benchmark::State& state, const char* strategy) {
  int64_t fan = state.range(0);
  const int64_t xs = 16;
  std::string text = FanOutProgram(xs, fan);
  EvaluationResult result;
  for (auto _ : state) {
    auto unit = Parse(text);
    MPQE_CHECK(unit.ok());
    EvaluationOptions options;
    options.strategy = strategy;
    auto r = Evaluate(unit->program, unit->database, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  MPQE_CHECK(result.answers.size() == static_cast<size_t>(xs));
  state.counters["fan_out"] = static_cast<double>(fan);
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
  state.counters["facts"] = static_cast<double>(xs * fan);
}

void BM_WithExistential(benchmark::State& state) {
  RunFanOut(state, "greedy");
}
BENCHMARK(BM_WithExistential)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_WithoutExistential(benchmark::State& state) {
  RunFanOut(state, "greedy_no_e");
}
BENCHMARK(BM_WithoutExistential)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// e-positions inside a join pipeline: s(X) :- r(X, Y), t(X).
// Y is existential; with e disabled every (X, Y) pair flows into the
// rule node's temporary relation.
void RunPipelined(benchmark::State& state, const char* strategy) {
  int64_t fan = state.range(0);
  std::string text;
  for (int64_t x = 0; x < 8; ++x) {
    text += StrCat("t(", x, ").\n");
    for (int64_t y = 0; y < fan; ++y) {
      text += StrCat("r(", x, ", ", y, ").\n");
    }
  }
  text += "s(X) :- r(X, Y), t(X).\n?- s(W).\n";
  EvaluationResult result;
  for (auto _ : state) {
    auto unit = Parse(text);
    MPQE_CHECK(unit.ok());
    EvaluationOptions options;
    options.strategy = strategy;
    auto r = Evaluate(unit->program, unit->database, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
  state.counters["contexts"] = static_cast<double>(result.counters.contexts);
}

void BM_PipelineWithExistential(benchmark::State& state) {
  RunPipelined(state, "greedy");
}
BENCHMARK(BM_PipelineWithExistential)->Arg(8)->Arg(64)->Arg(256);

void BM_PipelineWithoutExistential(benchmark::State& state) {
  RunPipelined(state, "greedy_no_e");
}
BENCHMARK(BM_PipelineWithoutExistential)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
