// E9 — §1.2: "the method is certain to terminate, avoiding the
// well-known 'left recursion' problems of strictly top-down methods",
// and it "handles nonlinear recursion". Compares the engine against
// the SLD baseline on left-recursive and cyclic-data workloads, and
// linear vs nonlinear transitive closure on the engine.

#include <benchmark/benchmark.h>

#include "baseline/tabled_top_down.h"
#include "baseline/top_down_sld.h"
#include "common/logging.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void BM_EngineLeftRecursiveTc(benchmark::State& state) {
  int64_t n = state.range(0);
  size_t answers = 0;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(
        ParseInto(workload::LeftRecursiveTcProgram(0), program, db).ok());
    auto result = Evaluate(program, db);
    MPQE_CHECK(result.ok()) << result.status();
    MPQE_CHECK(result->ended_by_protocol);
    answers = result->answers.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["terminates"] = 1;
}
BENCHMARK(BM_EngineLeftRecursiveTc)->Arg(32)->Arg(128)->Arg(512);

void BM_SldLeftRecursiveTc(benchmark::State& state) {
  int64_t n = state.range(0);
  SldResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(
        ParseInto(workload::LeftRecursiveTcProgram(0), program, db).ok());
    SldOptions options;
    options.max_depth = 200;
    options.max_steps = 500000;
    auto r = TopDownSld(program, db, options);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  // SLD burns its whole budget and still cannot answer completely.
  state.counters["complete"] = result.complete() ? 1 : 0;
  state.counters["steps_burned"] = static_cast<double>(result.steps);
  state.counters["answers_found"] = static_cast<double>(result.answers.size());
}
BENCHMARK(BM_SldLeftRecursiveTc)->Arg(32)->Arg(128);

// Tabled top-down (OLDT/QSQ-style, cf. the paper's [Vie85] citation):
// memo tables fix SLD's divergence while staying goal-directed.
void BM_TabledLeftRecursiveTc(benchmark::State& state) {
  int64_t n = state.range(0);
  TabledResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(
        ParseInto(workload::LeftRecursiveTcProgram(0), program, db).ok());
    auto r = TabledTopDown(program, db);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["tables"] = static_cast<double>(result.tables);
  state.counters["derived"] = static_cast<double>(result.derived);
  state.counters["terminates"] = 1;
}
BENCHMARK(BM_TabledLeftRecursiveTc)->Arg(32)->Arg(128)->Arg(512);

void BM_SldCyclicData(benchmark::State& state) {
  int64_t n = state.range(0);
  SldResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeCycle(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    SldOptions options;
    options.max_depth = 200;
    options.max_steps = 500000;
    auto r = TopDownSld(program, db, options);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.counters["complete"] = result.complete() ? 1 : 0;
  state.counters["steps_burned"] = static_cast<double>(result.steps);
}
BENCHMARK(BM_SldCyclicData)->Arg(8)->Arg(16);

void BM_EngineCyclicData(benchmark::State& state) {
  int64_t n = state.range(0);
  size_t answers = 0;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeCycle(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    auto result = Evaluate(program, db);
    MPQE_CHECK(result.ok());
    answers = result->answers.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["terminates"] = 1;
}
BENCHMARK(BM_EngineCyclicData)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

// Nonlinear recursion ("frequently arises in divide-and-conquer
// algorithms"): tc(X,Y) :- tc(X,Z), tc(Z,Y) — cycles of messages
// through two recursive subgoals of the same rule.
void BM_EngineNonlinearTc(benchmark::State& state) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    auto r = Evaluate(program, db);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
}
BENCHMARK(BM_EngineNonlinearTc)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_EngineLinearTcReference(benchmark::State& state) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    auto r = Evaluate(program, db);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
}
BENCHMARK(BM_EngineLinearTcReference)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
