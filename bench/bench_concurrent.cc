// mpqe_bench_concurrent: load benchmark for the prepared-query engine
// — N concurrent session streams x M queries each over one
// PreparedQuery and one shared DatabaseSnapshot, reporting throughput
// (qps), per-query latency percentiles, and the plan-cache prepare
// cost cold vs. hit.
//
//   $ ./mpqe_bench_concurrent --sessions=8 --queries=50 --scale=512
//   $ ./mpqe_bench_concurrent --json=BENCH_engine.json
//
// Options:
//   --sessions=<n>   concurrent session streams          (default 8)
//   --queries=<m>    queries per stream                  (default 25)
//   --scale=<k>      chain EDB size for the TC workload  (default 256)
//   --workers=<n>    engine worker-pool size             (default = sessions)
//   --repeats=<r>    hit-path Prepare calls to sample    (default 64)
//   --json=<file>    write the machine-readable summary  (default stdout only)
//   --telemetry=<on|off>  engine-wide telemetry + stats endpoint
//                    (default on; `off` is the A/B baseline for the
//                    overhead guard — bench_guard.py --qps compares the
//                    two JSON summaries and asserts on/off >= 0.95)
//   --scrape-out=<f> serve GET /metrics on an ephemeral loopback port,
//                    scrape it REPEATEDLY WHILE THE LOAD RUNS, and
//                    write the final post-load scrape to <f> (validate
//                    with scripts/check_trace.py --prometheus)
//   --queries-out=<f> write the engine query log (GET /queries JSON)
//                    captured after the load to <f>
//
// The prepare_hit_ns figure is the MEDIAN of `repeats` cache-hit
// Prepare calls with byte-identical text (the raw-text alias path: no
// parse, no adornment, no sips, no graph build). bench_guard.py
// --prepare asserts prepare_cold_ns / prepare_hit_ns >= 10.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Fail(const std::string& message) {
  std::cerr << "mpqe_bench_concurrent: " << message << "\n";
  return 1;
}

// One blocking HTTP/1.0 GET against the engine's loopback stats
// endpoint. Returns the response body, or empty on any failure — the
// in-flight scraper treats a miss as "try again next tick".
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: bench\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/", 0) != 0) return "";
  size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return "";
  if (response.find(" 200 ") == std::string::npos ||
      response.find(" 200 ") > response.find("\r\n")) {
    return "";
  }
  return response.substr(head_end + 4);
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 8;
  int queries = 25;
  int64_t scale = 256;
  int workers = 0;
  int repeats = 64;
  std::string json_path;
  bool telemetry = true;
  std::string scrape_path;
  std::string queries_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--sessions=", 0) == 0) {
      sessions = std::stoi(value("--sessions="));
    } else if (arg.rfind("--queries=", 0) == 0) {
      queries = std::stoi(value("--queries="));
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::stoll(value("--scale="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stoi(value("--workers="));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoi(value("--repeats="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value("--json=");
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      const std::string v = value("--telemetry=");
      if (v != "on" && v != "off") return Fail("--telemetry expects on|off");
      telemetry = v == "on";
    } else if (arg.rfind("--scrape-out=", 0) == 0) {
      scrape_path = value("--scrape-out=");
    } else if (arg.rfind("--queries-out=", 0) == 0) {
      queries_path = value("--queries-out=");
    } else {
      return Fail("unknown option: " + arg);
    }
  }
  if (sessions < 1 || queries < 1 || scale < 2 || repeats < 1) {
    return Fail("sessions/queries/repeats must be >= 1 and scale >= 2");
  }
  const bool scraping = !scrape_path.empty() || !queries_path.empty();
  if (scraping && !telemetry) {
    return Fail("--scrape-out/--queries-out require --telemetry=on");
  }

  // The TC-over-a-chain example: one plan, shared by every stream.
  mpqe::Database db;
  if (auto s = mpqe::workload::MakeChain(db, "edge", scale); !s.ok()) {
    return Fail(s.ToString());
  }
  const std::string program_text = mpqe::workload::LinearTcProgram(0);

  mpqe::MetricsRegistry metrics;
  mpqe::EngineOptions engine_options;
  engine_options.workers = workers > 0 ? workers : sessions;
  engine_options.metrics = &metrics;
  engine_options.telemetry = telemetry;
  if (scraping) engine_options.stats_port = 0;  // ephemeral loopback port
  mpqe::Engine engine(engine_options);
  if (scraping) {
    if (!engine.stats_server_status().ok()) {
      return Fail("stats server: " + engine.stats_server_status().ToString());
    }
    std::cerr << "stats endpoint on 127.0.0.1:" << engine.stats_port() << "\n";
  }
  auto snapshot = engine.Attach(std::move(db), "chain");

  // Cold compile.
  auto plan = engine.Prepare(snapshot, program_text);
  if (!plan.ok()) return Fail(plan.status().ToString());
  const uint64_t prepare_cold_ns = engine.plan_cache_stats().last_prepare_ns;

  // Hit path: byte-identical text, median of `repeats` samples.
  std::vector<uint64_t> hit_samples;
  hit_samples.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    auto hit = engine.Prepare(snapshot, program_text);
    if (!hit.ok()) return Fail(hit.status().ToString());
    if (hit->get() != plan->get()) return Fail("cache hit rebuilt the plan");
    hit_samples.push_back(engine.plan_cache_stats().last_prepare_ns);
  }
  std::sort(hit_samples.begin(), hit_samples.end());
  const uint64_t prepare_hit_ns = hit_samples[hit_samples.size() / 2];

  // N streams x M queries. Each stream task runs its queries
  // back-to-back; streams overlap on the worker pool.
  mpqe::Histogram latency;
  std::atomic<uint64_t> failures{0};
  const size_t expected_answers =
      static_cast<size_t>(scale) - 1;  // tc(0, W) reaches 1..scale-1

  // Scrape /metrics WHILE the load runs: the point is that the
  // exposition path is safe against concurrent sessions, not just
  // quiescent engines. Every successful in-flight scrape is counted.
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (scraping) {
    scraper = std::thread([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (!HttpGet(engine.stats_port(), "/metrics").empty()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  const uint64_t wall_start = NowNs();
  std::vector<std::future<void>> streams;
  streams.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    streams.push_back(engine.Submit([&] {
      for (int q = 0; q < queries; ++q) {
        auto session = engine.CreateSession(*plan);
        if (!session.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto result = (*session)->Run();
        if (!result.ok() || result->answers.size() != expected_answers) {
          failures.fetch_add(1);
          continue;
        }
        latency.Record((*session)->latency_ns());
      }
    }));
  }
  for (auto& stream : streams) stream.get();
  const uint64_t wall_ns = NowNs() - wall_start;

  if (scraper.joinable()) {
    stop_scraper.store(true);
    scraper.join();
  }
  if (!scrape_path.empty()) {
    const std::string body = HttpGet(engine.stats_port(), "/metrics");
    if (body.empty()) return Fail("final /metrics scrape failed");
    std::ofstream out(scrape_path);
    if (!out) return Fail("cannot write " + scrape_path);
    out << body;
    std::cerr << "wrote " << scrape_path << "\n";
  }
  if (!queries_path.empty()) {
    const std::string body = HttpGet(engine.stats_port(), "/queries");
    if (body.empty()) return Fail("/queries fetch failed");
    std::ofstream out(queries_path);
    if (!out) return Fail("cannot write " + queries_path);
    out << body;
    std::cerr << "wrote " << queries_path << "\n";
  }

  if (failures.load() != 0) {
    return Fail(mpqe::StrCat(failures.load(), " of ", sessions * queries,
                             " queries failed or returned wrong answers"));
  }

  const uint64_t total_queries =
      static_cast<uint64_t>(sessions) * static_cast<uint64_t>(queries);
  const double qps =
      wall_ns == 0 ? 0.0
                   : static_cast<double>(total_queries) * 1e9 /
                         static_cast<double>(wall_ns);
  mpqe::PlanCacheStats cache = engine.plan_cache_stats();

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"linear_tc_chain\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"sessions\": " << sessions << ",\n"
       << "  \"queries_per_session\": " << queries << ",\n"
       << "  \"total_queries\": " << total_queries << ",\n"
       << "  \"engine_workers\": " << engine.workers() << ",\n"
       << "  \"telemetry\": " << (telemetry ? "true" : "false") << ",\n"
       << "  \"scrapes\": " << scrapes.load() << ",\n"
       << "  \"wall_ns\": " << wall_ns << ",\n"
       << "  \"qps\": " << qps << ",\n"
       << "  \"latency_ns\": {\n"
       << "    \"count\": " << latency.count() << ",\n"
       << "    \"mean\": " << latency.mean() << ",\n"
       << "    \"min\": " << latency.min() << ",\n"
       << "    \"max\": " << latency.max() << ",\n"
       << "    \"p50\": " << latency.Percentile(50) << ",\n"
       << "    \"p95\": " << latency.Percentile(95) << ",\n"
       << "    \"p99\": " << latency.Percentile(99) << "\n"
       << "  },\n"
       << "  \"prepare_cold_ns\": " << prepare_cold_ns << ",\n"
       << "  \"prepare_hit_ns\": " << prepare_hit_ns << ",\n"
       << "  \"prepare_speedup\": "
       << (prepare_hit_ns == 0
               ? static_cast<double>(prepare_cold_ns)
               : static_cast<double>(prepare_cold_ns) /
                     static_cast<double>(prepare_hit_ns))
       << ",\n"
       << "  \"plan_cache\": {\n"
       << "    \"hits\": " << cache.hits << ",\n"
       << "    \"misses\": " << cache.misses << ",\n"
       << "    \"evictions\": " << cache.evictions << ",\n"
       << "    \"size\": " << cache.size << "\n"
       << "  }\n"
       << "}\n";

  std::cout << json.str();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return Fail("cannot write " + json_path);
    out << json.str();
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
