// mpqe_bench_concurrent: load benchmark for the prepared-query engine
// — N concurrent session streams x M queries each over one
// PreparedQuery and one shared DatabaseSnapshot, reporting throughput
// (qps), per-query latency percentiles, and the plan-cache prepare
// cost cold vs. hit.
//
//   $ ./mpqe_bench_concurrent --sessions=8 --queries=50 --scale=512
//   $ ./mpqe_bench_concurrent --json=BENCH_engine.json
//
// Options:
//   --sessions=<n>   concurrent session streams          (default 8)
//   --queries=<m>    queries per stream                  (default 25)
//   --scale=<k>      chain EDB size for the TC workload  (default 256)
//   --workers=<n>    engine worker-pool size             (default = sessions)
//   --repeats=<r>    hit-path Prepare calls to sample    (default 64)
//   --json=<file>    write the machine-readable summary  (default stdout only)
//
// The prepare_hit_ns figure is the MEDIAN of `repeats` cache-hit
// Prepare calls with byte-identical text (the raw-text alias path: no
// parse, no adornment, no sips, no graph build). bench_guard.py
// --prepare asserts prepare_cold_ns / prepare_hit_ns >= 10.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Fail(const std::string& message) {
  std::cerr << "mpqe_bench_concurrent: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 8;
  int queries = 25;
  int64_t scale = 256;
  int workers = 0;
  int repeats = 64;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--sessions=", 0) == 0) {
      sessions = std::stoi(value("--sessions="));
    } else if (arg.rfind("--queries=", 0) == 0) {
      queries = std::stoi(value("--queries="));
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::stoll(value("--scale="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stoi(value("--workers="));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoi(value("--repeats="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value("--json=");
    } else {
      return Fail("unknown option: " + arg);
    }
  }
  if (sessions < 1 || queries < 1 || scale < 2 || repeats < 1) {
    return Fail("sessions/queries/repeats must be >= 1 and scale >= 2");
  }

  // The TC-over-a-chain example: one plan, shared by every stream.
  mpqe::Database db;
  if (auto s = mpqe::workload::MakeChain(db, "edge", scale); !s.ok()) {
    return Fail(s.ToString());
  }
  const std::string program_text = mpqe::workload::LinearTcProgram(0);

  mpqe::MetricsRegistry metrics;
  mpqe::EngineOptions engine_options;
  engine_options.workers = workers > 0 ? workers : sessions;
  engine_options.metrics = &metrics;
  mpqe::Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(db), "chain");

  // Cold compile.
  auto plan = engine.Prepare(snapshot, program_text);
  if (!plan.ok()) return Fail(plan.status().ToString());
  const uint64_t prepare_cold_ns = engine.plan_cache_stats().last_prepare_ns;

  // Hit path: byte-identical text, median of `repeats` samples.
  std::vector<uint64_t> hit_samples;
  hit_samples.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    auto hit = engine.Prepare(snapshot, program_text);
    if (!hit.ok()) return Fail(hit.status().ToString());
    if (hit->get() != plan->get()) return Fail("cache hit rebuilt the plan");
    hit_samples.push_back(engine.plan_cache_stats().last_prepare_ns);
  }
  std::sort(hit_samples.begin(), hit_samples.end());
  const uint64_t prepare_hit_ns = hit_samples[hit_samples.size() / 2];

  // N streams x M queries. Each stream task runs its queries
  // back-to-back; streams overlap on the worker pool.
  mpqe::Histogram latency;
  std::atomic<uint64_t> failures{0};
  const size_t expected_answers =
      static_cast<size_t>(scale) - 1;  // tc(0, W) reaches 1..scale-1
  const uint64_t wall_start = NowNs();
  std::vector<std::future<void>> streams;
  streams.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    streams.push_back(engine.Submit([&] {
      for (int q = 0; q < queries; ++q) {
        auto session = engine.CreateSession(*plan);
        if (!session.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto result = (*session)->Run();
        if (!result.ok() || result->answers.size() != expected_answers) {
          failures.fetch_add(1);
          continue;
        }
        latency.Record((*session)->latency_ns());
      }
    }));
  }
  for (auto& stream : streams) stream.get();
  const uint64_t wall_ns = NowNs() - wall_start;

  if (failures.load() != 0) {
    return Fail(mpqe::StrCat(failures.load(), " of ", sessions * queries,
                             " queries failed or returned wrong answers"));
  }

  const uint64_t total_queries =
      static_cast<uint64_t>(sessions) * static_cast<uint64_t>(queries);
  const double qps =
      wall_ns == 0 ? 0.0
                   : static_cast<double>(total_queries) * 1e9 /
                         static_cast<double>(wall_ns);
  mpqe::PlanCacheStats cache = engine.plan_cache_stats();

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"linear_tc_chain\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"sessions\": " << sessions << ",\n"
       << "  \"queries_per_session\": " << queries << ",\n"
       << "  \"total_queries\": " << total_queries << ",\n"
       << "  \"engine_workers\": " << engine.workers() << ",\n"
       << "  \"wall_ns\": " << wall_ns << ",\n"
       << "  \"qps\": " << qps << ",\n"
       << "  \"latency_ns\": {\n"
       << "    \"count\": " << latency.count() << ",\n"
       << "    \"mean\": " << latency.mean() << ",\n"
       << "    \"min\": " << latency.min() << ",\n"
       << "    \"max\": " << latency.max() << ",\n"
       << "    \"p50\": " << latency.Percentile(50) << ",\n"
       << "    \"p95\": " << latency.Percentile(95) << ",\n"
       << "    \"p99\": " << latency.Percentile(99) << "\n"
       << "  },\n"
       << "  \"prepare_cold_ns\": " << prepare_cold_ns << ",\n"
       << "  \"prepare_hit_ns\": " << prepare_hit_ns << ",\n"
       << "  \"prepare_speedup\": "
       << (prepare_hit_ns == 0
               ? static_cast<double>(prepare_cold_ns)
               : static_cast<double>(prepare_cold_ns) /
                     static_cast<double>(prepare_hit_ns))
       << ",\n"
       << "  \"plan_cache\": {\n"
       << "    \"hits\": " << cache.hits << ",\n"
       << "    \"misses\": " << cache.misses << ",\n"
       << "    \"evictions\": " << cache.evictions << ",\n"
       << "    \"size\": " << cache.size << "\n"
       << "  }\n"
       << "}\n";

  std::cout << json.str();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return Fail("cannot write " + json_path);
    out << json.str();
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
