// E7 — §4.3: the cost model under the paper's "reasonable
// assumptions" (alpha = 0.3, comparable large relations). Enumerates
// every evaluation order for rules R1, R2, R3 and reports the cost of
// the best order, the worst order, and the order the greedy /
// qual-tree strategy actually picks — checking the conjecture that for
// monotone-flow rules the greedy strategy is optimal.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/logging.h"
#include "datalog/parser.h"
#include "sips/cost_model.h"
#include "sips/strategy.h"

namespace mpqe {
namespace {

struct RuleCase {
  const char* name;
  const char* text;
};

const RuleCase kCases[] = {
    {"R1", "p(X, Z) :- a(X, Y), b(Y, U), c(U, Z)."},
    {"R2", "p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z)."},
    {"R3", "p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z)."},
};

Adornment HeadDf() {
  return {BindingClass::kDynamic, BindingClass::kFree};
}

void BM_EnumerateOrders(benchmark::State& state) {
  const RuleCase& c = kCases[state.range(0)];
  auto unit = Parse(c.text);
  MPQE_CHECK(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;  // n = 10^6, alpha = 0.3 as in the paper

  std::vector<OrderCost> costs;
  for (auto _ : state) {
    auto r = EnumerateOrderCosts(rule, HeadDf(), params);
    MPQE_CHECK(r.ok());
    costs = *std::move(r);
    benchmark::DoNotOptimize(costs);
  }

  // Where does the greedy order rank?
  auto greedy = MakeGreedyStrategy()->Classify(rule, HeadDf(), unit->program);
  MPQE_CHECK(greedy.ok());
  OrderCost greedy_cost =
      EstimateOrderCost(rule, HeadDf(), greedy->order, params);

  state.SetLabel(c.name);
  state.counters["orders"] = static_cast<double>(costs.size());
  state.counters["best_log_cost"] = std::log10(costs.front().total_cost);
  state.counters["worst_log_cost"] = std::log10(costs.back().total_cost);
  state.counters["greedy_log_cost"] = std::log10(greedy_cost.total_cost);
  state.counters["greedy_is_best"] =
      greedy_cost.total_cost <= costs.front().total_cost * 1.0001 ? 1 : 0;
}
BENCHMARK(BM_EnumerateOrders)->DenseRange(0, 2);

// The qual-tree order matches the model's optimum on monotone rules.
void BM_QualTreeOrderOptimality(benchmark::State& state) {
  const RuleCase& c = kCases[state.range(0)];  // R1 or R2 only
  auto unit = Parse(c.text);
  MPQE_CHECK(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;

  std::vector<OrderCost> costs;
  std::vector<size_t> qual_order;
  for (auto _ : state) {
    auto qt = MakeQualTreeStrategy()->Classify(rule, HeadDf(), unit->program);
    MPQE_CHECK(qt.ok());
    qual_order = qt->order;
    auto all = EnumerateOrderCosts(rule, HeadDf(), params);
    MPQE_CHECK(all.ok());
    costs = *std::move(all);
    benchmark::DoNotOptimize(costs);
  }
  double qual_cost =
      EstimateOrderCost(rule, HeadDf(), qual_order, params).total_cost;
  double best_cost = costs.front().total_cost;
  state.SetLabel(c.name);
  state.counters["qual_tree_log_cost"] = std::log10(qual_cost);
  state.counters["best_log_cost"] = std::log10(best_cost);
  state.counters["qual_tree_is_best"] =
      qual_cost <= best_cost * 1.0001 ? 1 : 0;
}
BENCHMARK(BM_QualTreeOrderOptimality)->DenseRange(0, 1);

// Sensitivity to alpha: sweep the reduction factor and report the
// spread between best and worst orders (larger alpha -> order matters
// more).
void BM_AlphaSensitivity(benchmark::State& state) {
  auto unit = Parse(kCases[1].text);  // R2
  MPQE_CHECK(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;
  params.alpha = static_cast<double>(state.range(0)) / 10.0;

  double spread = 0;
  for (auto _ : state) {
    auto all = EnumerateOrderCosts(rule, HeadDf(), params);
    MPQE_CHECK(all.ok());
    spread = std::log10(all->back().total_cost) -
             std::log10(all->front().total_cost);
    benchmark::DoNotOptimize(spread);
  }
  state.counters["alpha"] = params.alpha;
  state.counters["log_cost_spread"] = spread;
}
BENCHMARK(BM_AlphaSensitivity)->Arg(1)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
