// E14 (extension) — footnote 2: "package a set of related tuple
// requests ... the retrieval can be done in one scan". Packaging the
// messages a node emits per handled message into per-destination
// envelopes cuts physical message counts (the quantity the paper's
// "communication is expensive" model charges for) without changing
// answers or logical traffic.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void RunTc(benchmark::State& state, const std::string& shape, bool batch) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    if (shape == "chain") {
      MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    } else if (shape == "tree") {
      MPQE_CHECK(workload::MakeBinaryTree(db, "edge", n).ok());
    } else {
      Rng rng(5);
      MPQE_CHECK(workload::MakeRandomGraph(db, "edge", n, 2, rng).ok());
    }
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.batch_messages = batch;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  const MessageStats& s = result.message_stats;
  state.SetLabel(batch ? "batched" : "plain");
  state.counters["physical_msgs"] = static_cast<double>(s.PhysicalTotal());
  state.counters["logical_msgs"] =
      static_cast<double>(s.Total() - s.Count(MessageKind::kBatch));
  state.counters["envelopes"] =
      static_cast<double>(s.Count(MessageKind::kBatch));
  if (batch) {
    state.counters["saving_factor"] =
        static_cast<double>(s.Total() - s.Count(MessageKind::kBatch)) /
        static_cast<double>(s.PhysicalTotal());
  }
}

void BM_TreeTcPlain(benchmark::State& state) { RunTc(state, "tree", false); }
void BM_TreeTcBatched(benchmark::State& state) { RunTc(state, "tree", true); }
BENCHMARK(BM_TreeTcPlain)->Arg(255)->Arg(1023);
BENCHMARK(BM_TreeTcBatched)->Arg(255)->Arg(1023);

void BM_RandomTcPlain(benchmark::State& state) {
  RunTc(state, "random", false);
}
void BM_RandomTcBatched(benchmark::State& state) {
  RunTc(state, "random", true);
}
BENCHMARK(BM_RandomTcPlain)->Arg(64)->Arg(128);
BENCHMARK(BM_RandomTcBatched)->Arg(64)->Arg(128);

// Batching composes with coalescing: the combination is the
// "single-processor, packaged" configuration.
void BM_CombinedExtensions(benchmark::State& state) {
  bool batch = state.range(0) & 1;
  bool coalesce = state.range(0) & 2;
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeBinaryTree(db, "edge", 255).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.batch_messages = batch;
    options.graph_options.coalesce_nodes = coalesce;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.SetLabel(StrCat(coalesce ? "coalesced" : "distributed", "/",
                        batch ? "batched" : "plain"));
  state.counters["physical_msgs"] =
      static_cast<double>(result.message_stats.PhysicalTotal());
  state.counters["answers"] = static_cast<double>(result.answers.size());
}
BENCHMARK(BM_CombinedExtensions)->DenseRange(0, 3);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
