// E1 — Fig. 1 / Example 2.1: construction of the greedy information
// passing rule/goal graph for program P1 (and other program shapes).
// Reports the structural counts that reproduce Fig. 1 (goal nodes,
// rule nodes, cycle edges, EDB leaves, strong components) and measures
// construction time.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void BM_BuildGraphP1(benchmark::State& state) {
  Database db;
  MPQE_CHECK(workload::MakeChain(db, "q", 4).ok());
  MPQE_CHECK(workload::MakeChain(db, "r", 4).ok());
  Program program;
  MPQE_CHECK(ParseInto(workload::P1Program(0), program, db).ok());
  MPQE_CHECK(program.Validate(&db).ok());
  auto strategy = MakeGreedyStrategy();

  GraphStats stats;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(program, *strategy);
    MPQE_CHECK(graph.ok());
    stats = (*graph)->Stats();
    benchmark::DoNotOptimize(graph);
  }
  // Fig. 1's structure (including the two trivial goal levels the
  // paper omits from the drawing).
  state.counters["nodes"] = static_cast<double>(stats.node_count);
  state.counters["goal_nodes"] = static_cast<double>(stats.goal_nodes);
  state.counters["rule_nodes"] = static_cast<double>(stats.rule_nodes);
  state.counters["cycle_edges"] = static_cast<double>(stats.cycle_refs);
  state.counters["edb_leaves"] = static_cast<double>(stats.edb_leaves);
  state.counters["sccs"] = static_cast<double>(stats.nontrivial_sccs);
}
BENCHMARK(BM_BuildGraphP1);

// Graph construction time as the IDB grows: k independent TC layers
// t1..tk, each defined over the previous one.
void BM_BuildGraphLayeredIdb(benchmark::State& state) {
  int64_t layers = state.range(0);
  std::string text = "t0(X, Y) :- edge(X, Y).\n";
  for (int64_t i = 1; i <= layers; ++i) {
    text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Y).\n");
    text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Z), t", i, "(Z, Y).\n");
  }
  text += StrCat("?- t", layers, "(0, W).\n");
  auto unit = Parse(text);
  MPQE_CHECK(unit.ok());
  MPQE_CHECK(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();

  GraphStats stats;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(unit->program, *strategy);
    MPQE_CHECK(graph.ok());
    stats = (*graph)->Stats();
    benchmark::DoNotOptimize(graph);
  }
  state.counters["nodes"] = static_cast<double>(stats.node_count);
  state.counters["sccs"] = static_cast<double>(stats.nontrivial_sccs);
}
BENCHMARK(BM_BuildGraphLayeredIdb)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Strategy choice affects graph shape: no_sips collapses binding
// patterns (fewer distinct goal nodes) while greedy specializes them.
void BM_BuildGraphByStrategy(benchmark::State& state) {
  const char* names[] = {"greedy", "left_to_right", "qual_tree_or_greedy",
                         "no_sips"};
  const char* name = names[state.range(0)];
  Database db;
  MPQE_CHECK(workload::MakeChain(db, "q", 4).ok());
  MPQE_CHECK(workload::MakeChain(db, "r", 4).ok());
  Program program;
  MPQE_CHECK(ParseInto(workload::P1Program(0), program, db).ok());
  MPQE_CHECK(program.Validate(&db).ok());
  auto strategy = MakeStrategyByName(name);
  MPQE_CHECK(strategy.ok());

  GraphStats stats;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(program, **strategy);
    MPQE_CHECK(graph.ok());
    stats = (*graph)->Stats();
    benchmark::DoNotOptimize(graph);
  }
  state.SetLabel(name);
  state.counters["nodes"] = static_cast<double>(stats.node_count);
  state.counters["cycle_edges"] = static_cast<double>(stats.cycle_refs);
}
BENCHMARK(BM_BuildGraphByStrategy)->DenseRange(0, 3);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
