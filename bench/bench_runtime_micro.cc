// E12 — micro-costs of the substrates: message delivery throughput of
// the simulated network (per scheduler), relation insert/probe, and
// the join/semijoin kernels. These put the end-to-end numbers in
// context ("communication is expensive" is a model assumption; here
// it is a few hundred nanoseconds per hop).

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "msg/network.h"
#include "obs/flight_recorder.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "relational/operators.h"

namespace mpqe {
namespace {

// Ping-pong process: forwards a hop-counting tuple to a peer.
class PingPong : public Process {
 public:
  explicit PingPong(ProcessId peer) : peer_(peer) {}
  void OnMessage(const Message& m) override {
    int64_t hops = m.values[0].payload();
    if (hops > 0) Send(peer_, MakeTuple({}, {Value::Int(hops - 1)}));
  }

 private:
  ProcessId peer_;
};

void BM_MessageHopDeterministic(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    net.AddProcess(std::make_unique<PingPong>(1));
    net.AddProcess(std::make_unique<PingPong>(0));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopDeterministic);

void BM_MessageHopThreaded(benchmark::State& state) {
  const int64_t kHops = 10000;
  int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Network net;
    net.AddProcess(std::make_unique<PingPong>(1));
    net.AddProcess(std::make_unique<PingPong>(0));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunThreaded(workers);
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopThreaded)->Arg(1)->Arg(4);

// The profiler-overhead guard: same ping-pong as
// BM_MessageHopDeterministic, but with a ProfilingObserver attached
// (graph-less — pure observer cost). Compare against the profiler-off
// run above; the off-path must stay unchanged (the zero-observer fast
// path) while the on-path's per-hop cost is the tracked overhead in
// BENCH_obs.json.
void BM_MessageHopProfiled(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    ProfilingObserver profiler;
    net.AddProcess(std::make_unique<PingPong>(1));
    net.AddProcess(std::make_unique<PingPong>(0));
    net.AddObserver(&profiler);
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    ProfileReport report = profiler.Finalize();
    MPQE_CHECK(report.total_msgs_delivered ==
               static_cast<uint64_t>(kHops) + 1);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopProfiled);

// Ping-pong with full lineage recording: each hop's tuple is inserted
// into a lineage-enabled relation, gets a fresh id, and publishes a
// derivation record chaining to the previous hop — the engine's exact
// per-derivation sequence (InsertRow + OnDerive + lineage stamp).
// BM_MessageHopDeterministic is the lineage-off baseline; the off-path
// must stay within noise of it (a null-pointer branch per insert),
// while this run's per-hop cost is the tracked lineage-on overhead in
// BENCH_obs.json.
class PingPongLineage : public Process {
 public:
  PingPongLineage(ProcessId peer, TupleIdAllocator* ids,
                  const ObserverList* observers)
      : peer_(peer), observers_(observers), seen_(1) {
    seen_.EnableLineage(ids);
  }

  void OnMessage(const Message& m) override {
    int64_t hops = m.values[0].payload();
    Relation::InsertResult ins = seen_.InsertRow(m.values);
    MPQE_CHECK(ins.inserted);
    uint64_t id = seen_.row_id(ins.row);
    DeriveEvent event;
    event.tuple_id = id;
    event.kind = DeriveKind::kUnion;
    event.source_msg = m.lineage;
    event.inputs = &m.lineage;
    event.num_inputs = m.lineage == kNoLineage ? 0 : 1;
    event.values = m.values;
    observers_->NotifyDerive(event);
    if (hops > 0) {
      Message out = MakeTuple({}, {Value::Int(hops - 1)});
      out.lineage = id;
      Send(peer_, std::move(out));
    }
  }

 private:
  ProcessId peer_;
  const ObserverList* observers_;
  Relation seen_;
};

void BM_MessageHopLineage(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    LineageObserver lineage;
    net.AddObserver(&lineage);
    net.AddProcess(std::make_unique<PingPongLineage>(1, lineage.ids(),
                                                     &net.observers()));
    net.AddProcess(std::make_unique<PingPongLineage>(0, lineage.ids(),
                                                     &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    MPQE_CHECK(lineage.record_count() == static_cast<size_t>(kHops) + 1);
    LineageReport report = lineage.Finalize();
    MPQE_CHECK(report.max_depth == kHops);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopLineage);

// ---------------------------------------------------------------------------
// Columnar segment hops

constexpr size_t kSegmentRows = 128;

// Forwards the SAME shared 128-row segment back and forth: one
// envelope per hop carries kSegmentRows tuples with zero row copies
// (the hop counter rides in the message binding). Items = rows
// transported; compare per-item against BM_MessageHopDeterministic for
// the wire-level win of segmenting.
class SegmentForward : public Process {
 public:
  explicit SegmentForward(ProcessId peer) : peer_(peer) {}
  void OnMessage(const Message& m) override {
    int64_t hops = m.binding[0].payload();
    if (hops > 0) {
      Message out = MakeTupleSegment(m.segment_ptr());
      out.binding = Tuple{Value::Int(hops - 1)};
      Send(peer_, std::move(out));
    }
  }

 private:
  ProcessId peer_;
};

std::shared_ptr<TupleSegment> MakeSeedSegment(int64_t hops) {
  auto seed = std::make_shared<TupleSegment>();
  seed->binding = Tuple{Value::Int(hops)};
  seed->arity = 1;
  for (size_t i = 0; i < kSegmentRows; ++i) {
    seed->AppendRow(Tuple{Value::Int(static_cast<int64_t>(i))});
  }
  return seed;
}

void BM_SegmentHopDeterministic(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    net.AddProcess(std::make_unique<SegmentForward>(1));
    net.AddProcess(std::make_unique<SegmentForward>(0));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopDeterministic);

// The engine's per-arriving-segment sequence without lineage: insert
// every row into a relation (duplicate elimination), build the next
// hop's segment columnar, forward it. This is the lineage-off baseline
// for the segmented overhead guard in BENCH_obs.json.
class SegmentDedupHop : public Process {
 public:
  SegmentDedupHop(ProcessId peer, TupleIdAllocator* ids,
                  const ObserverList* observers)
      : peer_(peer), observers_(observers), seen_(1) {
    if (ids != nullptr) seen_.EnableLineage(ids);
  }

  void OnMessage(const Message& m) override {
    const TupleSegment& in = m.segment();
    int64_t hops = m.binding[0].payload();
    bool lineage = seen_.lineage_enabled();
    auto out = std::make_shared<TupleSegment>();
    out->binding = Tuple{Value::Int(hops - 1)};
    out->arity = 1;
    out->values.reserve(in.num_rows);
    std::vector<uint64_t> inputs;
    if (lineage) {
      out->lineage.reserve(in.num_rows);
      inputs.reserve(in.num_rows);
    }
    for (size_t r = 0; r < in.num_rows; ++r) {
      // A fresh value per hop: every insert derives a new tuple, as in
      // a growing node relation.
      Tuple row{Value::Int(in.row(r)[0].payload() +
                           static_cast<int64_t>(kSegmentRows))};
      Relation::InsertResult ins = seen_.InsertRow(row);
      MPQE_CHECK(ins.inserted);
      out->AppendRow(row);
      if (lineage) {
        out->lineage.push_back(seen_.row_id(ins.row));
        inputs.push_back(in.row_lineage(r));
      }
    }
    if (lineage) {
      // One batched derive callback per absorbed segment — the
      // engine's vectorized lineage path.
      DeriveBatchEvent event;
      event.kind = DeriveKind::kUnion;
      event.segment = out;
      event.inputs = inputs.data();
      observers_->NotifyDeriveBatch(event);
    }
    if (hops > 0) Send(peer_, MakeTupleSegment(std::move(out)));
  }

 private:
  ProcessId peer_;
  const ObserverList* observers_;
  Relation seen_;
};

void BM_SegmentHopDedup(benchmark::State& state) {
  const int64_t kHops = 1000;
  for (auto _ : state) {
    Network net;
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(1, nullptr, &net.observers()));
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(0, nullptr, &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopDedup);

// The telemetry-overhead guard: same dedup hop as BM_SegmentHopDedup,
// but with a MetricsObserver attached — the exact observer every
// telemetry-on engine session runs with (per-message counters, handle
// histograms, per-node fire counts). bench_guard.py --telemetry
// asserts this stays within 1.05x of BM_SegmentHopDedup; the off-path
// remains the zero-observer fast path and must not move at all.
void BM_SegmentHopTelemetry(benchmark::State& state) {
  const int64_t kHops = 1000;
  for (auto _ : state) {
    Network net;
    MetricsRegistry registry;
    MetricsObserver observer(&registry);
    net.AddObserver(&observer);
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(1, nullptr, &net.observers()));
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(0, nullptr, &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    MPQE_CHECK(registry.GetCounter("msg/delivered").value() ==
               static_cast<uint64_t>(kHops) + 1);
    benchmark::DoNotOptimize(registry);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopTelemetry);

// As BM_SegmentHopDedup with full lineage recording: per row an id
// assignment and a lineage-column push, per segment ONE batched derive
// record (delta-encoded by the LineageObserver) instead of one
// callback per tuple. The tracked lineage-on overhead ratio in
// BENCH_obs.json is this against BM_SegmentHopDedup.
void BM_SegmentHopLineage(benchmark::State& state) {
  const int64_t kHops = 1000;
  for (auto _ : state) {
    Network net;
    LineageObserver lineage;
    net.AddObserver(&lineage);
    net.AddProcess(std::make_unique<SegmentDedupHop>(1, lineage.ids(),
                                                     &net.observers()));
    net.AddProcess(std::make_unique<SegmentDedupHop>(0, lineage.ids(),
                                                     &net.observers()));
    net.Start();
    // Seed rows draw real ids so every hop's inputs resolve.
    Relation seed_rel(1);
    seed_rel.EnableLineage(lineage.ids());
    auto seed = MakeSeedSegment(kHops);
    for (size_t i = 0; i < kSegmentRows; ++i) {
      Relation::InsertResult ins = seed_rel.InsertRow(seed->row(i));
      seed->lineage.push_back(seed_rel.row_id(ins.row));
    }
    net.Send(kNoProcess, 0, MakeTupleSegment(std::move(seed)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    MPQE_CHECK(lineage.record_count() ==
               static_cast<size_t>(kHops + 1) * kSegmentRows);
    benchmark::DoNotOptimize(lineage);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopLineage);

// The flight-recorder-overhead guard: the same dedup hop as
// BM_SegmentHopDedup, but with a FlightSessionObserver attached — the
// exact always-on tap every engine session runs with when
// EngineOptions::flight_recorder is on (the default). Each event is a
// clock read plus a seqlock-published 40-byte record into a per-thread
// ring. bench_guard.py --flight asserts this stays within 1.05x of
// BM_SegmentHopDedup, keeping the black box cheap enough to never turn
// off. The recorder lives outside the timing loop like the engine's
// does (one recorder per Engine, not per session).
void BM_SegmentHopFlight(benchmark::State& state) {
  const int64_t kHops = 1000;
  FlightRecorder recorder;
  uint64_t query_id = 0;
  for (auto _ : state) {
    Network net;
    FlightSessionObserver observer(&recorder, ++query_id);
    net.AddObserver(&observer);
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(1, nullptr, &net.observers()));
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(0, nullptr, &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  MPQE_CHECK(recorder.recorded() > 0);
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopFlight);

// ---------------------------------------------------------------------------
// Vectorized segment kernels (PR 9): row-at-a-time vs. batch absorption
// and probing. Arg(0) = the pre-vectorization per-row path, Arg(1) =
// the batch kernels; items = rows/s. bench_guard.py --absorb enforces
// the Arg(1)/Arg(0) speedup floor recorded in BENCH_relational.json.

// The absorb workload models a goal node over a full query lifetime:
// the relation starts empty and absorbs a stream of fat segments
// (adaptive sizing: steady-state recursion ships segments near
// segment_max_rows_limit, not the 128-row default). The goal has a
// free head variable in its d-projection, so a segment's rows split
// across kAbsorbGroups distinct output bindings — the multi-group
// case whose O(groups)-per-row linear scan the vectorized path
// replaces with one hash-map lookup per surviving row. Every eighth
// segment is a wholesale re-derivation of an earlier one (the
// duplicate traffic §1.2's elimination exists for).
constexpr size_t kAbsorbSegmentRows = 4096;
constexpr size_t kAbsorbStreamSegments = 64;
constexpr int64_t kAbsorbGroups = 256;

std::shared_ptr<TupleSegment> MakeAbsorbSegment(int64_t first) {
  auto seg = std::make_shared<TupleSegment>();
  seg->arity = 2;
  seg->values.reserve(kAbsorbSegmentRows * 2);
  for (size_t r = 0; r < kAbsorbSegmentRows; ++r) {
    int64_t v = first + static_cast<int64_t>(r);
    // Column 0 is the d-projected head variable (kAbsorbGroups
    // distinct values interleaved); column 1 keeps the row globally
    // unique.
    seg->values.push_back(Value::Int(v % kAbsorbGroups));
    seg->values.push_back(Value::Int(v));
    ++seg->num_rows;
  }
  return seg;
}

// Goal-node absorption. Arg(0) mirrors
// GoalProcess::OnTupleSegmentRowAtATime — one InsertRow per row, the
// per-row linear scan over open output groups, one AppendRow copy per
// survivor. Arg(1) mirrors the vectorized OnTupleSegment — one
// InsertSegment call per segment, then the grouping pass over the
// survivor bitmap with a hash map keyed on the d-projection. Both
// arms build and flush the same output segments, so the measured gap
// is exactly the batch-kernel + grouping difference.
void BM_SegmentAbsorb(benchmark::State& state) {
  const bool batch = state.range(0) != 0;
  std::vector<std::shared_ptr<TupleSegment>> stream;
  Rng rng(11);
  int64_t next = 0;
  size_t fresh_rows = 0;
  for (size_t s = 0; s < kAbsorbStreamSegments; ++s) {
    if (s % 8 == 7) {
      // Wholesale re-derivation of an earlier stream segment.
      stream.push_back(stream[rng.Below(s)]);
    } else {
      stream.push_back(MakeAbsorbSegment(next));
      next += static_cast<int64_t>(kAbsorbSegmentRows);
      fresh_rows += kAbsorbSegmentRows;
    }
  }
  const size_t stream_rows = kAbsorbStreamSegments * kAbsorbSegmentRows;

  struct OutGroup {
    std::shared_ptr<TupleSegment> segment;
  };
  for (auto _ : state) {
    Relation answers(2);
    size_t forwarded = 0;
    size_t drops = 0;
    Tuple dproj(1, Value());
    for (const auto& seg : stream) {
      if (batch) {
        const BatchInsertResult& ins = answers.InsertSegment(*seg);
        drops += seg->num_rows - ins.num_inserted;
        if (ins.num_inserted == 0) continue;
        std::unordered_map<Tuple, OutGroup, TupleHash> groups;
        std::vector<OutGroup*> group_order;
        for (size_t r = 0; r < seg->num_rows; ++r) {
          if (!ins.inserted(r)) continue;
          TupleRef row = seg->row(r);
          dproj[0] = row[0];
          auto [it, is_new] = groups.try_emplace(dproj);
          OutGroup& group = it->second;
          if (is_new) {
            group.segment = std::make_shared<TupleSegment>();
            group.segment->binding = dproj;
            group.segment->arity = seg->arity;
            group_order.push_back(&group);
          }
          group.segment->AppendRow(row);
        }
        for (OutGroup* group : group_order) {
          group->segment->CheckConsistent();
          forwarded += group->segment->num_rows;
          benchmark::DoNotOptimize(group->segment);
        }
      } else {
        std::vector<OutGroup> groups;
        for (size_t r = 0; r < seg->num_rows; ++r) {
          TupleRef row = seg->row(r);
          Relation::InsertResult ins = answers.InsertRow(row);
          if (!ins.inserted) {
            ++drops;
            continue;
          }
          dproj[0] = row[0];
          OutGroup* group = nullptr;
          for (OutGroup& g : groups) {
            if (g.segment->binding == dproj) {
              group = &g;
              break;
            }
          }
          if (group == nullptr) {
            OutGroup g;
            g.segment = std::make_shared<TupleSegment>();
            g.segment->binding = dproj;
            g.segment->arity = seg->arity;
            groups.push_back(std::move(g));
            group = &groups.back();
          }
          group->segment->AppendRow(row);
        }
        for (OutGroup& group : groups) {
          group.segment->CheckConsistent();
          forwarded += group.segment->num_rows;
          benchmark::DoNotOptimize(group.segment);
        }
      }
    }
    MPQE_CHECK(forwarded == fresh_rows);
    MPQE_CHECK(drops == stream_rows - fresh_rows);
    MPQE_CHECK(answers.size() == fresh_rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream_rows));
}
BENCHMARK(BM_SegmentAbsorb)->Arg(0)->Arg(1);

// The rule-node probe: dedup an inbound child-answer segment against
// the per-request answer set before the waiter-extension join. Arg(0)
// is the pre-vectorization RuleProcess idiom this PR replaced — copy
// each row into a scratch Tuple, re-hash it into a
// std::unordered_set<Tuple> (one node allocation per fresh row, a
// pointer-chasing probe per duplicate), and keep a parallel
// std::vector<Tuple> of accepted answers for later waiters. Arg(1) is
// the flat-arena batch kernel: one InsertSegment per segment, rows
// live in the arena, survivors read straight off the bitmap. Both
// arms hand every survivor to the same consumer loop.
void BM_SegmentJoin(benchmark::State& state) {
  const bool batch = state.range(0) != 0;
  constexpr size_t kJoinSegmentRows = 1024;
  constexpr size_t kJoinStreamSegments = 256;
  std::vector<std::shared_ptr<TupleSegment>> stream;
  Rng rng(17);
  int64_t next = 0;
  size_t fresh_rows = 0;
  for (size_t s = 0; s < kJoinStreamSegments; ++s) {
    if (s % 4 == 3) {
      // A re-derived child stream: the same answers arrive again via
      // another derivation path and must all dedup away.
      stream.push_back(stream[rng.Below(s)]);
    } else {
      auto seg = std::make_shared<TupleSegment>();
      seg->arity = 2;
      seg->values.reserve(kJoinSegmentRows * 2);
      for (size_t r = 0; r < kJoinSegmentRows; ++r) {
        seg->values.push_back(Value::Int(next));
        seg->values.push_back(Value::Int(next * 3));
        ++next;
        ++seg->num_rows;
      }
      stream.push_back(std::move(seg));
      fresh_rows += kJoinSegmentRows;
    }
  }
  const size_t stream_rows = kJoinStreamSegments * kJoinSegmentRows;

  uint64_t consumed = 0;
  for (auto _ : state) {
    size_t drops = 0;
    consumed = 0;
    if (batch) {
      Relation answers(2);
      for (const auto& seg : stream) {
        const BatchInsertResult& ins = answers.InsertSegment(*seg);
        drops += seg->num_rows - ins.num_inserted;
        if (ins.num_inserted == 0) continue;
        for (size_t r = 0; r < seg->num_rows; ++r) {
          if (!ins.inserted(r)) continue;
          consumed += static_cast<uint64_t>(seg->row(r)[1].payload());
        }
      }
      MPQE_CHECK(answers.size() == fresh_rows);
    } else {
      std::vector<Tuple> answers;
      std::unordered_set<Tuple, TupleHash> answer_set;
      Tuple row_buf(2, Value());
      for (const auto& seg : stream) {
        for (size_t r = 0; r < seg->num_rows; ++r) {
          TupleRef row = seg->row(r);
          row_buf[0] = row[0];
          row_buf[1] = row[1];
          if (!answer_set.insert(row_buf).second) {
            ++drops;
            continue;
          }
          answers.push_back(row_buf);
          consumed += static_cast<uint64_t>(row[1].payload());
        }
      }
      MPQE_CHECK(answers.size() == fresh_rows);
    }
    MPQE_CHECK(drops == stream_rows - fresh_rows);
    benchmark::DoNotOptimize(consumed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream_rows));
}
BENCHMARK(BM_SegmentJoin)->Arg(0)->Arg(1);

void BM_RelationInsert(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    Relation r(2);
    for (int64_t i = 0; i < n; ++i) {
      r.Insert({Value::Int(i), Value::Int(i + 1)});
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationInsert)->Arg(1000)->Arg(100000);

void BM_IndexedProbe(benchmark::State& state) {
  int64_t n = state.range(0);
  Relation r(2);
  for (int64_t i = 0; i < n; ++i) {
    r.Insert({Value::Int(i % (n / 10)), Value::Int(i)});
  }
  size_t idx = r.EnsureIndex({0});
  Rng rng(3);
  for (auto _ : state) {
    Tuple key{Value::Int(static_cast<int64_t>(rng.Below(
        static_cast<uint64_t>(n / 10))))};
    benchmark::DoNotOptimize(r.Probe(idx, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedProbe)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  int64_t n = state.range(0);
  Relation left(2), right(2);
  Rng rng(5);
  for (int64_t i = 0; i < n; ++i) {
    left.Insert({Value::Int(i), Value::Int(static_cast<int64_t>(
                                    rng.Below(static_cast<uint64_t>(n))))});
    right.Insert({Value::Int(static_cast<int64_t>(
                      rng.Below(static_cast<uint64_t>(n)))),
                  Value::Int(i)});
  }
  size_t out = 0;
  for (auto _ : state) {
    Relation j = Join(left, right, {{1, 0}});
    out = j.size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["output"] = static_cast<double>(out);
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SemiJoin(benchmark::State& state) {
  int64_t n = state.range(0);
  Relation left(2), right(1);
  for (int64_t i = 0; i < n; ++i) {
    left.Insert({Value::Int(i), Value::Int(i)});
    if (i % 3 == 0) right.Insert({Value::Int(i)});
  }
  for (auto _ : state) {
    Relation s = SemiJoin(left, right, {{0, 0}});
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SemiJoin)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
