// E12 — micro-costs of the substrates: message delivery throughput of
// the simulated network (per scheduler), relation insert/probe, and
// the join/semijoin kernels. These put the end-to-end numbers in
// context ("communication is expensive" is a model assumption; here
// it is a few hundred nanoseconds per hop).

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "msg/network.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "relational/operators.h"

namespace mpqe {
namespace {

// Ping-pong process: forwards a hop-counting tuple to a peer.
class PingPong : public Process {
 public:
  explicit PingPong(ProcessId peer) : peer_(peer) {}
  void OnMessage(const Message& m) override {
    int64_t hops = m.values[0].payload();
    if (hops > 0) Send(peer_, MakeTuple({}, {Value::Int(hops - 1)}));
  }

 private:
  ProcessId peer_;
};

void BM_MessageHopDeterministic(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    net.AddProcess(std::make_unique<PingPong>(1));
    net.AddProcess(std::make_unique<PingPong>(0));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopDeterministic);

void BM_MessageHopThreaded(benchmark::State& state) {
  const int64_t kHops = 10000;
  int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Network net;
    net.AddProcess(std::make_unique<PingPong>(1));
    net.AddProcess(std::make_unique<PingPong>(0));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunThreaded(workers);
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopThreaded)->Arg(1)->Arg(4);

// The profiler-overhead guard: same ping-pong as
// BM_MessageHopDeterministic, but with a ProfilingObserver attached
// (graph-less — pure observer cost). Compare against the profiler-off
// run above; the off-path must stay unchanged (the zero-observer fast
// path) while the on-path's per-hop cost is the tracked overhead in
// BENCH_obs.json.
void BM_MessageHopProfiled(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    ProfilingObserver profiler;
    net.AddProcess(std::make_unique<PingPong>(1));
    net.AddProcess(std::make_unique<PingPong>(0));
    net.AddObserver(&profiler);
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    ProfileReport report = profiler.Finalize();
    MPQE_CHECK(report.total_msgs_delivered ==
               static_cast<uint64_t>(kHops) + 1);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopProfiled);

// Ping-pong with full lineage recording: each hop's tuple is inserted
// into a lineage-enabled relation, gets a fresh id, and publishes a
// derivation record chaining to the previous hop — the engine's exact
// per-derivation sequence (InsertRow + OnDerive + lineage stamp).
// BM_MessageHopDeterministic is the lineage-off baseline; the off-path
// must stay within noise of it (a null-pointer branch per insert),
// while this run's per-hop cost is the tracked lineage-on overhead in
// BENCH_obs.json.
class PingPongLineage : public Process {
 public:
  PingPongLineage(ProcessId peer, TupleIdAllocator* ids,
                  const ObserverList* observers)
      : peer_(peer), observers_(observers), seen_(1) {
    seen_.EnableLineage(ids);
  }

  void OnMessage(const Message& m) override {
    int64_t hops = m.values[0].payload();
    Relation::InsertResult ins = seen_.InsertRow(m.values);
    MPQE_CHECK(ins.inserted);
    uint64_t id = seen_.row_id(ins.row);
    DeriveEvent event;
    event.tuple_id = id;
    event.kind = DeriveKind::kUnion;
    event.source_msg = m.lineage;
    event.inputs = &m.lineage;
    event.num_inputs = m.lineage == kNoLineage ? 0 : 1;
    event.values = m.values;
    observers_->NotifyDerive(event);
    if (hops > 0) {
      Message out = MakeTuple({}, {Value::Int(hops - 1)});
      out.lineage = id;
      Send(peer_, std::move(out));
    }
  }

 private:
  ProcessId peer_;
  const ObserverList* observers_;
  Relation seen_;
};

void BM_MessageHopLineage(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    LineageObserver lineage;
    net.AddObserver(&lineage);
    net.AddProcess(std::make_unique<PingPongLineage>(1, lineage.ids(),
                                                     &net.observers()));
    net.AddProcess(std::make_unique<PingPongLineage>(0, lineage.ids(),
                                                     &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(kHops)}));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    MPQE_CHECK(lineage.record_count() == static_cast<size_t>(kHops) + 1);
    LineageReport report = lineage.Finalize();
    MPQE_CHECK(report.max_depth == kHops);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_MessageHopLineage);

// ---------------------------------------------------------------------------
// Columnar segment hops

constexpr size_t kSegmentRows = 128;

// Forwards the SAME shared 128-row segment back and forth: one
// envelope per hop carries kSegmentRows tuples with zero row copies
// (the hop counter rides in the message binding). Items = rows
// transported; compare per-item against BM_MessageHopDeterministic for
// the wire-level win of segmenting.
class SegmentForward : public Process {
 public:
  explicit SegmentForward(ProcessId peer) : peer_(peer) {}
  void OnMessage(const Message& m) override {
    int64_t hops = m.binding[0].payload();
    if (hops > 0) {
      Message out = MakeTupleSegment(m.segment_ptr());
      out.binding = Tuple{Value::Int(hops - 1)};
      Send(peer_, std::move(out));
    }
  }

 private:
  ProcessId peer_;
};

std::shared_ptr<TupleSegment> MakeSeedSegment(int64_t hops) {
  auto seed = std::make_shared<TupleSegment>();
  seed->binding = Tuple{Value::Int(hops)};
  seed->arity = 1;
  for (size_t i = 0; i < kSegmentRows; ++i) {
    seed->AppendRow(Tuple{Value::Int(static_cast<int64_t>(i))});
  }
  return seed;
}

void BM_SegmentHopDeterministic(benchmark::State& state) {
  const int64_t kHops = 10000;
  for (auto _ : state) {
    Network net;
    net.AddProcess(std::make_unique<SegmentForward>(1));
    net.AddProcess(std::make_unique<SegmentForward>(0));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopDeterministic);

// The engine's per-arriving-segment sequence without lineage: insert
// every row into a relation (duplicate elimination), build the next
// hop's segment columnar, forward it. This is the lineage-off baseline
// for the segmented overhead guard in BENCH_obs.json.
class SegmentDedupHop : public Process {
 public:
  SegmentDedupHop(ProcessId peer, TupleIdAllocator* ids,
                  const ObserverList* observers)
      : peer_(peer), observers_(observers), seen_(1) {
    if (ids != nullptr) seen_.EnableLineage(ids);
  }

  void OnMessage(const Message& m) override {
    const TupleSegment& in = m.segment();
    int64_t hops = m.binding[0].payload();
    bool lineage = seen_.lineage_enabled();
    auto out = std::make_shared<TupleSegment>();
    out->binding = Tuple{Value::Int(hops - 1)};
    out->arity = 1;
    out->values.reserve(in.num_rows);
    std::vector<uint64_t> inputs;
    if (lineage) {
      out->lineage.reserve(in.num_rows);
      inputs.reserve(in.num_rows);
    }
    for (size_t r = 0; r < in.num_rows; ++r) {
      // A fresh value per hop: every insert derives a new tuple, as in
      // a growing node relation.
      Tuple row{Value::Int(in.row(r)[0].payload() +
                           static_cast<int64_t>(kSegmentRows))};
      Relation::InsertResult ins = seen_.InsertRow(row);
      MPQE_CHECK(ins.inserted);
      out->AppendRow(row);
      if (lineage) {
        out->lineage.push_back(seen_.row_id(ins.row));
        inputs.push_back(in.row_lineage(r));
      }
    }
    if (lineage) {
      // One batched derive callback per absorbed segment — the
      // engine's vectorized lineage path.
      DeriveBatchEvent event;
      event.kind = DeriveKind::kUnion;
      event.segment = out;
      event.inputs = inputs.data();
      observers_->NotifyDeriveBatch(event);
    }
    if (hops > 0) Send(peer_, MakeTupleSegment(std::move(out)));
  }

 private:
  ProcessId peer_;
  const ObserverList* observers_;
  Relation seen_;
};

void BM_SegmentHopDedup(benchmark::State& state) {
  const int64_t kHops = 1000;
  for (auto _ : state) {
    Network net;
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(1, nullptr, &net.observers()));
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(0, nullptr, &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopDedup);

// The telemetry-overhead guard: same dedup hop as BM_SegmentHopDedup,
// but with a MetricsObserver attached — the exact observer every
// telemetry-on engine session runs with (per-message counters, handle
// histograms, per-node fire counts). bench_guard.py --telemetry
// asserts this stays within 1.05x of BM_SegmentHopDedup; the off-path
// remains the zero-observer fast path and must not move at all.
void BM_SegmentHopTelemetry(benchmark::State& state) {
  const int64_t kHops = 1000;
  for (auto _ : state) {
    Network net;
    MetricsRegistry registry;
    MetricsObserver observer(&registry);
    net.AddObserver(&observer);
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(1, nullptr, &net.observers()));
    net.AddProcess(
        std::make_unique<SegmentDedupHop>(0, nullptr, &net.observers()));
    net.Start();
    net.Send(kNoProcess, 0, MakeTupleSegment(MakeSeedSegment(kHops)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    MPQE_CHECK(registry.GetCounter("msg/delivered").value() ==
               static_cast<uint64_t>(kHops) + 1);
    benchmark::DoNotOptimize(registry);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopTelemetry);

// As BM_SegmentHopDedup with full lineage recording: per row an id
// assignment and a lineage-column push, per segment ONE batched derive
// record (delta-encoded by the LineageObserver) instead of one
// callback per tuple. The tracked lineage-on overhead ratio in
// BENCH_obs.json is this against BM_SegmentHopDedup.
void BM_SegmentHopLineage(benchmark::State& state) {
  const int64_t kHops = 1000;
  for (auto _ : state) {
    Network net;
    LineageObserver lineage;
    net.AddObserver(&lineage);
    net.AddProcess(std::make_unique<SegmentDedupHop>(1, lineage.ids(),
                                                     &net.observers()));
    net.AddProcess(std::make_unique<SegmentDedupHop>(0, lineage.ids(),
                                                     &net.observers()));
    net.Start();
    // Seed rows draw real ids so every hop's inputs resolve.
    Relation seed_rel(1);
    seed_rel.EnableLineage(lineage.ids());
    auto seed = MakeSeedSegment(kHops);
    for (size_t i = 0; i < kSegmentRows; ++i) {
      Relation::InsertResult ins = seed_rel.InsertRow(seed->row(i));
      seed->lineage.push_back(seed_rel.row_id(ins.row));
    }
    net.Send(kNoProcess, 0, MakeTupleSegment(std::move(seed)));
    auto run = net.RunDeterministic();
    MPQE_CHECK(run.ok() && run->quiescent);
    MPQE_CHECK(lineage.record_count() ==
               static_cast<size_t>(kHops + 1) * kSegmentRows);
    benchmark::DoNotOptimize(lineage);
  }
  state.SetItemsProcessed(state.iterations() * (kHops + 1) *
                          static_cast<int64_t>(kSegmentRows));
}
BENCHMARK(BM_SegmentHopLineage);

void BM_RelationInsert(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    Relation r(2);
    for (int64_t i = 0; i < n; ++i) {
      r.Insert({Value::Int(i), Value::Int(i + 1)});
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationInsert)->Arg(1000)->Arg(100000);

void BM_IndexedProbe(benchmark::State& state) {
  int64_t n = state.range(0);
  Relation r(2);
  for (int64_t i = 0; i < n; ++i) {
    r.Insert({Value::Int(i % (n / 10)), Value::Int(i)});
  }
  size_t idx = r.EnsureIndex({0});
  Rng rng(3);
  for (auto _ : state) {
    Tuple key{Value::Int(static_cast<int64_t>(rng.Below(
        static_cast<uint64_t>(n / 10))))};
    benchmark::DoNotOptimize(r.Probe(idx, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedProbe)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  int64_t n = state.range(0);
  Relation left(2), right(2);
  Rng rng(5);
  for (int64_t i = 0; i < n; ++i) {
    left.Insert({Value::Int(i), Value::Int(static_cast<int64_t>(
                                    rng.Below(static_cast<uint64_t>(n))))});
    right.Insert({Value::Int(static_cast<int64_t>(
                      rng.Below(static_cast<uint64_t>(n)))),
                  Value::Int(i)});
  }
  size_t out = 0;
  for (auto _ : state) {
    Relation j = Join(left, right, {{1, 0}});
    out = j.size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["output"] = static_cast<double>(out);
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SemiJoin(benchmark::State& state) {
  int64_t n = state.range(0);
  Relation left(2), right(1);
  for (int64_t i = 0; i < n; ++i) {
    left.Insert({Value::Int(i), Value::Int(i)});
    if (i % 3 == 0) right.Insert({Value::Int(i)});
  }
  for (auto _ : state) {
    Relation s = SemiJoin(left, right, {{0, 0}});
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SemiJoin)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
