// E11 — §1.2/§3.1: "Deletion of duplicates in cycles ensures that
// nodes become idle when the computation is complete" and "Detection
// of duplicates is necessary to allow loops to terminate". Measures
// the duplicate-drop rate as graph density grows (denser graphs derive
// the same tuples along more paths) and the fraction of arrivals that
// dedup absorbs.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void BM_DedupVsDensity(benchmark::State& state) {
  int64_t degree = state.range(0);
  const int64_t n = 48;
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    Rng rng(11);
    MPQE_CHECK(workload::MakeRandomGraph(db, "edge", n, degree, rng).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    auto r = Evaluate(program, db);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  uint64_t stored = result.counters.stored_tuples;
  uint64_t dropped = result.counters.duplicate_drops;
  state.counters["out_degree"] = static_cast<double>(degree);
  state.counters["stored"] = static_cast<double>(stored);
  state.counters["dup_dropped"] = static_cast<double>(dropped);
  state.counters["drop_share_pct"] =
      100.0 * static_cast<double>(dropped) /
      static_cast<double>(stored + dropped);
}
BENCHMARK(BM_DedupVsDensity)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// A cycle graph makes every tc tuple re-derivable forever; dedup is
// the only reason the fixpoint is reached. Scaling check: messages per
// derived tuple stay bounded.
void BM_DedupOnCycles(benchmark::State& state) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeCycle(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    auto r = Evaluate(program, db);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["dup_dropped"] =
      static_cast<double>(result.counters.duplicate_drops);
  state.counters["msgs_per_answer"] =
      static_cast<double>(result.message_stats.ComputationTotal()) /
      static_cast<double>(result.answers.size());
}
BENCHMARK(BM_DedupOnCycles)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

// Nonlinear recursion multiplies derivation paths (each tc tuple can
// be assembled from many (Z) splits), so dedup absorbs much more.
void BM_DedupNonlinearVsLinear(benchmark::State& state) {
  bool nonlinear = state.range(1) == 1;
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", n).ok());
    Program program;
    std::string text = nonlinear ? workload::NonlinearTcProgram(0)
                                 : workload::LinearTcProgram(0);
    MPQE_CHECK(ParseInto(text, program, db).ok());
    auto r = Evaluate(program, db);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.SetLabel(nonlinear ? "nonlinear" : "linear");
  state.counters["dup_dropped"] =
      static_cast<double>(result.counters.duplicate_drops);
  state.counters["stored"] =
      static_cast<double>(result.counters.stored_tuples);
}
BENCHMARK(BM_DedupNonlinearVsLinear)
    ->ArgsProduct({{32, 64}, {0, 1}});

// Segmented vs per-tuple wire on the same dedup-bound workload
// (nonlinear TC on a cycle — multi-row answer runs, so segments
// actually fill). arg1 == 1 evaluates with columnar TupleSegment
// messages (the default), arg1 == 0 forces the legacy one-envelope-
// per-tuple wire. The time ratio is the end-to-end win of segmenting.
void BM_DedupSegmentedVsPerTuple(benchmark::State& state) {
  int64_t n = state.range(0);
  bool segmented = state.range(1) == 1;
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeCycle(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.segment_messages = segmented;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.SetLabel(segmented ? "segmented" : "per_tuple");
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["segment_rows"] =
      static_cast<double>(result.message_stats.segment_rows);
  state.counters["physical_msgs"] =
      static_cast<double>(result.message_stats.PhysicalTotal());
}
BENCHMARK(BM_DedupSegmentedVsPerTuple)
    ->ArgsProduct({{32, 64}, {0, 1}});

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
