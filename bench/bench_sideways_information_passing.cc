// E4 — §1.2/§3.1: sideways information passing ("class d functions as
// a semi-join operand") restricts the computation to relevant tuples.
// A bound transitive-closure query tc(k, W) is evaluated four ways:
//
//   greedy      — the paper's method (d bindings flow sideways);
//   no_sips     — same message framework, intermediate relations
//                 computed in full (McKay-Shapiro-style, [MS81]);
//   semi-naive  — bottom-up least fixpoint (whole minimum model);
//   naive       — brute force bottom-up.
//
// The shape to reproduce: greedy's derived-tuple count scales with the
// relevant region (suffix of the chain / subtree), the other three
// with the whole relation; greedy wins by a growing factor.

#include <benchmark/benchmark.h>

#include "baseline/bottom_up.h"
#include "baseline/magic_sets.h"
#include "common/logging.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

struct Workload {
  Program program;
  Database db;
};

Workload ChainTc(int64_t n) {
  Workload w;
  MPQE_CHECK(workload::MakeChain(w.db, "edge", n).ok());
  // Bind the query to the midpoint: half the chain is irrelevant.
  MPQE_CHECK(
      ParseInto(workload::LinearTcProgram(n / 2), w.program, w.db).ok());
  return w;
}

void BM_EngineGreedy(benchmark::State& state) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Workload w = ChainTc(n);
    auto r = Evaluate(w.program, w.db);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["stored_tuples"] =
      static_cast<double>(result.counters.stored_tuples);
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
}
BENCHMARK(BM_EngineGreedy)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_EngineNoSips(benchmark::State& state) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Workload w = ChainTc(n);
    EvaluationOptions options;
    options.strategy = "no_sips";
    auto r = Evaluate(w.program, w.db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["stored_tuples"] =
      static_cast<double>(result.counters.stored_tuples);
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
}
BENCHMARK(BM_EngineNoSips)->Arg(64)->Arg(128)->Arg(256);

void BM_SemiNaive(benchmark::State& state) {
  int64_t n = state.range(0);
  BottomUpResult result;
  for (auto _ : state) {
    Workload w = ChainTc(n);
    auto r = SemiNaiveBottomUp(w.program, w.db);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.goal.size());
  state.counters["derived_tuples"] = static_cast<double>(result.total_derived);
}
BENCHMARK(BM_SemiNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Magic sets: the compiled bottom-up counterpart of sideways
// information passing (same binding propagation, no messages).
void BM_MagicSets(benchmark::State& state) {
  int64_t n = state.range(0);
  auto strategy = MakeGreedyStrategy();
  MagicSetsResult result;
  for (auto _ : state) {
    Workload w = ChainTc(n);
    auto r = MagicSetsEvaluate(w.program, w.db, *strategy);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.counters["answers"] =
      static_cast<double>(result.evaluation.goal.size());
  state.counters["derived_tuples"] =
      static_cast<double>(result.evaluation.total_derived);
  state.counters["magic_rules"] = static_cast<double>(result.magic_rules);
}
BENCHMARK(BM_MagicSets)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_Naive(benchmark::State& state) {
  int64_t n = state.range(0);
  BottomUpResult result;
  for (auto _ : state) {
    Workload w = ChainTc(n);
    auto r = NaiveBottomUp(w.program, w.db);
    MPQE_CHECK(r.ok());
    result = *std::move(r);
  }
  state.counters["answers"] = static_cast<double>(result.goal.size());
  state.counters["derived_tuples"] = static_cast<double>(result.total_derived);
}
BENCHMARK(BM_Naive)->Arg(64)->Arg(128);

// Tree-shaped data, bound to one subtree: the relevant region is a
// O(log)-deep subtree; the full relation is the whole closure.
void BM_TreeBoundQuery(benchmark::State& state) {
  const char* strategies[] = {"greedy", "no_sips"};
  const char* strategy = strategies[state.range(1)];
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeBinaryTree(db, "edge", n).ok());
    Program program;
    // Query from an internal node one level below the root.
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(1), program, db).ok());
    EvaluationOptions options;
    options.strategy = strategy;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.SetLabel(strategy);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["stored_tuples"] =
      static_cast<double>(result.counters.stored_tuples);
}
BENCHMARK(BM_TreeBoundQuery)
    ->ArgsProduct({{63, 255, 1023}, {0, 1}});

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
