// E6 — Theorems 4.1 / 4.2 and Example 4.2: qual trees. Measures GYO
// reduction and qual-tree construction over growing acyclic
// hypergraphs, verifies that the qual-tree strategy's order is greedy
// on R2, and measures qual-tree composition (the Fig. 5 operation)
// chained to increasing depths.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "hypergraph/gyo.h"
#include "hypergraph/monotone_flow.h"
#include "sips/strategy.h"

namespace mpqe {
namespace {

// Random join-tree hypergraph: acyclic by construction.
Hypergraph RandomAcyclic(size_t n, uint64_t seed) {
  Rng rng(seed);
  int next_var = 0;
  std::vector<std::vector<int>> edge_vars(n);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      size_t parent = rng.Below(i);
      int connector = next_var++;
      edge_vars[parent].push_back(connector);
      edge_vars[i].push_back(connector);
    }
    for (size_t k = rng.Below(3); k > 0; --k) {
      edge_vars[i].push_back(next_var++);
    }
  }
  Hypergraph hg;
  for (size_t i = 0; i < n; ++i) hg.AddEdge(StrCat("e", i), edge_vars[i]);
  return hg;
}

void BM_GyoReduceAcyclic(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Hypergraph hg = RandomAcyclic(n, 42);
  bool acyclic = false;
  for (auto _ : state) {
    GyoResult r = GyoReduce(hg);
    acyclic = r.acyclic;
    benchmark::DoNotOptimize(r);
  }
  MPQE_CHECK(acyclic);
  state.counters["edges"] = static_cast<double>(n);
}
BENCHMARK(BM_GyoReduceAcyclic)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_GyoReduceCyclic(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Hypergraph hg;
  for (size_t i = 0; i < n; ++i) {
    hg.AddEdge(StrCat("e", i),
               {static_cast<int>(i), static_cast<int>((i + 1) % n)});
  }
  bool acyclic = true;
  for (auto _ : state) {
    GyoResult r = GyoReduce(hg);
    acyclic = r.acyclic;
    benchmark::DoNotOptimize(r);
  }
  MPQE_CHECK(!acyclic);
  state.counters["edges"] = static_cast<double>(n);
}
BENCHMARK(BM_GyoReduceCyclic)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// Qual-tree strategy vs greedy on R2: both must produce a greedy
// classification (Thm. 4.1); measure strategy time.
void BM_QualTreeStrategyR2(benchmark::State& state) {
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  MPQE_CHECK(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  Adornment head = {BindingClass::kDynamic, BindingClass::kFree};
  auto strategy = MakeQualTreeStrategy();
  size_t matches = 0;
  for (auto _ : state) {
    auto r = strategy->Classify(rule, head, unit->program);
    MPQE_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
    ++matches;
  }
  state.counters["classified"] = static_cast<double>(matches);
}
BENCHMARK(BM_QualTreeStrategyR2);

void BM_GreedyStrategyR2(benchmark::State& state) {
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  MPQE_CHECK(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  Adornment head = {BindingClass::kDynamic, BindingClass::kFree};
  auto strategy = MakeGreedyStrategy();
  for (auto _ : state) {
    auto r = strategy->Classify(rule, head, unit->program);
    MPQE_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyStrategyR2);

// Theorem 4.2: compose the linear-recursion qual tree with itself to
// depth k (each composition resolves the recursive leaf p); the result
// must keep the qual tree property at every step.
void BM_QualTreeComposition(benchmark::State& state) {
  int64_t depth = state.range(0);
  bool property_held = true;
  for (auto _ : state) {
    // Base: p^b{0}, a{0,1}, p{1,2}, rooted at p^b; p is a leaf.
    Hypergraph outer;
    outer.AddEdge("p^b", {0});
    outer.AddEdge("a", {0, 1});
    outer.AddEdge("p", {1, 2});
    GyoResult outer_gyo = GyoReduce(outer);
    MPQE_CHECK(outer_gyo.acyclic);
    ComposedQualTree composed;
    composed.nodes = outer.edges();
    composed.adjacency = outer_gyo.qual_tree.adjacency;
    composed.root = 0;

    int next_var = 3;
    size_t leaf = 2;     // index of the current recursive leaf
    int bound = 1;       // the leaf's bound (class d) variable
    const int free = 2;  // the leaf's free variable (the answer)
    for (int64_t d = 0; d < depth; ++d) {
      // Leaf p(B, F): resolve against p(B, F) :- a(B, M), p(M, F).
      int mid = next_var++;
      Hypergraph inner;
      inner.AddEdge("p^b", {bound});
      inner.AddEdge("a", {bound, mid});
      inner.AddEdge("p", {mid, free});
      GyoResult inner_gyo = GyoReduce(inner);
      MPQE_CHECK(inner_gyo.acyclic);

      // Rebuild a Hypergraph view of the composed tree to compose
      // again (ComposeQualTrees takes hypergraph + tree).
      Hypergraph outer_hg;
      for (const auto& e : composed.nodes) {
        outer_hg.AddEdge(e.label, e.vars);
      }
      QualTree outer_tree;
      outer_tree.adjacency = composed.adjacency;
      auto next = ComposeQualTrees(outer_hg, outer_tree, composed.root, leaf,
                                   inner, inner_gyo.qual_tree, 0);
      MPQE_CHECK(next.ok()) << next.status();
      composed = *std::move(next);
      property_held =
          property_held && HasQualTreeProperty(composed.nodes,
                                               composed.adjacency);
      // The new recursive leaf is the inner "p" (last node added).
      leaf = composed.nodes.size() - 1;
      bound = mid;
    }
    benchmark::DoNotOptimize(composed);
  }
  MPQE_CHECK(property_held);
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["property_held"] = property_held ? 1 : 0;
}
BENCHMARK(BM_QualTreeComposition)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
