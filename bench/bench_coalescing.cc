// E13 (extension) — §2.2 end + footnote 4: node coalescing. "For
// single processor computation it is probably desirable to coalesce
// such nodes ... for distributed or parallel computation, combining
// nodes may well be counter-productive." Measures both sides of that
// trade-off:
//   * graph size: coalescing turns the worst-case exponential
//     expansion into one linear in the number of binding patterns;
//   * shared work: identical subqueries issued from different rules
//     are computed once;
//   * protocol cost: the conclusion must now be propagated around the
//     strong component (extra scc_concluded / work_notice traffic).

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

std::string LayeredProgram(int layers) {
  std::string text =
      "t0(X, Y) :- edge(X, Y).\nt0(X, Y) :- edge(X, Z), t0(Z, Y).\n";
  for (int i = 1; i <= layers; ++i) {
    text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Y).\n");
    text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Z), t", i, "(Z, Y).\n");
  }
  text += StrCat("?- t", layers, "(0, W).\n");
  return text;
}

void BM_GraphSizeLayered(benchmark::State& state) {
  bool coalesce = state.range(1) == 1;
  int layers = static_cast<int>(state.range(0));
  auto unit = Parse(LayeredProgram(layers));
  MPQE_CHECK(unit.ok());
  MPQE_CHECK(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();
  GraphBuildOptions options;
  options.coalesce_nodes = coalesce;
  options.max_nodes = 2000000;

  size_t nodes = 0;
  for (auto _ : state) {
    auto graph = RuleGoalGraph::Build(unit->program, *strategy, options);
    MPQE_CHECK(graph.ok()) << graph.status();
    nodes = (*graph)->size();
    benchmark::DoNotOptimize(graph);
  }
  state.SetLabel(coalesce ? "coalesced" : "distributed");
  state.counters["layers"] = layers;
  state.counters["graph_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GraphSizeLayered)
    ->ArgsProduct({{2, 4, 8}, {0, 1}})
    ->Args({16, 1});  // 16 layers only fit when coalesced

// Shared subqueries: k query rules all touch the same bound tc.
void BM_SharedSubqueries(benchmark::State& state) {
  bool coalesce = state.range(1) == 1;
  int consumers = static_cast<int>(state.range(0));
  std::string text =
      "tc(X, Y) :- edge(X, Y).\ntc(X, Y) :- edge(X, Z), tc(Z, Y).\n";
  for (int i = 0; i < consumers; ++i) {
    text += StrCat("goal(X) :- tc(", i, ", X).\n");
  }
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", 64).ok());
    Program program;
    MPQE_CHECK(ParseInto(text, program, db).ok());
    EvaluationOptions options;
    options.graph_options.coalesce_nodes = coalesce;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.SetLabel(coalesce ? "coalesced" : "distributed");
  state.counters["consumers"] = consumers;
  state.counters["stored_tuples"] =
      static_cast<double>(result.counters.stored_tuples);
  state.counters["tuple_msgs"] =
      static_cast<double>(result.message_stats.Count(MessageKind::kTuple));
  state.counters["graph_nodes"] =
      static_cast<double>(result.graph_stats.node_count);
}
BENCHMARK(BM_SharedSubqueries)->ArgsProduct({{2, 4, 8}, {0, 1}});

// Protocol overhead of the footnote-4 extension on a plain recursive
// query (same workload both modes).
void BM_ProtocolOverhead(benchmark::State& state) {
  bool coalesce = state.range(1) == 1;
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeCycle(db, "edge", n).ok());
    Program program;
    MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.graph_options.coalesce_nodes = coalesce;
    auto r = Evaluate(program, db, options);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
  }
  state.SetLabel(coalesce ? "coalesced" : "distributed");
  state.counters["protocol_msgs"] =
      static_cast<double>(result.message_stats.ProtocolTotal());
  state.counters["concluded_msgs"] = static_cast<double>(
      result.message_stats.Count(MessageKind::kSccConcluded));
  state.counters["notices"] = static_cast<double>(
      result.message_stats.Count(MessageKind::kWorkNotice));
  state.counters["computation_msgs"] =
      static_cast<double>(result.message_stats.ComputationTotal());
}
BENCHMARK(BM_ProtocolOverhead)->ArgsProduct({{32, 128}, {0, 1}});

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
