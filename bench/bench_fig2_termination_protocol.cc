// E3 — Fig. 2 / Theorem 3.1: cost and behavior of the asynchronous
// distributed termination protocol. Measures protocol traffic
// (end_request / end_negative / end_confirmed) against computation
// traffic as the recursive workload scales, under deterministic and
// random schedules.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

EvaluationResult RunCycleTc(int64_t n, SchedulerKind scheduler,
                            uint64_t seed) {
  Database db;
  MPQE_CHECK(workload::MakeCycle(db, "edge", n).ok());
  Program program;
  MPQE_CHECK(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  EvaluationOptions options;
  options.scheduler = scheduler;
  options.seed = seed;
  auto result = Evaluate(program, db, options);
  MPQE_CHECK(result.ok()) << result.status();
  MPQE_CHECK(result->ended_by_protocol);
  return *std::move(result);
}

void BM_ProtocolDeterministic(benchmark::State& state) {
  int64_t n = state.range(0);
  EvaluationResult result;
  for (auto _ : state) {
    result = RunCycleTc(n, SchedulerKind::kDeterministic, 0);
    benchmark::DoNotOptimize(result);
  }
  const MessageStats& s = result.message_stats;
  state.counters["computation_msgs"] =
      static_cast<double>(s.ComputationTotal());
  state.counters["protocol_msgs"] = static_cast<double>(s.ProtocolTotal());
  state.counters["waves"] = static_cast<double>(result.counters.protocol_waves);
  state.counters["protocol_share_pct"] =
      100.0 * static_cast<double>(s.ProtocolTotal()) /
      static_cast<double>(s.Total());
}
BENCHMARK(BM_ProtocolDeterministic)->Arg(16)->Arg(64)->Arg(256)->Arg(512);

void BM_ProtocolRandomSchedule(benchmark::State& state) {
  int64_t n = state.range(0);
  uint64_t seed = 1;
  EvaluationResult result;
  for (auto _ : state) {
    result = RunCycleTc(n, SchedulerKind::kRandom, seed++);
    benchmark::DoNotOptimize(result);
  }
  const MessageStats& s = result.message_stats;
  state.counters["computation_msgs"] =
      static_cast<double>(s.ComputationTotal());
  state.counters["protocol_msgs"] = static_cast<double>(s.ProtocolTotal());
  state.counters["waves"] = static_cast<double>(result.counters.protocol_waves);
}
BENCHMARK(BM_ProtocolRandomSchedule)->Arg(16)->Arg(64)->Arg(256);

// Deeper SCC nesting: layered transitive closures produce one
// nontrivial SCC per layer, each running its own protocol instance.
void BM_ProtocolNestedSccs(benchmark::State& state) {
  int64_t layers = state.range(0);
  std::string text = "t0(X, Y) :- edge(X, Y).\nt0(X, Y) :- edge(X, Z), t0(Z, Y).\n";
  for (int64_t i = 1; i <= layers; ++i) {
    text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Y).\n");
    text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Z), t", i, "(Z, Y).\n");
  }
  text += StrCat("?- t", layers, "(0, W).\n");

  EvaluationResult result;
  for (auto _ : state) {
    Database db;
    MPQE_CHECK(workload::MakeChain(db, "edge", 12).ok());
    Program program;
    MPQE_CHECK(ParseInto(text, program, db).ok());
    auto r = Evaluate(program, db);
    MPQE_CHECK(r.ok()) << r.status();
    result = *std::move(r);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sccs"] =
      static_cast<double>(result.graph_stats.nontrivial_sccs);
  state.counters["waves"] = static_cast<double>(result.counters.protocol_waves);
  state.counters["protocol_msgs"] =
      static_cast<double>(result.message_stats.ProtocolTotal());
}
BENCHMARK(BM_ProtocolNestedSccs)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace mpqe

BENCHMARK_MAIN();
