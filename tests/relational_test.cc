// Unit tests for src/relational: values, tuples, relations, indexes,
// operators, and the Database catalog.

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace mpqe {
namespace {

Tuple T(std::initializer_list<int64_t> ints) {
  Tuple t;
  for (int64_t v : ints) t.push_back(Value::Int(v));
  return t;
}

TEST(ValueTest, IntAndSymbolDistinct) {
  EXPECT_NE(Value::Int(3), Value::Symbol(3));
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_LT(Value::Int(99), Value::Symbol(0));  // ints order before symbols
}

TEST(ValueTest, ToStringUsesSymbolTable) {
  SymbolTable symbols;
  Value v = symbols.Symbol("alice");
  EXPECT_EQ(v.ToString(&symbols), "alice");
  EXPECT_EQ(v.ToString(nullptr), "$0");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable symbols;
  int64_t a = symbols.Intern("x");
  int64_t b = symbols.Intern("x");
  int64_t c = symbols.Intern("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols.Name(a), "x");
  EXPECT_EQ(symbols.Name(c), "y");
}

TEST(TupleTest, ProjectTuple) {
  Tuple t = T({10, 20, 30});
  EXPECT_EQ(ProjectTuple(t, {2, 0}), T({30, 10}));
  EXPECT_EQ(ProjectTuple(t, {}), T({}));
  EXPECT_EQ(ProjectTuple(t, {1, 1}), T({20, 20}));
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(TupleToString(T({1, 2})), "(1, 2)");
  EXPECT_EQ(TupleToString(T({})), "()");
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_FALSE(r.Insert(T({1, 2})));
  EXPECT_TRUE(r.Insert(T({2, 1})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({9, 9})));
}

TEST(RelationTest, InsertionOrderStable) {
  Relation r(1);
  r.Insert(T({3}));
  r.Insert(T({1}));
  r.Insert(T({2}));
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.tuple(0), T({3}));
  EXPECT_EQ(r.tuple(1), T({1}));
  EXPECT_EQ(r.tuple(2), T({2}));
  EXPECT_EQ(r.SortedTuples()[0], T({1}));
}

TEST(RelationTest, IndexProbeFindsMatches) {
  Relation r(2);
  r.Insert(T({1, 10}));
  r.Insert(T({1, 11}));
  r.Insert(T({2, 20}));
  size_t idx = r.EnsureIndex({0});
  const std::vector<size_t>* hits = r.Probe(idx, T({1}));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_EQ(r.Probe(idx, T({5})), nullptr);
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation r(2);
  size_t idx = r.EnsureIndex({1});
  r.Insert(T({1, 7}));
  r.Insert(T({2, 7}));
  const std::vector<size_t>* hits = r.Probe(idx, T({7}));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);
}

TEST(RelationTest, EnsureIndexReturnsSameHandle) {
  Relation r(3);
  EXPECT_EQ(r.EnsureIndex({0, 2}), r.EnsureIndex({0, 2}));
  EXPECT_NE(r.EnsureIndex({0, 2}), r.EnsureIndex({2, 0}));
}

TEST(RelationTest, EqualityIgnoresInsertionOrder) {
  Relation a(1), b(1);
  a.Insert(T({1}));
  a.Insert(T({2}));
  b.Insert(T({2}));
  b.Insert(T({1}));
  EXPECT_TRUE(a == b);
  b.Insert(T({3}));
  EXPECT_FALSE(a == b);
}

TEST(OperatorsTest, SelectByValueAndColumn) {
  Relation r(3);
  r.Insert(T({1, 1, 5}));
  r.Insert(T({1, 2, 5}));
  r.Insert(T({2, 2, 6}));
  Selection sel;
  sel.value_conditions.push_back({2, Value::Int(5)});
  Relation out = Select(r, sel);
  EXPECT_EQ(out.size(), 2u);

  Selection eq;
  eq.column_conditions.push_back({0, 1});
  out = Select(r, eq);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(T({1, 1, 5})));
  EXPECT_TRUE(out.Contains(T({2, 2, 6})));
}

TEST(OperatorsTest, ProjectDeduplicates) {
  Relation r(2);
  r.Insert(T({1, 10}));
  r.Insert(T({1, 20}));
  Relation out = Project(r, {0});
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(T({1})));
}

TEST(OperatorsTest, JoinMatchesOnColumns) {
  Relation l(2), r(2);
  l.Insert(T({1, 2}));
  l.Insert(T({3, 4}));
  r.Insert(T({2, 9}));
  r.Insert(T({2, 8}));
  Relation out = Join(l, r, {{1, 0}});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(T({1, 2, 2, 9})));
  EXPECT_TRUE(out.Contains(T({1, 2, 2, 8})));
}

TEST(OperatorsTest, JoinEmptyOnIsCrossProduct) {
  Relation l(1), r(1);
  l.Insert(T({1}));
  l.Insert(T({2}));
  r.Insert(T({8}));
  r.Insert(T({9}));
  EXPECT_EQ(Join(l, r, {}).size(), 4u);
}

TEST(OperatorsTest, JoinSymmetricInBuildSide) {
  // Exercise both build-left and build-right paths.
  Relation small(1), big(1);
  small.Insert(T({1}));
  for (int i = 0; i < 10; ++i) big.Insert(T({i}));
  Relation a = Join(small, big, {{0, 0}});
  Relation b = Join(big, small, {{0, 0}});
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.Contains(T({1, 1})));
  EXPECT_TRUE(b.Contains(T({1, 1})));
}

TEST(OperatorsTest, SemiJoinFiltersLeft) {
  Relation l(2), r(1);
  l.Insert(T({1, 2}));
  l.Insert(T({3, 4}));
  r.Insert(T({2}));
  Relation out = SemiJoin(l, r, {{1, 0}});
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(T({1, 2})));
}

TEST(OperatorsTest, UnionAndDifference) {
  Relation a(1), b(1);
  a.Insert(T({1}));
  a.Insert(T({2}));
  b.Insert(T({2}));
  b.Insert(T({3}));
  EXPECT_EQ(Union(a, b).size(), 3u);
  Relation d = Difference(a, b);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains(T({1})));
}

TEST(DatabaseTest, CreateAndInsert) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("edge", 2).ok());
  EXPECT_TRUE(db.HasRelation("edge"));
  EXPECT_FALSE(db.HasRelation("node"));
  auto inserted = db.InsertFact("edge", T({1, 2}));
  ASSERT_TRUE(inserted.ok());
  EXPECT_TRUE(inserted.value());
  inserted = db.InsertFact("edge", T({1, 2}));
  ASSERT_TRUE(inserted.ok());
  EXPECT_FALSE(inserted.value());
  EXPECT_EQ(db.TotalFacts(), 1u);
}

TEST(DatabaseTest, ArityMismatchFails) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r", 2).ok());
  EXPECT_FALSE(db.CreateRelation("r", 3).ok());
  EXPECT_FALSE(db.InsertFact("r", T({1, 2, 3})).ok());
}

TEST(DatabaseTest, InsertCreatesRelation) {
  Database db;
  ASSERT_TRUE(db.InsertFact("fresh", T({5})).ok());
  ASSERT_NE(db.GetRelation("fresh"), nullptr);
  EXPECT_EQ(db.GetRelation("fresh")->arity(), 1u);
}

}  // namespace
}  // namespace mpqe
