// Unit tests for src/common: Status/StatusOr, Rng, string utilities.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mpqe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad atom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad atom");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad atom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x"), InvalidArgumentError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == NotFoundError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == InvalidArgumentError("y"));
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes{
      InvalidArgumentError("").code(),   NotFoundError("").code(),
      AlreadyExistsError("").code(),     FailedPreconditionError("").code(),
      OutOfRangeError("").code(),        UnimplementedError("").code(),
      InternalError("").code(),          ResourceExhaustedError("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MPQE_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, StrJoinBasic) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoin(v, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ", "), "");
}

TEST(StringUtilTest, StrJoinWithFormatter) {
  std::vector<int> v{1, 2};
  std::string s =
      StrJoin(v, "-", [](std::ostream& os, int x) { os << x * 10; });
  EXPECT_EQ(s, "10-20");
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

}  // namespace
}  // namespace mpqe
