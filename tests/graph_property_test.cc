// Structural invariants of rule/goal graph construction, checked over
// randomly generated programs in both distributed and coalesced modes:
//
//  * every class-d subgoal argument is furnished by the head or an
//    earlier subgoal in the sips order (Def. 2.3's acyclicity);
//  * rule nodes' heads match their goal node's atom positionally and
//    carry its adornment;
//  * cycle references are variants of their sources with equal
//    adornments, and live in the same strong component;
//  * SCC analysis is consistent with the customer edges;
//  * BFSTs span exactly the nontrivial components, leaders are marked
//    correctly, and every non-leader has an in-component BFST parent;
//  * feeders (Def. 2.1) are exactly the answer-flow predecessors in
//    other components.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datalog/unify.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

class GraphInvariants
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

void CheckSipsArcsAcyclicAndBound(const RuleGoalGraph& graph,
                                  const GraphNode& rule_node) {
  const Rule& rule = rule_node.rule;
  const SipsResult& sips = rule_node.sips;
  std::set<VariableId> bound;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_variable() && IsBound(rule_node.adornment[i])) {
      bound.insert(t.var());
    }
  }
  for (size_t k : sips.order) {
    const Atom& atom = rule.body[k];
    const Adornment& adornment = sips.subgoal_adornments[k];
    ASSERT_EQ(adornment.size(), atom.arity());
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_constant()) {
        EXPECT_EQ(adornment[i], BindingClass::kConstant)
            << graph.NodeLabel(rule_node.id);
      } else if (adornment[i] == BindingClass::kDynamic) {
        EXPECT_TRUE(bound.count(t.var()) != 0)
            << "unbound d argument in " << graph.NodeLabel(rule_node.id);
      }
    }
    std::vector<VariableId> vars;
    CollectVariables(atom, vars);
    bound.insert(vars.begin(), vars.end());
  }
}

TEST_P(GraphInvariants, HoldOnRandomPrograms) {
  const auto& [seed, coalesce] = GetParam();
  Rng rng(seed);
  workload::RandomProgramOptions options;
  options.recursion_bias = 0.5;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rp->unit.program.Validate(&rp->unit.database).ok());

  auto strategy = MakeGreedyStrategy();
  GraphBuildOptions graph_options;
  graph_options.coalesce_nodes = coalesce;
  auto built =
      RuleGoalGraph::Build(rp->unit.program, *strategy, graph_options);
  if (!built.ok() &&
      built.status().code() == StatusCode::kResourceExhausted) {
    GTEST_SKIP() << built.status();
  }
  ASSERT_TRUE(built.ok()) << built.status();
  const RuleGoalGraph& graph = **built;

  for (const GraphNode& n : graph.nodes()) {
    switch (n.kind) {
      case NodeKind::kRule: {
        // Head matches the goal node positionally and by adornment.
        const GraphNode& goal = graph.node(n.parent);
        EXPECT_EQ(n.rule.head.predicate, goal.atom.predicate);
        EXPECT_EQ(n.adornment, goal.adornment);
        EXPECT_EQ(n.rule.body.size(), n.subgoal_children.size());
        CheckSipsArcsAcyclicAndBound(graph, n);
        // Its customers are exactly its parent goal.
        ASSERT_EQ(n.customers.size(), 1u);
        EXPECT_EQ(n.customers[0], n.parent);
        break;
      }
      case NodeKind::kCycleRef: {
        EXPECT_FALSE(coalesce) << "cycle refs must not exist when coalescing";
        const GraphNode& src = graph.node(n.cycle_source);
        EXPECT_TRUE(IsVariant(src.atom, n.atom));
        EXPECT_EQ(src.adornment, n.adornment);
        EXPECT_EQ(src.scc_id, n.scc_id);
        break;
      }
      case NodeKind::kGoal:
      case NodeKind::kEdbLeaf: {
        // Customers are rule nodes (or none, for the root).
        for (NodeId c : n.customers) {
          EXPECT_TRUE(graph.node(c).kind == NodeKind::kRule ||
                      graph.node(c).kind == NodeKind::kCycleRef);
        }
        break;
      }
    }
  }

  // SCC consistency: a customer edge inside one SCC implies a return
  // path (checked transitively by Tarjan; here spot-check membership
  // symmetry through scc_members).
  for (int scc = 0; scc < graph.scc_count(); ++scc) {
    const auto& members = graph.scc_members(scc);
    std::set<NodeId> member_set(members.begin(), members.end());
    for (NodeId m : members) {
      EXPECT_EQ(graph.node(m).scc_id, scc);
      EXPECT_EQ(graph.node(m).scc_is_trivial, members.size() == 1);
    }
    if (members.size() == 1) {
      EXPECT_EQ(graph.scc_leader(scc), kNoNode);
      continue;
    }
    // Exactly one leader; every non-leader has an in-SCC BFST parent.
    NodeId leader = graph.scc_leader(scc);
    ASSERT_NE(leader, kNoNode);
    ASSERT_TRUE(member_set.count(leader) != 0);
    size_t leaders = 0;
    for (NodeId m : members) {
      const GraphNode& node = graph.node(m);
      if (node.is_leader) {
        ++leaders;
        EXPECT_EQ(m, leader);
        EXPECT_EQ(node.bfst_parent, kNoNode);
      } else {
        ASSERT_NE(node.bfst_parent, kNoNode) << graph.NodeLabel(m);
        EXPECT_TRUE(member_set.count(node.bfst_parent) != 0);
      }
      for (NodeId c : node.bfst_children) {
        EXPECT_EQ(graph.node(c).bfst_parent, m);
      }
    }
    EXPECT_EQ(leaders, 1u);
  }

  // Feeders: answer-flow predecessors in other components.
  for (const GraphNode& n : graph.nodes()) {
    for (NodeId f : graph.Feeders(n.id)) {
      EXPECT_NE(graph.node(f).scc_id, n.scc_id);
      std::vector<NodeId> suppliers = n.Suppliers();
      EXPECT_TRUE(std::find(suppliers.begin(), suppliers.end(), f) !=
                  suppliers.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GraphInvariants,
    ::testing::Combine(::testing::Range(uint64_t{0}, uint64_t{25}),
                       ::testing::Bool()));

// Sips classification is valid for EVERY strategy on random rules:
// d arguments always furnished, e arguments truly single-use.
class SipsInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SipsInvariants, ClassificationIsWellFormed) {
  Rng rng(GetParam() + 300);
  workload::RandomProgramOptions options;
  options.max_body_atoms = 4;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  const Program& program = rp->unit.program;

  for (const char* name :
       {"greedy", "greedy_no_e", "left_to_right", "qual_tree_or_greedy",
        "no_sips"}) {
    auto strategy = MakeStrategyByName(name);
    ASSERT_TRUE(strategy.ok());
    for (const Rule& rule : program.rules()) {
      // Try two head patterns: all free, and first-arg bound.
      for (int pattern = 0; pattern < 2; ++pattern) {
        Adornment head(rule.head.arity(), BindingClass::kFree);
        if (pattern == 1 && !head.empty() &&
            rule.head.args[0].is_variable()) {
          head[0] = BindingClass::kDynamic;
        }
        auto sips = (*strategy)->Classify(rule, head, program);
        ASSERT_TRUE(sips.ok()) << name;
        // Order is a permutation.
        std::set<size_t> seen(sips->order.begin(), sips->order.end());
        EXPECT_EQ(seen.size(), rule.body.size()) << name;
        // d args bound by earlier stages; e args single-use.
        std::set<VariableId> bound;
        for (size_t i = 0; i < rule.head.args.size(); ++i) {
          if (rule.head.args[i].is_variable() && IsBound(head[i])) {
            bound.insert(rule.head.args[i].var());
          }
        }
        std::map<VariableId, int> occurrences;
        for (const Atom& a : rule.body) {
          std::vector<VariableId> vars;
          CollectVariables(a, vars);
          for (VariableId v : vars) occurrences[v]++;
        }
        for (size_t k : sips->order) {
          const Atom& atom = rule.body[k];
          const Adornment& adornment = sips->subgoal_adornments[k];
          for (size_t i = 0; i < atom.args.size(); ++i) {
            if (atom.args[i].is_constant()) continue;
            VariableId v = atom.args[i].var();
            if (adornment[i] == BindingClass::kDynamic) {
              EXPECT_TRUE(bound.count(v) != 0) << name;
            }
            if (adornment[i] == BindingClass::kExistential) {
              EXPECT_EQ(occurrences[v], 1) << name;
            }
          }
          std::vector<VariableId> vars;
          CollectVariables(atom, vars);
          bound.insert(vars.begin(), vars.end());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SipsInvariants,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace mpqe
