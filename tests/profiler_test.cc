// Tests for the per-node query profiler (src/obs/profiler.h) and the
// EXPLAIN / EXPLAIN ANALYZE renderer (src/obs/explain.h): exact
// per-node attribution on a hand-checkable transitive closure under
// the deterministic scheduler, schedule invariance of the tuple
// totals under the threaded scheduler, the database-sized cost model,
// and the mpqe-profile-v1 JSON shape.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "obs/explain.h"
#include "obs/profiler.h"
#include "sips/cost_model.h"

namespace mpqe {
namespace {

// Chain 1 -> 2 -> 3 plus the shortcut 1 -> 3, so tc(1, 3) is derived
// twice (once via edge(1,3), once via edge(1,2) + tc(2,3)) and the
// dedup counters are exercised. Hand evaluation:
//   tc(1, ·) = {2, 3}; the goal node for tc(1, _) receives 3 tuples
//   (2 from the base rule, 1 from the recursive rule), drops 1
//   duplicate, forwards 2.
constexpr const char* kTcShortcut = R"(
  edge(1, 2). edge(2, 3). edge(1, 3).
  tc(X, Y) :- edge(X, Y).
  tc(X, Y) :- edge(X, Z), tc(Z, Y).
  ?- tc(1, W).
)";

const NodeProfile* FindNode(const ProfileReport& report, int32_t id) {
  for (const NodeProfile& n : report.nodes) {
    if (n.node == id) return &n;
  }
  return nullptr;
}

StatusOr<EvaluationResult> RunProfiled(SchedulerKind scheduler) {
  auto unit = Parse(kTcShortcut);
  if (!unit.ok()) return unit.status();
  EvaluationOptions options;
  options.scheduler = scheduler;
  options.profile = true;
  return Evaluate(unit->program, unit->database, options);
}

// ---------------------------------------------------------------------------
// Exact attribution under the deterministic scheduler

TEST(ProfilerTest, DeterministicTcExactCounts) {
  auto result = RunProfiled(SchedulerKind::kDeterministic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 2u);  // tc(1, ·) = {2, 3}
  ASSERT_NE(result->profile, nullptr);
  const ProfileReport& report = *result->profile;

  // 13 graph nodes (the non-coalesced TC graph), one row each.
  ASSERT_EQ(report.nodes.size(), 13u);

  // Totals: every tuple emission and dedup drop in the run.
  EXPECT_EQ(report.total_tuples_in, 15u);
  EXPECT_EQ(report.total_tuples_out, 17u);
  EXPECT_EQ(report.total_dedup_hits, 1u);
  EXPECT_EQ(report.total_msgs_sent, report.total_msgs_delivered);

  // Node 0, top goal: one request in, the two answers out.
  const NodeProfile* goal = FindNode(report, 0);
  ASSERT_NE(goal, nullptr);
  EXPECT_EQ(goal->role, NodeRole::kGoal);
  EXPECT_EQ(goal->requests_in, 1u);
  EXPECT_EQ(goal->tuples_in, 2u);
  EXPECT_EQ(goal->tuples_out, 2u);
  EXPECT_EQ(goal->dedup_hits, 0u);

  // Node 2, goal tc(1, _): 3 arrivals, 1 duplicate dropped, 2 out.
  const NodeProfile* tc1 = FindNode(report, 2);
  ASSERT_NE(tc1, nullptr);
  EXPECT_EQ(tc1->role, NodeRole::kGoal);
  EXPECT_EQ(tc1->tuples_in, 3u);
  EXPECT_EQ(tc1->tuples_out, 2u);
  EXPECT_EQ(tc1->dedup_hits, 1u);
  EXPECT_DOUBLE_EQ(tc1->DupHitRate(), 0.25);       // 1 of 4 seen
  EXPECT_DOUBLE_EQ(tc1->Selectivity(), 2.0 / 3.0);
  EXPECT_NE(tc1->label.find("tc"), std::string::npos);

  // Node 5, the recursive rule for tc(1, _): consumes 3 tuples
  // (2 edge facts + 1 recursive answer), joins down to 1 output.
  const NodeProfile* rec = FindNode(report, 5);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->role, NodeRole::kRule);
  EXPECT_EQ(rec->tuples_in, 3u);
  EXPECT_EQ(rec->tuples_out, 1u);

  // Rule nodes carry database-sized estimates; EDB leaves do not.
  EXPECT_NE(rec->est_log10_tuples, kNoEstimate);
  EXPECT_NE(rec->est_total_cost, kNoEstimate);
  EXPECT_GE(rec->DeviationFactor(), 1.0);
  const NodeProfile* edb = FindNode(report, 4);
  ASSERT_NE(edb, nullptr);
  EXPECT_EQ(edb->role, NodeRole::kEdbLeaf);
  EXPECT_EQ(edb->est_log10_tuples, kNoEstimate);
  EXPECT_EQ(edb->DeviationFactor(), 0.0);

  // Every node did some work and was timed.
  uint64_t fire_ns = 0;
  for (const NodeProfile& n : report.nodes) {
    EXPECT_GT(n.fires, 0u) << "node " << n.node;
    EXPECT_GT(n.msgs_in, 0u) << "node " << n.node;
    fire_ns += n.fire_ns;
  }
  EXPECT_GT(fire_ns, 0u);
  EXPECT_EQ(fire_ns, report.total_fire_ns);
  EXPECT_GT(report.total_queue_wait_ns, 0u);

  // The run phase was measured.
  ASSERT_EQ(report.phase_ns.size(), static_cast<size_t>(Phase::kPhaseCount));
  EXPECT_GT(report.phase_ns[static_cast<size_t>(Phase::kRun)], 0u);
}

TEST(ProfilerTest, DeterministicTcSccProtocolCounts) {
  auto result = RunProfiled(SchedulerKind::kDeterministic);
  ASSERT_TRUE(result.ok());
  const ProfileReport& report = *result->profile;

  // One nontrivial SCC: the recursive tc goal (#7), its recursive
  // rule (#10), and the cycle reference (#12); #7 is the leader and
  // the BFST below it has two levels (7 -> 10 -> 12).
  ASSERT_EQ(report.sccs.size(), 1u);
  const SccProfile& scc = report.sccs[0];
  EXPECT_EQ(scc.members, (std::vector<int32_t>{7, 10, 12}));
  EXPECT_EQ(scc.leader, 7);
  EXPECT_EQ(scc.tree_depth, 2);
  // Deterministic scheduler: the protocol needs exactly two waves
  // (one answered negative while work remained, one confirmed), and
  // conclusion propagates to all three members.
  EXPECT_EQ(scc.waves, 2u);
  EXPECT_EQ(scc.negative_answers, 2u);
  EXPECT_EQ(scc.confirmed_answers, 2u);
  EXPECT_EQ(scc.concluded, 3u);
  EXPECT_EQ(scc.waves, result->counters.protocol_waves);
}

// ---------------------------------------------------------------------------
// Schedule invariance: tuple totals are fixpoint properties

TEST(ProfilerTest, ThreadedTotalsMatchDeterministic) {
  auto det = RunProfiled(SchedulerKind::kDeterministic);
  ASSERT_TRUE(det.ok());
  auto thr = RunProfiled(SchedulerKind::kThreaded);
  ASSERT_TRUE(thr.ok());
  EXPECT_EQ(thr->answers.SortedTuples(), det->answers.SortedTuples());
  // Message counts, firings, and protocol waves vary with the
  // schedule, but the tuple flow is the fixpoint itself: every
  // derivation happens exactly once regardless of interleaving.
  EXPECT_EQ(thr->profile->total_tuples_in, det->profile->total_tuples_in);
  EXPECT_EQ(thr->profile->total_tuples_out, det->profile->total_tuples_out);
  EXPECT_EQ(thr->profile->total_dedup_hits, det->profile->total_dedup_hits);
  // And per node as well (pid == node id in every scheduler).
  for (const NodeProfile& d : det->profile->nodes) {
    const NodeProfile* t = FindNode(*thr->profile, d.node);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->tuples_in, d.tuples_in) << "node " << d.node;
    EXPECT_EQ(t->tuples_out, d.tuples_out) << "node " << d.node;
    EXPECT_EQ(t->dedup_hits, d.dedup_hits) << "node " << d.node;
  }
}

// ---------------------------------------------------------------------------
// Cost model sizing from the database

TEST(ProfilerTest, CostModelParamsFromDatabaseUsesEdbSizes) {
  auto unit = Parse(kTcShortcut);
  ASSERT_TRUE(unit.ok());
  CostModelParams params =
      CostModelParamsFromDatabase(unit->program, unit->database);
  PredicateId edge = unit->program.predicates().Find("edge");
  PredicateId tc = unit->program.predicates().Find("tc");
  ASSERT_GE(edge, 0);
  ASSERT_GE(tc, 0);
  // edge has 3 facts -> log10(3); tc is IDB and falls back to the
  // largest EDB size.
  EXPECT_NEAR(params.LogSizeOf(edge), 0.4771, 1e-3);
  EXPECT_NEAR(params.LogSizeOf(tc), 0.4771, 1e-3);
  EXPECT_NEAR(params.log_relation_size, 0.4771, 1e-3);
}

// ---------------------------------------------------------------------------
// JSON report and the EXPLAIN renderer

TEST(ProfilerTest, JsonReportShape) {
  auto result = RunProfiled(SchedulerKind::kDeterministic);
  ASSERT_TRUE(result.ok());
  std::string json = result->profile->ToJson();
  EXPECT_NE(json.find("\"schema\": \"mpqe-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"sccs\""), std::string::npos);
  EXPECT_NE(json.find("\"dup_hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"est_log10_tuples\""), std::string::npos);
  EXPECT_NE(json.find("\"tree_depth\": 2"), std::string::npos);
}

TEST(ProfilerTest, ExplainPlanModes) {
  auto unit = Parse(kTcShortcut);
  ASSERT_TRUE(unit.ok());
  auto strategy = MakeStrategyByName("greedy");
  ASSERT_TRUE(strategy.ok());
  auto graph = RuleGoalGraph::Build(unit->program, **strategy);
  ASSERT_TRUE(graph.ok());
  CostModelParams params =
      CostModelParamsFromDatabase(unit->program, unit->database);

  // Plain EXPLAIN: adorned nodes + estimates, no actuals.
  std::string plain = ExplainPlan(**graph, params, nullptr,
                                  &unit->database.symbols());
  EXPECT_NE(plain.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(plain.find("est: ~10^"), std::string::npos);
  EXPECT_NE(plain.find("sips:"), std::string::npos);
  EXPECT_NE(plain.find("^d"), std::string::npos);  // adornments render
  EXPECT_NE(plain.find("scc 7"), std::string::npos);
  EXPECT_EQ(plain.find("act:"), std::string::npos);

  // EXPLAIN ANALYZE: actuals beside the estimates.
  EvaluationOptions options;
  options.profile = true;
  auto result = EvaluateWithGraph(**graph, unit->database, options);
  ASSERT_TRUE(result.ok());
  ExplainOptions explain_options;
  explain_options.analyze = true;
  std::string analyzed =
      ExplainPlan(**graph, params, result->profile.get(),
                  &unit->database.symbols(), explain_options);
  EXPECT_NE(analyzed.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(analyzed.find("act:"), std::string::npos);
  EXPECT_NE(analyzed.find("waves 2"), std::string::npos);
  EXPECT_NE(analyzed.find("totals:"), std::string::npos);

  // A tight deviation threshold flags at least the recursive goal,
  // whose 8.8x deviation exceeds it.
  explain_options.deviation_factor = 2.0;
  std::string flagged =
      ExplainPlan(**graph, params, result->profile.get(),
                  &unit->database.symbols(), explain_options);
  EXPECT_NE(flagged.find("!! deviates"), std::string::npos);
  EXPECT_EQ(analyzed.find("!! deviates"), std::string::npos)
      << "default x10 threshold should not flag this run";
}

// ---------------------------------------------------------------------------
// Aggregated metrics entries

TEST(ProfilerTest, AggregatedMetricsDumpedPerNode) {
  auto unit = Parse(kTcShortcut);
  ASSERT_TRUE(unit.ok());
  MetricsRegistry metrics;
  EvaluationOptions options;
  options.profile = true;
  options.metrics = &metrics;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  std::string dump = metrics.ToString();
  EXPECT_NE(dump.find("aggregated/node/0/tuples_out=2"), std::string::npos);
  EXPECT_NE(dump.find("aggregated/node/2/dedup_hits=1"), std::string::npos);
  EXPECT_NE(dump.find("aggregated/node/5/fires="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Graph-less operation (raw Network benchmarks)

TEST(ProfilerTest, WorksWithoutAttachedGraph) {
  ProfilingObserver profiler;
  SendEvent send;
  send.from = 0;
  send.to = 1;
  Message message;
  message.kind = MessageKind::kTuple;
  send.message = &message;
  profiler.OnSend(send);
  DeliverEvent deliver;
  deliver.from = 0;
  deliver.to = 1;
  deliver.kind = MessageKind::kTuple;
  profiler.OnDeliver(deliver);

  ProfileReport report = profiler.Finalize();
  EXPECT_EQ(report.total_msgs_sent, 1u);
  EXPECT_EQ(report.total_msgs_delivered, 1u);
  ASSERT_EQ(report.nodes.size(), 2u);  // pid0 (sender), pid1 (receiver)
  EXPECT_EQ(report.nodes[0].msgs_out, 1u);
  EXPECT_EQ(report.nodes[1].msgs_in, 1u);
  EXPECT_EQ(report.nodes[1].label, "pid1");
  EXPECT_TRUE(report.sccs.empty());
}

}  // namespace
}  // namespace mpqe
