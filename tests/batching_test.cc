// Tests for message packaging (the paper's footnote 2): identical
// answers and logical traffic, far fewer physical messages.

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "common/random.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

EvaluationOptions Batched() {
  EvaluationOptions options;
  options.batch_messages = true;
  return options;
}

TEST(BatchingTest, TransitiveClosureMatchesUnbatched) {
  Database db1, db2;
  ASSERT_TRUE(workload::MakeChain(db1, "edge", 32).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "edge", 32).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), p1, db1).ok());
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), p2, db2).ok());
  auto plain = Evaluate(p1, db1);
  auto batched = Evaluate(p2, db2, Batched());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(batched.ok()) << batched.status();
  EXPECT_TRUE(plain->answers == batched->answers);
  EXPECT_TRUE(batched->ended_by_protocol);

  const MessageStats& s = batched->message_stats;
  EXPECT_GT(s.Count(MessageKind::kBatch), 0u);
  EXPECT_GT(s.packaged_submessages, 0u);
  EXPECT_LT(s.PhysicalTotal(), s.Total());
  // Logical computation traffic is scheduler-order dependent in minor
  // ways but the same magnitude; answers are the real check.
  EXPECT_EQ(plain->answers.size(), 31u);
}

TEST(BatchingTest, PhysicalSavingsAreSubstantial) {
  Database db;
  ASSERT_TRUE(workload::MakeBinaryTree(db, "edge", 63).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = Evaluate(program, db, Batched());
  ASSERT_TRUE(result.ok());
  const MessageStats& s = result->message_stats;
  // A tree root query fans out widely: most tuples travel packaged.
  EXPECT_LT(s.PhysicalTotal() * 2, s.Total());
}

TEST(BatchingTest, WorksWithCoalescingAndSchedulers) {
  Relation truth{0};
  {
    Database db;
    EXPECT_TRUE(workload::MakeCycle(db, "edge", 10).ok());
    Program program;
    EXPECT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    auto t = SemiNaiveBottomUp(program, db);
    ASSERT_TRUE(t.ok());
    truth = t->goal;
  }
  for (int coalesce = 0; coalesce <= 1; ++coalesce) {
    for (int sched = 0; sched < 3; ++sched) {
      Database db;
      ASSERT_TRUE(workload::MakeCycle(db, "edge", 10).ok());
      Program program;
      ASSERT_TRUE(
          ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
      EvaluationOptions options = Batched();
      options.graph_options.coalesce_nodes = coalesce == 1;
      options.scheduler = static_cast<SchedulerKind>(sched);
      options.seed = 17;
      options.workers = 3;
      auto result = Evaluate(program, db, options);
      ASSERT_TRUE(result.ok())
          << "coalesce=" << coalesce << " sched=" << sched << ": "
          << result.status();
      EXPECT_TRUE(result->ended_by_protocol)
          << "coalesce=" << coalesce << " sched=" << sched;
      EXPECT_TRUE(result->answers == truth)
          << "coalesce=" << coalesce << " sched=" << sched;
    }
  }
}

class BatchedRandomEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedRandomEquivalence, MatchesSemiNaive) {
  Rng rng(GetParam());
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  EvaluationOptions eval = Batched();
  eval.max_messages = 5000000;
  auto result = Evaluate(rp->unit.program, rp->unit.database, eval);
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted) {
    GTEST_SKIP() << "graph blow-up (no coalescing): " << result.status();
  }
  ASSERT_TRUE(result.ok()) << result.status() << "\n" << rp->text;
  EXPECT_TRUE(result->ended_by_protocol) << rp->text;
  EXPECT_TRUE(result->answers == truth->goal)
      << rp->text << "\nengine: " << result->answers.ToString()
      << "\ntruth:  " << truth->goal.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedRandomEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

TEST(BatchingTest, EmptyBatchNeverSent) {
  // A no-op work message (e.g. duplicate tuple request) must not emit
  // an empty envelope: run a query twice through the same evaluation
  // and check every batch envelope carried at least two messages
  // (singletons are sent bare).
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 8).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = Evaluate(program, db, Batched());
  ASSERT_TRUE(result.ok());
  const MessageStats& s = result->message_stats;
  // Each envelope holds >= 2 sub-messages by construction.
  EXPECT_GE(s.packaged_submessages, 2 * s.Count(MessageKind::kBatch));
}

}  // namespace
}  // namespace mpqe
