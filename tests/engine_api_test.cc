// Tests of the prepared-query engine lifecycle (engine/engine.h):
// Engine / PreparedQuery / QuerySession, the LRU plan cache with its
// keying and eviction rules, concurrent sessions over one shared
// snapshot, and the Evaluate() compatibility wrapper staying
// result-identical to prepare + run.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "engine/evaluator.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

constexpr const char* kTcFacts = R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2). edge(2, 5).
)";

constexpr const char* kTcRules = R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
)";

// The facts + rules in one text (for the Evaluate() baseline).
std::string TcProgramText() { return StrCat(kTcFacts, kTcRules); }

std::vector<Tuple> SortedAnswers(const EvaluationResult& result) {
  return result.answers.SortedTuples();
}

TEST(EngineApiTest, PrepareRunMatchesEvaluate) {
  // Baseline: the one-shot compatibility wrapper.
  auto unit = Parse(TcProgramText());
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto baseline = Evaluate(unit->program, unit->database);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Same computation through the prepared-query lifecycle.
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine;
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto session = engine.CreateSession(*plan);
  ASSERT_TRUE(session.ok()) << session.status();
  auto result = (*session)->Run();
  ASSERT_TRUE(result.ok()) << result.status();

  // Pinned: identical answers, message traffic, and engine counters —
  // the wrapper and the lifecycle run the same network the same way.
  EXPECT_EQ(SortedAnswers(*result), SortedAnswers(*baseline));
  EXPECT_EQ(result->message_stats.ToString(),
            baseline->message_stats.ToString());
  EXPECT_EQ(result->counters.ToString(), baseline->counters.ToString());
  EXPECT_EQ(result->ended_by_protocol, baseline->ended_by_protocol);
  EXPECT_EQ(result->delivered, baseline->delivered);
}

TEST(EngineApiTest, EvaluateWrapperIsPreparePlusSession) {
  // EvaluateWithGraph (the wrapper's run half) equals RunSession over
  // the same graph with the flat options split into halves.
  auto unit = Parse(TcProgramText());
  ASSERT_TRUE(unit.ok()) << unit.status();
  EvaluationOptions options;
  auto via_wrapper = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(via_wrapper.ok()) << via_wrapper.status();

  auto unit2 = Parse(TcProgramText());
  ASSERT_TRUE(unit2.ok()) << unit2.status();
  ASSERT_TRUE(unit2->program.Validate(&unit2->database).ok());
  auto strategy = MakeStrategyByName(options.strategy);
  ASSERT_TRUE(strategy.ok());
  auto graph = RuleGoalGraph::Build(unit2->program, **strategy,
                                    options.graph_options);
  ASSERT_TRUE(graph.ok());
  auto via_session = RunSession(**graph, unit2->database, options);
  ASSERT_TRUE(via_session.ok()) << via_session.status();
  EXPECT_EQ(SortedAnswers(*via_session), SortedAnswers(*via_wrapper));
  EXPECT_EQ(via_session->message_stats.ToString(),
            via_wrapper->message_stats.ToString());
}

TEST(EngineApiTest, ConcurrentSessionsShareOnePlan) {
  // N sessions race over one PreparedQuery + snapshot on the worker
  // pool; every one must reproduce the sequential answers. Run under
  // TSan this is the no-shared-mutable-state check for the whole
  // run-time half.
  auto unit = Parse(TcProgramText());
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto baseline = Evaluate(unit->program, unit->database);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::vector<Tuple> expected = SortedAnswers(*baseline);

  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 4;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  constexpr int kSessions = 16;
  std::vector<std::future<StatusOr<EvaluationResult>>> futures;
  for (int i = 0; i < kSessions; ++i) {
    SessionOptions options;
    // Mix schedulers: even sessions deterministic, odd ones random
    // with distinct seeds — answers must not depend on either.
    if (i % 2 == 1) {
      options.scheduler = SchedulerKind::kRandom;
      options.seed = static_cast<uint64_t>(i);
    }
    futures.push_back(engine.RunAsync(*plan, options));
  }
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(SortedAnswers(*result), expected);
    EXPECT_TRUE(result->ended_by_protocol);
  }
  EXPECT_EQ(snapshot->running_sessions(), 0);
}

TEST(EngineApiTest, ConcurrentPrepareAndRun) {
  // Prepares of *different* programs race sessions of another plan on
  // the same snapshot: index builds must degrade, not crash or race.
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 4;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  std::vector<std::future<StatusOr<EvaluationResult>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.RunAsync(*plan, SessionOptions()));
  }
  // Concurrent compiles keyed differently (distinct query constants).
  for (int from = 1; from <= 4; ++from) {
    auto other = engine.Prepare(
        snapshot, StrCat("tc(X, Y) :- edge(X, Y).\n"
                         "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n?- tc(",
                         from, ", W)."));
    ASSERT_TRUE(other.ok()) << other.status();
  }
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status();
  }
}

TEST(EngineApiTest, PlanCacheHitReturnsSamePlanWithoutCompile) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  MetricsRegistry metrics;
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.metrics = &metrics;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));

  auto cold = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(cold.ok()) << cold.status();
  const uint64_t cold_ns = engine.plan_cache_stats().last_prepare_ns;
  EXPECT_GT(cold_ns, 0u);

  auto hit = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(hit.ok()) << hit.status();
  // Same immutable plan object — nothing was recompiled.
  EXPECT_EQ(cold->get(), hit->get());

  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(metrics.GetCounter("plan_cache/hit").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("plan_cache/miss").value(), 1u);
  // The raw-text alias makes the hit a pure hash lookup; it must not
  // cost more than the cold compile (parse + adorn + sips + build).
  EXPECT_LE(stats.last_prepare_ns, cold_ns);
}

TEST(EngineApiTest, PlanCacheKeysOnGoalAdornment) {
  // Same rule text, different goal binding pattern => different
  // adorned graphs => distinct cache entries.
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));

  const char* rules = "tc(X, Y) :- edge(X, Y).\n"
                      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";
  auto bound = engine.Prepare(snapshot, StrCat(rules, "?- tc(1, W)."));
  ASSERT_TRUE(bound.ok()) << bound.status();
  auto free_goal = engine.Prepare(snapshot, StrCat(rules, "?- tc(V, W)."));
  ASSERT_TRUE(free_goal.ok()) << free_goal.status();

  EXPECT_NE(bound->get(), free_goal->get());
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(EngineApiTest, PlanCacheKeysOnPlanOptions) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));

  auto greedy = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(greedy.ok());
  PlanOptions ltr;
  ltr.strategy = "left_to_right";
  auto left_to_right = engine.Prepare(snapshot, kTcRules, ltr);
  ASSERT_TRUE(left_to_right.ok());
  EXPECT_NE(greedy->get(), left_to_right->get());
  EXPECT_EQ(engine.plan_cache_stats().size, 2u);
}

TEST(EngineApiTest, PlanCacheEvictsLeastRecentlyUsed) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.plan_cache_capacity = 2;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));

  const char* rules = "tc(X, Y) :- edge(X, Y).\n"
                      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";
  auto p1 = engine.Prepare(snapshot, StrCat(rules, "?- tc(1, W)."));
  auto p2 = engine.Prepare(snapshot, StrCat(rules, "?- tc(2, W)."));
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Touch p1 so p2 is the LRU victim when p3 arrives.
  ASSERT_TRUE(engine.Prepare(snapshot, StrCat(rules, "?- tc(1, W).")).ok());
  auto p3 = engine.Prepare(snapshot, StrCat(rules, "?- tc(3, W)."));
  ASSERT_TRUE(p3.ok());

  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // p1 is still resident (hit); p2 was evicted (miss, recompile).
  ASSERT_TRUE(engine.Prepare(snapshot, StrCat(rules, "?- tc(1, W).")).ok());
  EXPECT_EQ(engine.plan_cache_stats().misses, stats.misses);
  auto p2_again = engine.Prepare(snapshot, StrCat(rules, "?- tc(2, W)."));
  ASSERT_TRUE(p2_again.ok());
  EXPECT_EQ(engine.plan_cache_stats().misses, stats.misses + 1);
  // The evicted plan object itself stayed valid for holders.
  EXPECT_NE(p2->get(), nullptr);
}

TEST(EngineApiTest, PrepareRejectsFactsInQueryText) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, StrCat("edge(9, 10).\n", kTcRules));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("snapshot"), std::string::npos)
      << plan.status();
}

TEST(EngineApiTest, SessionBuilderValidatesNamingField) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  SessionOptions bad_workers;
  bad_workers.scheduler = SchedulerKind::kThreaded;
  bad_workers.workers = 0;
  auto session = engine.CreateSession(*plan, bad_workers);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(session.status().message().find("workers"), std::string::npos)
      << session.status();

  SessionOptions bad_segment;
  bad_segment.segment_max_rows = 0;
  session = engine.CreateSession(*plan, bad_segment);
  ASSERT_FALSE(session.ok());
  EXPECT_NE(session.status().message().find("segment_max_rows"),
            std::string::npos)
      << session.status();

  SessionOptions bad_log;
  bad_log.log_level = "chatty";
  session = engine.CreateSession(*plan, bad_log);
  ASSERT_FALSE(session.ok());
  EXPECT_NE(session.status().message().find("log_level"), std::string::npos)
      << session.status();
}

TEST(EngineApiTest, PlanOptionsValidateNamesStrategy) {
  PlanOptions options;
  options.strategy = "bogus";
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("strategy"), std::string::npos) << status;

  // The flat compatibility struct validates both halves.
  EvaluationOptions flat;
  flat.strategy = "bogus";
  EXPECT_FALSE(flat.Validate().ok());
  flat.strategy = "greedy";
  flat.workers = -1;
  Status session_status = flat.Validate();
  ASSERT_FALSE(session_status.ok());
  EXPECT_NE(session_status.message().find("workers"), std::string::npos);
}

TEST(EngineApiTest, SessionsAreSingleUse) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto session = engine.CreateSession(*plan);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Run().ok());
  auto again = (*session)->Run();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineApiTest, LineageSessionIsExclusiveAndWorks) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  SessionOptions lineage_options;
  lineage_options.lineage = true;
  auto session = engine.CreateSession(*plan, lineage_options);
  ASSERT_TRUE(session.ok());
  auto result = (*session)->Run();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->lineage, nullptr);
  EXPECT_GT(result->lineage->derived, 0u);
  EXPECT_EQ(snapshot->running_sessions(), 0);
}

TEST(EngineApiTest, SingleSessionLatencyHistogramRenders) {
  // One query must already yield sensible percentile renders (the
  // log2-bucket histogram resolves p50/p95/p99 to the sample's bucket
  // upper bound — never NaN or zero-on-nonzero-sample).
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  MetricsRegistry metrics;
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.metrics = &metrics;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto session = engine.CreateSession(*plan);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Run().ok());

  Histogram& latency = metrics.GetHistogram("engine/session_latency_ns");
  EXPECT_EQ(latency.count(), 1u);
  EXPECT_GT(latency.Percentile(50), 0u);
  EXPECT_GT(latency.Percentile(95), 0u);
  EXPECT_GT(latency.Percentile(99), 0u);
  EXPECT_GE(latency.Percentile(99), latency.max());
  std::string rendered = latency.ToString();
  EXPECT_NE(rendered.find("p95<="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("p99<="), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("nan"), std::string::npos) << rendered;
  // The JSON dump renders too (no empty-histogram regression).
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("engine/session_latency_ns"), std::string::npos);
}

TEST(EngineApiTest, PreparedQueryExposesPlanArtifacts) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database), "tc");
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  EXPECT_GT((*plan)->graph_stats().node_count, 0u);
  EXPECT_FALSE((*plan)->canonical_text().empty());
  EXPECT_GT((*plan)->prepare_ns(), 0u);
  // The recursive tc plan probes edge on its bound first column.
  ASSERT_FALSE((*plan)->index_specs().empty());
  EXPECT_EQ((*plan)->index_specs()[0].relation, "edge");
  // Index specs were materialized on the snapshot at prepare time.
  size_t handle = 0;
  EXPECT_TRUE(snapshot->db()
                  .GetRelation("edge")
                  ->FindIndex((*plan)->index_specs()[0].key_columns, &handle));
  EXPECT_NE((*plan)->Describe().find("strategy=greedy"), std::string::npos);
  EXPECT_EQ(snapshot->name(), "tc");
}

TEST(EngineApiTest, EngineOptionsValidate) {
  EngineOptions options;
  options.workers = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.workers = 0;
  options.plan_cache_capacity = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.plan_cache_capacity = 8;
  options.stats_port = 70000;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.stats_port = 0;
  options.telemetry = false;  // the endpoint reads the telemetry registry
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(EngineApiTest, SessionsCarrySequentialQueryIds) {
  // Every CreateSession mints a stable engine-wide id (1, 2, 3, ...)
  // that the query log, trace spans and lineage output key on; the
  // session exposes it before and after Run.
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  Engine engine(EngineOptions{.workers = 2});
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  auto first = engine.CreateSession(*plan);
  auto second = engine.CreateSession(*plan);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ((*first)->query_id(), 1u);
  EXPECT_EQ((*second)->query_id(), 2u);
  ASSERT_TRUE((*second)->Run().ok());
  EXPECT_EQ((*second)->query_id(), 2u);

  // The ids key the query log: the one completed session is logged
  // under its id, with the pre-Run session absent.
  ASSERT_NE(engine.telemetry(), nullptr);
  auto log = engine.telemetry()->QueryLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].query_id, 2u);
  EXPECT_TRUE(log[0].plan_reused);  // `first` was created earlier
}

}  // namespace
}  // namespace mpqe
