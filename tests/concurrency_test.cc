// Concurrency-safety checks for the pieces shared across threads in
// threaded runs: SymbolTable interning, Network statistics, and
// concurrent read-only Relation probes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "msg/network.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace mpqe {
namespace {

TEST(ConcurrencyTest, SymbolTableConcurrentIntern) {
  SymbolTable symbols;
  constexpr int kThreads = 4;
  constexpr int kNames = 200;
  std::vector<std::thread> pool;
  std::vector<std::vector<int64_t>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        ids[t].push_back(symbols.Intern(StrCat("sym", i)));
      }
    });
  }
  for (auto& th : pool) th.join();
  // All threads agree on every id, and names round-trip.
  for (int i = 0; i < kNames; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][i], ids[0][i]);
    }
    EXPECT_EQ(symbols.Name(ids[0][i]), StrCat("sym", i));
  }
  EXPECT_EQ(symbols.size(), static_cast<size_t>(kNames));
}

TEST(ConcurrencyTest, RelationConcurrentProbes) {
  Relation rel(2);
  for (int i = 0; i < 500; ++i) {
    rel.Insert({Value::Int(i % 50), Value::Int(i)});
  }
  size_t handle = rel.EnsureIndex({0});

  std::atomic<size_t> total{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      size_t local = 0;
      for (int round = 0; round < 200; ++round) {
        for (int key = 0; key < 50; ++key) {
          const std::vector<size_t>* hits =
              rel.Probe(handle, {Value::Int(key)});
          if (hits != nullptr) local += hits->size();
        }
      }
      total.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(total.load(), 4u * 200u * 500u);
}

// A process that hammers a shared counter and forwards hops.
class HammerProcess : public Process {
 public:
  HammerProcess(std::atomic<uint64_t>* counter, ProcessId peer)
      : counter_(counter), peer_(peer) {}
  void OnMessage(const Message& m) override {
    counter_->fetch_add(1);
    int64_t hops = m.values[0].payload();
    if (hops > 0) Send(peer_, MakeTuple({}, {Value::Int(hops - 1)}));
  }

 private:
  std::atomic<uint64_t>* counter_;
  ProcessId peer_;
};

TEST(ConcurrencyTest, NetworkStatsConsistentUnderThreads) {
  std::atomic<uint64_t> handled{0};
  Network net;
  const int kPairs = 6;
  for (int i = 0; i < kPairs; ++i) {
    // Pair (2i, 2i+1) ping-pong.
    net.AddProcess(std::make_unique<HammerProcess>(&handled, 2 * i + 1));
    net.AddProcess(std::make_unique<HammerProcess>(&handled, 2 * i));
  }
  net.Start();
  const int64_t kHops = 200;
  for (int i = 0; i < 2 * kPairs; ++i) {
    net.Send(kNoProcess, i, MakeTuple({}, {Value::Int(kHops)}));
  }
  auto run = net.RunThreaded(4);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->quiescent);
  uint64_t expected = static_cast<uint64_t>(2 * kPairs) * (kHops + 1);
  EXPECT_EQ(handled.load(), expected);
  EXPECT_EQ(net.stats().Count(MessageKind::kTuple), expected);
  EXPECT_EQ(run->delivered, expected);
}

}  // namespace
}  // namespace mpqe
