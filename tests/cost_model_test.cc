// Unit tests for the §4.3 cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "sips/cost_model.h"
#include "sips/strategy.h"

namespace mpqe {
namespace {

Adornment Df() { return {BindingClass::kDynamic, BindingClass::kFree}; }

TEST(CostModelTest, ChainRuleOrderMatters) {
  // R1: p(X,Z) :- a(X,Y), b(Y,U), c(U,Z), head d,f.
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;

  OrderCost forward = EstimateOrderCost(rule, Df(), {0, 1, 2}, params);
  OrderCost backward = EstimateOrderCost(rule, Df(), {2, 1, 0}, params);
  OrderCost detached = EstimateOrderCost(rule, Df(), {0, 2, 1}, params);
  // Natural flow X->Y->U->Z is cheapest; starting at the far end is
  // worse; jumping a->c (no shared vars yet -> cross product) is worst.
  EXPECT_LT(forward.total_cost, backward.total_cost);
  EXPECT_LT(backward.total_cost, detached.total_cost);
}

TEST(CostModelTest, EachStepReducesWithSharedVars) {
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;
  OrderCost cost = EstimateOrderCost(rule, Df(), {0, 1}, params);
  // Step 1: context(0) |><| a on X: (0 + 6) * 0.3 = 1.8.
  // Step 2: (1.8 + 6) * 0.3 = 2.34.
  EXPECT_NEAR(cost.log_max_intermediate, 2.34, 1e-9);
  EXPECT_NEAR(cost.total_generated, std::pow(10, 1.8) + std::pow(10, 2.34),
              1e-6);
}

TEST(CostModelTest, ConstantsActAsSelections) {
  auto unit = Parse("p(X) :- a(X, k).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;
  OrderCost cost = EstimateOrderCost(rule, {BindingClass::kDynamic}, {0},
                                     params);
  // a restricted by one constant: 6 * 0.3 = 1.8; joined with the
  // context on X: (0 + 1.8) * 0.3 = 0.54.
  EXPECT_NEAR(cost.log_max_intermediate, 0.54, 1e-9);
}

TEST(CostModelTest, UnboundHeadMeansNoInitialReduction) {
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams params;
  Adornment ff = {BindingClass::kFree, BindingClass::kFree};
  OrderCost bound = EstimateOrderCost(rule, Df(), {0, 1}, params);
  OrderCost unbound = EstimateOrderCost(rule, ff, {0, 1}, params);
  EXPECT_LT(bound.total_cost, unbound.total_cost);
}

TEST(CostModelTest, EnumerateSortsAscending) {
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).");
  ASSERT_TRUE(unit.ok());
  auto all = EnumerateOrderCosts(unit->program.rules()[0], Df(), {});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 6u);
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_LE((*all)[i - 1].total_cost, (*all)[i].total_cost);
  }
}

TEST(CostModelTest, EnumerateRejectsHugeBodies) {
  std::string body;
  for (int i = 0; i < 9; ++i) {
    if (i) body += ", ";
    body += StrCat("e", i, "(X)");
  }
  auto unit = Parse(StrCat("p(X) :- ", body, "."));
  ASSERT_TRUE(unit.ok());
  auto all = EnumerateOrderCosts(unit->program.rules()[0],
                                 {BindingClass::kDynamic}, {});
  EXPECT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kInvalidArgument);
}

TEST(CostModelTest, GreedyOptimalOnPaperRules) {
  // The §4.3 conjecture, checked exhaustively for R1, R2, R3.
  for (const char* text :
       {"p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).",
        "p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).",
        "p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z)."}) {
    auto unit = Parse(text);
    ASSERT_TRUE(unit.ok());
    const Rule& rule = unit->program.rules()[0];
    CostModelParams params;
    auto greedy = MakeGreedyStrategy()->Classify(rule, Df(), unit->program);
    ASSERT_TRUE(greedy.ok());
    OrderCost greedy_cost =
        EstimateOrderCost(rule, Df(), greedy->order, params);
    auto all = EnumerateOrderCosts(rule, Df(), params);
    ASSERT_TRUE(all.ok());
    EXPECT_LE(greedy_cost.total_cost, all->front().total_cost * 1.0001)
        << text;
  }
}

TEST(CostModelTest, AlphaSweepChangesSpread) {
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  CostModelParams weak, strong;
  weak.alpha = 0.9;    // bound args barely reduce
  strong.alpha = 0.3;  // the paper's example
  auto all_weak = EnumerateOrderCosts(rule, Df(), weak);
  auto all_strong = EnumerateOrderCosts(rule, Df(), strong);
  ASSERT_TRUE(all_weak.ok() && all_strong.ok());
  double spread_weak = std::log10(all_weak->back().total_cost) -
                       std::log10(all_weak->front().total_cost);
  double spread_strong = std::log10(all_strong->back().total_cost) -
                         std::log10(all_strong->front().total_cost);
  EXPECT_GT(spread_strong, spread_weak);
}

TEST(CostModelTest, ToStringMentionsOrder) {
  OrderCost oc;
  oc.order = {2, 0, 1};
  oc.total_cost = 42;
  std::string s = oc.ToString();
  EXPECT_NE(s.find("[2,0,1]"), std::string::npos);
  EXPECT_NE(s.find("cost=42"), std::string::npos);
}

}  // namespace
}  // namespace mpqe
