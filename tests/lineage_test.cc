// Tests for derivation provenance (src/obs/lineage.{h,cc}): stable
// tuple ids at Relation::Insert, first-derivation-wins semantics, the
// assembled derivation DAG (acyclicity, EDB leaves, minimal depths),
// pinned proof trees for transitive closure and same-generation under
// the deterministic scheduler, and first-derivation validity under the
// threaded scheduler.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "obs/lineage.h"

namespace mpqe {
namespace {

constexpr const char* kTc = R"(
  edge(1, 2). edge(2, 3).
  tc(X, Y) :- edge(X, Y).
  tc(X, Y) :- edge(X, Z), tc(Z, Y).
  ?- tc(1, W).
)";

// Same-generation: the classic nonlinear recursion with two distinct
// derivations reaching the same answers.
constexpr const char* kSg = R"(
  flat(m, n).
  up(a, m). up(b, m).
  down(n, x). down(n, y).
  sg(X, Y) :- flat(X, Y).
  sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  ?- sg(a, W).
)";

EvaluationResult EvalWithLineage(const char* text,
                                 SchedulerKind scheduler =
                                     SchedulerKind::kDeterministic) {
  auto unit = Parse(text);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  EvaluationOptions options;
  options.lineage = true;
  options.scheduler = scheduler;
  auto result = Evaluate(unit->program, unit->database, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *std::move(result);
}

// ---------------------------------------------------------------------------
// Relation-level id assignment

TEST(RelationLineageTest, IdsStableAndFirstDerivationWins) {
  TupleIdAllocator ids;
  Relation r(2);
  r.EnableLineage(&ids);
  Relation::InsertResult a = r.InsertRow({Value::Int(1), Value::Int(2)});
  Relation::InsertResult b = r.InsertRow({Value::Int(3), Value::Int(4)});
  ASSERT_TRUE(a.inserted);
  ASSERT_TRUE(b.inserted);
  EXPECT_EQ(r.row_id(a.row), 0u);
  EXPECT_EQ(r.row_id(b.row), 1u);

  // Re-deriving an existing tuple maps to the existing row (and id):
  // the first derivation is preserved, mirroring dedup termination.
  Relation::InsertResult dup = r.InsertRow({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.row, a.row);
  EXPECT_EQ(r.row_id(dup.row), 0u);

  // Ids survive arena growth (rehash/reallocation).
  for (int64_t i = 0; i < 1000; ++i) {
    r.Insert({Value::Int(100 + i), Value::Int(i)});
  }
  EXPECT_EQ(r.row_id(a.row), 0u);
  EXPECT_EQ(r.row_id(b.row), 1u);
  EXPECT_EQ(ids.allocated(), 1002u);
}

TEST(RelationLineageTest, EnableLineageRenumbersExistingRows) {
  TupleIdAllocator ids;
  ids.Allocate();  // someone else took id 0
  Relation r(1);
  r.Insert({Value::Int(7)});
  r.Insert({Value::Int(8)});
  EXPECT_EQ(r.row_id(0), kNoTupleId);  // lineage off: sentinel
  r.EnableLineage(&ids);
  EXPECT_TRUE(r.lineage_enabled());
  EXPECT_EQ(r.row_id(0), 1u);
  EXPECT_EQ(r.row_id(1), 2u);
}

// ---------------------------------------------------------------------------
// --why query parsing

TEST(ParseLineageQueryTest, AtomsWildcardsAndErrors) {
  SymbolTable symbols;
  auto q = ParseLineageQuery("tc(a, _)", symbols);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicate, "tc");
  ASSERT_EQ(q->args.size(), 2u);
  ASSERT_TRUE(q->args[0].has_value());
  EXPECT_EQ(*q->args[0], symbols.Symbol("a"));
  EXPECT_FALSE(q->args[1].has_value());

  auto ints = ParseLineageQuery(" p( 3 , -4 ) ", symbols);
  ASSERT_TRUE(ints.ok());
  ASSERT_EQ(ints->args.size(), 2u);
  EXPECT_EQ(*ints->args[0], Value::Int(3));
  EXPECT_EQ(*ints->args[1], Value::Int(-4));

  auto zero = ParseLineageQuery("done()", symbols);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->predicate, "done");
  EXPECT_TRUE(zero->args.empty());
  EXPECT_TRUE(ParseLineageQuery("done", symbols).ok());

  EXPECT_FALSE(ParseLineageQuery("", symbols).ok());
  EXPECT_FALSE(ParseLineageQuery("p(", symbols).ok());
  EXPECT_FALSE(ParseLineageQuery("p(a,)", symbols).ok());
  EXPECT_FALSE(ParseLineageQuery("p(a) junk", symbols).ok());
}

// ---------------------------------------------------------------------------
// Pinned proof trees (deterministic scheduler)

TEST(LineageTest, TransitiveClosureProofPinned) {
  EvaluationResult result = EvalWithLineage(kTc);
  ASSERT_NE(result.lineage, nullptr);
  SymbolTable symbols;  // kTc is all-integer; no symbols needed
  auto query = ParseLineageQuery("tc(1, 3)", symbols);
  ASSERT_TRUE(query.ok());
  auto matches = result.lineage->Match(*query);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(result.lineage->FormatProof(matches.front()->id),
            "tc(1, 3)  (union #9)\n"
            "  rule#1[tc(1, _?6) :- edge(1, _?12), tc(_?12, _?6).]"
            "  (rule #8)\n"
            "    edge(1, 2)  (edb #0)\n"
            "    tc(2, 3)  (union #6)\n"
            "      rule#0[tc(_?12, _?6) :- edge(_?12, _?6).]  (rule #4)\n"
            "        edge(2, 3)  (edb #1)\n");

  ProofFormatOptions no_ids;
  no_ids.include_ids = false;
  std::string bare = result.lineage->FormatProof(matches.front()->id, no_ids);
  // Without ids the " #<id>" markers disappear (rule labels still
  // contain "rule#<n>", with no preceding space).
  EXPECT_EQ(bare.find(" #"), std::string::npos) << bare;
  EXPECT_NE(bare.find("(union)"), std::string::npos) << bare;
}

TEST(LineageTest, SameGenerationProofPinned) {
  auto unit = Parse(kSg);
  ASSERT_TRUE(unit.ok());
  EvaluationOptions options;
  options.lineage = true;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->lineage, nullptr);
  auto query = ParseLineageQuery("sg(a, x)", unit->database.symbols());
  ASSERT_TRUE(query.ok());
  auto matches = result->lineage->Match(*query);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(
      result->lineage->FormatProof(matches.front()->id),
      "sg(a, x)  (union #9)\n"
      "  rule#1[sg(a, _?7) :- up(a, _?13), sg(_?13, _?14), down(_?14, _?7).]"
      "  (rule #7)\n"
      "    up(a, m)  (edb #3)\n"
      "    sg(m, n)  (union #6)\n"
      "      rule#0[sg(_?13, _?14) :- flat(_?13, _?14).]  (rule #5)\n"
      "        flat(m, n)  (edb #2)\n"
      "    down(n, x)  (edb #0)\n");
}

// ---------------------------------------------------------------------------
// DAG structure

void ExpectWellFormedDag(const LineageReport& report) {
  for (const LineageRecord& r : report.records) {
    if (r.kind == DeriveKind::kEdbFact) {
      // EDB facts are leaves.
      EXPECT_TRUE(r.inputs.empty()) << "edb #" << r.id << " has inputs";
      EXPECT_EQ(r.depth, 0) << "edb #" << r.id;
      continue;
    }
    ASSERT_FALSE(r.inputs.empty()) << "derived #" << r.id << " has no inputs";
    int64_t max_input_depth = -1;
    for (uint64_t input : r.inputs) {
      // Inputs strictly precede their derivation: acyclic by ids.
      EXPECT_LT(input, r.id) << "record #" << r.id;
      const LineageRecord* in = report.Find(input);
      ASSERT_NE(in, nullptr) << "record #" << r.id << " input " << input
                             << " does not resolve";
      max_input_depth = std::max(max_input_depth, in->depth);
    }
    EXPECT_EQ(r.depth, max_input_depth + 1) << "record #" << r.id;
    if (r.source_msg != kNoTupleId) {
      EXPECT_NE(report.Find(r.source_msg), nullptr)
          << "record #" << r.id << " source " << r.source_msg;
    }
  }
}

TEST(LineageTest, DagIsAcyclicWithEdbLeaves) {
  EvaluationResult tc = EvalWithLineage(kTc);
  ASSERT_NE(tc.lineage, nullptr);
  ExpectWellFormedDag(*tc.lineage);
  EXPECT_EQ(tc.lineage->edb_facts, 2u);
  EXPECT_GT(tc.lineage->derived, 0u);

  EvaluationResult sg = EvalWithLineage(kSg);
  ASSERT_NE(sg.lineage, nullptr);
  ExpectWellFormedDag(*sg.lineage);
}

TEST(LineageTest, ThreadedRunsYieldValidFirstDerivations) {
  for (int round = 0; round < 3; ++round) {
    auto unit = Parse(kSg);
    ASSERT_TRUE(unit.ok());
    EvaluationOptions options;
    options.lineage = true;
    options.scheduler = SchedulerKind::kThreaded;
    auto result = Evaluate(unit->program, unit->database, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(result->lineage, nullptr);
    // Which derivation wins the race varies; every answer must still
    // have exactly one valid, EDB-grounded first derivation.
    ExpectWellFormedDag(*result->lineage);
    // The goal sg(a, W) projects to the free variable: answers are
    // (x) and (y); the sg atom image is (a, <answer>).
    ASSERT_EQ(result->answers.size(), 2u);
    for (const Tuple& answer : result->answers.SortedTuples()) {
      ASSERT_EQ(answer.size(), 1u);
      std::vector<std::optional<Value>> args = {
          unit->database.symbols().Symbol("a"), answer[0]};
      auto matches = result->lineage->Match("sg", args);
      ASSERT_FALSE(matches.empty());
      std::string proof = result->lineage->FormatProof(matches.front()->id);
      EXPECT_EQ(proof.find("(unknown"), std::string::npos) << proof;
      EXPECT_EQ(proof.find("(cycle"), std::string::npos) << proof;
    }
  }
}

TEST(LineageTest, MatchOrdersByDepthAndSupportsWildcards) {
  EvaluationResult result = EvalWithLineage(kTc);
  ASSERT_NE(result.lineage, nullptr);
  std::vector<std::optional<Value>> args = {Value::Int(1), std::nullopt};
  auto matches = result.lineage->Match("tc", args);
  ASSERT_EQ(matches.size(), 2u);  // tc(1,2) and tc(1,3)
  EXPECT_LE(matches[0]->depth, matches[1]->depth);
}

TEST(LineageTest, JsonCarriesSchemaMarker) {
  EvaluationResult result = EvalWithLineage(kTc);
  std::string json = result.lineage->ToJson();
  EXPECT_NE(json.find("\"schema\": \"mpqe-lineage-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"edb\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"rule\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"union\""), std::string::npos);
}

TEST(LineageTest, OffByDefaultLeavesResultAndFastPathUntouched) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  auto result = Evaluate(unit->program, unit->database, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lineage, nullptr);
  // Without lineage the EDB relations never get ids.
  EXPECT_FALSE(unit->database.GetRelation("edge")->lineage_enabled());
  EXPECT_EQ(result->answers.size(), 2u);
}

TEST(LineageTest, FormatProofGuardsUnknownIds) {
  LineageReport report;
  EXPECT_NE(report.FormatProof(42).find("(unknown #42)"), std::string::npos);
}

}  // namespace
}  // namespace mpqe
