// Differential property tests: on randomly generated safe Datalog
// programs, the message-passing engine must compute exactly the goal
// relation that (semi-)naive bottom-up evaluation computes — for every
// information passing strategy and every scheduler. This is the
// repository's main correctness anchor.

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "baseline/top_down_sld.h"
#include "common/random.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

// Without node coalescing (the paper's distributed assumption, §2.2
// end) sibling subtrees duplicate goal variants, and dense mutually
// recursive IDBs can blow the rule/goal graph up exponentially. That
// is a documented property of the construction, not a bug; such seeds
// are skipped.
#define MPQE_SKIP_IF_GRAPH_BLOWUP(result)                                   \
  if (!(result).ok() &&                                                     \
      (result).status().code() == StatusCode::kResourceExhausted) {         \
    GTEST_SKIP() << "graph blow-up (no coalescing): " << (result).status(); \
  }

class RandomProgramEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramEquivalence, EngineMatchesSemiNaive) {
  Rng rng(GetParam());
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok()) << rp.status();
  Program& program = rp->unit.program;
  Database& db = rp->unit.database;

  auto truth = SemiNaiveBottomUp(program, db);
  ASSERT_TRUE(truth.ok()) << truth.status() << "\n" << rp->text;

  for (const char* strategy :
       {"greedy", "left_to_right", "qual_tree_or_greedy", "no_sips"}) {
    EvaluationOptions eval;
    eval.strategy = strategy;
    eval.max_messages = 5000000;
    auto result = Evaluate(program, db, eval);
    MPQE_SKIP_IF_GRAPH_BLOWUP(result);
    ASSERT_TRUE(result.ok())
        << strategy << ": " << result.status() << "\n" << rp->text;
    EXPECT_TRUE(result->ended_by_protocol) << strategy << "\n" << rp->text;
    EXPECT_TRUE(result->answers == truth->goal)
        << strategy << "\nprogram:\n" << rp->text
        << "\nengine: " << result->answers.ToString()
        << "\ntruth:  " << truth->goal.ToString();
  }
}

TEST_P(RandomProgramEquivalence, SchedulersMatchSemiNaive) {
  Rng rng(GetParam() + 1000);
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok()) << rp.status();
  Program& program = rp->unit.program;
  Database& db = rp->unit.database;

  auto truth = SemiNaiveBottomUp(program, db);
  ASSERT_TRUE(truth.ok());

  // Three random interleavings plus the thread pool. Theorem 3.1 in
  // practice: a premature leader `end` under any schedule would stop
  // the sink early and lose answers, which the equality would catch.
  for (uint64_t seed : {1ull, 42ull, 99ull}) {
    EvaluationOptions eval;
    eval.scheduler = SchedulerKind::kRandom;
    eval.seed = seed;
    eval.max_messages = 5000000;
    auto result = Evaluate(program, db, eval);
    MPQE_SKIP_IF_GRAPH_BLOWUP(result);
    ASSERT_TRUE(result.ok()) << result.status() << "\n" << rp->text;
    EXPECT_TRUE(result->ended_by_protocol) << rp->text;
    EXPECT_TRUE(result->answers == truth->goal)
        << "random seed " << seed << "\n" << rp->text;
  }
  EvaluationOptions threaded;
  threaded.scheduler = SchedulerKind::kThreaded;
  threaded.workers = 4;
  threaded.max_messages = 5000000;
  auto result = Evaluate(program, db, threaded);
  MPQE_SKIP_IF_GRAPH_BLOWUP(result);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_TRUE(result->answers == truth->goal) << "threaded\n" << rp->text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

// Denser, more recursive programs: fewer seeds, heavier shapes.
class DenseProgramEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DenseProgramEquivalence, EngineMatchesSemiNaive) {
  Rng rng(GetParam());
  workload::RandomProgramOptions options;
  options.idb_predicates = 4;
  options.rules_per_idb = 3;
  options.max_body_atoms = 4;
  options.recursion_bias = 0.7;
  options.edb_nodes = 8;
  options.edb_facts_per_relation = 16;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok()) << rp.status();

  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  EvaluationOptions eval;
  eval.max_messages = 10000000;
  auto result = Evaluate(rp->unit.program, rp->unit.database, eval);
  MPQE_SKIP_IF_GRAPH_BLOWUP(result);
  ASSERT_TRUE(result.ok()) << result.status() << "\n" << rp->text;
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_TRUE(result->answers == truth->goal)
      << rp->text << "\nengine: " << result->answers.ToString()
      << "\ntruth:  " << truth->goal.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseProgramEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{25}));

// SLD agrees whenever it completes within its caps.
class SldEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SldEquivalence, SldMatchesSemiNaiveWhenComplete) {
  Rng rng(GetParam() + 500);
  workload::RandomProgramOptions options;
  options.recursion_bias = 0.2;  // mostly nonrecursive so SLD finishes
  options.edb_facts_per_relation = 12;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  SldOptions sld_options;
  sld_options.max_depth = 64;
  sld_options.max_steps = 50000;
  auto sld = TopDownSld(rp->unit.program, rp->unit.database, sld_options);
  ASSERT_TRUE(sld.ok());
  if (sld->complete()) {
    EXPECT_TRUE(sld->answers == truth->goal) << rp->text;
  } else {
    // Incomplete searches must still be sound.
    for (TupleRef t : sld->answers.tuples()) {
      EXPECT_TRUE(truth->goal.Contains(t)) << rp->text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SldEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace mpqe
