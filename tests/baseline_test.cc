// Tests for the baseline evaluators: naive / semi-naive bottom-up and
// top-down SLD (including its left-recursion failure mode, §1.2).

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "baseline/top_down_sld.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

Tuple T1(int64_t a) { return {Value::Int(a)}; }

constexpr const char* kTc = R"(
  edge(1, 2). edge(2, 3). edge(3, 4).
  tc(X, Y) :- edge(X, Y).
  tc(X, Y) :- edge(X, Z), tc(Z, Y).
  ?- tc(1, W).
)";

TEST(NaiveBottomUpTest, TransitiveClosure) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  auto result = NaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->goal.size(), 3u);  // 2, 3, 4
  EXPECT_TRUE(result->goal.Contains(T1(4)));
  EXPECT_FALSE(result->goal.Contains(T1(1)));
  // Full tc has 3+2+1 = 6 tuples; naive derives all of them.
  EXPECT_EQ(result->idb_sizes.at("tc"), 6u);
  EXPECT_GT(result->iterations, 1u);
}

TEST(SemiNaiveBottomUpTest, MatchesNaive) {
  auto unit1 = Parse(kTc);
  auto unit2 = Parse(kTc);
  ASSERT_TRUE(unit1.ok() && unit2.ok());
  auto naive = NaiveBottomUp(unit1->program, unit1->database);
  auto semi = SemiNaiveBottomUp(unit2->program, unit2->database);
  ASSERT_TRUE(naive.ok() && semi.ok());
  EXPECT_TRUE(naive->goal == semi->goal);
  EXPECT_EQ(naive->idb_sizes.at("tc"), semi->idb_sizes.at("tc"));
  EXPECT_EQ(naive->total_derived, semi->total_derived);
}

TEST(SemiNaiveBottomUpTest, CyclicGraphTerminates) {
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 10).ok());
  Program program;
  ASSERT_TRUE(
      ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = SemiNaiveBottomUp(program, db);
  ASSERT_TRUE(result.ok());
  // From node 0 in a 10-cycle every node is reachable.
  EXPECT_EQ(result->goal.size(), 10u);
  EXPECT_EQ(result->idb_sizes.at("tc"), 100u);
}

TEST(SemiNaiveBottomUpTest, NonlinearRecursion) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 8).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  auto result = SemiNaiveBottomUp(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->goal.size(), 7u);
}

TEST(SemiNaiveBottomUpTest, MutualRecursion) {
  auto unit = Parse(R"(
    zero(0).
    succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = SemiNaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->goal.size(), 3u);  // 0, 2, 4
  EXPECT_TRUE(result->goal.Contains(T1(4)));
  EXPECT_FALSE(result->goal.Contains(T1(3)));
}

TEST(SemiNaiveBottomUpTest, SameGeneration) {
  auto unit = Parse(R"(
    person(a). person(b). person(c). person(d).
    par(b, a). par(c, a). par(d, b).
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    ?- sg(b, W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = SemiNaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  // b is same-generation with itself and c.
  EXPECT_EQ(result->goal.size(), 2u);
  EXPECT_TRUE(result->goal.Contains({unit->database.Sym("c")}));
}

TEST(BottomUpTest, EmptyEdbGivesEmptyGoal) {
  auto unit = Parse(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = SemiNaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->goal.size(), 0u);
}

TEST(BottomUpTest, ConstantsInRules) {
  auto unit = Parse(R"(
    likes(alice, beer). likes(bob, wine). likes(carol, beer).
    beerfan(X) :- likes(X, beer).
    ?- beerfan(W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = NaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->goal.size(), 2u);
}

TEST(BottomUpTest, RepeatedVariables) {
  auto unit = Parse(R"(
    e(1, 1). e(1, 2). e(2, 2). e(3, 4).
    selfloop(X) :- e(X, X).
    ?- selfloop(W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = SemiNaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->goal.size(), 2u);
  EXPECT_TRUE(result->goal.Contains(T1(1)));
  EXPECT_TRUE(result->goal.Contains(T1(2)));
}

TEST(BottomUpTest, SemiNaiveFewerIterationsThanNaiveDerivesSame) {
  Database db1, db2;
  ASSERT_TRUE(workload::MakeChain(db1, "edge", 30).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "edge", 30).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), p1, db1).ok());
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), p2, db2).ok());
  auto naive = NaiveBottomUp(p1, db1);
  auto semi = SemiNaiveBottomUp(p2, db2);
  ASSERT_TRUE(naive.ok() && semi.ok());
  EXPECT_TRUE(naive->goal == semi->goal);
  EXPECT_EQ(naive->goal.size(), 29u);
}

TEST(TopDownSldTest, AnswersSimpleQueries) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  auto result = TopDownSld(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_TRUE(result->answers.Contains(T1(4)));
}

TEST(TopDownSldTest, LeftRecursionHitsDepthCap) {
  // The classic Prolog failure: t(X,Y) :- t(X,Z), e(Z,Y) loops.
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LeftRecursiveTcProgram(0), program, db).ok());
  SldOptions options;
  options.max_depth = 50;
  options.max_steps = 100000;
  auto result = TopDownSld(program, db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete());
  EXPECT_TRUE(result->depth_exceeded || result->steps_exceeded);
}

TEST(TopDownSldTest, RightRecursionWorksOnAcyclicGraph) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 6).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = TopDownSld(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(result->answers.size(), 5u);
}

TEST(TopDownSldTest, CyclicDataLoopsEvenWithRightRecursion) {
  // Right-linear TC on a cyclic graph: SLD revisits nodes forever;
  // the paper's method terminates (duplicate elimination in cycles).
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 5).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  SldOptions options;
  options.max_depth = 40;
  options.max_steps = 50000;
  auto result = TopDownSld(program, db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete());
}

TEST(WorkloadTest, GeneratorsProduceExpectedCounts) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "c", 10).ok());
  EXPECT_EQ(db.GetRelation("c")->size(), 9u);
  ASSERT_TRUE(workload::MakeCycle(db, "y", 10).ok());
  EXPECT_EQ(db.GetRelation("y")->size(), 10u);
  ASSERT_TRUE(workload::MakeBinaryTree(db, "t", 7).ok());
  EXPECT_EQ(db.GetRelation("t")->size(), 6u);
  ASSERT_TRUE(workload::MakeGrid(db, "g", 3, 3).ok());
  EXPECT_EQ(db.GetRelation("g")->size(), 12u);
  Rng rng(1);
  ASSERT_TRUE(workload::MakeRandomGraph(db, "r", 10, 3, rng).ok());
  EXPECT_LE(db.GetRelation("r")->size(), 30u);  // duplicates merged
  EXPECT_GT(db.GetRelation("r")->size(), 10u);
}

TEST(WorkloadTest, RandomProgramsValidate) {
  workload::RandomProgramOptions options;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto rp = workload::MakeRandomProgram(options, rng);
    ASSERT_TRUE(rp.ok()) << "seed " << seed << ": " << rp.status();
    EXPECT_FALSE(rp->unit.program.rules().empty());
  }
}

}  // namespace
}  // namespace mpqe
