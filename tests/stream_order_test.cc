// Stream-safety properties of the message protocol, checked with a
// send observer across workloads, strategies and schedules:
//
//  * per (producer, consumer, binding) stream: no tuple is ever sent
//    after that stream's `end` (an end means "the request is
//    complete", §3.1/§3.2);
//  * `end` is sent at most once per stream;
//  * every tuple request precedes any answer on its stream;
//  * the top-level end reaches the sink exactly once.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <tuple>

#include "common/random.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

struct StreamKey {
  ProcessId producer;
  ProcessId consumer;
  Tuple binding;

  bool operator<(const StreamKey& other) const {
    return std::tie(producer, consumer, binding) <
           std::tie(other.producer, other.consumer, other.binding);
  }
};

struct StreamState {
  bool requested = false;
  bool ended = false;
  size_t tuples_after_end = 0;
  size_t double_ends = 0;
  size_t answers_before_request = 0;
};

class StreamMonitor : public ExecutionObserver {
 public:
  void OnSend(const SendEvent& event) override {
    Observe(event.to, *event.message);
  }

  void Observe(ProcessId to, const Message& m) {
    // Lock once here; batch envelopes recurse via the unlocked helper
    // (re-locking the non-recursive mutex would self-deadlock).
    std::lock_guard<std::mutex> lock(mutex_);
    ObserveLocked(to, m);
  }

  void ExpectClean(const std::string& context) const {
    for (const auto& [key, s] : streams_) {
      EXPECT_EQ(s.tuples_after_end, 0u)
          << context << ": tuple after end on stream " << key.producer
          << "->" << key.consumer << " " << TupleToString(key.binding);
      EXPECT_EQ(s.double_ends, 0u)
          << context << ": double end on stream " << key.producer << "->"
          << key.consumer;
      EXPECT_EQ(s.answers_before_request, 0u)
          << context << ": answer before request on stream " << key.producer
          << "->" << key.consumer;
    }
  }

 private:
  void ObserveLocked(ProcessId to, const Message& m) {
    switch (m.kind) {
      case MessageKind::kTupleRequest:
        streams_[{to, m.from, m.binding}].requested = true;
        break;
      case MessageKind::kTuple: {
        StreamState& s = streams_[{m.from, to, m.binding}];
        if (s.ended) ++s.tuples_after_end;
        if (!s.requested) ++s.answers_before_request;
        break;
      }
      case MessageKind::kTupleSegment: {
        // A segment is a run of tuples on one stream: every row is
        // subject to the same ordering invariants.
        StreamState& s = streams_[{m.from, to, m.binding}];
        size_t rows = m.segment().num_rows;
        EXPECT_GT(rows, 0u) << "empty segment on the wire";
        if (s.ended) s.tuples_after_end += rows;
        if (!s.requested) s.answers_before_request += rows;
        break;
      }
      case MessageKind::kEnd: {
        StreamState& s = streams_[{m.from, to, m.binding}];
        if (s.ended) ++s.double_ends;
        s.ended = true;
        break;
      }
      case MessageKind::kBatch:
        for (const Message& sub : m.batch()) {
          Message stamped = sub;
          stamped.from = m.from;
          ObserveLocked(to, stamped);
        }
        break;
      default:
        break;
    }
  }

  mutable std::mutex mutex_;
  std::map<StreamKey, StreamState> streams_;
};

struct Config {
  std::string name;
  SchedulerKind scheduler;
  uint64_t seed;
  bool coalesce;
  bool batch;
  bool segments = true;
};

std::vector<Config> Configs() {
  return {
      {"det", SchedulerKind::kDeterministic, 0, false, false},
      {"det/coalesced", SchedulerKind::kDeterministic, 0, true, false},
      {"det/batched", SchedulerKind::kDeterministic, 0, false, true},
      {"det/per-tuple", SchedulerKind::kDeterministic, 0, false, false, false},
      {"rand7", SchedulerKind::kRandom, 7, false, false},
      {"rand11/coalesced", SchedulerKind::kRandom, 11, true, false},
      {"threaded", SchedulerKind::kThreaded, 0, false, false},
  };
}

TEST(StreamOrderTest, RecursiveCycleWorkload) {
  for (const Config& config : Configs()) {
    Database db;
    ASSERT_TRUE(workload::MakeCycle(db, "edge", 8).ok());
    Program program;
    ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    StreamMonitor monitor;
    EvaluationOptions options;
    options.scheduler = config.scheduler;
    options.seed = config.seed;
    options.workers = 3;
    options.graph_options.coalesce_nodes = config.coalesce;
    options.batch_messages = config.batch;
    options.segment_messages = config.segments;
    // Guard: a protocol regression must fail fast, not hang the test.
    options.max_messages = 1000000;
    options.observers.push_back(&monitor);
    auto result = Evaluate(program, db, options);
    ASSERT_TRUE(result.ok()) << config.name << ": " << result.status();
    EXPECT_TRUE(result->ended_by_protocol) << config.name;
    monitor.ExpectClean(config.name);
  }
}

TEST(StreamOrderTest, MutualRecursionWorkload) {
  for (const Config& config : Configs()) {
    auto unit = Parse(R"(
      zero(0).
      succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
      even(X) :- zero(X).
      even(X) :- succ(Y, X), odd(Y).
      odd(X) :- succ(Y, X), even(Y).
      ?- even(N).
    )");
    ASSERT_TRUE(unit.ok());
    StreamMonitor monitor;
    EvaluationOptions options;
    options.scheduler = config.scheduler;
    options.seed = config.seed;
    options.graph_options.coalesce_nodes = config.coalesce;
    options.batch_messages = config.batch;
    options.segment_messages = config.segments;
    // Guard: a protocol regression must fail fast, not hang the test.
    options.max_messages = 1000000;
    options.observers.push_back(&monitor);
    auto result = Evaluate(unit->program, unit->database, options);
    ASSERT_TRUE(result.ok()) << config.name;
    monitor.ExpectClean(config.name);
  }
}

TEST(StreamOrderTest, RandomProgramsUnderRandomSchedules) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 700);
    workload::RandomProgramOptions program_options;
    auto rp = workload::MakeRandomProgram(program_options, rng);
    ASSERT_TRUE(rp.ok());
    StreamMonitor monitor;
    EvaluationOptions options;
    options.scheduler = SchedulerKind::kRandom;
    options.seed = seed;
    options.max_messages = 5000000;
    options.observers.push_back(&monitor);
    auto result = Evaluate(rp->unit.program, rp->unit.database, options);
    if (!result.ok() &&
        result.status().code() == StatusCode::kResourceExhausted) {
      continue;  // graph blow-up; covered elsewhere
    }
    ASSERT_TRUE(result.ok()) << result.status() << "\n" << rp->text;
    monitor.ExpectClean(StrCat("seed ", seed));
  }
}

}  // namespace
}  // namespace mpqe
