// End-to-end tests of the message-passing evaluator (§3): canonical
// queries, the paper's P1, recursion shapes, schedulers, and the
// end-message protocol.

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

Tuple T1(int64_t a) { return {Value::Int(a)}; }

StatusOr<EvaluationResult> RunQuery(const char* text,
                                    EvaluationOptions options = {}) {
  auto unit = Parse(text);
  if (!unit.ok()) return unit.status();
  return Evaluate(unit->program, unit->database, options);
}

TEST(EvaluatorTest, NonRecursiveJoin) {
  auto result = RunQuery(R"(
    parent(a, b). parent(b, c). parent(b, d).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
    ?- grandparent(a, W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);
  EXPECT_TRUE(result->ended_by_protocol);
}

TEST(EvaluatorTest, LinearTransitiveClosureChain) {
  auto result = RunQuery(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_TRUE(result->answers.Contains(T1(2)));
  EXPECT_TRUE(result->answers.Contains(T1(3)));
  EXPECT_TRUE(result->answers.Contains(T1(4)));
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_TRUE(result->quiescent_after);
}

TEST(EvaluatorTest, LeftRecursionTerminates) {
  // Strict top-down diverges here; the rule/goal graph + dedup does not.
  auto result = RunQuery(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    tc(X, Y) :- tc(X, Z), edge(Z, Y).
    tc(X, Y) :- edge(X, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_TRUE(result->ended_by_protocol);
}

TEST(EvaluatorTest, CyclicDataReachesFixpoint) {
  // "Deletion of duplicates in cycles ensures that nodes become idle
  // when the computation is complete" (§1.2).
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 6).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = Evaluate(program, db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 6u);
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_GT(result->counters.duplicate_drops, 0u);
}

TEST(EvaluatorTest, PaperP1NonlinearRecursion) {
  // Example 2.1 with concrete data: q is a step relation, r a base
  // relation; p composes them nonlinearly (p :- p, q, p).
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "q", 6).ok());
  ASSERT_TRUE(workload::MakeChain(db, "r", 6).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::P1Program(0), program, db).ok());
  auto result = Evaluate(program, db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ended_by_protocol);

  // Cross-check against semi-naive ground truth.
  Database db2;
  ASSERT_TRUE(workload::MakeChain(db2, "q", 6).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "r", 6).ok());
  Program program2;
  ASSERT_TRUE(ParseInto(workload::P1Program(0), program2, db2).ok());
  auto truth = SemiNaiveBottomUp(program2, db2);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(result->answers == truth->goal)
      << "engine: " << result->answers.ToString()
      << " truth: " << truth->goal.ToString();
}

TEST(EvaluatorTest, NonlinearTcMatchesLinearTc) {
  Database db1, db2;
  ASSERT_TRUE(workload::MakeBinaryTree(db1, "edge", 15).ok());
  ASSERT_TRUE(workload::MakeBinaryTree(db2, "edge", 15).ok());
  Program lin, nonlin;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), lin, db1).ok());
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), nonlin, db2).ok());
  auto r1 = Evaluate(lin, db1);
  auto r2 = Evaluate(nonlin, db2);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE(r1->answers == r2->answers);
  EXPECT_EQ(r1->answers.size(), 14u);
}

TEST(EvaluatorTest, MutualRecursion) {
  auto result = RunQuery(R"(
    zero(0).
    succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_TRUE(result->answers.Contains(T1(0)));
  EXPECT_TRUE(result->answers.Contains(T1(2)));
  EXPECT_TRUE(result->answers.Contains(T1(4)));
}

TEST(EvaluatorTest, SameGenerationBoundQuery) {
  auto result = RunQuery(R"(
    person(a). person(b). person(c). person(d).
    par(b, a). par(c, a). par(d, b).
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    ?- sg(b, W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);  // b and c
}

TEST(EvaluatorTest, EmptyAnswerStillEnds) {
  auto result = RunQuery(R"(
    edge(1, 2).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(99, W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 0u);
  EXPECT_TRUE(result->ended_by_protocol);
}

TEST(EvaluatorTest, EmptyEdbStillEnds) {
  auto result = RunQuery(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 0u);
  EXPECT_TRUE(result->ended_by_protocol);
}

TEST(EvaluatorTest, ConstantsAndRepeatedVariables) {
  auto result = RunQuery(R"(
    e(1, 1). e(1, 2). e(2, 2). e(3, 3).
    loopy(X) :- e(X, X).
    pair(X) :- loopy(X), e(X, 2).
    ?- pair(W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);  // 1 (e(1,2)) and 2 (e(2,2))
}

TEST(EvaluatorTest, ZeroArityPredicates) {
  auto result = RunQuery(R"(
    raining.
    wet(X) :- thing(X), raining.
    thing(umbrella). thing(cat).
    ?- wet(W).
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);
}

TEST(EvaluatorTest, MultipleQueryRules) {
  auto result = RunQuery(R"(
    a(1). b(2).
    goal(X) :- a(X).
    goal(X) :- b(X).
    ?- a(9).
  )");
  // Mixing explicit goal rules with ?- of a different arity clashes;
  // use a fresh check instead: explicit goal rules only.
  (void)result;
  auto explicit_goal = RunQuery(R"(
    a(1). b(2).
    goal(X) :- a(X).
    goal(X) :- b(X).
  )");
  ASSERT_TRUE(explicit_goal.ok()) << explicit_goal.status();
  EXPECT_EQ(explicit_goal->answers.size(), 2u);
}

TEST(EvaluatorTest, AllStrategiesAgree) {
  for (const char* strategy : {"greedy", "left_to_right",
                               "qual_tree_or_greedy", "no_sips"}) {
    Database db;
    ASSERT_TRUE(workload::MakeBinaryTree(db, "edge", 15).ok());
    Program program;
    ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.strategy = strategy;
    auto result = Evaluate(program, db, options);
    ASSERT_TRUE(result.ok()) << strategy << ": " << result.status();
    EXPECT_EQ(result->answers.size(), 14u) << strategy;
    EXPECT_TRUE(result->ended_by_protocol) << strategy;
  }
}

TEST(EvaluatorTest, AllSchedulersAgree) {
  auto make = [](Database& db, Program& program) {
    ASSERT_TRUE(workload::MakeRandomGraph(
        db, "edge", 20, 2, *std::make_unique<Rng>(7)).ok());
    ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  };
  Database db0;
  Program p0;
  make(db0, p0);
  auto baseline = Evaluate(p0, db0);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  for (int mode = 0; mode < 2; ++mode) {
    Database db;
    Program program;
    make(db, program);
    EvaluationOptions options;
    if (mode == 0) {
      options.scheduler = SchedulerKind::kRandom;
      options.seed = 1234;
    } else {
      options.scheduler = SchedulerKind::kThreaded;
      options.workers = 4;
    }
    auto result = Evaluate(program, db, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->answers == baseline->answers) << "mode " << mode;
    EXPECT_TRUE(result->ended_by_protocol) << "mode " << mode;
  }
}

TEST(EvaluatorTest, SidewaysPassingRestrictsComputation) {
  // §1.2: class d "serves to restrict the computed part of the
  // intermediate relation to values that are (at least potentially)
  // useful". Query tc(0, W) on a chain: with sips the engine explores
  // only the suffix from 0... compare stored tuples against no_sips.
  Database db1, db2;
  ASSERT_TRUE(workload::MakeChain(db1, "edge", 24).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "edge", 24).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(12), p1, db1).ok());
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(12), p2, db2).ok());

  EvaluationOptions sips;
  sips.strategy = "greedy";
  EvaluationOptions full;
  full.strategy = "no_sips";
  auto r1 = Evaluate(p1, db1, sips);
  auto r2 = Evaluate(p2, db2, full);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE(r1->answers == r2->answers);
  EXPECT_EQ(r1->answers.size(), 11u);
  // Greedy computes only tc(12,*) onward; no_sips computes all of tc.
  // Logical tuple traffic = bare kTuple messages + rows carried inside
  // kTupleSegment messages.
  EXPECT_LT(r1->counters.stored_tuples, r2->counters.stored_tuples);
  EXPECT_LT(r1->message_stats.Count(MessageKind::kTuple) +
                r1->message_stats.segment_rows,
            r2->message_stats.Count(MessageKind::kTuple) +
                r2->message_stats.segment_rows);
}

TEST(EvaluatorTest, ProtocolMessagesOnlyForRecursiveQueries) {
  auto flat = RunQuery(R"(
    parent(a, b). parent(b, c).
    gp(X, Z) :- parent(X, Y), parent(Y, Z).
    ?- gp(a, W).
  )");
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->message_stats.ProtocolTotal(), 0u);
  EXPECT_EQ(flat->counters.protocol_waves, 0u);

  auto rec = RunQuery(R"(
    edge(1, 2). edge(2, 3).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec->message_stats.ProtocolTotal(), 0u);
  EXPECT_GT(rec->counters.protocol_waves, 0u);
}

TEST(EvaluatorTest, MaxMessagesGuardPropagates) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 50).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  EvaluationOptions options;
  options.max_messages = 10;
  auto result = Evaluate(program, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvaluatorTest, InvalidProgramRejected) {
  auto result = RunQuery("p(X) :- e(X).");  // no query
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EvaluatorTest, ExistentialProjectionReducesTuples) {
  // p(X) :- r(X, Y): Y is class e; with many Y per X only one tuple
  // per X crosses the wire.
  std::string text;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 25; ++y) {
      text += StrCat("r(", x, ", ", 1000 + y, ").\n");
    }
  }
  text += "p(X) :- r(X, Y).\n?- p(W).\n";
  auto result = RunQuery(text.c_str());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 4u);
  // Tuple messages: 4 per level of the five-level chain (EDB leaf ->
  // rule -> p goal -> query rule -> goal node -> sink); far below the
  // 100 facts that would flow without the e designation.
  EXPECT_LE(result->message_stats.Count(MessageKind::kTuple), 20u);
}

TEST(EvaluationOptionsTest, ValidateAcceptsDefaults) {
  EvaluationOptions options;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(EvaluationOptionsTest, ValidateRejectsBadSchedulerValue) {
  EvaluationOptions options;
  options.scheduler = static_cast<SchedulerKind>(99);
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The misconfiguration is caught before any work, not mid-run.
  auto unit = Parse("p(1).\n?- p(W).\n");
  ASSERT_TRUE(unit.ok());
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluationOptionsTest, ValidateRejectsNonPositiveWorkers) {
  EvaluationOptions options;
  options.workers = 0;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  options.workers = -3;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(EvaluationOptionsTest, ValidateRejectsUnknownStrategy) {
  EvaluationOptions options;
  options.strategy = "definitely_not_a_strategy";
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  auto unit = Parse("p(1).\n?- p(W).\n");
  ASSERT_TRUE(unit.ok());
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchedulerNamesTest, RoundTrip) {
  for (SchedulerKind kind :
       {SchedulerKind::kDeterministic, SchedulerKind::kRandom,
        SchedulerKind::kThreaded}) {
    auto parsed = SchedulerKindFromName(SchedulerKindToName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  auto bad = SchedulerKindFromName("fifo");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mpqe
